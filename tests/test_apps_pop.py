"""Tests for the POP substrate: grid, functional solvers, workload."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.pop import (
    X1_GRID,
    Laplacian2D,
    Pop,
    baroclinic_step,
    block_shape,
    factor_grid,
    solve_barotropic,
    stencil_apply,
    total_tracer,
)
from repro.core import AffinityScheme, run_workload
from repro.machine import dmz, longs


# -- grid -------------------------------------------------------------------

def test_x1_grid_matches_paper():
    assert (X1_GRID.nx, X1_GRID.ny, X1_GRID.nz) == (320, 384, 40)
    assert X1_GRID.horizontal_points == 320 * 384


def test_factor_grid_near_square():
    assert factor_grid(16) == (4, 4)
    assert factor_grid(8) == (2, 4)
    assert factor_grid(1) == (1, 1)
    assert factor_grid(7) == (1, 7)


def test_factor_grid_validation():
    with pytest.raises(ValueError):
        factor_grid(0)


def test_block_shape_covers_grid():
    bx, by = block_shape(X1_GRID, 16)
    px, py = factor_grid(16)
    assert bx * px >= X1_GRID.nx
    assert by * py >= X1_GRID.ny


# -- barotropic solver ----------------------------------------------------------

def test_stencil_apply_matches_dense_laplacian():
    nx, ny = 5, 4
    n = nx * ny
    dense = np.zeros((n, n))
    for i in range(nx):
        for j in range(ny):
            row = i * ny + j
            dense[row, row] = 4.0
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny:
                    dense[row, ii * ny + jj] = -1.0
    rng = np.random.default_rng(23)
    v = rng.normal(size=n)
    assert np.allclose(stencil_apply(v, nx, ny), dense @ v)


def test_solve_barotropic_recovers_solution():
    nx, ny = 12, 10
    rng = np.random.default_rng(29)
    truth = rng.normal(size=nx * ny)
    rhs = stencil_apply(truth, nx, ny)
    solution, iterations = solve_barotropic(rhs, nx, ny, tol=1e-10)
    assert np.allclose(solution, truth, atol=1e-6)
    assert iterations > 0


def test_solve_barotropic_validates_shape():
    with pytest.raises(ValueError):
        solve_barotropic(np.zeros(10), 3, 4)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_barotropic_solver_property(seed):
    nx, ny = 8, 8
    rng = np.random.default_rng(seed)
    truth = rng.normal(size=nx * ny)
    rhs = stencil_apply(truth, nx, ny)
    solution, _ = solve_barotropic(rhs, nx, ny, tol=1e-10)
    assert np.allclose(solution, truth, atol=1e-5)


def test_laplacian_operator_interface():
    op = Laplacian2D(4, 4)
    assert op.shape == (16, 16)
    v = np.ones(16)
    assert (op @ v).shape == (16,)


# -- baroclinic step --------------------------------------------------------------

def test_baroclinic_step_conserves_tracer():
    rng = np.random.default_rng(31)
    tracer = rng.uniform(1.0, 2.0, size=(8, 8, 4))
    stepped = baroclinic_step(tracer, velocity=(0.5, -0.3, 0.1))
    assert total_tracer(stepped) == pytest.approx(total_tracer(tracer))


def test_baroclinic_step_diffuses_peaks():
    tracer = np.zeros((6, 6, 6))
    tracer[3, 3, 3] = 1.0
    stepped = baroclinic_step(tracer, velocity=(0, 0, 0), diffusivity=0.1)
    assert stepped[3, 3, 3] < 1.0
    assert stepped.min() >= 0.0


def test_baroclinic_step_rejects_unstable_cfl():
    with pytest.raises(ValueError):
        baroclinic_step(np.zeros((4, 4, 4)), velocity=(20.0, 0, 0), dt=0.1)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_baroclinic_conservation_property(seed):
    rng = np.random.default_rng(seed)
    tracer = rng.uniform(0.5, 1.5, size=(6, 5, 4))
    velocity = rng.uniform(-1, 1, size=3)
    stepped = baroclinic_step(tracer, velocity, diffusivity=0.02, dt=0.05)
    assert total_tracer(stepped) == pytest.approx(total_tracer(tracer),
                                                  rel=1e-9)


# -- workload -----------------------------------------------------------------------

def test_pop_workload_phases():
    result = run_workload(dmz(), Pop(2, simulated_steps=1))
    assert result.phase_time("baroclinic") > 0
    assert result.phase_time("barotropic") > 0
    # baroclinic dominates (paper: ~10x the barotropic time)
    assert result.phase_time("baroclinic") > 3 * result.phase_time("barotropic")


def test_pop_validation():
    with pytest.raises(ValueError):
        Pop(2, simulated_steps=0)
    with pytest.raises(ValueError):
        Pop(2, solver_coarsening=0)


def test_pop_near_linear_scaling_on_longs():
    """Table 12: both phases scale nearly linearly to 16 cores."""
    spec = longs()
    base = run_workload(spec, Pop(1, simulated_steps=1))
    big = run_workload(spec, Pop(16, simulated_steps=1))
    bc = base.phase_time("baroclinic") / big.phase_time("baroclinic")
    bt = base.phase_time("barotropic") / big.phase_time("barotropic")
    assert bc > 13.0   # paper: 16.11
    assert bt > 10.0   # paper: 14.85


def test_pop_membind_hurts_baroclinic_on_longs():
    """Table 13: membind roughly doubles baroclinic time at 8 tasks."""
    spec = longs()
    t_local = run_workload(spec, Pop(8, simulated_steps=1),
                           AffinityScheme.TWO_MPI_LOCAL)
    t_membind = run_workload(spec, Pop(8, simulated_steps=1),
                             AffinityScheme.TWO_MPI_MEMBIND)
    ratio = (t_membind.phase_time("baroclinic")
             / t_local.phase_time("baroclinic"))
    assert 1.5 < ratio < 3.0  # paper: 184.33 / 84.5 = 2.18
