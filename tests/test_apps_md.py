"""Tests for the MD substrate: particles, force fields, PME, GB, drivers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.md import (
    AMBER_BENCHMARKS,
    BENCHMARK_TABLE,
    LAMMPS_BENCHMARKS,
    AmberSander,
    LammpsBench,
    ParticleSystem,
    bond_forces,
    born_radii,
    brute_force_pairs,
    chain_system,
    decomposition_faces,
    eam_forces,
    gb_energy,
    ghost_atoms,
    lj_forces,
    minimum_image,
    neighbor_pairs,
    pme_grid_size,
    random_system,
    reciprocal_energy,
    spread_charges,
    velocity_verlet,
)
from repro.apps.md.gb import gb_energy_pairwise_reference
from repro.apps.md.pme import ewald_reciprocal_reference
from repro.core import AffinityScheme, run_workload
from repro.machine import dmz, longs


# -- particle systems ------------------------------------------------------

def test_random_system_shapes_and_neutrality():
    system = random_system(10, box=5.0, charged=True)
    assert system.natoms == 10
    assert float(np.sum(system.charges)) == pytest.approx(0.0)
    assert np.all(system.positions >= 0) and np.all(system.positions < 5.0)


def test_random_system_odd_count_still_neutral():
    system = random_system(7, box=5.0, charged=True)
    assert float(np.sum(system.charges)) == pytest.approx(0.0)


def test_particle_system_validation():
    with pytest.raises(ValueError):
        ParticleSystem(np.zeros((3, 2)), np.zeros((3, 3)),
                       np.ones(3), np.zeros(3), box=1.0)
    with pytest.raises(ValueError):
        random_system(5, box=5.0).box  # fine
        ParticleSystem(np.zeros((3, 3)), np.zeros((3, 3)),
                       np.ones(3), np.zeros(3), box=-1.0)


def test_chain_system_bond_topology():
    system, bonds = chain_system(n_chains=3, beads_per_chain=5, box=10.0)
    assert system.natoms == 15
    assert bonds.shape == (12, 2)  # 4 bonds per chain
    # bonds never cross chains
    assert all(j - i == 1 and i // 5 == j // 5 for i, j in bonds)


def test_minimum_image_wraps():
    assert minimum_image(np.array([4.9]), box=5.0)[0] == pytest.approx(-0.1)
    assert minimum_image(np.array([0.3]), box=5.0)[0] == pytest.approx(0.3)


def test_neighbor_pairs_match_brute_force():
    system = random_system(60, box=6.0, seed=3)
    cutoff = 1.5
    fast = neighbor_pairs(system.positions, system.box, cutoff)
    slow = brute_force_pairs(system.positions, system.box, cutoff)
    assert set(map(tuple, fast)) == set(map(tuple, slow))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(10, 80))
def test_neighbor_pairs_property(seed, n):
    system = random_system(n, box=8.0, seed=seed)
    cutoff = 2.0
    fast = neighbor_pairs(system.positions, system.box, cutoff)
    slow = brute_force_pairs(system.positions, system.box, cutoff)
    assert set(map(tuple, fast)) == set(map(tuple, slow))


def test_neighbor_pairs_cutoff_validation():
    system = random_system(10, box=4.0)
    with pytest.raises(ValueError):
        neighbor_pairs(system.positions, system.box, cutoff=3.0)


# -- force fields ---------------------------------------------------------------

def test_lj_forces_newtons_third_law():
    system = random_system(40, box=6.0, seed=5)
    pairs = neighbor_pairs(system.positions, system.box, 2.5)
    forces, energy = lj_forces(system.positions, pairs, system.box)
    # net force vanishes relative to the largest pair force
    scale = max(1.0, float(np.abs(forces).max()))
    assert np.allclose(np.sum(forces, axis=0) / scale, 0.0, atol=1e-12)


def test_lj_two_particles_at_minimum():
    # the LJ minimum sits at r = 2^(1/6) sigma where force vanishes
    r_min = 2.0 ** (1.0 / 6.0)
    positions = np.array([[0.0, 0.0, 0.0], [r_min, 0.0, 0.0]])
    pairs = np.array([[0, 1]])
    forces, _ = lj_forces(positions, pairs, box=10.0)
    assert np.allclose(forces, 0.0, atol=1e-10)


def test_bond_forces_restoring():
    positions = np.array([[0.0, 0.0, 0.0], [1.5, 0.0, 0.0]])
    bonds = np.array([[0, 1]])
    forces, energy = bond_forces(positions, bonds, box=10.0, k=10.0, r0=1.0)
    # stretched bond pulls the particles together
    assert forces[0, 0] > 0 and forces[1, 0] < 0
    assert energy == pytest.approx(10.0 * 0.25)


def test_eam_forces_antisymmetric():
    system = random_system(30, box=5.0, seed=9)
    pairs = neighbor_pairs(system.positions, system.box, 2.0)
    forces, energy = eam_forces(system.positions, pairs, system.box)
    assert np.allclose(np.sum(forces, axis=0), 0.0, atol=1e-9)
    assert energy < 0  # embedding term dominates


def _lattice_system(cells: int = 3, spacing: float = 1.2) -> ParticleSystem:
    """Non-overlapping cubic lattice (stable LJ starting point)."""
    grid = np.arange(cells) * spacing + 0.5
    positions = np.array(np.meshgrid(grid, grid, grid)).T.reshape(-1, 3)
    n = positions.shape[0]
    rng = np.random.default_rng(11)
    return ParticleSystem(
        positions=positions,
        velocities=rng.normal(0, 0.02, size=(n, 3)),
        masses=np.ones(n),
        charges=np.zeros(n),
        box=cells * spacing,
    )


def test_velocity_verlet_conserves_energy():
    system = _lattice_system()

    def force_fn(positions):
        pairs = neighbor_pairs(positions, system.box, 1.7)
        return lj_forces(positions, pairs, system.box, cutoff=1.7)

    _, e_start = velocity_verlet(system, force_fn, dt=0.001, steps=1)
    _, e_end = velocity_verlet(system, force_fn, dt=0.001, steps=100)
    assert e_end == pytest.approx(e_start, rel=0.05, abs=0.05)


def test_velocity_verlet_validation():
    system = random_system(4, box=5.0)
    with pytest.raises(ValueError):
        velocity_verlet(system, lambda p: (np.zeros_like(p), 0.0),
                        dt=-0.1, steps=1)


# -- PME ---------------------------------------------------------------------------

def test_pme_grid_size_powers_of_two():
    assert pme_grid_size(23_558) == 64
    assert pme_grid_size(1) == 8
    assert pme_grid_size(90_906) == 128


def test_spread_charges_conserves_total_charge():
    system = random_system(50, box=5.0, seed=13, charged=True)
    mesh = spread_charges(system.positions, system.charges, system.box, 16)
    assert float(np.sum(mesh)) == pytest.approx(float(np.sum(system.charges)),
                                                abs=1e-9)


def test_reciprocal_energy_matches_direct_ewald():
    """PME mesh energy agrees with the meshless reciprocal sum."""
    rng = np.random.default_rng(17)
    positions = rng.uniform(1.0, 4.0, size=(6, 3))
    charges = np.array([1.0, -1.0, 1.0, -1.0, 1.0, -1.0])
    box = 5.0
    pme = reciprocal_energy(positions, charges, box, grid=32, alpha=0.8)
    exact = ewald_reciprocal_reference(positions, charges, box,
                                       alpha=0.8, kmax=10)
    assert pme == pytest.approx(exact, rel=0.08)


def test_reciprocal_energy_positive_for_single_charge():
    positions = np.array([[2.5, 2.5, 2.5]])
    charges = np.array([1.0])
    assert reciprocal_energy(positions, charges, 5.0, grid=16) > 0


# -- GB ------------------------------------------------------------------------------

def test_born_radii_shrink_with_crowding():
    sparse = np.array([[0.0, 0.0, 0.0], [10.0, 0.0, 0.0]])
    dense = np.array([[0.0, 0.0, 0.0], [0.5, 0.0, 0.0]])
    assert born_radii(dense).mean() < born_radii(sparse).mean()


def test_gb_energy_matches_pairwise_reference():
    rng = np.random.default_rng(19)
    positions = rng.uniform(0, 4, size=(8, 3))
    charges = rng.choice([-1.0, 1.0], size=8)
    radii = np.full(8, 1.4)
    fast = gb_energy(positions, charges, radii)
    slow = gb_energy_pairwise_reference(positions, charges, radii)
    assert fast == pytest.approx(slow, rel=1e-10)


def test_gb_energy_negative_for_net_charge():
    # solvation always stabilizes a charged solute
    positions = np.zeros((1, 3))
    assert gb_energy(positions, np.array([1.0]), np.array([1.5])) < 0


def test_gb_energy_validation():
    with pytest.raises(ValueError):
        gb_energy(np.zeros((1, 3)), np.ones(1), np.ones(1), eps_out=-1)


# -- AMBER driver -------------------------------------------------------------------

def test_amber_benchmark_table_matches_paper_table6():
    rows = {r["Benchmark"]: r for r in BENCHMARK_TABLE}
    assert rows["dhfr"]["Number of atoms"] == 22_930
    assert rows["factor_ix"]["Number of atoms"] == 90_906
    assert rows["gb_mb"]["MD technique"] == "GB"
    assert rows["JAC"]["MD technique"] == "PME"
    assert len(rows) == 5


def test_amber_unknown_benchmark():
    with pytest.raises(ValueError):
        AmberSander("water_box", 2)


def test_amber_pme_has_fft_phase():
    result = run_workload(dmz(), AmberSander("jac", 2, simulated_steps=2))
    assert result.phase_time("fft") > 0
    assert result.phase_time("direct") > 0


def test_amber_gb_has_no_fft_phase():
    result = run_workload(dmz(), AmberSander("gb_mb", 2, simulated_steps=2))
    assert result.phase_time("fft") == 0
    assert result.phase_time("gb") > 0


def test_amber_gb_outscales_pme_at_16():
    """Table 8's headline: GB near-linear, PME saturating."""
    spec = longs()
    def speedup(name):
        t1 = run_workload(spec, AmberSander(name, 1, simulated_steps=4)).wall_time
        t16 = run_workload(spec, AmberSander(name, 16, simulated_steps=4)).wall_time
        return t1 / t16
    assert speedup("gb_mb") > 12.0     # paper: 14.93
    assert 6.0 < speedup("jac") < 11.0  # paper: 7.97


# -- LAMMPS driver ----------------------------------------------------------------

def test_lammps_benchmarks_registered():
    assert set(LAMMPS_BENCHMARKS) == {"lj", "chain", "eam"}
    with pytest.raises(ValueError):
        LammpsBench("tersoff", 2)


def test_decomposition_faces_progression():
    assert decomposition_faces(1) == 0
    assert decomposition_faces(2) == 2
    assert decomposition_faces(4) == 4
    assert decomposition_faces(16) == 6


def test_ghost_atoms_surface_scaling():
    # ghosts per rank shrink slower than 1/p (surface vs volume)
    g2 = ghost_atoms(32_000, 2, shell=1.5)
    g16 = ghost_atoms(32_000, 16, shell=1.5)
    local2, local16 = 32_000 / 2, 32_000 / 16
    assert g16 / local16 > g2 / local2


def test_lammps_eam_two_halo_passes():
    from repro.core.ops import SendRecv

    wl = LammpsBench("eam", 4, simulated_steps=1)
    halos = [op for op in wl.program(0) if isinstance(op, SendRecv)]
    lj = [op for op in LammpsBench("lj", 4, simulated_steps=1).program(0)
          if isinstance(op, SendRecv)]
    assert len(halos) == 2 * len(lj)


def test_lammps_chain_superlinear_on_longs():
    """Table 10: chain exceeds perfect speedup via cache residency."""
    spec = longs()
    t1 = run_workload(spec, LammpsBench("chain", 1, simulated_steps=5)).wall_time
    t16 = run_workload(spec, LammpsBench("chain", 16, simulated_steps=5)).wall_time
    assert t1 / t16 > 16.5  # paper: 19.95


def test_lammps_lj_sublinear_on_longs():
    spec = longs()
    t1 = run_workload(spec, LammpsBench("lj", 1, simulated_steps=5)).wall_time
    t16 = run_workload(spec, LammpsBench("lj", 16, simulated_steps=5)).wall_time
    assert 8.0 < t1 / t16 < 14.0  # paper: 10.65
