"""Smoke tests: the example scripts must stay runnable end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: fast examples run in CI; the omitted ones (md_simulation, ocean_model,
#: placement_study, custom_machine) cover the same code paths but take
#: minutes of full sweeps
FAST_EXAMPLES = ["quickstart.py", "mpi_comparison.py",
                 "bottleneck_analysis.py", "hybrid_programming.py",
                 "characterize_your_app.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    # -W error::DeprecationWarning: examples must use the Session API,
    # never the deprecated shims (those are exercised only in
    # tests/test_deprecations.py)
    result = subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning",
         str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_reports_improvement():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "numactl --cpunodebind" in result.stdout
    assert "improvement" in result.stdout


def test_all_examples_exist():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "placement_study.py", "md_simulation.py",
            "ocean_model.py", "mpi_comparison.py", "hybrid_programming.py",
            "bottleneck_analysis.py", "custom_machine.py",
            "characterize_your_app.py"} <= names
