"""Tests for the content-addressed result cache and the parallel executor.

The load-bearing properties: a cell's key is a pure function of its
content (any input change moves the key), cached results round-trip
bit-identically through both tiers, and the parallel executor returns
exactly what the serial path returns, in the same order.
"""

import pytest

from repro.core import (
    AffinityScheme,
    Compute,
    InfeasibleSchemeError,
    Workload,
    resolve_scheme,
)
from repro.core.cache import (
    ResultCache,
    Uncacheable,
    canonical_token,
    job_key,
)
from repro.core.parallel import JobRequest, run_request, run_requests
from repro.machine import dmz, longs, tiger
from repro.mpi import LAM, OPENMPI
from repro.sim.engine import Engine
from repro.sim.events import Event, Timeout


class TinyCompute(Workload):
    """A cheap deterministic workload for fast cache/executor tests."""

    name = "tiny-cache"

    def __init__(self, ntasks=2, flops=1e7):
        self.ntasks = ntasks
        self.flops = flops

    def program(self, rank):
        yield Compute(flops=self.flops, flop_efficiency=0.5)


# -- key construction --------------------------------------------------------

def test_same_configuration_same_key():
    a = JobRequest(spec=longs(), workload=TinyCompute(4), lock="sysv")
    b = JobRequest(spec=longs(), workload=TinyCompute(4), lock="sysv")
    assert a.key() == b.key()


def test_any_field_change_changes_key():
    base = JobRequest(spec=longs(), workload=TinyCompute(4))
    variants = [
        JobRequest(spec=tiger(), workload=TinyCompute(4)),
        JobRequest(spec=longs(), workload=TinyCompute(8)),
        JobRequest(spec=longs(), workload=TinyCompute(4, flops=2e7)),
        JobRequest(spec=longs(), workload=TinyCompute(4),
                   scheme=AffinityScheme.INTERLEAVE),
        JobRequest(spec=longs(), workload=TinyCompute(4), impl=LAM),
        JobRequest(spec=longs(), workload=TinyCompute(4), lock="usysv"),
        JobRequest(spec=longs(), workload=TinyCompute(4), parked=2),
    ]
    keys = [base.key()] + [v.key() for v in variants]
    assert len(set(keys)) == len(keys)


def test_topology_change_changes_key():
    from dataclasses import replace

    spec = longs()
    smaller = replace(spec, sockets=spec.sockets // 2)
    wl = TinyCompute(4)
    assert (job_key(spec, wl, scheme=AffinityScheme.DEFAULT)
            != job_key(smaller, wl, scheme=AffinityScheme.DEFAULT))


def test_default_impl_normalized_into_key():
    wl = TinyCompute(2)
    implicit = JobRequest(spec=dmz(), workload=wl)
    explicit = JobRequest(spec=dmz(), workload=wl, impl=OPENMPI)
    assert implicit.key() == explicit.key()


def test_canonical_token_rejects_closures():
    with pytest.raises(Uncacheable):
        canonical_token(lambda: None)


def test_canonical_floats_are_exact():
    assert canonical_token(0.1) == ["f", "0.1"]
    assert canonical_token(0.1) != canonical_token(0.1 + 1e-17)


# -- cache round trips -------------------------------------------------------

def test_memory_hit_returns_identical_result(tmp_path):
    cache = ResultCache(directory=tmp_path)
    request = JobRequest(spec=dmz(), workload=TinyCompute(2))
    first = run_request(request, cache=cache)
    second = run_request(request, cache=cache)
    assert second is first
    assert cache.stats.memory_hits == 1
    assert cache.stats.misses == 1


def test_disk_round_trip_is_bit_identical(tmp_path):
    request = JobRequest(spec=longs(), workload=TinyCompute(4))
    writer = ResultCache(directory=tmp_path)
    fresh = run_request(request, cache=writer)
    # A brand-new cache over the same directory only has the disk tier.
    reader = ResultCache(directory=tmp_path)
    cached = run_request(request, cache=reader)
    assert reader.stats.disk_hits == 1
    assert cached == fresh  # dataclass equality: every float bit-equal
    assert cached.wall_time == fresh.wall_time
    assert cached.phase_times == fresh.phase_times


def test_disabled_cache_recomputes(tmp_path):
    cache = ResultCache(directory=tmp_path, enabled=False)
    request = JobRequest(spec=dmz(), workload=TinyCompute(2))
    first = run_request(request, cache=cache)
    second = run_request(request, cache=cache)
    assert first is not second
    assert first == second
    assert cache.stats.lookups == 0


# -- the executor ------------------------------------------------------------

def _sweep_csv(jobs, cache):
    from repro.service import Session

    # An isolated session routes the sweep through its own cache.
    with Session(cache=cache) as session:
        table = session.scheme_sweep(longs(), TinyCompute, (2, 4, 8),
                                     title="executor test", jobs=jobs)
    return table.to_csv()


def test_parallel_sweep_bit_identical_to_serial(tmp_path):
    serial = _sweep_csv(1, ResultCache(directory=tmp_path / "serial"))
    parallel_csv = _sweep_csv(2, ResultCache(directory=tmp_path / "par"))
    assert parallel_csv == serial


def test_run_requests_order_dedup_and_infeasible(tmp_path):
    cache = ResultCache(directory=tmp_path)
    feasible = JobRequest(spec=longs(), workload=TinyCompute(4))
    twin = JobRequest(spec=longs(), workload=TinyCompute(4))
    infeasible = JobRequest(spec=dmz(), workload=TinyCompute(16),
                            scheme=AffinityScheme.ONE_MPI_LOCAL)
    results = run_requests([feasible, infeasible, twin], cache=cache)
    assert results[1] is None
    assert results[0] is not None
    assert results[2] is results[0]  # duplicate computed once
    assert cache.stats.stores == 1


# -- infeasibility as a dedicated error --------------------------------------

def test_resolve_scheme_raises_dedicated_error():
    with pytest.raises(InfeasibleSchemeError):
        resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, dmz(), 16)


def test_infeasible_is_a_value_error():
    # Backward compatibility: older callers catching ValueError still work.
    assert issubclass(InfeasibleSchemeError, ValueError)


def test_bad_ntasks_is_not_infeasibility():
    with pytest.raises(ValueError) as excinfo:
        resolve_scheme(AffinityScheme.DEFAULT, dmz(), 0)
    assert not isinstance(excinfo.value, InfeasibleSchemeError)


# -- engine urgent path and slotted events -----------------------------------

def test_urgent_schedule_callback_single_heap_entry():
    engine = Engine()
    fired = []
    ev = engine.schedule_callback(0.5, fired.append, urgent=True)
    assert len(engine._queue) == 1  # no dead Timeout entry alongside
    engine.run()
    assert fired == [ev]
    assert engine.now == 0.5


def test_urgent_runs_before_normal_at_same_instant():
    engine = Engine()
    order = []
    engine.schedule_callback(1.0, lambda ev: order.append("normal"))
    engine.schedule_callback(1.0, lambda ev: order.append("urgent"),
                             urgent=True)
    engine.run()
    assert order == ["urgent", "normal"]


def test_events_are_slotted():
    engine = Engine()
    assert not hasattr(Event(engine), "__dict__")
    assert not hasattr(Timeout(engine, 1.0), "__dict__")
