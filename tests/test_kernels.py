"""Tests for the functional kernels and their operation-count models."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import blas, cg, fft, hpl, ptrans, randomaccess, stream


# -- STREAM ---------------------------------------------------------------

def test_stream_functional_kernels():
    a = np.arange(10.0)
    b = np.ones(10)
    assert np.allclose(stream.copy(a), a)
    assert np.allclose(stream.scale(a, 2.0), 2 * a)
    assert np.allclose(stream.add(a, b), a + 1)
    assert np.allclose(stream.triad(b, a, 3.0), 1 + 3 * a)


def test_stream_model_counts():
    op = stream.triad_model(1000, passes=2)
    assert op.flops == 4000
    assert op.dram_bytes == 48000
    assert op.reuse == 0.0


def test_stream_model_validation():
    with pytest.raises(ValueError):
        stream.stream_model("saxpyish", 10)
    with pytest.raises(ValueError):
        stream.stream_model("triad", 0)


# -- BLAS --------------------------------------------------------------------

def test_daxpy_functional():
    x, y = np.arange(5.0), np.ones(5)
    assert np.allclose(blas.daxpy(2.0, x, y), 2 * x + 1)
    with pytest.raises(ValueError):
        blas.daxpy(1.0, np.ones(3), np.ones(4))


def test_dgemm_matches_numpy():
    rng = np.random.default_rng(1)
    a, b = rng.normal(size=(12, 7)), rng.normal(size=(7, 9))
    assert np.allclose(blas.dgemm(a, b), a @ b)


def test_dgemm_beta_path():
    rng = np.random.default_rng(2)
    a, b = rng.normal(size=(4, 4)), rng.normal(size=(4, 4))
    c = rng.normal(size=(4, 4))
    out = blas.dgemm(a, b, alpha=2.0, beta=0.5, c=c)
    assert np.allclose(out, 2 * (a @ b) + 0.5 * c)
    with pytest.raises(ValueError):
        blas.dgemm(a, b, beta=1.0)


def test_naive_and_blocked_dgemm_agree_with_numpy():
    rng = np.random.default_rng(3)
    a, b = rng.normal(size=(17, 13)), rng.normal(size=(13, 11))
    assert np.allclose(blas.naive_dgemm(a, b), a @ b)
    assert np.allclose(blas.blocked_dgemm(a, b, block=5), a @ b)


def test_dgemm_shape_validation():
    with pytest.raises(ValueError):
        blas.naive_dgemm(np.ones((2, 3)), np.ones((2, 3)))
    with pytest.raises(ValueError):
        blas.blocked_dgemm(np.ones((2, 2)), np.ones((2, 2)), block=0)


def test_blas_models_reflect_vendor_gap():
    vendor = blas.dgemm_model(1000, vendor=True)
    vanilla = blas.dgemm_model(1000, vendor=False)
    assert vendor.flops == vanilla.flops == 2e9
    assert vendor.flop_efficiency > 2 * vanilla.flop_efficiency
    assert vendor.reuse > vanilla.reuse


def test_daxpy_model_memory_bound_shape():
    op = blas.daxpy_model(10_000, repeats=3)
    # cross-repeat reuse: all but the first sweep can hit in cache
    assert op.reuse == pytest.approx(2 / 3)
    assert op.dram_bytes == pytest.approx(24 * 10_000 * 3)
    single = blas.daxpy_model(10_000, repeats=1)
    assert single.reuse == 0.0


# -- FFT ----------------------------------------------------------------------

@pytest.mark.parametrize("n", [1, 2, 8, 64, 256])
def test_fft_matches_numpy(n):
    rng = np.random.default_rng(4)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    assert np.allclose(fft.fft_radix2(x), np.fft.fft(x))


def test_fft_round_trip():
    rng = np.random.default_rng(5)
    x = rng.normal(size=128) + 1j * rng.normal(size=128)
    assert np.allclose(fft.ifft_radix2(fft.fft_radix2(x)), x)


def test_fft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        fft.fft_radix2(np.ones(12))


@settings(max_examples=20, deadline=None)
@given(exp=st.integers(min_value=0, max_value=9), seed=st.integers(0, 100))
def test_fft_parseval_property(exp, seed):
    """Parseval: energy is conserved up to the 1/N convention."""
    n = 2 ** exp
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    spectrum = fft.fft_radix2(x)
    assert np.sum(np.abs(spectrum) ** 2) / n == pytest.approx(
        np.sum(np.abs(x) ** 2), rel=1e-9
    )


def test_fft_flop_count():
    assert fft.fft_flops(1024) == pytest.approx(5 * 1024 * 10)
    assert fft.fft_flops(1) == 0.0
    with pytest.raises(ValueError):
        fft.fft_flops(0)


def test_fft_model_moderate_reuse():
    op = fft.fft_model(4096)
    assert 0.3 < op.reuse < 0.8  # between STREAM and DGEMM


# -- CG -------------------------------------------------------------------------

def test_cg_solves_spd_system():
    a = cg.random_spd_matrix(80, nonzeros_per_row=6, seed=7)
    rng = np.random.default_rng(8)
    x_true = rng.normal(size=80)
    b = a @ x_true
    x, iterations, residual = cg.conjugate_gradient(a, b, tol=1e-10)
    assert residual < 1e-9
    assert np.allclose(x, x_true, atol=1e-6)
    assert 0 < iterations <= 800


def test_cg_dense_matrix_support():
    a = np.array([[4.0, 1.0], [1.0, 3.0]])
    b = np.array([1.0, 2.0])
    x, _, _ = cg.conjugate_gradient(a, b, tol=1e-12)
    assert np.allclose(a @ x, b)


def test_cg_rejects_indefinite_matrix():
    a = np.array([[1.0, 0.0], [0.0, -1.0]])
    with pytest.raises(ValueError):
        cg.conjugate_gradient(a, np.array([0.0, 1.0]))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=5, max_value=60), seed=st.integers(0, 1000))
def test_cg_converges_on_random_spd_property(n, seed):
    a = cg.random_spd_matrix(n, nonzeros_per_row=4, seed=seed)
    b = np.ones(n)
    x, _, residual = cg.conjugate_gradient(a, b, tol=1e-9, maxiter=50 * n)
    assert residual < 1e-8


def test_cg_iteration_counts():
    counts = cg.cg_iteration_counts(75000, 13, ntasks=8)
    assert counts.rows_local == 9375
    assert counts.nnz_local == 9375 * 13
    assert counts.spmv_flops == 2 * counts.nnz_local
    op = cg.spmv_model(counts)
    assert op.reuse < 0.5  # SpMV is cache-unfriendly
    assert cg.cg_vector_model(counts).flops > 0


def test_cg_counts_validation():
    with pytest.raises(ValueError):
        cg.cg_iteration_counts(100, 5, ntasks=0)
    with pytest.raises(ValueError):
        cg.random_spd_matrix(0)


# -- RandomAccess --------------------------------------------------------------

def test_random_stream_deterministic_nonrepeating_prefix():
    s1 = randomaccess.random_stream(64)
    s2 = randomaccess.random_stream(64)
    assert np.array_equal(s1, s2)
    assert len(np.unique(s1)) == 64  # GF(2) LFSR: no early repeats


def test_random_access_verification_zero_errors():
    assert randomaccess.verify_table(256, 1000) == 0.0


def test_random_access_requires_power_of_two_table():
    with pytest.raises(ValueError):
        randomaccess.random_access_update(np.zeros(100, dtype=np.uint64), 10)


def test_randomaccess_model_is_latency_bound():
    op = randomaccess.randomaccess_model(10_000, table_bytes=2 ** 30)
    assert op.random_accesses == 10_000
    assert op.working_set == 2 ** 30
    with pytest.raises(ValueError):
        randomaccess.randomaccess_model(1, table_bytes=0)


# -- PTRANS ----------------------------------------------------------------------

def test_transpose_add_functional():
    a = np.arange(9.0).reshape(3, 3)
    out = ptrans.transpose_add(a)
    assert np.allclose(out, a.T + a)
    assert np.allclose(out, out.T)  # result is symmetric
    with pytest.raises(ValueError):
        ptrans.transpose_add(np.ones((2, 3)))


def test_exchange_pairs_mirror_structure():
    pairs = ptrans.exchange_pairs(2, 2, blocks_per_dim=4)
    # every rank has blocks; mirrored blocks map to the mirrored owner
    assert sorted(pairs) == [0, 1, 2, 3]
    for rank, blocks in pairs.items():
        for br, bc, partner in blocks:
            assert partner == ptrans.block_owner(bc, br, 2, 2)


def test_ptrans_block_bytes():
    assert ptrans.ptrans_block_bytes(1000, 10) == 8.0 * 100 * 100


def test_ptrans_local_model():
    op = ptrans.ptrans_local_model(1000, 4)
    assert op.flops == pytest.approx(250_000)
    with pytest.raises(ValueError):
        ptrans.ptrans_local_model(0, 4)


# -- HPL --------------------------------------------------------------------------

def test_lu_factor_matches_scipy():
    rng = np.random.default_rng(11)
    a = rng.normal(size=(40, 40)) + 40 * np.eye(40)
    lu, piv = hpl.lu_factor(a.copy(), block=8)
    assert np.allclose(hpl.lu_reconstruct(lu, piv), a, atol=1e-8)
    # cross-check against scipy's factorization of the same matrix
    lu_ref, _piv_ref = scipy.linalg.lu_factor(a)
    assert np.allclose(np.abs(np.diag(lu)), np.abs(np.diag(lu_ref)), atol=1e-8)


def test_lu_factor_pivots_when_needed():
    a = np.array([[0.0, 1.0], [1.0, 0.0]])
    lu, piv = hpl.lu_factor(a)
    assert np.allclose(hpl.lu_reconstruct(lu, piv), a)


def test_lu_factor_rejects_singular():
    with pytest.raises(ValueError):
        hpl.lu_factor(np.zeros((3, 3)))


def test_lu_factor_rejects_non_square():
    with pytest.raises(ValueError):
        hpl.lu_factor(np.ones((2, 3)))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=24), seed=st.integers(0, 500))
def test_lu_round_trip_property(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n)) + n * np.eye(n)
    lu, piv = hpl.lu_factor(a.copy(), block=5)
    assert np.allclose(hpl.lu_reconstruct(lu, piv), a, atol=1e-7)


def test_hpl_flops_and_model():
    assert hpl.hpl_flops(10) == pytest.approx(2 / 3 * 1000 + 200)
    op = hpl.hpl_update_model(5000, 16)
    assert op.reuse > 0.9  # DGEMM-like
    assert hpl.panel_bytes(100, 32) == 8 * 100 * 32
