"""Calibration anchors: the headline numbers EXPERIMENTS.md relies on.

These tests freeze the model's most-cited calibration points so that
future parameter edits that silently break a reproduced result fail
loudly here rather than deep inside a benchmark.
"""

import pytest

from repro.bench.common import bound_spread_affinity, run
from repro.core import AffinityScheme, run_workload
from repro.machine import GB, Machine, dmz, longs, tiger
from repro.workloads import NasCG, StreamTriad, triad_bytes_moved
from repro.apps.pop import Pop


def single_core_stream(spec) -> float:
    workload = StreamTriad(1)
    result = run(spec, workload, affinity=bound_spread_affinity(spec, 1))
    return triad_bytes_moved(workload) / result.phase_time("triad") / GB


def test_longs_single_core_bandwidth_anchor():
    """Paper Section 3.3: 'less than half of the more than 4 GB/s'."""
    assert single_core_stream(longs()) == pytest.approx(1.87, abs=0.05)


def test_small_system_bandwidth_anchor():
    """DMZ/Tiger sustain the 'expected' >3.5 GB/s of a 2-socket Opteron."""
    assert single_core_stream(dmz()) == pytest.approx(3.59, abs=0.05)
    assert single_core_stream(tiger()) == pytest.approx(3.59, abs=0.05)


def test_peak_flops_anchor():
    """Paper Section 2: 'each capable of 4.4 GFlop/s'."""
    assert tiger().socket.core.peak_flops == pytest.approx(4.4e9)
    assert longs().socket.core.peak_flops == pytest.approx(3.6e9)


def test_coherence_factors_anchor():
    assert Machine(dmz()).mem.coherence_factor == pytest.approx(1 / 1.16,
                                                                rel=1e-6)
    assert Machine(longs()).mem.coherence_factor == pytest.approx(
        1 / (1 + 0.175 * 7), rel=1e-6)


def test_nas_cg_longs_2task_anchor():
    """Table 2 anchor: paper 162.81 s, model within 5%."""
    result = run_workload(longs(), NasCG(2), AffinityScheme.DEFAULT)
    assert result.wall_time == pytest.approx(162.81, rel=0.05)


def test_pop_baroclinic_anchor():
    """Table 13 anchor: paper 358.57 s at 2 tasks, model within 2%."""
    result = run_workload(longs(), Pop(2), AffinityScheme.DEFAULT)
    assert result.phase_time("baroclinic") == pytest.approx(358.57, rel=0.02)


def test_intra_socket_copy_advantage_anchor():
    """Section 3.4: 10-13% intra-socket bandwidth benefit."""
    params = dmz().params
    advantage = (params.intra_socket_copy_bandwidth
                 / params.inter_socket_copy_bandwidth - 1.0)
    assert 0.10 < advantage < 0.14


def test_sysv_usysv_gap_anchor():
    """Figure 13: SysV semaphores cost microseconds, spin locks do not."""
    params = dmz().params
    assert params.sysv_lock_cost / params.usysv_lock_cost > 20
