"""Tests for the functional mini-benchmark driver."""

import pytest

from repro.apps.md import run_mini_benchmark


@pytest.mark.parametrize("potential", ["lj", "chain", "eam"])
def test_mini_benchmark_conserves_energy(potential):
    result = run_mini_benchmark(potential, natoms=64, steps=40, dt=0.001)
    assert result.potential == potential
    assert result.natoms > 0
    assert result.drift < 0.08


def test_mini_benchmark_unknown_potential():
    with pytest.raises(ValueError):
        run_mini_benchmark("tersoff")


def test_mini_benchmark_deterministic():
    a = run_mini_benchmark("lj", natoms=27, steps=10, seed=7)
    b = run_mini_benchmark("lj", natoms=27, steps=10, seed=7)
    assert a.final_energy == b.final_energy


def test_mini_benchmark_seed_changes_trajectory():
    a = run_mini_benchmark("lj", natoms=27, steps=10, seed=1)
    b = run_mini_benchmark("lj", natoms=27, steps=10, seed=2)
    assert a.final_energy != b.final_energy


def test_chain_builds_requested_scale():
    result = run_mini_benchmark("chain", natoms=50, steps=5)
    assert result.natoms == 50  # 10 chains x 5 beads
