"""Fault-injection subsystem: plans, scheduler wiring, and effects."""

import json
from pathlib import Path

import pytest

from repro.core.affinity import AffinityScheme
from repro.core.execution import run_workload
from repro.core.parallel import JobRequest
from repro.faults import (
    CacheDegrade,
    CoreSlowdown,
    FaultPlan,
    FaultPlanError,
    LinkDegrade,
    LinkOutage,
    MessageFaults,
    NodeLoss,
    TransportExhaustedError,
    kind_of,
)
from repro.machine import longs, tiger
from repro.numa import PageTable
from repro.numa.policy import LocalAlloc
from repro.workloads import DgemmBench, HpccStream, PingPong


# -- plan specs ------------------------------------------------------------

def test_plan_round_trips_through_dict_and_json(tmp_path):
    plan = FaultPlan(seed=42, faults=(
        LinkDegrade(src=0, dst=1, bandwidth_factor=0.25, latency_factor=2.0,
                    start=0.1, duration=0.5),
        CoreSlowdown(core=3, factor=4.0),
        NodeLoss(node=2, fraction=0.75, fallback=0),
        MessageFaults(drop_prob=0.2, dup_prob=0.05, max_retries=3),
        CacheDegrade(capacity_factor=0.5),
        LinkOutage(src=1, dst=2),
    ))
    again = FaultPlan.from_dict(plan.to_dict())
    assert again == plan

    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan.to_dict()))
    assert FaultPlan.from_json(path) == plan


def test_plan_rejects_unknown_kind_and_bad_params():
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": [{"kind": "meteor_strike"}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": [
            {"kind": "link_degrade", "src": 0, "dst": 1,
             "bandwidth_factor": 0.0}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": [
            {"kind": "core_slowdown", "core": 0, "factor": 0.5}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": [
            {"kind": "node_loss", "node": 1, "fraction": 0.5,
             "fallback": 1}]})
    with pytest.raises(FaultPlanError):
        FaultPlan.from_dict({"faults": [
            {"kind": "message_faults", "drop_prob": 0.8, "dup_prob": 0.3}]})


def test_kind_registry_is_bidirectional():
    fault = LinkOutage(src=0, dst=1)
    assert kind_of(fault) == "link_outage"
    assert not FaultPlan()  # empty plan is falsy
    assert FaultPlan(faults=(fault,))


def test_shipped_ci_plan_loads():
    path = (Path(__file__).resolve().parents[1]
            / "benchmarks" / "faultplans" / "ht_degrade.json")
    plan = FaultPlan.from_json(path)
    assert plan
    kinds = sorted(kind_of(f) for f in plan.faults)
    assert kinds == ["link_degrade", "node_loss"]


# -- sim-plane effects -----------------------------------------------------

def test_healthy_runs_are_untouched_by_the_fault_machinery():
    result = run_workload(longs(), HpccStream(ntasks=4),
                          scheme=AffinityScheme.INTERLEAVE)
    assert result.faults is None
    again = run_workload(longs(), HpccStream(ntasks=4),
                         scheme=AffinityScheme.INTERLEAVE)
    assert result.wall_time == again.wall_time


def test_link_degrade_slows_interleaved_stream():
    healthy = run_workload(longs(), HpccStream(ntasks=4),
                           scheme=AffinityScheme.INTERLEAVE)
    plan = FaultPlan(faults=(LinkDegrade(src=0, dst=1,
                                         bandwidth_factor=0.05),))
    degraded = run_workload(longs(), HpccStream(ntasks=4),
                            scheme=AffinityScheme.INTERLEAVE, faults=plan)
    assert degraded.wall_time > healthy.wall_time * 1.5
    assert degraded.faults is not None
    events = degraded.faults["events"]
    assert events[0]["action"] == "arm"
    assert events[0]["fault"].startswith("link_degrade")


def test_transient_fault_disarms_and_logs_both_transitions():
    plan = FaultPlan(faults=(LinkDegrade(src=0, dst=1,
                                         bandwidth_factor=0.05,
                                         start=0.0, duration=1e-6),))
    result = run_workload(longs(), HpccStream(ntasks=4),
                          scheme=AffinityScheme.INTERLEAVE, faults=plan)
    actions = [e["action"] for e in result.faults["events"]]
    assert actions == ["arm", "disarm"]


def test_link_outage_reroutes_and_slows():
    healthy = run_workload(longs(), HpccStream(ntasks=4),
                           scheme=AffinityScheme.INTERLEAVE)
    out = run_workload(longs(), HpccStream(ntasks=4),
                       scheme=AffinityScheme.INTERLEAVE,
                       faults=FaultPlan(faults=(LinkOutage(src=0, dst=1),)))
    assert out.wall_time > healthy.wall_time


def test_partitioning_outage_is_rejected():
    # tiger has 2 sockets and a single link: cutting it partitions
    with pytest.raises(ValueError):
        run_workload(tiger(), HpccStream(ntasks=2),
                     faults=FaultPlan(faults=(LinkOutage(src=0, dst=1),)))


def test_core_slowdown_hits_only_the_throttled_core():
    spec = longs()
    base = run_workload(spec, DgemmBench(ntasks=2, n=256))
    # default placement puts ranks on cores 2 and 4
    hit = run_workload(spec, DgemmBench(ntasks=2, n=256),
                       faults=FaultPlan(faults=(CoreSlowdown(core=2,
                                                             factor=3.0),)))
    idle = run_workload(spec, DgemmBench(ntasks=2, n=256),
                        faults=FaultPlan(faults=(CoreSlowdown(core=0,
                                                              factor=3.0),)))
    assert hit.wall_time > base.wall_time
    assert idle.wall_time == base.wall_time


def test_node_loss_remaps_traffic_and_slows_local_runs():
    spec = longs()
    base = run_workload(spec, HpccStream(ntasks=4))
    lost = run_workload(spec, HpccStream(ntasks=4),
                        faults=FaultPlan(faults=(
                            NodeLoss(node=1, fraction=0.8, fallback=0),)))
    assert lost.wall_time > base.wall_time


def test_page_table_capacity_fallback_counts_pages():
    table = PageTable(num_nodes=4, node_capacity={0: 2})
    region = table.allocate(0, 4096 * 5, 0, LocalAlloc())
    # first two pages land on node 0; the rest fall back to node 1
    assert region.page_nodes == [0, 0, 1, 1, 1]
    assert table.fallback_pages == 3
    with pytest.raises(MemoryError):
        PageTable(num_nodes=1, node_capacity={0: 1}).allocate(
            0, 4096 * 2, 0, LocalAlloc())


def test_message_faults_retry_then_succeed_deterministically():
    spec = longs()
    clean = run_workload(spec, PingPong(nbytes=65536))
    plan = FaultPlan(seed=11, faults=(MessageFaults(drop_prob=0.3,
                                                    dup_prob=0.1),))
    flaky = run_workload(spec, PingPong(nbytes=65536), faults=plan)
    assert flaky.wall_time > clean.wall_time
    injected = flaky.faults["injected"]
    assert injected["mpi_retries"] > 0
    assert injected["mpi_dropped"] == injected["mpi_retries"]
    # same seed, same machine: bit-identical replay
    again = run_workload(spec, PingPong(nbytes=65536), faults=plan)
    assert again.wall_time == flaky.wall_time
    assert again.faults["injected"] == injected


def test_message_faults_exhaust_retries():
    plan = FaultPlan(seed=3, faults=(MessageFaults(drop_prob=0.95,
                                                   max_retries=1),))
    with pytest.raises(TransportExhaustedError):
        run_workload(longs(), PingPong(nbytes=65536), faults=plan)


def test_fault_counters_surface_when_profiled():
    plan = FaultPlan(seed=11, faults=(MessageFaults(drop_prob=0.3,
                                                    dup_prob=0.1),))
    result = run_workload(longs(), PingPong(nbytes=65536), faults=plan,
                          profile=True)
    totals = result.perf["totals"]
    assert totals["mpi_retries"] > 0
    assert totals["mpi_dropped"] == totals["mpi_retries"]


def test_faulted_cells_get_distinct_cache_keys():
    plan = FaultPlan(faults=(CacheDegrade(capacity_factor=0.5),))
    spec = longs()
    workload = HpccStream(ntasks=4)
    plain = JobRequest(spec=spec, workload=workload)
    faulted = JobRequest(spec=spec, workload=workload, faults=plan)
    assert plain.key() != faulted.key()
    # an empty plan keys identically to no plan at all
    empty = JobRequest(spec=spec, workload=workload, faults=FaultPlan())
    assert empty.key() == plain.key()


def test_plan_validated_against_the_machine():
    with pytest.raises(FaultPlanError):
        run_workload(tiger(), HpccStream(ntasks=2),
                     faults=FaultPlan(faults=(CoreSlowdown(core=99,),)))
    with pytest.raises(FaultPlanError):
        run_workload(tiger(), HpccStream(ntasks=2),
                     faults=FaultPlan(faults=(
                         LinkDegrade(src=0, dst=5, bandwidth_factor=0.5),)))
