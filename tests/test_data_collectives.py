"""Functional verification of the collective algorithms on real data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Machine, dmz, longs
from repro.mpi import MpiWorld
from repro.mpi.data_collectives import (
    allgather_data,
    allreduce_data,
    alltoall_data,
    bcast_data,
    reduce_data,
)
from repro.osmodel import spread


def run_collective(ntasks, per_rank_program):
    """Run one data collective on every rank; returns {rank: result}."""
    spec = longs() if ntasks > 4 else dmz()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, ntasks))
    results = {}

    def program(world, rank):
        results[rank] = yield from per_rank_program(world, rank)

    for r in range(ntasks):
        world.engine.process(program(world, r))
    world.engine.run()
    assert len(results) == ntasks, "a rank deadlocked"
    return results


@pytest.mark.parametrize("ntasks", [1, 2, 3, 4, 8, 16])
def test_allreduce_data_matches_serial_sum(ntasks):
    rng = np.random.default_rng(61)
    inputs = {r: rng.normal(size=6) for r in range(ntasks)}
    expected = sum(inputs.values())
    results = run_collective(
        ntasks, lambda w, r: allreduce_data(w, r, inputs[r]))
    for r in range(ntasks):
        assert np.allclose(results[r], expected), f"rank {r}"


def test_allreduce_data_custom_op():
    inputs = {r: np.array([float(r + 1)]) for r in range(4)}
    results = run_collective(
        4, lambda w, r: allreduce_data(w, r, inputs[r], op=np.maximum))
    for r in range(4):
        assert results[r][0] == 4.0


@pytest.mark.parametrize("ntasks,root", [(4, 0), (4, 2), (8, 5), (3, 1)])
def test_bcast_data_delivers_root_value(ntasks, root):
    payload = np.arange(5.0) * (root + 1)
    results = run_collective(
        ntasks,
        lambda w, r: bcast_data(w, r, payload if r == root else None, root))
    for r in range(ntasks):
        assert np.allclose(results[r], payload)


@pytest.mark.parametrize("ntasks,root", [(4, 0), (8, 3), (5, 4)])
def test_reduce_data_at_root_only(ntasks, root):
    inputs = {r: np.array([1.0, float(r)]) for r in range(ntasks)}
    results = run_collective(
        ntasks, lambda w, r: reduce_data(w, r, inputs[r], root))
    expected = sum(inputs.values())
    assert np.allclose(results[root], expected)
    for r in range(ntasks):
        if r != root:
            assert results[r] is None


@pytest.mark.parametrize("ntasks", [2, 4, 7, 8])
def test_allgather_data_ordered(ntasks):
    inputs = {r: f"block-{r}" for r in range(ntasks)}
    results = run_collective(
        ntasks, lambda w, r: allgather_data(w, r, inputs[r]))
    expected = [inputs[r] for r in range(ntasks)]
    for r in range(ntasks):
        assert results[r] == expected


@pytest.mark.parametrize("ntasks", [2, 4, 8])
def test_alltoall_data_transpose(ntasks):
    """alltoall is a matrix transpose: out[r][s] == in[s][r]."""
    inputs = {r: [f"{r}->{s}" for s in range(ntasks)]
              for r in range(ntasks)}
    results = run_collective(
        ntasks, lambda w, r: alltoall_data(w, r, inputs[r]))
    for r in range(ntasks):
        assert results[r] == [f"{s}->{r}" for s in range(ntasks)]


def test_alltoall_data_validates_length():
    with pytest.raises(ValueError):
        run_collective(4, lambda w, r: alltoall_data(w, r, ["x"]))


@settings(max_examples=10, deadline=None)
@given(ntasks=st.integers(min_value=1, max_value=8),
       seed=st.integers(0, 1000))
def test_allreduce_data_property(ntasks, seed):
    rng = np.random.default_rng(seed)
    inputs = {r: rng.integers(-100, 100, size=4).astype(float)
              for r in range(ntasks)}
    expected = sum(inputs.values())
    results = run_collective(
        ntasks, lambda w, r: allreduce_data(w, r, inputs[r]))
    for r in range(ntasks):
        assert np.allclose(results[r], expected)


def test_data_collectives_cost_time():
    """Data variants charge the same transport costs (time advances)."""
    spec = dmz()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, 4))
    payload = np.zeros(1 << 16)  # 512 KB -> rendezvous territory

    def program(world, rank):
        yield from allreduce_data(world, rank, payload)

    for r in range(4):
        world.engine.process(program(world, r))
    world.engine.run()
    assert world.engine.now > 1e-4  # bulk copies took real simulated time
    assert world.stats.bytes_sent >= 4 * payload.nbytes
