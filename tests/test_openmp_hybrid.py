"""Tests for the OpenMP threading model and hybrid MPI+OpenMP workloads."""

import pytest

from repro.core import AffinityScheme, Compute, JobRunner, Workload, run_workload
from repro.machine import dmz, longs, tiger
from repro.openmp import ThreadTeam, fork_join_cost
from repro.workloads import HybridNasCG, HybridNasFT, NasCG, NasFT, hybrid_affinity


class ThreadedCompute(Workload):
    """One threaded compute op per rank."""

    def __init__(self, ntasks=1, threads=1, **compute_kwargs):
        self.ntasks = ntasks
        self.threads = threads
        self.compute_kwargs = compute_kwargs
        self.name = f"threaded[{threads}]"

    def program(self, rank):
        yield Compute(threads=self.threads, **self.compute_kwargs)


# -- fork/join model ---------------------------------------------------------

def test_fork_join_free_for_one_thread():
    assert fork_join_cost(1) == 0.0


def test_fork_join_grows_with_team():
    assert 0 < fork_join_cost(2) < fork_join_cost(4) < fork_join_cost(16)


def test_fork_join_validation():
    with pytest.raises(ValueError):
        fork_join_cost(0)


def test_thread_team_validation():
    with pytest.raises(ValueError):
        ThreadTeam(0)
    ThreadTeam(2).validate_for(dmz())
    with pytest.raises(ValueError):
        ThreadTeam(3).validate_for(dmz())
    with pytest.raises(ValueError):
        ThreadTeam(2).validate_for(tiger())  # single-core sockets


# -- threaded compute semantics -------------------------------------------------

def test_threads_halve_flop_time():
    spec = dmz()
    flops = 4.4e9
    t1 = run_workload(spec, ThreadedCompute(
        threads=1, flops=flops, flop_efficiency=1.0)).wall_time
    t2 = run_workload(spec, ThreadedCompute(
        threads=2, flops=flops, flop_efficiency=1.0)).wall_time
    assert t2 == pytest.approx(t1 / 2, rel=0.01)


def test_threads_share_memory_link():
    """Two threads streaming on one socket behave like two processes."""
    spec = dmz()
    nbytes = 1e9
    threaded = run_workload(spec, ThreadedCompute(
        threads=2, dram_bytes=nbytes, working_set=nbytes)).wall_time
    two_procs = run_workload(
        spec,
        ThreadedCompute(ntasks=2, threads=1, dram_bytes=nbytes / 2,
                        working_set=nbytes / 2),
        AffinityScheme.TWO_MPI_LOCAL,
    ).wall_time
    assert threaded == pytest.approx(two_procs, rel=0.05)


def test_thread_oversubscription_rejected():
    spec = dmz()
    wl = ThreadedCompute(ntasks=2, threads=2, flops=1e6)
    # two ranks x two threads on a 2-socket x 2-core box is fine when
    # ranks sit on distinct sockets...
    run_workload(spec, wl, AffinityScheme.ONE_MPI_LOCAL)
    # ...but packing both ranks onto one socket oversubscribes it
    with pytest.raises(ValueError):
        run_workload(spec, wl, AffinityScheme.TWO_MPI_LOCAL)


def test_threads_enable_cache_residency():
    """Each thread's slice fits its own L2: traffic factor shrinks."""
    spec = dmz()
    ws = 1.8e6  # above one L2, below two
    base = run_workload(spec, ThreadedCompute(
        threads=1, dram_bytes=ws * 50, working_set=ws, reuse=0.95)).wall_time
    split = run_workload(spec, ThreadedCompute(
        threads=2, dram_bytes=ws * 50, working_set=ws, reuse=0.95)).wall_time
    assert split < base / 2.5  # superlinear within the socket


# -- hybrid workloads --------------------------------------------------------------

def test_hybrid_affinity_one_rank_per_socket():
    spec = longs()
    aff = hybrid_affinity(spec, 8, 2)
    assert aff.ntasks == 8
    assert all(aff.placement.sharers_on_socket(r) == 1 for r in range(8))
    with pytest.raises(ValueError):
        hybrid_affinity(spec, 8, 3)  # more threads than cores per socket


def test_hybrid_workload_wraps_compute_ops():
    wl = HybridNasCG(4, 2, simulated_inner_iters=1)
    ops = list(wl.program(0))
    computes = [op for op in ops if isinstance(op, Compute)]
    assert computes and all(op.threads == 2 for op in computes)
    assert wl.time_scale == NasCG(4, simulated_inner_iters=1).time_scale


def test_hybrid_reduces_messages_vs_pure_mpi():
    spec = longs()
    pure = run_workload(spec, NasCG(16), AffinityScheme.TWO_MPI_LOCAL)
    hybrid = JobRunner(spec, hybrid_affinity(spec, 8, 2)).run(
        HybridNasCG(8, 2))
    assert hybrid.messages < 0.5 * pure.messages
    # and is competitive on wall time (the paper's proposal)
    assert hybrid.wall_time < 1.1 * pure.wall_time


def test_hybrid_ft_runs():
    spec = longs()
    result = JobRunner(spec, hybrid_affinity(spec, 4, 2)).run(
        HybridNasFT(4, 2, simulated_iters=2))
    assert result.wall_time > 0
