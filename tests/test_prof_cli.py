"""Tests for the ``repro-prof`` CLI and the ``--timings`` cache report.

These drive the CLI through its ``main`` entry points the way the
console scripts do, against the small dmz system so the whole file
stays cheap.  The exported JSON is checked against the same schema
validator CI runs on the uploaded artifact.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.bench import cli
from repro.bench.prof import SCHEME_ALIASES, WORKLOADS, main as prof_main
from repro.core import cache as result_cache

REPO_ROOT = Path(__file__).resolve().parents[1]


def _load_schema_validator():
    path = REPO_ROOT / "benchmarks" / "validate_prof_schema.py"
    spec = importlib.util.spec_from_file_location("validate_prof_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    """Point the process-wide cache at a throwaway directory."""
    cache = result_cache.default_cache()
    saved = (cache.enabled, cache.directory, cache.disk)
    result_cache.configure(enabled=True, directory=tmp_path / "cache")
    yield
    result_cache.configure(enabled=saved[0], directory=saved[1],
                           disk=saved[2])


def test_no_command_prints_help(capsys):
    assert prof_main([]) == 2
    assert "repro-prof" in capsys.readouterr().out


def test_list_names_workloads_systems_schemes(capsys):
    assert prof_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in WORKLOADS:
        assert name in out
    for alias in SCHEME_ALIASES:
        assert alias in out
    assert "longs" in out and "dmz" in out


def test_unknown_workload_and_system_exit_2(capsys):
    assert prof_main(["run", "nosuch"]) == 2
    assert "unknown workload" in capsys.readouterr().err
    assert prof_main(["run", "stream", "--system", "nosuch"]) == 2
    assert capsys.readouterr().err != ""


def test_run_prints_counter_tables(capsys):
    assert prof_main(["run", "stream", "--system", "dmz",
                      "--ntasks", "2"]) == 0
    out = capsys.readouterr().out
    assert "Per-core counters" in out
    assert "Region 'triad'" in out
    assert "Derived metrics" in out
    assert "achieved bandwidth" in out


def test_run_json_matches_ci_schema(tmp_path, capsys):
    json_path = tmp_path / "prof.json"
    assert prof_main(["run", "stream", "--system", "dmz", "--ntasks", "2",
                      "--json", str(json_path)]) == 0
    capsys.readouterr()
    doc = json.loads(json_path.read_text())
    validator = _load_schema_validator()
    assert validator.validate(doc) == []
    assert doc["cell"] == {"system": "DMZ", "workload": "stream-triad[2]",
                           "scheme": "Default", "ntasks": 2, "lock": None}
    assert len(doc["perf"]["cores"]) == 2
    assert doc["derived"]["achieved_bandwidth"] > 0
    # the validator's CLI front door agrees
    assert validator.main(["validate_prof_schema.py", str(json_path)]) == 0


def test_run_trace_writes_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert prof_main(["run", "stream", "--system", "dmz", "--ntasks", "2",
                      "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    assert {event["ph"] for event in trace["traceEvents"]} == {"X"}


def test_run_cached_and_uncached_agree(capsys):
    assert prof_main(["run", "dgemm", "--system", "dmz",
                      "--ntasks", "2"]) == 0
    first = capsys.readouterr().out
    assert prof_main(["run", "dgemm", "--system", "dmz",
                      "--ntasks", "2"]) == 0           # cache hit
    second = capsys.readouterr().out
    assert prof_main(["run", "dgemm", "--system", "dmz", "--ntasks", "2",
                      "--no-cache"]) == 0
    third = capsys.readouterr().out
    assert first == second == third


def test_validate_passes_on_dmz(capsys):
    assert prof_main(["validate", "--system", "dmz"]) == 0
    out = capsys.readouterr().out
    assert "validation OK" in out
    assert "counter-derived STREAM bandwidth" in out
    assert "remote-access ratio" in out


def test_bench_timings_reports_cache_traffic(capsys):
    assert cli.main(["tab01", "--timings"]) == 0
    captured = capsys.readouterr()
    assert "Table 1" in captured.out
    assert "per-target wall time and cache traffic:" in captured.err
    assert "hits" in captured.err and "misses" in captured.err
    assert "total" in captured.err
