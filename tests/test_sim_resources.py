"""Unit and property tests for Resource, Store, and BandwidthResource."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BandwidthResource, Engine, Resource, Store


# -- Resource ---------------------------------------------------------------

def test_resource_grants_up_to_capacity():
    eng = Engine()
    res = Resource(eng, capacity=2)
    first, second, third = res.request(), res.request(), res.request()
    assert first.triggered and second.triggered
    assert not third.triggered
    assert res.in_use == 2
    assert res.queue_length == 1


def test_resource_release_grants_fifo():
    eng = Engine()
    res = Resource(eng, capacity=1)
    res.request()
    waiter_a = res.request()
    waiter_b = res.request()
    res.release()
    assert waiter_a.triggered and not waiter_b.triggered
    res.release()
    assert waiter_b.triggered


def test_resource_release_idle_raises():
    eng = Engine()
    with pytest.raises(RuntimeError):
        Resource(eng).release()


def test_resource_bad_capacity():
    with pytest.raises(ValueError):
        Resource(Engine(), capacity=0)


def test_resource_mutual_exclusion_in_processes():
    eng = Engine()
    lock = Resource(eng, capacity=1)
    active = {"count": 0, "max": 0}

    def worker(eng):
        req = lock.request()
        yield req
        active["count"] += 1
        active["max"] = max(active["max"], active["count"])
        yield eng.timeout(1.0)
        active["count"] -= 1
        lock.release()

    for _ in range(5):
        eng.process(worker(eng))
    eng.run()
    assert active["max"] == 1
    assert eng.now == pytest.approx(5.0)


# -- Store --------------------------------------------------------------------

def test_store_put_then_get():
    eng = Engine()
    store = Store(eng)
    store.put("x")
    got = store.get()
    assert got.triggered
    assert got.value == "x"


def test_store_get_blocks_until_put():
    eng = Engine()
    store = Store(eng)
    got = store.get()
    assert not got.triggered
    store.put("y")
    assert got.triggered and got.value == "y"


def test_store_fifo_order():
    eng = Engine()
    store = Store(eng)
    for item in (1, 2, 3):
        store.put(item)
    assert [store.get().value for _ in range(3)] == [1, 2, 3]


def test_store_getters_served_fifo():
    eng = Engine()
    store = Store(eng)
    g1, g2 = store.get(), store.get()
    store.put("first")
    store.put("second")
    assert g1.value == "first"
    assert g2.value == "second"


def test_store_len_counts_items():
    eng = Engine()
    store = Store(eng)
    store.put(1)
    store.put(2)
    assert len(store) == 2


# -- BandwidthResource ---------------------------------------------------------

def _finish_time(events, eng):
    eng.run()
    return [ev.value for ev in events]


def test_bandwidth_single_flow_time():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=100.0)
    ev = pipe.transfer(250.0)
    eng.run()
    assert ev.value == pytest.approx(2.5)


def test_bandwidth_two_flows_share_fairly():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=100.0)
    a = pipe.transfer(100.0)
    b = pipe.transfer(100.0)
    eng.run()
    # each gets 50 B/s while both active -> both finish at t=2
    assert a.value == pytest.approx(2.0)
    assert b.value == pytest.approx(2.0)


def test_bandwidth_short_flow_releases_share():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=100.0)
    small = pipe.transfer(50.0)   # shares 50 B/s -> done at t=1
    big = pipe.transfer(150.0)    # 50 B/s until t=1 (50 B), then 100 B/s
    eng.run()
    assert small.value == pytest.approx(1.0)
    assert big.value == pytest.approx(2.0)


def test_bandwidth_late_joiner():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=100.0)
    results = {}

    def starter(eng):
        results["a"] = yield pipe.transfer(100.0)

    def joiner(eng):
        yield eng.timeout(0.5)
        results["b"] = yield pipe.transfer(100.0)

    eng.process(starter(eng))
    eng.process(joiner(eng))
    eng.run()
    # a: 50 B alone by t=0.5, then 50 B/s -> finishes at 1.5
    assert results["a"] == pytest.approx(1.5)
    # b: 50 B/s from 0.5 to 1.5 (50 B), then 100 B/s for 50 B -> 2.0
    assert results["b"] == pytest.approx(2.0)


def test_bandwidth_weighted_shares():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=90.0)
    heavy = pipe.transfer(120.0, weight=2.0)  # 60 B/s while both active
    light = pipe.transfer(30.0, weight=1.0)   # 30 B/s
    eng.run()
    assert light.value == pytest.approx(1.0)
    # heavy moved 60 B by t=1, then runs alone at 90 B/s: 1 + 60/90
    assert heavy.value == pytest.approx(1.0 + 60.0 / 90.0)


def test_bandwidth_zero_bytes_completes_now():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=10.0)
    ev = pipe.transfer(0.0)
    assert ev.triggered and ev.value == 0.0


def test_bandwidth_rejects_bad_capacity_and_weight():
    eng = Engine()
    with pytest.raises(ValueError):
        BandwidthResource(eng, capacity=0.0)
    pipe = BandwidthResource(eng, capacity=1.0)
    with pytest.raises(ValueError):
        pipe.transfer(10.0, weight=0.0)


def test_bandwidth_total_transferred_accounting():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=10.0)
    pipe.transfer(30.0)
    pipe.transfer(20.0)
    eng.run()
    assert pipe.total_transferred == pytest.approx(50.0)


def test_bandwidth_utilization_full_when_saturated():
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=10.0)
    pipe.transfer(100.0)
    eng.run()
    assert pipe.utilization() == pytest.approx(1.0)


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8),
    capacity=st.floats(min_value=1.0, max_value=1e6),
)
def test_bandwidth_conservation_property(sizes, capacity):
    """Total delivered bytes equal total requested; makespan >= sum/capacity."""
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=capacity)
    events = [pipe.transfer(s) for s in sizes]
    eng.run()
    assert all(ev.triggered and ev.ok for ev in events)
    assert pipe.total_transferred == pytest.approx(sum(sizes), rel=1e-6)
    makespan = max(ev.value for ev in events)
    # flows may complete up to their per-flow tolerance early
    assert makespan >= sum(sizes) / capacity * (1 - 1e-5) - 1e-5


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=10),
    size=st.floats(min_value=10.0, max_value=1e5),
)
def test_bandwidth_equal_flows_finish_together(n, size):
    """n identical simultaneous flows all finish at n*size/capacity."""
    capacity = 1000.0
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=capacity)
    events = [pipe.transfer(size) for _ in range(n)]
    eng.run()
    expected = n * size / capacity
    for ev in events:
        assert ev.value == pytest.approx(expected, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    stagger=st.floats(min_value=0.0, max_value=5.0),
    size=st.floats(min_value=10.0, max_value=1e4),
)
def test_bandwidth_more_contention_never_faster(stagger, size):
    """A flow sharing the pipe never finishes earlier than a solo flow."""
    def run(with_competitor):
        eng = Engine()
        pipe = BandwidthResource(eng, capacity=100.0)
        result = {}

        def main(eng):
            result["t"] = yield pipe.transfer(size)

        def competitor(eng):
            yield eng.timeout(stagger)
            yield pipe.transfer(size)

        eng.process(main(eng))
        if with_competitor:
            eng.process(competitor(eng))
        eng.run()
        return result["t"]

    assert run(True) >= run(False) - 1e-9
