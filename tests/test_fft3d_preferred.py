"""Tests for the 3-D FFT kernel and the --preferred NUMA policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.fft import fft3d, ifft3d
from repro.numa import NumactlConfig, PAGE_SIZE, PageTable, Preferred, parse_numactl


# -- fft3d -----------------------------------------------------------------

def test_fft3d_matches_numpy():
    rng = np.random.default_rng(51)
    x = rng.normal(size=(8, 4, 16)) + 1j * rng.normal(size=(8, 4, 16))
    assert np.allclose(fft3d(x), np.fft.fftn(x))


def test_fft3d_round_trip():
    rng = np.random.default_rng(53)
    x = rng.normal(size=(4, 8, 4)) + 1j * rng.normal(size=(4, 8, 4))
    assert np.allclose(ifft3d(fft3d(x)), x)


def test_fft3d_requires_3d_power_of_two():
    with pytest.raises(ValueError):
        fft3d(np.ones((4, 4)))
    with pytest.raises(ValueError):
        fft3d(np.ones((4, 3, 4)))


@settings(max_examples=10, deadline=None)
@given(ex=st.integers(1, 3), ey=st.integers(1, 3), ez=st.integers(1, 3),
       seed=st.integers(0, 100))
def test_fft3d_property(ex, ey, ez, seed):
    rng = np.random.default_rng(seed)
    shape = (2 ** ex, 2 ** ey, 2 ** ez)
    x = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    assert np.allclose(fft3d(x), np.fft.fftn(x), atol=1e-9)


# -- Preferred policy -----------------------------------------------------------

def test_preferred_all_on_node_without_spill():
    policy = Preferred(node=3)
    assert policy.traffic_distribution(0, 8) == {3: 1.0}
    assert all(policy.place_page(1, p, 8) == 3 for p in range(20))


def test_preferred_spill_spreads_remainder():
    policy = Preferred(node=0, spill_fraction=0.25)
    dist = policy.traffic_distribution(2, 4)
    assert dist[0] == pytest.approx(0.75)
    assert sum(dist.values()) == pytest.approx(1.0)


def test_preferred_page_realization_matches_spill():
    policy = Preferred(node=1, spill_fraction=0.2)
    table = PageTable(num_nodes=4)
    region = table.allocate(0, 2000 * PAGE_SIZE, 0, policy)
    fractions = region.node_fractions()
    assert fractions[1] == pytest.approx(0.8, abs=0.02)


def test_preferred_validation():
    with pytest.raises(ValueError):
        Preferred(node=-1)
    with pytest.raises(ValueError):
        Preferred(node=0, spill_fraction=1.0)
    with pytest.raises(ValueError):
        Preferred(node=9).traffic_distribution(0, 4)


def test_numactl_preferred_round_trip():
    cfg = NumactlConfig(cpunodebind=(0,), preferred=2)
    assert isinstance(cfg.memory_policy(), Preferred)
    command = cfg.command_line()
    assert "--preferred=2" in command
    assert parse_numactl(command.split()[1:]) == cfg


def test_numactl_preferred_exclusive():
    with pytest.raises(ValueError):
        NumactlConfig(preferred=0, localalloc=True)
    with pytest.raises(ValueError):
        NumactlConfig(preferred=1, interleave=())
