"""Tests for ASCII plotting, markdown report writing, and page migration."""

import json

import pytest

from repro.bench.report_writer import to_markdown, write_report
from repro.core import SeriesResult, TableResult
from repro.core.asciiplot import plot, sparkline
from repro.numa import PAGE_SIZE, LocalAlloc, PageTable


def make_series(log_x=True):
    s = SeriesResult(title="demo figure", x_label="bytes", y_label="MB/s",
                     log_x=log_x)
    for i, (x, y) in enumerate([(64, 10.0), (1024, 100.0), (65536, 500.0)]):
        s.add_point("alpha", x, y)
        s.add_point("beta", x, y * 0.5)
    return s


# -- asciiplot --------------------------------------------------------------

def test_plot_contains_markers_and_legend():
    text = plot(make_series())
    assert "o=alpha" in text and "x=beta" in text
    assert "o" in text.splitlines()[1 + 0]  # markers placed somewhere
    assert "x: bytes (log)" in text
    assert "y: MB/s" in text


def test_plot_empty_series():
    empty = SeriesResult(title="none", x_label="x", y_label="y")
    assert plot(empty) == "(empty figure)"


def test_plot_validation():
    with pytest.raises(ValueError):
        plot(make_series(), width=4)
    negative = SeriesResult(title="n", x_label="x", y_label="y")
    negative.add_point("s", 1.0, -1.0)
    with pytest.raises(ValueError):
        plot(negative, log_y=True)


def test_plot_top_row_holds_max():
    text = plot(make_series(), height=8)
    top_line = text.splitlines()[1]
    assert "500" in top_line  # y maximum labels the top row


def test_plot_collision_marker():
    s = SeriesResult(title="c", x_label="x", y_label="y")
    s.add_point("a", 1.0, 1.0)
    s.add_point("b", 1.0, 1.0)  # same cell
    assert "*" in plot(s)


def test_plot_single_point():
    s = SeriesResult(title="one", x_label="x", y_label="y")
    s.add_point("a", 2.0, 3.0)
    text = plot(s)
    assert "one" in text and "o=a" in text
    assert "3" in text.splitlines()[1]  # the lone y value labels the top


def test_plot_skips_non_finite_points():
    s = SeriesResult(title="nan", x_label="x", y_label="y")
    s.add_point("a", 1.0, float("nan"))
    assert plot(s) == "(empty figure)"
    s.add_point("a", 2.0, 5.0)
    text = plot(s)  # the NaN point is dropped, the finite one plotted
    assert "5" in text.splitlines()[1]


# -- sparkline ---------------------------------------------------------------

def test_sparkline_empty_and_single():
    assert sparkline([]) == ""
    assert sparkline([42.0]) == "▁"
    assert sparkline([1.0, 1.0, 1.0]) == "▁▁▁"  # constant: bottom rung


def test_sparkline_trend_and_gaps():
    line = sparkline([0.0, None, float("nan"), 10.0])
    assert line == "▁··█"
    assert sparkline([None, None]) == "··"


def test_sparkline_downsamples_long_series():
    line = sparkline(list(range(1000)), width=10)
    assert len(line) == 10
    assert line[0] == "▁" and line[-1] == "█"


def test_sparkline_validation():
    with pytest.raises(ValueError):
        sparkline([1.0], width=0)


# -- report writer ------------------------------------------------------------

def test_to_markdown_table():
    table = TableResult(title="T", headers=["a", "b"])
    table.add_row(1, 2.5)
    table.notes.append("a note")
    md = to_markdown(table)
    assert "### T" in md
    assert "| a | b |" in md
    assert "| 1 | 2.50 |" in md
    assert "> a note" in md


def test_to_markdown_series_mentions_y_axis():
    md = to_markdown(make_series())
    assert "*y axis: MB/s*" in md


def test_to_markdown_nan_and_none_cells():
    table = TableResult(title="edge", headers=["a", "b", "c"])
    table.add_row(1, float("nan"), None)
    md = to_markdown(table)
    assert "| 1 | nan | — |" in md


def test_to_markdown_empty_series():
    empty = SeriesResult(title="empty", x_label="x", y_label="y")
    md = to_markdown(empty)
    assert "### empty" in md
    assert "| x |" in md  # header row renders even with no points


def test_write_report_empty_results(tmp_path):
    path = tmp_path / "empty.md"
    write_report(str(path), {})
    assert "Reproduced tables and figures" in path.read_text()


def test_write_report(tmp_path):
    path = tmp_path / "report.md"
    table = TableResult(title="T", headers=["a"])
    table.add_row(1)
    write_report(str(path), {"tab99": table, "fig99": make_series()})
    content = path.read_text()
    assert "## `fig99`" in content and "## `tab99`" in content
    assert content.index("fig99") < content.index("tab99")  # sorted


def test_cli_report_flag(tmp_path, capsys):
    from repro.bench.cli import main

    path = tmp_path / "r.md"
    assert main(["tab01", "--report", str(path)]) == 0
    assert path.exists()
    assert "System Configurations" in path.read_text()


# -- migrate_pages -----------------------------------------------------------------

def test_migrate_pages_moves_task_pages():
    table = PageTable(num_nodes=4)
    table.allocate(0, 10 * PAGE_SIZE, toucher_node=1, policy=LocalAlloc())
    table.allocate(9, 10 * PAGE_SIZE, toucher_node=1, policy=LocalAlloc())
    moved = table.migrate_pages(0, from_nodes=[1], to_nodes=[3])
    assert moved == 10
    assert table.task_fractions(0) == {3: 1.0}
    # other tasks untouched
    assert table.task_fractions(9) == {1: 1.0}


def test_migrate_pages_validation():
    table = PageTable(num_nodes=2)
    table.allocate(0, PAGE_SIZE, 0, LocalAlloc())
    with pytest.raises(ValueError):
        table.migrate_pages(0, [0], [0, 1])
    with pytest.raises(ValueError):
        table.migrate_pages(0, [0], [5])


def test_migrate_pages_noop_for_absent_nodes():
    table = PageTable(num_nodes=4)
    table.allocate(0, 5 * PAGE_SIZE, 2, LocalAlloc())
    assert table.migrate_pages(0, [1], [3]) == 0
    assert table.task_fractions(0) == {2: 1.0}


def test_mbind_replaces_region_policy():
    from repro.numa import Interleave, Membind

    table = PageTable(num_nodes=4)
    region = table.allocate(0, 8 * PAGE_SIZE, toucher_node=0,
                            policy=LocalAlloc())
    moved = table.mbind(region, Interleave(), toucher_node=0)
    assert moved == 6  # pages 0 and 4 already sat on node 0
    assert region.node_fractions() == {n: 0.25 for n in range(4)}
    # rebinding to the same layout moves nothing
    assert table.mbind(region, Interleave(), toucher_node=0) == 0


def test_mbind_foreign_region_rejected():
    table_a, table_b = PageTable(num_nodes=2), PageTable(num_nodes=2)
    region = table_a.allocate(0, PAGE_SIZE, 0, LocalAlloc())
    with pytest.raises(ValueError):
        table_b.mbind(region, LocalAlloc(), 0)
