"""Advanced simulated-MPI tests: protocols, fragmentation, matching."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import KB, MB, Machine, dmz, longs
from repro.mpi import LAM, MPICH2, OPENMPI, MpiWorld
from repro.osmodel import Placement, spread


def make_world(spec=None, ntasks=2, **kwargs):
    spec = spec if spec is not None else dmz()
    machine = Machine(spec)
    return MpiWorld(machine, spread(spec, ntasks), **kwargs)


def run_ranks(world, program):
    for r in range(world.size):
        world.engine.process(program(world, r))
    world.engine.run()
    return world.engine.now


# -- non-blocking operations ---------------------------------------------------

def test_isend_irecv_complete():
    world = make_world()
    seen = {}

    def program(world, rank):
        if rank == 0:
            done = world.isend(0, 1, 2 * KB, tag=4, payload="x")
            yield done
        else:
            pending = world.irecv(1, src=0, tag=4)
            msg = yield pending
            seen["payload"] = msg.payload

    run_ranks(world, program)
    assert seen["payload"] == "x"


def test_overlapping_isends_preserve_order():
    world = make_world()
    order = []

    def program(world, rank):
        if rank == 0:
            first = world.isend(0, 1, 128, tag=9, payload="a")
            second = world.isend(0, 1, 128, tag=9, payload="b")
            yield world.engine.all_of([first, second])
        else:
            for _ in range(2):
                msg = yield from world.recv(1, src=0, tag=9)
                order.append(msg.payload)

    run_ranks(world, program)
    assert order == ["a", "b"]


# -- matching edge cases ----------------------------------------------------------

def test_wildcard_recv_matches_any_sender():
    spec = dmz()
    world = make_world(spec, ntasks=3)
    sources = []

    def program(world, rank):
        if rank == 0:
            for _ in range(2):
                msg = yield from world.recv(0)
                sources.append(msg.src)
        else:
            yield world.engine.timeout(rank * 1e-6)
            yield from world.send(rank, 0, 64, tag=rank)

    run_ranks(world, program)
    assert sorted(sources) == [1, 2]


def test_pending_recvs_matched_in_post_order():
    world = make_world()
    results = {}

    def receiver(world):
        first = world.irecv(1, src=0)
        second = world.irecv(1, src=0)
        msg1 = yield first
        msg2 = yield second
        results["order"] = (msg1.payload, msg2.payload)

    def sender(world):
        yield world.engine.timeout(1e-6)
        yield from world.send(0, 1, 32, payload="one")
        yield from world.send(0, 1, 32, payload="two")

    world.engine.process(receiver(world))
    world.engine.process(sender(world))
    world.engine.run()
    assert results["order"] == ("one", "two")


def test_selective_recv_does_not_steal_other_sources():
    spec = dmz()
    world = make_world(spec, ntasks=3)
    got = {}

    def program(world, rank):
        if rank == 0:
            msg2 = yield from world.recv(0, src=2)
            msg1 = yield from world.recv(0, src=1)
            got["first"] = msg2.src
            got["second"] = msg1.src
        else:
            yield from world.send(rank, 0, 64)

    run_ranks(world, program)
    assert got == {"first": 2, "second": 1}


# -- protocol details --------------------------------------------------------------

def test_fragmentation_adds_lock_cost_per_fragment():
    """A 4 MB rendezvous transfer pays ~64 fragment locks under SysV."""
    spec = dmz()

    def one_way(lock):
        world = make_world(spec, lock=lock)

        def program(world, rank):
            if rank == 0:
                yield from world.send(0, 1, 4 * MB)
            else:
                yield from world.recv(1, src=0)

        return run_ranks(world, program)

    frag = spec.params.shm_fragment_bytes
    expected_extra = (4 * MB / frag - 1) * (
        spec.params.sysv_lock_cost - spec.params.usysv_lock_cost)
    measured_extra = one_way("sysv") - one_way("usysv")
    # per-message base locks add a couple more lock-cost deltas
    assert measured_extra == pytest.approx(expected_extra, rel=0.10)


def test_eager_message_has_no_fragment_locks():
    spec = dmz()

    def one_way(lock):
        world = make_world(spec, impl=LAM, lock=lock)

        def program(world, rank):
            if rank == 0:
                yield from world.send(0, 1, 16 * KB)  # within LAM eager
            else:
                yield from world.recv(1, src=0)

        return run_ranks(world, program)

    delta = one_way("sysv") - one_way("usysv")
    per_message_locks = 2  # sender enqueue + receiver dequeue
    expected = per_message_locks * (spec.params.sysv_lock_cost
                                    - spec.params.usysv_lock_cost)
    assert delta == pytest.approx(expected, rel=0.05)


def test_overhead_multiplier_scales_small_messages():
    spec = dmz()

    def one_way(multiplier):
        machine = Machine(spec)
        world = MpiWorld(machine, spread(spec, 2),
                         overhead_multiplier=multiplier)

        def program(world, rank):
            if rank == 0:
                yield from world.send(0, 1, 8)
            else:
                yield from world.recv(1, src=0)

        return run_ranks(world, program)

    assert one_way(2.0) > 1.5 * one_way(1.0)
    with pytest.raises(ValueError):
        MpiWorld(Machine(spec), spread(spec, 2), overhead_multiplier=0.5)


def test_buffer_node_placement_affects_copy_path():
    """A remote send buffer forces traffic over the HT links."""
    spec = dmz()

    def links_moved(buffer_node):
        machine = Machine(spec)
        placement = Placement((0, 1), spec.cores_per_socket)  # same socket
        world = MpiWorld(machine, placement,
                         buffer_nodes={0: buffer_node, 1: buffer_node})

        def program(world, rank):
            if rank == 0:
                yield from world.send(0, 1, 1 * MB)
            else:
                yield from world.recv(1, src=0)

        run_ranks(world, program)
        return sum(l.total_transferred for l in machine.net.links.values())

    assert links_moved(0) == 0.0
    assert links_moved(1) > 0.0


def test_stats_by_rank_bytes():
    world = make_world(ntasks=2)

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, 300)
        else:
            yield from world.recv(1, src=0)

    run_ranks(world, program)
    assert world.stats.by_rank_bytes == {0: 300}


# -- collective properties ------------------------------------------------------------

@settings(max_examples=12, deadline=None)
@given(ntasks=st.integers(min_value=2, max_value=8),
       root=st.integers(min_value=0, max_value=7))
def test_bcast_any_root_property(ntasks, root):
    root %= ntasks
    spec = longs()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, ntasks))
    done = []

    def program(world, rank):
        yield from world.bcast(rank, root, 4 * KB)
        done.append(rank)

    for r in range(ntasks):
        world.engine.process(program(world, r))
    world.engine.run()
    assert sorted(done) == list(range(ntasks))


@settings(max_examples=12, deadline=None)
@given(ntasks=st.integers(min_value=2, max_value=8),
       root=st.integers(min_value=0, max_value=7))
def test_reduce_any_root_property(ntasks, root):
    root %= ntasks
    spec = longs()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, ntasks))
    done = []

    def program(world, rank):
        yield from world.reduce(rank, root, 1 * KB)
        done.append(rank)

    for r in range(ntasks):
        world.engine.process(program(world, r))
    world.engine.run()
    assert sorted(done) == list(range(ntasks))


def test_barrier_synchronizes_staggered_ranks():
    """No rank leaves the barrier before the last one arrives."""
    spec = dmz()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, 4))
    exit_times = {}
    LAST_ARRIVAL = 1e-3

    def program(world, rank):
        yield world.engine.timeout(rank * LAST_ARRIVAL / 3)
        yield from world.barrier(rank)
        exit_times[rank] = world.engine.now

    for r in range(4):
        world.engine.process(program(world, r))
    world.engine.run()
    assert min(exit_times.values()) >= LAST_ARRIVAL


def test_allreduce_bandwidth_term_scales_with_size():
    spec = dmz()

    def time_for(nbytes):
        machine = Machine(spec)
        world = MpiWorld(machine, spread(spec, 4))

        def program(world, rank):
            yield from world.allreduce(rank, nbytes)

        for r in range(4):
            world.engine.process(program(world, r))
        world.engine.run()
        return world.engine.now

    assert time_for(4 * MB) > 5 * time_for(4 * KB)
