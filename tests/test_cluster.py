"""Tests for the cluster subsystem: transport, router, replay.

The load-bearing cluster promises:

* The NDJSON transport survives hostile clients — malformed lines,
  oversized lines, unknown ops, and mid-stream disconnects answer with
  typed wire codes (or end that connection only) and the daemon stays
  up for the next client.
* A stale socket file from a crashed daemon is reclaimed; a live
  daemon on the same path is never clobbered.
* Rendezvous hashing gives every content address a stable home shard
  and fallback order: removing a shard only moves *its* keys.
* The router reroutes around dead shards; only when every shard is
  unreachable does a request fail, with the pre-acceptance
  ``shard_unavailable`` wire code.
* Replay reports honest percentiles and the cluster preserves the
  coalescing guarantee: identical cells collapse onto one simulation.
"""

import json
import os
import socket
import threading

import pytest

from repro.core.cache import ResultCache
from repro.errors import ProtocolError, ShardUnavailableError, from_wire
from repro.cluster import (
    Router,
    load_trace,
    percentile,
    rendezvous_order,
    run_replay,
    shard_for_key,
    trace_from_ledger,
)
from repro.service import Session
from repro.service.daemon import TcpServiceServer, request_over_socket
from repro.service.protocol import encode_line
from repro.service.transport import (
    MAX_LINE_BYTES,
    TcpNdjsonServer,
    format_address,
    parse_address,
    prepare_unix_socket,
    request,
    serve_in_thread,
)

FAST_STREAM = {"workload": "stream", "system": "tiger", "ntasks": 2,
               "scheme": "default", "tier": "fast"}
FAST_CG = {"workload": "cg", "system": "tiger", "ntasks": 2,
           "scheme": "default", "tier": "fast"}


# -- address parsing ---------------------------------------------------------


def test_parse_address_variants():
    assert parse_address("tcp://10.0.0.1:7070") == ("10.0.0.1", 7070)
    assert parse_address("localhost:7070") == ("localhost", 7070)
    assert parse_address(":7070") == ("127.0.0.1", 7070)
    assert parse_address("unix:///run/repro.sock") == "/run/repro.sock"
    assert parse_address("/tmp/x/service.sock") == "/tmp/x/service.sock"
    assert parse_address("service.sock") == "service.sock"
    # a colon with a non-numeric tail is a path, not a port
    assert parse_address("weird:name") == "weird:name"
    assert parse_address(("h", 9)) == ("h", 9)


def test_format_address_forms():
    assert format_address(("127.0.0.1", 7070)) == "127.0.0.1:7070"
    assert format_address("/tmp/s.sock") == "/tmp/s.sock"


# -- stale-socket recovery ---------------------------------------------------


def _leave_stale_socket(path):
    """Bind-and-close: what a crashed daemon leaves behind."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(str(path))
    sock.close()
    assert os.path.exists(path)


def test_prepare_unix_socket_reclaims_stale(tmp_path):
    path = tmp_path / "stale.sock"
    _leave_stale_socket(path)
    prepare_unix_socket(str(path))
    assert not os.path.exists(path)


def test_prepare_unix_socket_refuses_live(tmp_path):
    path = str(tmp_path / "live.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(path)
    listener.listen(1)
    try:
        with pytest.raises(OSError, match="live daemon"):
            prepare_unix_socket(path)
        assert os.path.exists(path)  # the live socket was not clobbered
    finally:
        listener.close()


def test_serve_rebinds_over_stale_socket(tmp_path):
    from repro.service.daemon import ServiceServer

    path = tmp_path / "svc.sock"
    _leave_stale_socket(path)
    with Session(cache=ResultCache(directory=tmp_path / "cache")) as session:
        server = ServiceServer(str(path), session)
        serve_in_thread(server, "rebind-test")
        try:
            reply = request_over_socket(str(path), {"op": "ping"})
            assert reply["status"] == "ok"
        finally:
            server.shutdown()
            server.close()
    assert not os.path.exists(path)


# -- NDJSON protocol error paths --------------------------------------------


@pytest.fixture
def daemon(tmp_path):
    """A real TCP serve daemon on an ephemeral port."""
    session = Session(cache=ResultCache(directory=tmp_path / "cache"),
                      jobs=1)
    server = TcpServiceServer(("127.0.0.1", 0), session)
    serve_in_thread(server, "daemon-test")
    try:
        yield server
    finally:
        server.shutdown()
        server.close()
        session.close()


def test_malformed_json_line_answers_typed_and_keeps_connection(daemon):
    with socket.create_connection(daemon.address, timeout=5.0) as sock:
        stream = sock.makefile("rwb")
        stream.write(b'{"op": nope}\n')
        stream.flush()
        reply = json.loads(stream.readline())
        assert reply["status"] == "error"
        assert reply["code"] == "protocol_error"
        # the connection survives a garbage line: framing is intact
        stream.write(encode_line({"op": "ping"}))
        stream.flush()
        assert json.loads(stream.readline())["status"] == "ok"


def test_oversized_line_rejected_and_connection_dropped(daemon):
    with socket.create_connection(daemon.address, timeout=5.0) as sock:
        sock.sendall(b"x" * (MAX_LINE_BYTES + 16) + b"\n")
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
        reply = json.loads(buffer)
        assert reply["status"] == "error"
        assert reply["code"] == "protocol_error"
        assert "exceeds" in reply["message"]
        # past an unterminated line the stream cannot be re-framed:
        # the server must drop this connection
        try:
            leftover = sock.recv(65536)
        except OSError:
            leftover = b""
        assert leftover == b""
    # ...but only this connection — the daemon still serves
    assert request(daemon.address, {"op": "ping"})["status"] == "ok"


def test_unknown_op_answers_protocol_error(daemon):
    reply = request(daemon.address, {"op": "warble"})
    assert reply["status"] == "error"
    assert reply["code"] == "protocol_error"
    assert "unknown op" in reply["message"]
    assert reply["op"] == "warble"
    assert request(daemon.address, {"op": "ping"})["status"] == "ok"


def test_non_object_line_answers_protocol_error(daemon):
    with socket.create_connection(daemon.address, timeout=5.0) as sock:
        stream = sock.makefile("rwb")
        stream.write(b"[1, 2, 3]\n")
        stream.flush()
        reply = json.loads(stream.readline())
        assert reply["status"] == "error"
        assert reply["code"] == "protocol_error"


def test_midstream_disconnect_leaves_daemon_up(daemon):
    # half a request line, then vanish
    sock = socket.create_connection(daemon.address, timeout=5.0)
    sock.sendall(b'{"op": "pi')
    sock.close()
    # a full request, then vanish before reading the reply
    sock = socket.create_connection(daemon.address, timeout=5.0)
    sock.sendall(encode_line({"op": "stats"}))
    sock.close()
    assert request(daemon.address, {"op": "ping"})["status"] == "ok"


# -- rendezvous hashing ------------------------------------------------------

SHARDS = ["shard-0", "shard-1", "shard-2"]
KEYS = [f"key-{i:03d}" for i in range(120)]


def test_rendezvous_order_is_deterministic_permutation():
    for key in KEYS[:10]:
        order = rendezvous_order(key, SHARDS)
        assert sorted(order) == sorted(SHARDS)
        assert order == rendezvous_order(key, SHARDS)
        assert shard_for_key(key, SHARDS) == order[0]


def test_rendezvous_removal_only_moves_dead_shards_keys():
    homes = {key: shard_for_key(key, SHARDS) for key in KEYS}
    survivors = [name for name in SHARDS if name != "shard-1"]
    for key, home in homes.items():
        new_home = shard_for_key(key, survivors)
        if home != "shard-1":
            assert new_home == home  # survivors keep their keys
        else:  # orphans go to their next-ranked shard
            assert new_home == rendezvous_order(key, SHARDS)[1]


def test_rendezvous_spreads_keys_across_shards():
    counts = {name: 0 for name in SHARDS}
    for key in KEYS:
        counts[shard_for_key(key, SHARDS)] += 1
    # no empty shard, no shard hoarding everything
    assert min(counts.values()) > 0
    assert max(counts.values()) < len(KEYS)


# -- router ------------------------------------------------------------------


class FakeShard:
    """A protocol-shaped shard that records what it served."""

    def __init__(self, name):
        self.name = name
        self.served = 0
        self.server = TcpNdjsonServer(("127.0.0.1", 0), self.handle)
        serve_in_thread(self.server, name)

    @property
    def address(self):
        return self.server.address

    def handle(self, message):
        op = message.get("op")
        if op == "ping":
            return {"status": "ok", "op": "ping", "session": self.name}
        if op == "stats":
            return {"status": "ok", "op": "stats",
                    "stats": {"accepted": self.served, "coalesced": 0,
                              "cache_hits": 0},
                    "gauges": {}}
        if op == "submit":
            self.served += 1
            return {"status": "ok", "op": "submit", "source": "computed",
                    "served_by": self.name}
        if op == "batch":
            self.served += len(message["cells"])
            return {"status": "ok", "op": "batch",
                    "results": [{"status": "ok", "op": "submit",
                                 "served_by": self.name}
                                for _ in message["cells"]]}
        return {"status": "ok", "op": op}

    def kill(self):
        self.server.shutdown()
        self.server.close()


@pytest.fixture
def fake_cluster():
    shards = [FakeShard(f"s{i}") for i in range(3)]
    router = Router([(s.name, s.address) for s in shards],
                    retries=1, backoff_s=0.01, request_timeout_s=5.0)
    try:
        yield shards, router
    finally:
        router.stop()
        for shard in shards:
            try:
                shard.kill()
            except Exception:
                pass


def test_router_routes_to_home_shard(fake_cluster):
    shards, router = fake_cluster
    key = router._cell_key(FAST_STREAM)
    home = shard_for_key(key, [s.name for s in shards])
    for _ in range(3):  # identical cells always land on the home shard
        reply = router.handle_message({"op": "submit", "cell": FAST_STREAM})
        assert reply["status"] == "ok"
        assert reply["served_by"] == home
        assert reply["shard"] == home
    assert router.routed == 3
    assert router.rerouted == 0


def test_route_op_reports_order_without_side_effects(fake_cluster):
    shards, router = fake_cluster
    reply = router.handle_message({"op": "route", "cell": FAST_STREAM})
    assert reply["status"] == "ok"
    names = [s.name for s in shards]
    assert reply["shard"] == shard_for_key(reply["key"], names)
    assert sorted([reply["shard"]] + reply["fallbacks"]) == sorted(names)
    assert all(reply["alive"].values())
    assert sum(s.served for s in shards) == 0  # nothing was forwarded


def test_router_reroutes_around_dead_shard(fake_cluster):
    shards, router = fake_cluster
    key = router._cell_key(FAST_STREAM)
    names = [s.name for s in shards]
    home = shard_for_key(key, names)
    next(s for s in shards if s.name == home).kill()
    reply = router.handle_message({"op": "submit", "cell": FAST_STREAM})
    assert reply["status"] == "ok"
    # the key moved to its next-ranked shard, not a random survivor
    assert reply["shard"] == rendezvous_order(key, names)[1]
    assert router.rerouted == 1
    # after the failure the dead shard is demoted: the next submit
    # goes straight to the fallback with no extra forward failure
    failures = router.forward_failures
    reply = router.handle_message({"op": "submit", "cell": FAST_STREAM})
    assert reply["status"] == "ok"
    assert router.forward_failures == failures


def test_router_all_shards_dead_is_typed_preacceptance_failure(fake_cluster):
    shards, router = fake_cluster
    for shard in shards:
        shard.kill()
    router.retries = 0  # keep the exhausted-pass walk fast
    reply = router.handle_message({"op": "submit", "cell": FAST_STREAM})
    assert reply["status"] == "error"
    assert reply["code"] == "shard_unavailable"
    assert reply["op"] == "submit"
    assert isinstance(from_wire(reply), ShardUnavailableError)
    assert router.unroutable == 1


def test_router_batch_keeps_order_and_answers_malformed_inline(fake_cluster):
    shards, router = fake_cluster
    bad = {"workload": "no-such-workload", "system": "tiger", "ntasks": 2}
    reply = router.handle_message(
        {"op": "batch", "cells": [dict(FAST_STREAM), bad, dict(FAST_CG)]})
    assert reply["status"] == "ok"
    results = reply["results"]
    assert len(results) == 3
    assert results[0]["status"] == "ok"
    assert results[2]["status"] == "ok"
    # the malformed cell is answered in place, never forwarded
    assert results[1]["status"] == "error"
    assert results[1]["code"] == "unknown_name"
    names = [s.name for s in shards]
    for cell, result in ((FAST_STREAM, results[0]), (FAST_CG, results[2])):
        home = shard_for_key(router._cell_key(cell), names)
        assert result["served_by"] == home


def test_router_batch_rejects_empty(fake_cluster):
    _, router = fake_cluster
    reply = router.handle_message({"op": "batch", "cells": []})
    assert reply["status"] == "error"
    assert reply["code"] == "protocol_error"


def test_router_health_check_tracks_liveness(fake_cluster):
    shards, router = fake_cluster
    assert router.check_health() == {s.name: True for s in shards}
    shards[0].kill()
    health = router.check_health()
    assert health[shards[0].name] is False
    assert health[shards[1].name] is True


# -- replay ------------------------------------------------------------------


def test_percentile_nearest_rank():
    assert percentile([], 0.99) == 0.0
    assert percentile([7.0], 0.5) == 7.0
    values = [float(v) for v in range(1, 101)]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 1.0) == 100.0
    assert percentile(values, 0.50) == 51.0   # nearest rank, not interp
    assert percentile(values, 0.99) == 99.0


def test_load_trace_envelopes_comments_and_bare_cells(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        "# comment\n"
        '{"t": 0.5, "cell": {"workload": "stream"}}\n'
        "\n"
        '{"workload": "cg"}\n')
    trace = load_trace(str(path))
    assert trace == [{"t": 0.5, "cell": {"workload": "stream"}},
                     {"t": 0.0, "cell": {"workload": "cg"}}]


def test_load_trace_empty_raises(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("# nothing here\n")
    with pytest.raises(ValueError, match="no requests"):
        load_trace(str(path))


def test_trace_from_ledger_picks_newest_serve_traffic(tmp_path):
    records = [
        {"tool": "serve", "run_id": "old", "started_at": "2026-01-01T00:00Z",
         "traffic": {"recorded": [{"t": 0.0, "cell": {"workload": "cg"}}]}},
        {"tool": "bench", "run_id": "b", "started_at": "2026-01-02T00:00Z"},
        {"tool": "serve", "run_id": "new", "started_at": "2026-01-03T00:00Z",
         "traffic": {"recorded": [
             {"t": 0.1, "cell": {"workload": "stream"}}]}},
    ]
    ledger = tmp_path / "ledger.jsonl"
    ledger.write_text("".join(json.dumps(r) + "\n" for r in records))
    trace = trace_from_ledger(tmp_path)
    assert trace == [{"t": 0.1, "cell": {"workload": "stream"}}]
    old = trace_from_ledger(tmp_path, run_id="old")
    assert old[0]["cell"] == {"workload": "cg"}
    with pytest.raises(ValueError, match="no serve ledger record"):
        trace_from_ledger(tmp_path, run_id="absent")


def test_replay_preserves_coalescing_cluster_wide(tmp_path):
    """Two real shards over one shared store: 6 requests, 2 simulations."""
    store_dir = tmp_path / "store"
    sessions, servers, shards = [], [], []
    for i in range(2):
        session = Session(cache=ResultCache(directory=store_dir), jobs=1)
        server = TcpServiceServer(("127.0.0.1", 0), session)
        serve_in_thread(server, f"shard-{i}")
        sessions.append(session)
        servers.append(server)
        shards.append((f"shard-{i}", server.address))
    router = Router(shards, retries=1, backoff_s=0.02,
                    request_timeout_s=60.0)
    front = TcpNdjsonServer(("127.0.0.1", 0), router.handle_message)
    serve_in_thread(front, "router-front")
    try:
        trace = [{"t": 0.0, "cell": dict(cell)}
                 for cell in (FAST_STREAM, FAST_CG) * 3]
        report = run_replay(front.address, trace, rate=0.0, clients=4,
                            timeout=60.0)
        assert report["errors"] == 0
        assert report["ok"] == 6
        # exactly one simulation per unique cell; every duplicate
        # collapsed onto it (in-flight coalesce or shared-store hit)
        assert report["sources"].get("computed", 0) == 2
        collapsed = (report["sources"].get("coalesced", 0)
                     + report["sources"].get("cache", 0))
        assert collapsed == 4
        assert report["shards_alive"] == 2
        assert sum(report["per_shard_utilization"].values()) \
            == pytest.approx(1.0)
        assert report["latency_p99_ms"] >= report["latency_p50_ms"] > 0
    finally:
        front.shutdown()
        front.close()
        router.stop()
        for server in servers:
            server.shutdown()
            server.close()
        for session in sessions:
            session.close()
