"""Tests for the NAS EP/MG extensions and the Chrome trace export."""

import json

import pytest

from repro.core import (
    AffinityScheme,
    JobRunner,
    resolve_scheme,
    run_workload,
    to_chrome_trace,
)
from repro.machine import dmz, longs
from repro.workloads import CLASS_B_EP, CLASS_B_MG, NasEP, NasMG


# -- NAS EP -----------------------------------------------------------------

def test_ep_class_b_constant():
    assert CLASS_B_EP["pairs"] == 2 ** 30


def test_ep_scales_linearly():
    """EP is the control: near-perfect scaling everywhere."""
    spec = longs()
    t1 = run_workload(spec, NasEP(1)).wall_time
    t16 = run_workload(spec, NasEP(16), AffinityScheme.TWO_MPI_LOCAL).wall_time
    assert t1 / t16 > 15.0


def test_ep_placement_insensitive():
    """No scheme should move EP by more than a few percent."""
    spec = longs()
    times = []
    for scheme in (AffinityScheme.TWO_MPI_LOCAL,
                   AffinityScheme.TWO_MPI_MEMBIND,
                   AffinityScheme.INTERLEAVE):
        times.append(run_workload(spec, NasEP(8), scheme).wall_time)
    assert max(times) < 1.1 * min(times)


# -- NAS MG ---------------------------------------------------------------------

def test_mg_class_b_constant():
    assert CLASS_B_MG["grid"] == 256


def test_mg_divisibility_check():
    with pytest.raises(ValueError):
        NasMG(7)
    with pytest.raises(ValueError):
        NasMG(4, simulated_iters=0)


def test_mg_vcycle_structure():
    """A V-cycle visits the finest level twice, the coarsest once."""
    from repro.core.ops import Compute

    wl = NasMG(4, simulated_iters=1)
    phases = [op.phase for op in wl.program(0) if isinstance(op, Compute)]
    levels = CLASS_B_MG["levels"]
    # down-sweep visits every level once, up-sweep all but the coarsest
    assert phases.count("level0") == 2
    assert phases.count("level1") == 2
    assert phases.count("coarse") == 2 * (levels - 2) - 1


def test_mg_scales_but_below_ep():
    spec = longs()
    def speedup(workload_cls):
        t1 = run_workload(spec, workload_cls(1)).wall_time
        t16 = run_workload(spec, workload_cls(16),
                           AffinityScheme.TWO_MPI_LOCAL).wall_time
        return t1 / t16
    mg = speedup(NasMG)
    ep = speedup(NasEP)
    assert 4.0 < mg < ep  # latency-bound coarse levels cap MG


def test_mg_placement_sensitive_unlike_ep():
    spec = longs()
    local = run_workload(spec, NasMG(8), AffinityScheme.TWO_MPI_LOCAL)
    membind = run_workload(spec, NasMG(8), AffinityScheme.TWO_MPI_MEMBIND)
    assert membind.wall_time > 1.2 * local.wall_time


# -- Chrome trace export --------------------------------------------------------

def test_chrome_trace_export():
    spec = dmz()
    affinity = resolve_scheme(AffinityScheme.DEFAULT, spec, 2)
    runner = JobRunner(spec, affinity, trace=True)
    workload = NasEP(2)
    runner.run(workload)
    payload = json.loads(to_chrome_trace(runner.machine.tracer,
                                         time_scale=workload.time_scale))
    events = payload["traceEvents"]
    assert events
    assert {e["tid"] for e in events} == {0, 1}
    assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)
    assert any(e["name"] == "Compute" for e in events)


def test_chrome_trace_empty_tracer():
    from repro.sim import Tracer

    payload = json.loads(to_chrome_trace(Tracer()))
    assert payload["traceEvents"] == []
