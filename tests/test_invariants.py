"""Cross-cutting model invariants, property-tested with random workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AffinityScheme, run_workload
from repro.machine import MB, dmz, longs
from repro.workloads import SyntheticWorkload


def synthetic(ntasks, ops, steps=1, simulated=None):
    return SyntheticWorkload(name="prop", ntasks=ntasks, ops=ops,
                             steps=steps, simulated_steps=simulated)


compute_op = st.fixed_dictionaries({
    "kind": st.just("compute"),
    "flops": st.floats(min_value=0, max_value=1e9),
    "dram_bytes": st.floats(min_value=0, max_value=5e8),
    "working_set": st.floats(min_value=1e4, max_value=1e9),
    "reuse": st.floats(min_value=0.0, max_value=1.0),
})

comm_op = st.one_of(
    st.fixed_dictionaries({
        "kind": st.just("allreduce"),
        "nbytes": st.integers(min_value=0, max_value=1 << 20),
    }),
    st.fixed_dictionaries({
        "kind": st.just("halo"),
        "nbytes": st.integers(min_value=0, max_value=1 << 20),
    }),
)

ops_list = st.lists(st.one_of(compute_op, comm_op), min_size=1, max_size=4)


@settings(max_examples=20, deadline=None)
@given(ops=ops_list, ntasks=st.sampled_from([1, 2, 4, 8]))
def test_determinism_property(ops, ntasks):
    """Identical inputs produce bit-identical simulated times."""
    t_a = run_workload(longs(), synthetic(ntasks, ops),
                       AffinityScheme.DEFAULT).wall_time
    t_b = run_workload(longs(), synthetic(ntasks, ops),
                       AffinityScheme.DEFAULT).wall_time
    assert t_a == t_b


@settings(max_examples=20, deadline=None)
@given(ops=ops_list, ntasks=st.sampled_from([2, 4, 8]))
def test_time_nonnegative_and_finite(ops, ntasks):
    for scheme in (AffinityScheme.DEFAULT, AffinityScheme.INTERLEAVE):
        result = run_workload(longs(), synthetic(ntasks, ops), scheme)
        assert result.wall_time >= 0
        assert result.wall_time < float("inf")
        assert all(t <= result.wall_time + 1e-12 for t in result.rank_times)


@settings(max_examples=15, deadline=None)
@given(
    ops=ops_list,
    flops=st.floats(min_value=1e9, max_value=5e9),
)
def test_time_scale_linearity_property(ops, flops):
    """Simulating k steps and scaling gives the same total (up to the
    amortization of the one-off opening/closing barriers)."""
    ops = ops + [{"kind": "compute", "flops": flops}]
    one = run_workload(dmz(), synthetic(2, ops, steps=6, simulated=2))
    other = run_workload(dmz(), synthetic(2, ops, steps=6, simulated=3))
    assert one.wall_time == pytest.approx(other.wall_time, rel=0.01)


@settings(max_examples=15, deadline=None)
@given(
    dram=st.floats(min_value=50 * MB, max_value=500 * MB),
    reuse=st.floats(min_value=0.0, max_value=0.5),
)
def test_membind_never_beats_localalloc_memory_bound(dram, reuse):
    """For memory-dominated work the hotspot scheme cannot win."""
    ops = [{"kind": "compute", "dram_bytes": dram,
            "working_set": 1e9, "reuse": reuse}]
    local = run_workload(longs(), synthetic(8, ops),
                         AffinityScheme.TWO_MPI_LOCAL).wall_time
    membind = run_workload(longs(), synthetic(8, ops),
                           AffinityScheme.TWO_MPI_MEMBIND).wall_time
    assert membind >= local * 0.999


@settings(max_examples=15, deadline=None)
@given(extra=st.floats(min_value=1e7, max_value=1e9))
def test_more_work_never_faster(extra):
    """Adding flops to a program can only increase its runtime."""
    base_ops = [{"kind": "compute", "flops": 1e8}]
    more_ops = [{"kind": "compute", "flops": 1e8 + extra}]
    t_base = run_workload(dmz(), synthetic(2, base_ops)).wall_time
    t_more = run_workload(dmz(), synthetic(2, more_ops)).wall_time
    assert t_more >= t_base


@settings(max_examples=10, deadline=None)
@given(nbytes=st.integers(min_value=1, max_value=1 << 22))
def test_message_size_monotone(nbytes):
    """A bigger allreduce payload never completes faster."""
    small = run_workload(dmz(), synthetic(
        4, [{"kind": "allreduce", "nbytes": nbytes}])).wall_time
    big = run_workload(dmz(), synthetic(
        4, [{"kind": "allreduce", "nbytes": 2 * nbytes}])).wall_time
    assert big >= small * 0.999
