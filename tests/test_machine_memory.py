"""Tests for the cache, memory, and interconnect models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import GB, MB, CacheModel, CoreSpec, Machine, dmz, longs, tiger
from repro.machine.cache import traffic_factor


# -- cache model ---------------------------------------------------------------

def test_traffic_factor_no_reuse_pays_full():
    assert traffic_factor(100 * MB, 1 * MB, reuse=0.0) == pytest.approx(1.0)


def test_traffic_factor_resident_reuse_pays_floor():
    assert traffic_factor(0.5 * MB, 1 * MB, reuse=1.0) == pytest.approx(0.02)


def test_traffic_factor_partial_residency():
    # half the working set resident, full reuse -> half the traffic
    assert traffic_factor(2 * MB, 1 * MB, reuse=1.0) == pytest.approx(0.5)


def test_traffic_factor_validation():
    with pytest.raises(ValueError):
        traffic_factor(1.0, 1.0, reuse=1.5)
    with pytest.raises(ValueError):
        traffic_factor(-1.0, 1.0, reuse=0.5)


@settings(max_examples=100, deadline=None)
@given(
    ws=st.floats(min_value=1.0, max_value=1e10),
    cache=st.floats(min_value=1.0, max_value=1e8),
    reuse=st.floats(min_value=0.0, max_value=1.0),
)
def test_traffic_factor_bounds_property(ws, cache, reuse):
    f = traffic_factor(ws, cache, reuse)
    assert 0.02 <= f <= 1.0


@settings(max_examples=100, deadline=None)
@given(
    cache=st.floats(min_value=1.0, max_value=1e8),
    reuse=st.floats(min_value=0.0, max_value=1.0),
    ws_small=st.floats(min_value=1.0, max_value=1e9),
    growth=st.floats(min_value=1.0, max_value=100.0),
)
def test_traffic_factor_monotone_in_working_set(cache, reuse, ws_small, growth):
    """Shrinking the working set never increases DRAM traffic."""
    small = traffic_factor(ws_small, cache, reuse)
    large = traffic_factor(ws_small * growth, cache, reuse)
    assert small <= large + 1e-12


def test_cache_model_capacity_is_l1_plus_l2():
    core = CoreSpec(frequency_hz=2e9)
    cm = CacheModel(core)
    assert cm.capacity == core.l2_bytes + core.l1d_bytes
    assert cm.fits(core.l2_bytes)
    assert not cm.fits(10 * core.l2_bytes)


# -- memory system -----------------------------------------------------------

def test_coherence_factor_small_vs_ladder():
    """Longs derates bandwidth much harder than the 2-socket systems."""
    small = Machine(dmz())
    big = Machine(longs())
    assert big.mem.coherence_factor < small.mem.coherence_factor
    # paper: best single-core bandwidth on 8 sockets < half of ~4+ GB/s
    assert big.mem.controller_capacity < 2.1 * GB
    assert small.mem.controller_capacity > 3.0 * GB


def test_stream_local_traffic_time():
    m = Machine(dmz())
    ev = m.mem.stream(from_socket=0, traffic={0: 1 * GB})
    m.engine.run()
    assert ev.triggered and ev.ok
    expected = 1 * GB / m.mem.controller_capacity
    assert m.engine.now == pytest.approx(expected, rel=1e-6)


def test_stream_two_sharers_halve_bandwidth():
    m = Machine(dmz())
    m.mem.stream(0, {0: 1 * GB})
    m.mem.stream(0, {0: 1 * GB})
    m.engine.run()
    solo = 1 * GB / m.mem.controller_capacity
    assert m.engine.now == pytest.approx(2 * solo, rel=1e-6)


def test_stream_remote_slower_than_local():
    def run(traffic_node):
        m = Machine(dmz())
        m.mem.stream(0, {traffic_node: 1 * GB})
        m.engine.run()
        return m.engine.now

    assert run(1) > run(0)


def test_stream_remote_consumes_ht_links():
    m = Machine(dmz())
    m.mem.stream(0, {1: 1 * GB})
    m.engine.run()
    moved = sum(link.total_transferred for link in m.net.links.values())
    assert moved == pytest.approx(1 * GB, rel=1e-6)


def test_stream_empty_traffic_completes_immediately():
    m = Machine(dmz())
    ev = m.mem.stream(0, {})
    assert ev.triggered


def test_access_latency_grows_with_hops():
    m = Machine(longs())
    lat_local = m.mem.access_latency(0, 0)
    lat_far = m.mem.access_latency(0, 7)
    assert lat_far > lat_local
    hops = m.net.hops(0, 7)
    params = m.spec.params
    assert lat_far == pytest.approx(params.dram_latency + hops * params.hop_latency)


def test_access_latency_contention():
    m = Machine(dmz())
    assert m.mem.access_latency(0, 0, extra_sharers=3) > m.mem.access_latency(0, 0)


def test_expected_latency_weighted_average():
    m = Machine(dmz())
    mixed = m.mem.expected_latency(0, {0: 0.5, 1: 0.5})
    assert m.mem.access_latency(0, 0) < mixed < m.mem.access_latency(0, 1)


def test_expected_latency_empty_distribution_raises():
    m = Machine(dmz())
    with pytest.raises(ValueError):
        m.mem.expected_latency(0, {})


def test_ideal_stream_bandwidth_decreases_with_sharers():
    m = Machine(dmz())
    b1 = m.mem.ideal_stream_bandwidth(0, 0, sharers_on_controller=1)
    b2 = m.mem.ideal_stream_bandwidth(0, 0, sharers_on_controller=2)
    assert b2 == pytest.approx(b1 / 2)


# -- interconnect ----------------------------------------------------------------

def test_interconnect_transfer_time_single_hop():
    m = Machine(dmz())
    ev = m.net.transfer(0, 1, 3.2 * GB)
    m.engine.run()
    assert m.engine.now == pytest.approx(1.0, rel=1e-6)


def test_interconnect_multi_hop_concurrent_links():
    """A multi-hop transfer is limited by the slowest link, not the sum."""
    m = Machine(longs())
    src, dst = 0, 3  # 3 rail hops on the top row
    assert m.net.hops(src, dst) == 3
    m.net.transfer(src, dst, 3.2 * GB)
    m.engine.run()
    assert m.engine.now == pytest.approx(1.0, rel=1e-6)


def test_interconnect_same_socket_immediate():
    m = Machine(longs())
    ev = m.net.transfer(2, 2, 1e9)
    assert ev.triggered


def test_interconnect_congested_rung():
    """Two transfers crossing the same link take twice as long."""
    m = Machine(longs())
    # both 0->4 and 4->0? choose same direction to share a directed link
    m.net.transfer(0, 4, 3.2 * GB)
    m.net.transfer(0, 4, 3.2 * GB)
    m.engine.run()
    assert m.engine.now == pytest.approx(2.0, rel=1e-6)


def test_path_latency_scales_with_hops():
    m = Machine(longs())
    lat1 = m.net.path_latency(0, 4)
    lat4 = m.net.path_latency(0, 7)
    assert lat4 == pytest.approx(4 * lat1)
