"""Tests for the extension features: render, numastat, minimize, IMB extras."""

import numpy as np
import pytest

from repro.apps.md import lj_forces, neighbor_pairs, steepest_descent
from repro.core import AffinityScheme, run_workload
from repro.machine import describe, distance_table, dmz, hypothetical, longs
from repro.numa import (
    FirstTouch,
    Interleave,
    LocalAlloc,
    Membind,
    PAGE_SIZE,
    PageTable,
    numastat,
)
from repro.workloads import ImbAllreduce, ImbBcast, ImbSendRecv


# -- machine rendering ---------------------------------------------------------

def test_describe_longs_structure():
    text = describe(longs())
    assert "8 sockets" in text and "16 cores" in text
    assert "Socket 7" in text
    assert "1.8 GHz" in text
    assert "diameter: 4 hops" in text
    assert "node distances:" in text


def test_describe_effective_bandwidth_visible():
    text = describe(longs())
    assert "1.87 GB/s" in text  # the coherence-derated controller
    assert "3.59 GB/s" in describe(dmz())


def test_distance_table_symmetric_diagonal():
    text = distance_table(dmz())
    lines = [l for l in text.splitlines() if ":" in l and "distances" not in l]
    assert lines[0].split(":")[1].split() == ["10", "20"]
    assert lines[1].split(":")[1].split() == ["20", "10"]


def test_describe_custom_machine():
    spec = hypothetical("future", sockets=4, cores_per_socket=4,
                        frequency_ghz=2.6, topology="crossbar")
    text = describe(spec)
    assert "16 cores" in text
    assert "2.6 GHz" in text


# -- numastat -------------------------------------------------------------------

def test_numastat_local_allocations_hit():
    table = PageTable(num_nodes=4)
    table.allocate(0, 10 * PAGE_SIZE, toucher_node=1, policy=LocalAlloc())
    stats = numastat(table, {0: 1})
    assert stats[1].numa_hit == 10
    assert stats[1].local_node == 10
    assert stats[0].total_pages == 0


def test_numastat_membind_shows_misses():
    table = PageTable(num_nodes=4)
    table.allocate(0, 10 * PAGE_SIZE, toucher_node=2,
                   policy=Membind(nodes=(0, 1)))
    stats = numastat(table, {0: 2})
    assert stats[0].numa_miss == 5
    assert stats[1].numa_miss == 5
    assert stats[2].numa_hit == 0


def test_numastat_interleave_counter():
    table = PageTable(num_nodes=4)
    table.allocate(0, 8 * PAGE_SIZE, toucher_node=0, policy=Interleave())
    stats = numastat(table, {0: 0})
    assert sum(s.interleave_hit for s in stats.values()) == 8
    assert stats[0].numa_hit == 2  # this task's local share


def test_numastat_requires_task_mapping():
    table = PageTable(num_nodes=2)
    table.allocate(5, PAGE_SIZE, 0, FirstTouch())
    with pytest.raises(ValueError):
        numastat(table, {})


def test_numastat_conserves_pages():
    table = PageTable(num_nodes=4)
    for task, node in ((0, 0), (1, 3)):
        table.allocate(task, 25 * PAGE_SIZE, node, Interleave())
    stats = numastat(table, {0: 0, 1: 3})
    assert sum(s.total_pages for s in stats.values()) == 50


# -- energy minimization ------------------------------------------------------------

def _lj_force_fn(box):
    def force_fn(positions):
        pairs = neighbor_pairs(positions, box, 1.8)
        return lj_forces(positions, pairs, box, cutoff=1.8)
    return force_fn


def test_steepest_descent_reduces_energy():
    rng = np.random.default_rng(41)
    box = 6.0
    # slightly perturbed lattice: relaxation must lower the energy
    grid = np.arange(4) * 1.4 + 0.3
    positions = np.array(np.meshgrid(grid, grid, grid)).T.reshape(-1, 3)
    positions += rng.normal(0, 0.05, positions.shape)
    force_fn = _lj_force_fn(box)
    _, e_start = force_fn(positions)
    relaxed, e_end, iterations = steepest_descent(
        positions, force_fn, steps=150, box=box)
    assert e_end < e_start
    assert iterations > 1


def test_steepest_descent_stops_at_minimum():
    # two particles at the LJ minimum distance: forces ~0, no movement
    r_min = 2.0 ** (1 / 6)
    positions = np.array([[1.0, 1.0, 1.0], [1.0 + r_min, 1.0, 1.0]])
    force_fn = _lj_force_fn(10.0)
    relaxed, _e, iterations = steepest_descent(positions, force_fn,
                                               steps=50, box=10.0,
                                               force_tolerance=1e-8)
    assert np.allclose(relaxed, positions, atol=1e-5)


def test_steepest_descent_validation():
    with pytest.raises(ValueError):
        steepest_descent(np.zeros((1, 3)), lambda p: (p, 0.0), steps=0)


def test_steepest_descent_monotone_energy_property():
    """Energy after k+m steps never exceeds energy after k steps."""
    rng = np.random.default_rng(43)
    box = 5.0
    positions = rng.uniform(1, 4, size=(12, 3))
    force_fn = _lj_force_fn(box)
    _, e20, _ = steepest_descent(positions, force_fn, steps=20, box=box)
    _, e60, _ = steepest_descent(positions, force_fn, steps=60, box=box)
    assert e60 <= e20 + 1e-12


# -- extra IMB benchmarks --------------------------------------------------------------

def test_imb_sendrecv_runs():
    result = run_workload(dmz(), ImbSendRecv(4, 8192, reps=5))
    assert result.phase_time("sendrecv") > 0
    assert result.bytes_sent == 4 * 5 * 8192


def test_imb_allreduce_latency_grows_with_ranks():
    spec = longs()
    t2 = run_workload(spec, ImbAllreduce(2, 8, reps=10),
                      AffinityScheme.ONE_MPI_LOCAL).phase_time("allreduce")
    t8 = run_workload(spec, ImbAllreduce(8, 8, reps=10),
                      AffinityScheme.ONE_MPI_LOCAL).phase_time("allreduce")
    assert t8 > t2


def test_imb_bcast_root_validation():
    with pytest.raises(ValueError):
        ImbBcast(4, 1024, root=4)
    result = run_workload(dmz(), ImbBcast(4, 4096, reps=5))
    assert result.phase_time("bcast") > 0


def test_imb_extra_validation():
    with pytest.raises(ValueError):
        ImbSendRecv(1, 100)
    with pytest.raises(ValueError):
        ImbAllreduce(2, -1)
