"""Pluggable execution backends: parity, wire spelling, isolation.

The redesign's core promise: where a cell runs (threads, processes, a
remote shard) never changes *what* it computes — results are
byte-identical and the backend never leaks into the cache content
address.  These tests pin that, plus the remote wire spelling
(`wire_cell_for`) and per-cell failure isolation.
"""

import json

import pytest

from repro.backends import (
    ProcessBackend,
    RemoteBackend,
    ThreadBackend,
    resolve_backend,
    set_default_backend,
)
from repro.core.affinity import AffinityScheme
from repro.core.cache import ResultCache
from repro.core.parallel import JobRequest, run_requests, take_failures
from repro.errors import ProtocolError
from repro.machine import longs, tiger
from repro.service.protocol import cell_from_wire, handle_request
from repro.service.registry import resolve_workload, wire_cell_for
from repro.service.session import Session
from repro.service.transport import make_server, serve_in_thread


@pytest.fixture(autouse=True)
def _clean_state():
    take_failures()
    set_default_backend(None)
    yield
    take_failures()
    set_default_backend(None)


def _cells():
    """A small mixed batch: two systems, two schemes, one infeasible."""
    return [
        JobRequest(spec=longs(), workload=resolve_workload("stream", 4),
                   scheme=AffinityScheme.DEFAULT),
        JobRequest(spec=longs(), workload=resolve_workload("stream", 4),
                   scheme=AffinityScheme.INTERLEAVE),
        JobRequest(spec=tiger(), workload=resolve_workload("stream", 2),
                   scheme=AffinityScheme.DEFAULT),
        # 16 ranks under ONE_MPI on tiger does not fit: infeasible
        JobRequest(spec=tiger(), workload=resolve_workload("stream", 16),
                   scheme=AffinityScheme.ONE_MPI_LOCAL),
    ]


def _canon(results):
    """Results as a comparable JSON string (None = infeasible dash)."""
    return json.dumps([r.to_dict() if r is not None else None
                       for r in results], sort_keys=True)


def _run_with(backend, tmp_path, sub):
    cache = ResultCache(directory=tmp_path / sub)
    try:
        return run_requests(_cells(), cache=cache, jobs=2,
                            backend=backend)
    finally:
        backend.close()
        take_failures()


# -- parity ------------------------------------------------------------------

def test_thread_and_process_backends_are_byte_identical(tmp_path):
    via_threads = _run_with(ThreadBackend(), tmp_path, "threads")
    via_processes = _run_with(ProcessBackend(), tmp_path, "processes")
    assert _canon(via_threads) == _canon(via_processes)


def test_remote_backend_matches_local_byte_for_byte(tmp_path):
    via_threads = _run_with(ThreadBackend(), tmp_path, "threads")

    shard = Session(name="shard-test",
                    cache=ResultCache(directory=tmp_path / "shard"))
    server = make_server(("127.0.0.1", 0),
                         lambda m: handle_request(shard, m),
                         server_name="shard-test")
    serve_in_thread(server, "backend-parity")
    backend = RemoteBackend(f"127.0.0.1:{server.address[1]}")
    try:
        via_remote = run_requests(
            _cells(), cache=ResultCache(directory=tmp_path / "remote"),
            jobs=2, backend=backend)
        take_failures()
        assert _canon(via_remote) == _canon(via_threads)
        # the connection really negotiated the binary protocol
        assert backend.protocol() >= 3
        info = backend.server_info()
        assert info and info.get("server") == "shard-test"
        assert backend.healthy()
    finally:
        backend.close()
        server.shutdown()
        server.close()
        shard.close()


def test_backend_never_in_the_cache_key(tmp_path):
    """One warm cache serves every backend: keys are backend-free."""
    cache_dir = tmp_path / "shared"
    first = run_requests(_cells(), cache=ResultCache(directory=cache_dir),
                         jobs=2, backend=ThreadBackend())
    warm = ResultCache(directory=cache_dir)
    second = run_requests(_cells(), cache=warm, jobs=2,
                          backend=ProcessBackend())
    assert _canon(first) == _canon(second)
    # every feasible cell was a hit; only the infeasible one (which is
    # never stored) re-dispatched
    assert warm.stats.disk_hits == 3 and warm.stats.misses == 1
    take_failures()


# -- wire spelling -----------------------------------------------------------

def test_wire_cell_for_round_trips_the_cache_key():
    for request in _cells():
        cell = wire_cell_for(request)
        rebuilt = cell_from_wire(cell)
        assert rebuilt.to_job().key() == request.key()


def test_wire_cell_for_rejects_inexpressible_cells():
    from repro.core.affinity import resolve_scheme

    spec = longs()
    workload = resolve_workload("stream", 4)
    explicit = resolve_scheme(AffinityScheme.DEFAULT, spec, 4)
    with pytest.raises(ProtocolError):
        wire_cell_for(JobRequest(spec=spec, workload=workload,
                                 affinity=explicit))
    with pytest.raises(ProtocolError):
        wire_cell_for(JobRequest(spec=spec, workload=workload,
                                 profile=True))


def test_remote_isolates_inexpressible_cells_per_cell(tmp_path):
    """A cell with no wire spelling fails alone; the batch survives."""
    from repro.core.affinity import resolve_scheme

    shard = Session(name="shard-iso",
                    cache=ResultCache(directory=tmp_path / "shard"))
    server = make_server(("127.0.0.1", 0),
                         lambda m: handle_request(shard, m),
                         server_name="shard-iso")
    serve_in_thread(server, "backend-iso")
    backend = RemoteBackend(f"127.0.0.1:{server.address[1]}")
    spec = longs()
    workload = resolve_workload("stream", 4)
    good = JobRequest(spec=spec, workload=workload)
    bad = JobRequest(spec=spec, workload=workload,
                     affinity=resolve_scheme(AffinityScheme.DEFAULT,
                                             spec, 4))
    try:
        results = run_requests([good, bad],
                               cache=ResultCache(directory=tmp_path / "c"),
                               backend=backend)
        assert results[0] is not None and results[0].wall_time > 0
        assert results[1] is None
        failures = take_failures()
        assert len(failures) == 1
        assert "wire spelling" in failures[0].message
    finally:
        backend.close()
        server.shutdown()
        server.close()
        shard.close()


# -- selection / plumbing ----------------------------------------------------

def test_resolve_backend_spellings():
    threads = resolve_backend("threads:3")
    assert isinstance(threads, ThreadBackend) and threads.capacity() == 3
    processes = resolve_backend("processes:2")
    assert isinstance(processes, ProcessBackend)
    assert processes.capacity() == 2
    remote = resolve_backend("remote:127.0.0.1:9")
    assert isinstance(remote, RemoteBackend)
    passthrough = resolve_backend(threads)
    assert passthrough is threads
    for spec in ("warp", "remote:", "threads:none"):
        with pytest.raises(ValueError):
            resolve_backend(spec)
    for backend in (threads, processes, remote):
        backend.close()


def test_session_accepts_backend_and_reports_gauges(tmp_path):
    with Session(cache=ResultCache(directory=tmp_path),
                 backend="threads:2") as session:
        from repro.service import RunRequest
        result = session.run(RunRequest(
            system=longs(), workload=resolve_workload("stream", 4)))
        assert result.ok
        gauges = session.gauges()
        assert gauges.get("backend_submitted", 0) >= 1
        assert gauges.get("backend_completed", 0) >= 1
        assert gauges.get("backend_inflight", 0) == 0


def test_backend_accounting_counts_failures():
    backend = ThreadBackend()
    try:
        # an unregistered in-memory workload still executes locally
        futures = backend.submit_cells(
            [JobRequest(spec=tiger(),
                        workload=resolve_workload("stream", 16),
                        scheme=AffinityScheme.ONE_MPI_LOCAL)])
        status, _ = futures[0].result()
        assert status == "infeasible"
        gauges = backend.gauges()
        assert gauges["backend_submitted"] == 1
        assert gauges["backend_completed"] == 1
        assert gauges["backend_inflight"] == 0
    finally:
        backend.close()
