"""Tests for post-run analysis and timeline rendering."""

import pytest

from repro.core import (
    AffinityScheme,
    Allreduce,
    Compute,
    JobRunner,
    Workload,
    analyze,
    render_timeline,
    resolve_scheme,
)
from repro.machine import GB, dmz, longs
from repro.sim import Tracer


class MixedWorkload(Workload):
    name = "mixed"

    def __init__(self, ntasks=2, mem_heavy=False):
        self.ntasks = ntasks
        self.mem_heavy = mem_heavy

    def program(self, rank):
        if self.mem_heavy:
            yield Compute(dram_bytes=2 * GB, working_set=2 * GB)
        else:
            yield Compute(flops=5e9, flop_efficiency=0.9)
        yield Allreduce(nbytes=1024)


def run_with_runner(spec, workload, scheme=AffinityScheme.TWO_MPI_LOCAL,
                    trace=False):
    affinity = resolve_scheme(scheme, spec, workload.ntasks)
    runner = JobRunner(spec, affinity, trace=trace)
    return runner, runner.run(workload)


# -- analysis -------------------------------------------------------------------

def test_analyze_memory_bound_classification():
    runner, result = run_with_runner(dmz(), MixedWorkload(2, mem_heavy=True))
    report = analyze(runner, result)
    assert report.classify() == "memory"
    node, util = report.hottest_controller
    assert util > 0.5


def test_analyze_compute_bound_classification():
    runner, result = run_with_runner(dmz(), MixedWorkload(2, mem_heavy=False))
    report = analyze(runner, result)
    assert report.classify() == "compute"


def test_analyze_fractions_sane():
    runner, result = run_with_runner(dmz(), MixedWorkload(2))
    report = analyze(runner, result)
    assert 0.0 < report.category_fractions["compute"] <= 1.0
    assert "comm" in report.category_fractions


def test_analyze_reports_links_on_remote_traffic():
    spec = longs()
    runner, result = run_with_runner(spec, MixedWorkload(4, mem_heavy=True),
                                     AffinityScheme.INTERLEAVE)
    report = analyze(runner, result)
    _edge, util = report.hottest_link
    assert util > 0.0


def test_analyze_before_run_raises():
    spec = dmz()
    affinity = resolve_scheme(AffinityScheme.DEFAULT, spec, 2)
    runner = JobRunner(spec, affinity)
    with pytest.raises(ValueError):
        analyze(runner, None)  # engine has not advanced


def test_report_to_table_renders():
    runner, result = run_with_runner(dmz(), MixedWorkload(2, mem_heavy=True))
    text = analyze(runner, result).to_table().to_text()
    assert "memory controller 0" in text
    assert "memory-bound" in text


# -- timeline --------------------------------------------------------------------

def test_timeline_requires_trace():
    assert "no op-level trace" in render_timeline(Tracer(enabled=True))


def test_timeline_renders_lanes():
    runner, result = run_with_runner(dmz(), MixedWorkload(2), trace=True)
    text = render_timeline(runner.machine.tracer)
    assert "rank   0" in text and "rank   1" in text
    assert "#" in text  # compute glyph present


def test_timeline_marks_communication():
    class CommHeavy(Workload):
        name = "commheavy"
        ntasks = 2

        def program(self, rank):
            for _ in range(3):
                yield Compute(flops=1e8, flop_efficiency=0.9)
                yield Allreduce(nbytes=4 << 20)

    runner, result = run_with_runner(dmz(), CommHeavy(), trace=True)
    text = render_timeline(runner.machine.tracer)
    assert "~" in text


def test_timeline_width_validation():
    with pytest.raises(ValueError):
        render_timeline(Tracer(), width=5)


def test_timeline_scales_reported_horizon():
    runner, result = run_with_runner(dmz(), MixedWorkload(2), trace=True)
    text_raw = render_timeline(runner.machine.tracer, time_scale=1.0)
    text_scaled = render_timeline(runner.machine.tracer, time_scale=10.0)
    assert text_raw.splitlines()[0] != text_scaled.splitlines()[0]
