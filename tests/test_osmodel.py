"""Tests for placement strategies and the scheduler model."""

import pytest

from repro.machine import dmz, longs, tiger
from repro.osmodel import (
    Placement,
    SchedulerModel,
    one_per_socket,
    packed,
    preferred_socket_order,
    spread,
    two_per_socket,
)


def test_placement_rejects_duplicate_cores():
    with pytest.raises(ValueError):
        Placement((0, 0), cores_per_socket=2)


def test_placement_socket_lookup():
    p = Placement((0, 2, 5), cores_per_socket=2)
    assert p.socket_of_rank(0) == 0
    assert p.socket_of_rank(1) == 1
    assert p.socket_of_rank(2) == 2
    assert p.sockets_in_use() == [0, 1, 2]


def test_placement_sharers():
    p = Placement((0, 1, 2), cores_per_socket=2)
    assert p.sharers_on_socket(0) == 2  # ranks 0,1 on socket 0
    assert p.sharers_on_socket(2) == 1


def test_preferred_order_ladder_prefers_center():
    order = preferred_socket_order(longs())
    # central columns (1, 2 in each row) come before corner sockets
    assert set(order[:4]) == {1, 2, 5, 6}
    assert set(order[4:]) == {0, 3, 4, 7}


def test_preferred_order_pair_trivial():
    assert preferred_socket_order(dmz()) == [0, 1]


def test_spread_one_core_per_socket_first():
    spec = dmz()
    p = spread(spec, 2)
    assert p.sockets_in_use() == [0, 1]
    assert p.sharers_on_socket(0) == 1


def test_spread_then_second_cores():
    spec = dmz()
    p = spread(spec, 4)
    assert p.sockets_in_use() == [0, 1]
    assert p.sharers_on_socket(0) == 2


def test_packed_fills_socket_first():
    spec = dmz()
    p = packed(spec, 2)
    assert len(p.sockets_in_use()) == 1
    assert p.sharers_on_socket(0) == 2


def test_one_per_socket_longs_central():
    spec = longs()
    p = one_per_socket(spec, 4)
    assert sorted(p.sockets_in_use()) == [1, 2, 5, 6]
    assert all(p.sharers_on_socket(r) == 1 for r in range(4))


def test_one_per_socket_capacity():
    with pytest.raises(ValueError):
        one_per_socket(dmz(), 3)


def test_two_per_socket_fills_pairs():
    spec = longs()
    p = two_per_socket(spec, 8)
    assert len(p.sockets_in_use()) == 4
    assert all(p.sharers_on_socket(r) == 2 for r in range(8))


def test_two_per_socket_rejects_single_core_machines():
    with pytest.raises(ValueError):
        two_per_socket(tiger(), 2)


def test_spread_rejects_oversubscription():
    with pytest.raises(ValueError):
        spread(dmz(), 5)
    with pytest.raises(ValueError):
        spread(dmz(), 0)


def test_scheduler_default_placement_unbound():
    sched = SchedulerModel(dmz())
    p = sched.default_placement(2)
    assert not p.bound
    assert len(p.sockets_in_use()) == 2  # balancer spreads


def test_scheduler_parked_processes_counted():
    sched = SchedulerModel(dmz())
    p = sched.default_placement(2, parked=2)
    assert p.ntasks == 2
    with pytest.raises(ValueError):
        sched.default_placement(3, parked=2)


def test_scheduler_remote_fraction_grows_with_parked():
    sched = SchedulerModel(dmz())
    assert sched.remote_fraction(parked=2) > sched.remote_fraction(parked=0)
    assert sched.remote_fraction(parked=100) <= 0.9


def test_tiger_low_migration_noise():
    # the XD-1 co-scheduling kernel pins effectively
    assert SchedulerModel(tiger()).remote_fraction() < SchedulerModel(longs()).remote_fraction()


def test_oversubscription_penalty():
    sched = SchedulerModel(dmz())
    assert sched.oversubscription_penalty(1) == 1.0
    assert sched.oversubscription_penalty(3) == 3.0
    with pytest.raises(ValueError):
        sched.oversubscription_penalty(0)
