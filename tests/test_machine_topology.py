"""Tests for machine topology, specs, and system presets."""

import networkx as nx
import pytest

from repro.machine import (
    SYSTEM_TABLE,
    CoreSpec,
    MachineSpec,
    Machine,
    SocketSpec,
    all_systems,
    build_socket_graph,
    by_name,
    dmz,
    ladder_positions,
    longs,
    tiger,
)


def test_core_peak_flops():
    core = CoreSpec(frequency_hz=2.2e9, flops_per_cycle=2.0)
    assert core.peak_flops == pytest.approx(4.4e9)  # "capable of 4.4 GFlop/s"


def test_tiger_matches_table1():
    spec = tiger()
    assert spec.sockets == 2
    assert spec.socket.cores_per_socket == 1
    assert spec.total_cores == 2
    assert spec.socket.core.frequency_hz == pytest.approx(2.2e9)


def test_dmz_matches_table1():
    spec = dmz()
    assert spec.sockets == 2
    assert spec.socket.cores_per_socket == 2
    assert spec.total_cores == 4
    assert spec.socket.core.frequency_hz == pytest.approx(2.2e9)


def test_longs_matches_table1():
    spec = longs()
    assert spec.sockets == 8
    assert spec.socket.cores_per_socket == 2
    assert spec.total_cores == 16
    assert spec.socket.core.frequency_hz == pytest.approx(1.8e9)
    assert spec.topology == "ladder"


def test_by_name_case_insensitive():
    assert by_name("LONGS").name == "Longs"
    assert by_name("dmz").name == "DMZ"


def test_by_name_unknown_raises():
    with pytest.raises(ValueError, match="unknown system"):
        by_name("bluegene")


def test_all_systems_order():
    assert [s.name for s in all_systems()] == ["Tiger", "DMZ", "Longs"]


def test_system_table_is_table1():
    assert len(SYSTEM_TABLE) == 3
    row = {r["Name"]: r for r in SYSTEM_TABLE}
    assert row["Longs"]["Total Cores per Node"] == 16
    assert row["Tiger"]["Opteron Model"] == 248
    assert row["DMZ"]["Node Memory Type"] == "DDR-400"


def test_spec_validation():
    core = CoreSpec(frequency_hz=2e9)
    sock = SocketSpec(cores_per_socket=2, core=core)
    with pytest.raises(ValueError):
        MachineSpec(name="bad", sockets=3, socket=sock, topology="pair")
    with pytest.raises(ValueError):
        MachineSpec(name="bad", sockets=3, socket=sock, topology="ladder")
    with pytest.raises(ValueError):
        MachineSpec(name="bad", sockets=2, socket=sock, topology="mesh3d")


def test_pair_graph_single_edge():
    g = build_socket_graph(dmz())
    assert g.number_of_nodes() == 2
    assert g.number_of_edges() == 1


def test_ladder_graph_shape():
    g = build_socket_graph(longs())
    # 2x4 ladder: 4 rungs + 3 top rails + 3 bottom rails = 10 edges
    assert g.number_of_nodes() == 8
    assert g.number_of_edges() == 10
    assert nx.is_connected(g)
    degrees = sorted(d for _n, d in g.degree())
    assert degrees == [2, 2, 2, 2, 3, 3, 3, 3]  # corners 2, middles 3


def test_ladder_positions_cover_grid():
    pos = ladder_positions(8)
    assert sorted(pos.values()) == [(r, c) for r in (0, 1) for c in range(4)]


def test_machine_core_numbering_socket_major():
    m = Machine(longs())
    assert m.total_cores == 16
    for cid in range(16):
        assert m.socket_of_core(cid) == cid // 2
    assert m.cores_on_socket(3) == [6, 7]
    assert m.siblings(6) == [7]


def test_machine_distance_matrix_slit_style():
    m = Machine(dmz())
    d = m.distance_matrix()
    assert d[0, 0] == 10
    assert d[0, 1] == 20
    assert (d == d.T).all()


def test_longs_diameter_is_four_hops():
    m = Machine(longs())
    # opposite corners of the 2x4 ladder: 3 rail hops + 1 rung
    assert m.net.max_hops() == 4


def test_routing_hops_symmetric():
    m = Machine(longs())
    for s in range(8):
        for d in range(8):
            assert m.net.hops(s, d) == m.net.hops(d, s)
            if s == d:
                assert m.net.hops(s, d) == 0
