"""Tests for machine topology, specs, and system presets."""

import networkx as nx
import pytest

from repro.machine import (
    SYSTEM_TABLE,
    CoreSpec,
    MachineSpec,
    Machine,
    SocketSpec,
    all_systems,
    build_socket_graph,
    by_name,
    dmz,
    ladder_positions,
    longs,
    tiger,
)


def test_core_peak_flops():
    core = CoreSpec(frequency_hz=2.2e9, flops_per_cycle=2.0)
    assert core.peak_flops == pytest.approx(4.4e9)  # "capable of 4.4 GFlop/s"


def test_tiger_matches_table1():
    spec = tiger()
    assert spec.sockets == 2
    assert spec.socket.cores_per_socket == 1
    assert spec.total_cores == 2
    assert spec.socket.core.frequency_hz == pytest.approx(2.2e9)


def test_dmz_matches_table1():
    spec = dmz()
    assert spec.sockets == 2
    assert spec.socket.cores_per_socket == 2
    assert spec.total_cores == 4
    assert spec.socket.core.frequency_hz == pytest.approx(2.2e9)


def test_longs_matches_table1():
    spec = longs()
    assert spec.sockets == 8
    assert spec.socket.cores_per_socket == 2
    assert spec.total_cores == 16
    assert spec.socket.core.frequency_hz == pytest.approx(1.8e9)
    assert spec.topology == "ladder"


def test_by_name_case_insensitive():
    assert by_name("LONGS").name == "Longs"
    assert by_name("dmz").name == "DMZ"


def test_by_name_unknown_raises():
    with pytest.raises(ValueError, match="unknown system"):
        by_name("bluegene")


def test_all_systems_order():
    assert [s.name for s in all_systems()] == ["Tiger", "DMZ", "Longs"]


def test_system_table_is_table1():
    assert len(SYSTEM_TABLE) == 3
    row = {r["Name"]: r for r in SYSTEM_TABLE}
    assert row["Longs"]["Total Cores per Node"] == 16
    assert row["Tiger"]["Opteron Model"] == 248
    assert row["DMZ"]["Node Memory Type"] == "DDR-400"


def test_spec_validation():
    core = CoreSpec(frequency_hz=2e9)
    sock = SocketSpec(cores_per_socket=2, core=core)
    with pytest.raises(ValueError):
        MachineSpec(name="bad", sockets=3, socket=sock, topology="pair")
    with pytest.raises(ValueError):
        MachineSpec(name="bad", sockets=3, socket=sock, topology="ladder")
    with pytest.raises(ValueError):
        MachineSpec(name="bad", sockets=2, socket=sock, topology="mesh3d")


def test_pair_graph_single_edge():
    g = build_socket_graph(dmz())
    assert g.number_of_nodes() == 2
    assert g.number_of_edges() == 1


def test_ladder_graph_shape():
    g = build_socket_graph(longs())
    # 2x4 ladder: 4 rungs + 3 top rails + 3 bottom rails = 10 edges
    assert g.number_of_nodes() == 8
    assert g.number_of_edges() == 10
    assert nx.is_connected(g)
    degrees = sorted(d for _n, d in g.degree())
    assert degrees == [2, 2, 2, 2, 3, 3, 3, 3]  # corners 2, middles 3


def test_ladder_positions_cover_grid():
    pos = ladder_positions(8)
    assert sorted(pos.values()) == [(r, c) for r in (0, 1) for c in range(4)]


def test_machine_core_numbering_socket_major():
    m = Machine(longs())
    assert m.total_cores == 16
    for cid in range(16):
        assert m.socket_of_core(cid) == cid // 2
    assert m.cores_on_socket(3) == [6, 7]
    assert m.siblings(6) == [7]


def test_machine_distance_matrix_slit_style():
    m = Machine(dmz())
    d = m.distance_matrix()
    assert d[0, 0] == 10
    assert d[0, 1] == 20
    assert (d == d.T).all()


def test_longs_diameter_is_four_hops():
    m = Machine(longs())
    # opposite corners of the 2x4 ladder: 3 rail hops + 1 rung
    assert m.net.max_hops() == 4


def test_routing_hops_symmetric():
    m = Machine(longs())
    for s in range(8):
        for d in range(8):
            assert m.net.hops(s, d) == m.net.hops(d, s)
            if s == d:
                assert m.net.hops(s, d) == 0


# -- chiplet preset (first post-paper system) --------------------------------


def test_chiplet_topology():
    from repro.machine import chiplet

    spec = chiplet()
    assert spec.sockets == 4  # CCDs
    assert spec.socket.cores_per_socket == 4
    assert spec.total_cores == 16
    assert spec.topology == "crossbar"  # IO-die hub: uniform CCD hops
    assert spec.socket.l3_bytes == 16 * 1024 ** 2
    g = build_socket_graph(spec)
    assert g.number_of_edges() == 6  # every CCD pair directly linked
    assert nx.diameter(g) == 1


def test_chiplet_split_l3_folds_into_cache_capacity():
    from repro.machine import CacheModel, chiplet

    spec = chiplet()
    model = CacheModel.for_socket(spec.socket)
    # per-core share of the 16 MB CCX slice on top of L1D + L2
    share = 16 * 1024 ** 2 / 4
    assert model.l3_share_bytes == pytest.approx(share)
    assert model.capacity == pytest.approx(
        spec.socket.core.l2_bytes + spec.socket.core.l1d_bytes + share)
    # the paper's K8 parts have no L3: capacity is unchanged by the fold
    k8 = CacheModel.for_socket(tiger().socket)
    assert k8.l3_share_bytes == 0.0
    assert k8.capacity == pytest.approx(
        tiger().socket.core.l2_bytes + tiger().socket.core.l1d_bytes)


def test_chiplet_machine_and_engine_surrogate_capacity_parity():
    from repro.machine import chiplet

    spec = chiplet()
    machine = Machine(spec)
    from repro.core.affinity import AffinityScheme, resolve_scheme
    from repro.surrogate.evaluator import SurrogateEvaluator

    affinity = resolve_scheme(AffinityScheme.DEFAULT, spec, ntasks=4)
    surrogate = SurrogateEvaluator(spec, affinity)
    assert machine.cache.capacity == pytest.approx(
        surrogate.cache.capacity)


def test_chiplet_registered_but_not_in_paper_set():
    from repro.machine import chiplet

    assert by_name("chiplet").name == "Chiplet"
    assert by_name("CHIPLET").total_cores == 16
    # the bench tables iterate all_systems(): paper set only
    assert [s.name for s in all_systems()] == ["Tiger", "DMZ", "Longs"]


def test_chiplet_cache_keys_distinct():
    import dataclasses

    from repro.machine import chiplet

    spec = chiplet()
    tokens = {tiger().cache_token(), dmz().cache_token(),
              longs().cache_token(), spec.cache_token()}
    assert len(tokens) == 4
    # the L3 field itself is key-bearing: a same-shape no-L3 twin must
    # not collide with the chiplet spec in the result cache
    twin = dataclasses.replace(
        spec, socket=dataclasses.replace(spec.socket, l3_bytes=0))
    assert twin.cache_token() != spec.cache_token()
    assert chiplet().cache_token() == spec.cache_token()  # deterministic
