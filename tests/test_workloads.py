"""Tests for the benchmark-suite workloads (lmbench/BLAS/HPCC/IMB/NAS)."""

import pytest

from repro.core import AffinityScheme, Compute, run_workload
from repro.core.ops import Allgather, Allreduce, Alltoall, Barrier
from repro.machine import GB, dmz, longs
from repro.workloads import (
    CLASS_B_CG,
    CLASS_B_FT,
    DaxpyBench,
    DgemmBench,
    HpccDgemm,
    HpccFft,
    HpccHpl,
    HpccPtrans,
    HpccRandomAccess,
    HpccStream,
    ImbExchange,
    ImbPingPong,
    NasCG,
    NasFT,
    PingPong,
    RingExchange,
    StreamTriad,
    exchange_bandwidth,
    pingpong_oneway_time,
    triad_bytes_moved,
)


# -- STREAM ---------------------------------------------------------------

def test_stream_triad_ops_structure():
    wl = StreamTriad(2, elements_per_task=1000, passes=3)
    ops = list(wl.program(0))
    assert isinstance(ops[0], Barrier)
    assert isinstance(ops[1], Compute)
    assert ops[1].dram_bytes == 24 * 1000 * 3
    assert triad_bytes_moved(wl) == 2 * 24 * 1000 * 3


def test_stream_triad_validation():
    with pytest.raises(ValueError):
        StreamTriad(2, elements_per_task=0)


def test_stream_second_core_flat_bandwidth():
    """The Figure 2 signature: second cores add no aggregate bandwidth."""
    spec = dmz()
    def agg_bw(n):
        wl = StreamTriad(n)
        r = run_workload(spec, wl, AffinityScheme.DEFAULT)
        return triad_bytes_moved(wl) / r.phase_time("triad")
    one_per_socket = agg_bw(2)
    all_cores = agg_bw(4)
    assert all_cores == pytest.approx(one_per_socket, rel=0.15)


# -- BLAS -------------------------------------------------------------------

def test_daxpy_bench_flops_accounting():
    wl = DaxpyBench(2, n=1000, repeats=10)
    assert wl.flops_per_task == 2 * 1000 * 10


def test_dgemm_star_mode_doubles_socket_throughput():
    """Cache-friendly DGEMM: two cores per socket double the throughput."""
    spec = dmz()
    def rate(n):
        wl = DgemmBench(n, 800)
        r = run_workload(spec, wl, AffinityScheme.TWO_MPI_LOCAL
                         if n > 2 else AffinityScheme.ONE_MPI_LOCAL)
        return wl.flops_per_task * n / r.phase_time("dgemm")
    assert rate(4) == pytest.approx(2 * rate(2), rel=0.05)


def test_daxpy_is_bandwidth_bound_on_shared_socket():
    """Memory-bound DAXPY: second core adds nothing per socket."""
    spec = dmz()
    def agg(n, scheme):
        wl = DaxpyBench(n, 4_000_000, repeats=5)
        r = run_workload(spec, wl, scheme)
        return wl.flops_per_task * n / r.phase_time("daxpy")
    assert agg(4, AffinityScheme.TWO_MPI_LOCAL) == pytest.approx(
        agg(2, AffinityScheme.ONE_MPI_LOCAL), rel=0.1)


# -- HPCC --------------------------------------------------------------------

def test_hpcc_mode_validation():
    with pytest.raises(ValueError):
        HpccDgemm(4, mode="solo")


def test_hpcc_single_mode_only_rank0_computes():
    wl = HpccStream(4, mode="single", elements=1000)
    rank0 = [op for op in wl.program(0) if isinstance(op, Compute)]
    rank1 = [op for op in wl.program(1) if isinstance(op, Compute)]
    assert len(rank0) == 1
    assert len(rank1) == 0


def test_hpcc_star_mode_everyone_computes():
    wl = HpccStream(4, mode="star", elements=1000)
    for rank in range(4):
        assert any(isinstance(op, Compute) for op in wl.program(rank))


def test_hpcc_dgemm_single_equals_star_per_process():
    """Figure 9's headline: Star DGEMM == Single DGEMM."""
    spec = longs()
    def per_process(mode):
        wl = HpccDgemm(4, mode=mode, n=800)
        r = run_workload(spec, wl, AffinityScheme.TWO_MPI_LOCAL)
        return wl.flops_per_task / r.phase_time("dgemm")
    assert per_process("star") == pytest.approx(per_process("single"),
                                                rel=0.05)


def test_hpcc_stream_star_halves_per_process_bandwidth():
    """Figure 10: STREAM Single:Star ratio ~2 with both cores active."""
    spec = longs()
    def per_process(mode):
        wl = HpccStream(4, mode=mode, elements=2_000_000)
        r = run_workload(spec, wl, AffinityScheme.TWO_MPI_LOCAL)
        return wl.bytes_per_task / r.phase_time("triad")
    ratio = per_process("single") / per_process("star")
    assert 1.8 < ratio < 2.3


def test_hpcc_fft_mpi_mode_has_transpose():
    wl = HpccFft(4, mode="mpi", n=1 << 12)
    ops = list(wl.program(0))
    assert any(isinstance(op, Alltoall) for op in ops)


def test_hpcc_fft_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        HpccFft(4, n=1000)


def test_hpcc_randomaccess_mpi_buckets():
    wl = HpccRandomAccess(4, mode="mpi", updates=6400, rounds=8)
    ops = list(wl.program(1))
    assert sum(isinstance(op, Alltoall) for op in ops) == 8


def test_hpcc_ptrans_requires_square_grid():
    with pytest.raises(ValueError):
        HpccPtrans(8)
    wl = HpccPtrans(4, n=512)
    result = run_workload(longs(), wl, AffinityScheme.ONE_MPI_LOCAL)
    assert result.wall_time > 0


def test_hpcc_hpl_runs_and_counts_flops():
    wl = HpccHpl(4, n=1024, nb=128)
    assert wl.total_flops == pytest.approx(2 / 3 * 1024 ** 3, rel=0.01)
    result = run_workload(dmz(), wl, AffinityScheme.TWO_MPI_LOCAL)
    assert result.wall_time > 0
    assert result.messages > 0


def test_hpcc_hpl_validation():
    with pytest.raises(ValueError):
        HpccHpl(4, n=64, nb=128)


def test_pingpong_needs_two_ranks():
    with pytest.raises(ValueError):
        PingPong(1024, ntasks=1)


def test_ring_exchange_all_ranks_active():
    spec = longs()
    wl = RingExchange(8, 4096, reps=5)
    result = run_workload(spec, wl, AffinityScheme.ONE_MPI_LOCAL)
    # payload volume: 8 ranks x 5 reps (barrier messages carry 0 bytes)
    assert result.bytes_sent == 8 * 5 * 4096


# -- IMB -----------------------------------------------------------------------

def test_imb_helpers_validate():
    with pytest.raises(ValueError):
        pingpong_oneway_time(1.0, 0)
    with pytest.raises(ValueError):
        exchange_bandwidth(0.0, 10, 100)


def test_imb_pingpong_oneway_semantics():
    assert pingpong_oneway_time(2.0, 10) == pytest.approx(0.1)


def test_imb_exchange_four_transfers_per_rep():
    assert exchange_bandwidth(1.0, 5, 100) == pytest.approx(2000.0)


def test_imb_exchange_runs():
    result = run_workload(dmz(), ImbExchange(4, 4096, reps=5))
    assert result.wall_time > 0


def test_imb_intra_socket_bandwidth_benefit():
    """Figures 16-17: ~10-13% benefit from confining to one socket."""
    from repro.bench.figures import _packed_socket_affinity
    from repro.bench.common import run as bench_run

    spec = dmz()
    nbytes = 1 << 20
    wl = ImbPingPong(nbytes)
    bound = bench_run(spec, wl, affinity=_packed_socket_affinity(spec, 0))
    unbound = bench_run(spec, ImbPingPong(nbytes), AffinityScheme.DEFAULT)
    t_bound = pingpong_oneway_time(bound.phase_time("pingpong"), 20)
    t_unbound = pingpong_oneway_time(unbound.phase_time("pingpong"), 20)
    benefit = t_unbound / t_bound - 1.0
    assert 0.05 < benefit < 0.25


# -- NAS --------------------------------------------------------------------------

def test_nas_class_b_constants():
    assert CLASS_B_CG["na"] == 75_000
    assert CLASS_B_FT["nx"] * CLASS_B_FT["ny"] * CLASS_B_FT["nz"] == 1 << 25


def test_nas_cg_time_scale_covers_all_iterations():
    wl = NasCG(4, simulated_inner_iters=25)
    assert wl.time_scale == pytest.approx(75.0)


def test_nas_cg_program_structure():
    wl = NasCG(4, simulated_inner_iters=2)
    ops = list(wl.program(0))
    assert sum(isinstance(op, Allgather) for op in ops) == 4
    assert sum(isinstance(op, Allreduce) for op in ops) == 4


def test_nas_cg_single_task_no_comm():
    wl = NasCG(1, simulated_inner_iters=2)
    ops = list(wl.program(0))
    assert not any(isinstance(op, (Allgather, Allreduce)) for op in ops)


def test_nas_ft_divisibility():
    with pytest.raises(ValueError):
        NasFT(3)


def test_nas_ft_program_has_transpose_per_iteration():
    wl = NasFT(4, simulated_iters=3)
    ops = list(wl.program(0))
    assert sum(isinstance(op, Alltoall) for op in ops) == 3


def test_nas_localalloc_beats_membind_on_longs():
    """The paper's core Table 2 finding at 8 tasks."""
    spec = longs()
    t_local = run_workload(spec, NasCG(8, simulated_inner_iters=5),
                           AffinityScheme.ONE_MPI_LOCAL).wall_time
    t_membind = run_workload(spec, NasCG(8, simulated_inner_iters=5),
                             AffinityScheme.ONE_MPI_MEMBIND).wall_time
    t_inter = run_workload(spec, NasCG(8, simulated_inner_iters=5),
                           AffinityScheme.INTERLEAVE).wall_time
    assert t_membind > 1.5 * t_local  # paper: 109.11 vs 51.15
    assert t_local < t_inter < t_membind  # paper: 51.15 < 67.23 < 109.11


def test_nas_ft_membind_penalty_on_longs():
    spec = longs()
    t_local = run_workload(spec, NasFT(8, simulated_iters=3),
                           AffinityScheme.TWO_MPI_LOCAL).wall_time
    t_membind = run_workload(spec, NasFT(8, simulated_iters=3),
                             AffinityScheme.TWO_MPI_MEMBIND).wall_time
    assert t_membind > 1.2 * t_local  # paper: 81.95 vs 62.80


def test_nas_cg_dmz_default_is_near_optimal():
    """Paper Section 4.1: DMZ's default placement is near-optimal."""
    spec = dmz()
    t_default = run_workload(spec, NasCG(2, simulated_inner_iters=5),
                             AffinityScheme.DEFAULT).wall_time
    t_best = run_workload(spec, NasCG(2, simulated_inner_iters=5),
                          AffinityScheme.ONE_MPI_LOCAL).wall_time
    assert t_default < 1.1 * t_best
