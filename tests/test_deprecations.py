"""The deprecated shims: warn with the repro category, delegate intact.

This is the ONLY place the legacy free-function spellings are exercised
on purpose; internal code and the examples run warning-free (enforced
by ``-W error::DeprecationWarning`` in the examples smoke test).
"""

import warnings

import pytest

from repro.bench.common import clear_cache, run_cached
from repro.core import (
    AffinityScheme,
    Compute,
    Workload,
    compare_schemes,
    scaling_study,
    scheme_sweep,
)
from repro.errors import (
    NoFeasibleSchemeError,
    ReproDeprecationWarning,
    UnknownMetricError,
)
from repro.machine import dmz, longs
from repro.service import Session, default_session


class TinyCompute(Workload):
    name = "tiny-deprecation"

    def __init__(self, ntasks=2, flops=1e7):
        self.ntasks = ntasks
        self.flops = flops

    def program(self, rank):
        yield Compute(flops=self.flops, flop_efficiency=0.5)


def test_scheme_sweep_shim_warns_and_delegates():
    with pytest.warns(ReproDeprecationWarning, match="scheme_sweep"):
        shimmed = scheme_sweep(dmz(), lambda n: TinyCompute(n),
                               task_counts=(2, 4))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        direct = default_session().scheme_sweep(
            dmz(), lambda n: TinyCompute(n), task_counts=(2, 4))
    assert shimmed.headers == direct.headers
    assert shimmed.rows == direct.rows


def test_compare_schemes_shim_warns_and_delegates():
    with pytest.warns(ReproDeprecationWarning, match="compare_schemes"):
        shimmed = compare_schemes(longs(), lambda: TinyCompute(4))
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        direct = default_session().compare_schemes(longs(),
                                                   lambda: TinyCompute(4))
    assert shimmed.times == direct.times
    assert (shimmed.best, shimmed.worst) == (direct.best, direct.worst)


def test_compare_schemes_shim_raises_typed_valueerror():
    with pytest.warns(ReproDeprecationWarning):
        with pytest.raises(NoFeasibleSchemeError):
            compare_schemes(dmz(), lambda: TinyCompute(64))
    # the typed error still satisfies legacy except ValueError blocks
    with pytest.warns(ReproDeprecationWarning):
        with pytest.raises(ValueError):
            compare_schemes(dmz(), lambda: TinyCompute(64))


def test_scaling_study_shim_warns_and_raises_typed_metric_error():
    with pytest.warns(ReproDeprecationWarning, match="scaling_study"):
        table = scaling_study([dmz()], lambda n: TinyCompute(n),
                              task_counts=(2,), metric="speedup")
    assert table.rows[0][0] == "DMZ"
    with pytest.warns(ReproDeprecationWarning):
        with pytest.raises(UnknownMetricError):
            scaling_study([dmz()], lambda n: TinyCompute(n), (2,),
                          metric="bogus")


def test_run_cached_shim_warns_and_shares_session_memo():
    with pytest.warns(ReproDeprecationWarning, match="run_cached"):
        assert run_cached(("dep-test",), lambda: "value") == "value"
    # the shim and the session share one memo table
    assert default_session().memo(("dep-test",),
                                  lambda: "other") == "value"
    with pytest.warns(ReproDeprecationWarning, match="clear_cache"):
        clear_cache()
    assert default_session().memo(("dep-test",),
                                  lambda: "fresh") == "fresh"
    with pytest.warns(ReproDeprecationWarning):
        clear_cache()


def test_deprecation_category_is_a_deprecation_warning():
    # -W error::DeprecationWarning (as used on the examples) catches it
    assert issubclass(ReproDeprecationWarning, DeprecationWarning)


def test_session_api_is_warning_free(tmp_path):
    from repro.core.cache import ResultCache
    from repro.service import RunRequest

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        with Session(cache=ResultCache(directory=tmp_path)) as session:
            result = session.run(RunRequest(system=longs(),
                                            workload=TinyCompute(4)))
            session.scheme_sweep(dmz(), lambda n: TinyCompute(n), (2,))
    assert result.ok


def test_shims_route_through_session_and_backend(tmp_path):
    """The full shim → Session → ExecutionBackend call chain holds.

    Each legacy free function must emit exactly one deprecation
    warning, delegate to the process-wide session, and have its cells
    scheduled through the session's pluggable backend (never a private
    dispatch path).
    """
    from repro.backends import ThreadBackend
    from repro.core.cache import ResultCache
    from repro.service.session import set_default_session

    class SpyBackend(ThreadBackend):
        name = "spy"

        def __init__(self):
            super().__init__()
            self.cells = 0

        def submit_cells(self, batch, jobs=None, timeout=None,
                         retries=None):
            batch = list(batch)
            self.cells += len(batch)
            return super().submit_cells(batch, jobs=jobs,
                                        timeout=timeout, retries=retries)

    shims = [
        ("scheme_sweep",
         lambda: scheme_sweep(dmz(), lambda n: TinyCompute(n),
                              task_counts=(2,))),
        ("compare_schemes",
         lambda: compare_schemes(longs(), lambda: TinyCompute(4))),
        ("scaling_study",
         lambda: scaling_study([longs()], lambda n: TinyCompute(n),
                               (2,), metric="speedup")),
    ]
    for i, (name, call) in enumerate(shims):
        spy = SpyBackend()
        session = Session(cache=ResultCache(directory=tmp_path / str(i)),
                          backend=spy)
        old = set_default_session(session)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                call()
        finally:
            set_default_session(old)
            session.close()
        deprecations = [w for w in caught
                        if issubclass(w.category, ReproDeprecationWarning)]
        assert len(deprecations) == 1, (name, deprecations)
        assert name in str(deprecations[0].message)
        assert spy.cells > 0, f"{name} never reached the backend"


def test_experiment_routes_through_session():
    from repro.core import Experiment

    experiment = Experiment(longs(), TinyCompute(4),
                            AffinityScheme.INTERLEAVE)
    request = experiment.to_request()
    assert request.key() == experiment.request().key()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        result = experiment.run()  # non-deprecated, session-routed
    assert result.wall_time > 0
