"""Tests for the simulated MPI runtime: semantics and cost ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import KB, MB, Machine, dmz, longs
from repro.mpi import (
    IMPLEMENTATIONS,
    LAM,
    MPICH2,
    OPENMPI,
    LockLayer,
    MpiWorld,
    implementation_by_name,
)
from repro.osmodel import spread, two_per_socket


def make_world(spec=None, ntasks=2, impl=OPENMPI, lock=None, placement=None):
    spec = spec if spec is not None else dmz()
    machine = Machine(spec)
    if placement is None:
        placement = spread(spec, ntasks)
    return MpiWorld(machine, placement, impl=impl, lock=lock)


def run_ranks(world, program):
    """Run `program(world, rank)` generators on every rank; return engine.now."""
    for r in range(world.size):
        world.engine.process(program(world, r))
    world.engine.run()
    return world.engine.now


# -- implementation profiles ---------------------------------------------------

def test_implementation_lookup():
    assert implementation_by_name("lam") is LAM
    assert implementation_by_name("OpenMPI") is OPENMPI
    with pytest.raises(ValueError):
        implementation_by_name("pvm")


def test_profiles_cover_three_implementations():
    assert set(IMPLEMENTATIONS) == {"mpich2", "lam", "openmpi"}


def test_eager_threshold_semantics():
    assert MPICH2.is_eager(16 * KB)
    assert not MPICH2.is_eager(16 * KB + 1)
    assert LAM.is_eager(64 * KB)
    assert not OPENMPI.is_eager(8 * KB)


def test_copy_cost_factor_pipelining():
    assert MPICH2.copy_cost_factor(1) == pytest.approx(2.0)  # eager = 2 copies
    assert MPICH2.copy_cost_factor(1 * MB) == pytest.approx(2.0 - MPICH2.pipelining)


def test_lock_layer_costs_ordered():
    params = dmz().params
    assert LockLayer("sysv").cost(params) > LockLayer("pthread").cost(params)
    assert LockLayer("pthread").cost(params) > LockLayer("usysv").cost(params)
    with pytest.raises(ValueError):
        LockLayer("futex").cost(params)


def test_implementation_validation():
    from repro.mpi import MpiImplementation

    with pytest.raises(ValueError):
        MpiImplementation("x", 1e-6, 1024, 1e-6, pipelining=1.5)
    with pytest.raises(ValueError):
        MpiImplementation("x", 1e-6, -1, 1e-6, pipelining=0.5)


# -- point-to-point semantics -----------------------------------------------------

def test_send_recv_delivers_payload():
    world = make_world()
    result = {}

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, 1024, tag=7, payload="hello")
        else:
            msg = yield from world.recv(1, src=0, tag=7)
            result["msg"] = msg

    run_ranks(world, program)
    assert result["msg"].payload == "hello"
    assert result["msg"].nbytes == 1024


def test_recv_wildcard_source_and_tag():
    world = make_world()
    result = {}

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, 64, tag=3)
        else:
            msg = yield from world.recv(1)  # wildcard src and tag
            result["src"] = msg.src
            result["tag"] = msg.tag

    run_ranks(world, program)
    assert result["src"] == 0 and result["tag"] == 3


def test_messages_match_fifo_per_source_tag():
    world = make_world()
    seen = []

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, 16, tag=1, payload="first")
            yield from world.send(0, 1, 16, tag=1, payload="second")
        else:
            m1 = yield from world.recv(1, src=0, tag=1)
            m2 = yield from world.recv(1, src=0, tag=1)
            seen.extend([m1.payload, m2.payload])

    run_ranks(world, program)
    assert seen == ["first", "second"]


def test_tag_selective_matching():
    world = make_world()
    seen = {}

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, 16, tag=5, payload="five")
            yield from world.send(0, 1, 16, tag=9, payload="nine")
        else:
            m9 = yield from world.recv(1, src=0, tag=9)
            m5 = yield from world.recv(1, src=0, tag=5)
            seen["order"] = [m9.payload, m5.payload]

    run_ranks(world, program)
    assert seen["order"] == ["nine", "five"]


def test_rendezvous_send_blocks_until_recv_posted():
    world = make_world(impl=OPENMPI)
    times = {}
    big = 1 * MB  # beyond OpenMPI eager threshold

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, big)
            times["send_done"] = world.engine.now
        else:
            yield world.engine.timeout(1.0)  # delay posting the recv
            yield from world.recv(1, src=0)
            times["recv_done"] = world.engine.now

    run_ranks(world, program)
    assert times["send_done"] >= 1.0  # sender had to wait for the handshake


def test_eager_send_completes_without_recv():
    world = make_world(impl=OPENMPI)
    times = {}

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, 512)  # eager
            times["send_done"] = world.engine.now
        else:
            yield world.engine.timeout(1.0)
            yield from world.recv(1, src=0)

    run_ranks(world, program)
    assert times["send_done"] < 0.01


def test_sendrecv_ring_no_deadlock():
    spec = longs()
    world = make_world(spec, ntasks=8, placement=spread(spec, 8))
    done = []

    def program(world, rank):
        p = world.size
        yield from world.sendrecv(rank, (rank + 1) % p, (rank - 1) % p, 4 * KB)
        done.append(rank)

    run_ranks(world, program)
    assert sorted(done) == list(range(8))


def test_send_to_invalid_rank_raises():
    world = make_world()
    with pytest.raises(ValueError):
        list(world.send(0, 5, 10))
    with pytest.raises(ValueError):
        list(world.send(0, 1, -1))


def test_stats_count_messages_and_bytes():
    world = make_world()

    def program(world, rank):
        if rank == 0:
            yield from world.send(0, 1, 100)
            yield from world.send(0, 1, 200)
        else:
            yield from world.recv(1)
            yield from world.recv(1)

    run_ranks(world, program)
    assert world.stats.messages == 2
    assert world.stats.bytes_sent == 300
    assert world.stats.by_rank_messages[0] == 2


# -- cost model orderings ----------------------------------------------------------

def ping_pong_time(spec, placement, nbytes, impl=OPENMPI, lock=None, reps=10):
    machine = Machine(spec)
    world = MpiWorld(machine, placement, impl=impl, lock=lock)
    def program(world, rank):
        for _ in range(reps):
            if rank == 0:
                yield from world.send(0, 1, nbytes)
                yield from world.recv(0, src=1)
            else:
                yield from world.recv(1, src=0)
                yield from world.send(1, 0, nbytes)
    for r in range(2):
        world.engine.process(program(world, r))
    world.engine.run()
    return world.engine.now / (2 * reps)  # one-way time


def test_intra_socket_faster_than_inter_socket():
    """The paper's 10-13% bandwidth benefit for same-socket pairs."""
    spec = dmz()
    same = ping_pong_time(spec, two_per_socket(spec, 2), 1 * MB)
    cross = ping_pong_time(spec, spread(spec, 2), 1 * MB)
    assert same < cross
    ratio = cross / same
    assert 1.05 < ratio < 1.30


def test_sysv_dominates_small_messages():
    spec = dmz()
    placement = spread(spec, 2)
    slow = ping_pong_time(spec, placement, 8, lock="sysv")
    fast = ping_pong_time(spec, placement, 8, lock="usysv")
    assert slow > 5 * fast


def test_sysv_modest_for_large_messages():
    """Per-fragment locking leaves a bounded (not dominant) large-message
    penalty — the Figure 12 PTRANS effect — versus >5x for small ones."""
    spec = dmz()
    placement = spread(spec, 2)
    slow = ping_pong_time(spec, placement, 4 * MB, lock="sysv")
    fast = ping_pong_time(spec, placement, 4 * MB, lock="usysv")
    assert 1.02 < slow / fast < 1.6


def test_lam_best_small_mpich2_best_large():
    """Figure 14's crossover structure."""
    spec = dmz()
    placement = spread(spec, 2)
    small = {impl.name: ping_pong_time(spec, placement, 1 * KB, impl=impl)
             for impl in (MPICH2, LAM, OPENMPI)}
    large = {impl.name: ping_pong_time(spec, placement, 4 * MB, impl=impl)
             for impl in (MPICH2, LAM, OPENMPI)}
    assert small["LAM"] < small["OpenMPI"] < small["MPICH2"]
    assert large["MPICH2"] < large["OpenMPI"] < large["LAM"]


def test_openmpi_wins_intermediate():
    spec = dmz()
    placement = spread(spec, 2)
    mid = {impl.name: ping_pong_time(spec, placement, 128 * KB, impl=impl)
           for impl in (MPICH2, LAM, OPENMPI)}
    assert mid["OpenMPI"] == min(mid.values())


def test_more_hops_higher_latency():
    spec = longs()
    # ranks on sockets 0 and 4 (1 hop) vs 0 and 3 (3 hops)
    from repro.osmodel import Placement
    near = ping_pong_time(spec, Placement((0, 8), 2), 8)
    far = ping_pong_time(spec, Placement((0, 6), 2), 8)
    assert far > near


# -- collectives --------------------------------------------------------------------

def collective_time(spec, ntasks, op, nbytes=1024, **world_kwargs):
    machine = Machine(spec)
    placement = spread(spec, ntasks)
    world = MpiWorld(machine, placement, **world_kwargs)
    done = []

    def program(world, rank):
        yield from getattr(world, op)(rank, nbytes) if op != "barrier" else world.barrier(rank)
        done.append(rank)

    for r in range(ntasks):
        world.engine.process(program(world, r))
    world.engine.run()
    assert sorted(done) == list(range(ntasks))
    return world.engine.now


def test_barrier_completes_all_ranks():
    assert collective_time(dmz(), 4, "barrier") > 0


def test_barrier_single_rank_is_free():
    assert collective_time(dmz(), 1, "barrier") == 0.0


def test_allreduce_all_ranks_complete():
    assert collective_time(longs(), 8, "allreduce", nbytes=8) > 0


def test_allreduce_non_power_of_two():
    assert collective_time(dmz(), 3, "allreduce", nbytes=64) > 0


def test_allreduce_latency_grows_with_ranks():
    spec = longs()
    t2 = collective_time(spec, 2, "allreduce", nbytes=8)
    t8 = collective_time(spec, 8, "allreduce", nbytes=8)
    assert t8 > t2


def test_alltoall_completes():
    assert collective_time(longs(), 8, "alltoall", nbytes=4 * KB) > 0


def test_allgather_completes():
    assert collective_time(dmz(), 4, "allgather", nbytes=1 * KB) > 0


def test_bcast_all_ranks_receive():
    spec = longs()
    machine = Machine(spec)
    placement = spread(spec, 8)
    world = MpiWorld(machine, placement)
    done = []

    def program(world, rank):
        yield from world.bcast(rank, 0, 4 * KB)
        done.append(rank)

    for r in range(8):
        world.engine.process(program(world, r))
    world.engine.run()
    assert sorted(done) == list(range(8))


def test_bcast_nonzero_root():
    spec = dmz()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, 4))
    done = []

    def program(world, rank):
        yield from world.bcast(rank, 2, 1 * KB)
        done.append(rank)

    for r in range(4):
        world.engine.process(program(world, r))
    world.engine.run()
    assert sorted(done) == list(range(4))


def test_reduce_completes():
    spec = dmz()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, 4))
    done = []

    def program(world, rank):
        yield from world.reduce(rank, 0, 1 * KB)
        done.append(rank)

    for r in range(4):
        world.engine.process(program(world, r))
    world.engine.run()
    assert sorted(done) == list(range(4))


@settings(max_examples=15, deadline=None)
@given(ntasks=st.integers(min_value=1, max_value=8),
       nbytes=st.integers(min_value=0, max_value=64 * 1024))
def test_collectives_terminate_property(ntasks, nbytes):
    """Barrier/allreduce/alltoall always complete for any rank count."""
    spec = longs()
    machine = Machine(spec)
    placement = spread(spec, ntasks)
    world = MpiWorld(machine, placement)
    done = []

    def program(world, rank):
        yield from world.barrier(rank)
        yield from world.allreduce(rank, nbytes)
        yield from world.alltoall(rank, nbytes)
        done.append(rank)

    for r in range(ntasks):
        world.engine.process(program(world, r))
    world.engine.run()
    assert len(done) == ntasks
