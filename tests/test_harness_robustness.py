"""Hardened bench pipeline: crash isolation, corruption recovery, repair."""

import json

import pytest

from repro.bench import chaos
from repro.bench.chaos import SCENARIOS, _QuickWorkload
from repro.core import parallel
from repro.core.affinity import AffinityScheme
from repro.core.cache import (
    CACHE_SCHEMA,
    CACHE_STORE_SCHEMA,
    ResultCache,
    parse_entry,
    result_checksum,
)
from repro.core.parallel import (
    JobRequest,
    TargetFailure,
    reset_pool_stats,
    run_request,
    run_requests,
    take_failures,
)
from repro.faults import CacheDegrade, FaultPlan
from repro.machine import dmz, tiger
from repro.telemetry import doctor, ledger
from repro.telemetry.regress import excluded_from_baseline
from repro.wire import frames


def _rewrite_entry(path, entry):
    """Write a mutated cache entry back in whatever format the file used."""
    if path.read_bytes()[:2] == frames.FRAME_MAGIC:
        path.write_bytes(frames.pack_frames(entry))
    else:
        path.write_text(json.dumps(entry))


class _WideWorkload(_QuickWorkload):
    """16 ranks: infeasible under One-MPI schemes on small machines."""

    name = "chaos-wide"
    ntasks = 16


@pytest.fixture(autouse=True)
def _clean_executor_state():
    """Isolate the process-wide executor accounting per test."""
    reset_pool_stats()
    take_failures()
    yield
    parallel.set_default_faults(None)
    parallel.shutdown_pool()
    take_failures()
    reset_pool_stats()


# -- chaos self-test scenarios (the heavyweight end-to-end paths) ----------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_chaos_scenario_recovers(name):
    ok, notes = SCENARIOS[name]()
    assert ok, f"{name} failed to recover: {notes}"


def test_chaos_cli_single_scenario():
    assert chaos.main(["--scenario", "torn-ledger"]) == 0


# -- corrupted cache entries ------------------------------------------------

def _populate(tmp_path):
    cache = ResultCache(directory=tmp_path)
    request = JobRequest(spec=tiger(), workload=_QuickWorkload())
    original = run_request(request, cache=cache)
    return request, original, cache._path(request.key())


def test_truncated_cache_entry_is_quarantined_and_recomputed(tmp_path):
    request, original, path = _populate(tmp_path)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])

    fresh = ResultCache(directory=tmp_path)
    recovered = run_request(request, cache=fresh)
    assert fresh.stats.corrupt == 1
    assert fresh.stats.misses == 1
    assert recovered.to_dict() == original.to_dict()
    assert path.with_suffix(".json.corrupt").exists()
    # the recomputed entry was rewritten cleanly (parse_entry validates format)
    entry = parse_entry(path.read_bytes())
    assert entry["schema"] in (CACHE_SCHEMA, CACHE_STORE_SCHEMA)
    assert entry["check"] == result_checksum(entry["result"])


def test_bitflipped_cache_entry_fails_the_checksum(tmp_path):
    request, original, path = _populate(tmp_path)
    entry = parse_entry(path.read_bytes())
    entry["result"]["wall_time"] += 1.0  # well-formed entry, stale checksum
    _rewrite_entry(path, entry)

    fresh = ResultCache(directory=tmp_path)
    assert fresh.get(request.key()) is None
    assert fresh.stats.corrupt == 1


def test_missing_entry_is_a_plain_miss_not_corruption(tmp_path):
    cache = ResultCache(directory=tmp_path)
    request = JobRequest(spec=tiger(), workload=_QuickWorkload())
    assert cache.get(request.key()) is None
    assert cache.stats.corrupt == 0
    assert cache.stats.misses == 1


def test_stale_schema_entry_is_rejected(tmp_path):
    request, original, path = _populate(tmp_path)
    entry = parse_entry(path.read_bytes())
    entry["schema"] = CACHE_SCHEMA - 1
    _rewrite_entry(path, entry)
    fresh = ResultCache(directory=tmp_path)
    assert fresh.get(request.key()) is None
    assert fresh.stats.corrupt == 1


# -- doctor -----------------------------------------------------------------

def test_doctor_reports_then_fixes_cache_damage(tmp_path):
    request, original, path = _populate(tmp_path)
    path.write_bytes(path.read_bytes()[:10])  # corrupt the entry
    (tmp_path / "dead-writer.json.tmp").write_text("partial")

    report = doctor.check_cache_dir(tmp_path, fix=False)
    assert report["entries"] == 1
    assert len(report["corrupt"]) == 1
    assert report["stale_tmp"] == 1
    assert path.exists()  # scan-only never touches files

    fixed = doctor.check_cache_dir(tmp_path, fix=True)
    assert len(fixed["corrupt"]) == 1
    assert not path.exists()
    assert path.with_suffix(".json.corrupt").exists()
    assert not (tmp_path / "dead-writer.json.tmp").exists()

    again = doctor.check_cache_dir(tmp_path, fix=True)
    assert not again["corrupt"]
    assert again["quarantined"] == 1  # swept on this pass
    assert not path.with_suffix(".json.corrupt").exists()


def test_doctor_cli_exit_codes(tmp_path, capsys):
    ledger_dir = tmp_path / "ledger"
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    ledger.append({"schema": 1, "run_id": "a"}, ledger_dir)
    with open(ledger.ledger_path(ledger_dir), "a") as handle:
        handle.write('{"torn": ')

    argv = ["--ledger-dir", str(ledger_dir), "--cache-dir", str(cache_dir)]
    assert doctor.main(argv) == 1  # torn line found, not fixed
    assert doctor.main(argv + ["--fix"]) == 0
    assert doctor.main(argv) == 0  # healthy after repair
    out = capsys.readouterr().out
    assert "healthy" in out


# -- torn ledger ------------------------------------------------------------

def test_ledger_scan_and_repair_round_trip(tmp_path):
    ledger.append({"schema": 1, "run_id": "a"}, tmp_path)
    ledger.append({"schema": 1, "run_id": "b"}, tmp_path)
    path = ledger.ledger_path(tmp_path)
    with open(path, "a") as handle:
        handle.write('{"schema": 1, "run_id": "c', )  # torn mid-record

    assert [r["run_id"] for r in ledger.read_records(tmp_path)] == ["a", "b"]
    report = ledger.scan(tmp_path)
    assert report["records"] == 2
    assert report["torn_lines"] == [3]

    repaired = ledger.repair(tmp_path)
    assert repaired["repaired"]
    backup = path.with_suffix(path.suffix + ".bak")
    assert backup.exists()
    assert ledger.scan(tmp_path)["torn_lines"] == []

    # appending after a fresh tear starts on a new line: no coalescing
    with open(path, "a") as handle:
        handle.write('{"half": ')
    ledger.append({"schema": 1, "run_id": "d"}, tmp_path)
    assert [r["run_id"] for r in ledger.read_records(tmp_path)] \
        == ["a", "b", "d"]


def test_ledger_repair_is_a_noop_when_healthy(tmp_path):
    ledger.append({"schema": 1, "run_id": "a"}, tmp_path)
    report = ledger.repair(tmp_path)
    assert report["repaired"] is False
    path = ledger.ledger_path(tmp_path)
    assert not path.with_suffix(path.suffix + ".bak").exists()


# -- sweep executor failure handling ---------------------------------------

def test_infeasible_cell_in_parallel_sweep_stays_a_dash(tmp_path):
    cache = ResultCache(directory=tmp_path)
    feasible = [JobRequest(spec=tiger(), workload=_QuickWorkload(salt=i))
                for i in range(2)]
    infeasible = JobRequest(spec=dmz(), workload=_WideWorkload(salt=9),
                            scheme=AffinityScheme.ONE_MPI_LOCAL)
    results = run_requests(feasible + [infeasible], jobs=2, cache=cache)
    assert results[0] is not None and results[1] is not None
    assert results[2] is None
    assert parallel.pool_stats().infeasible == 1
    # infeasibility is the paper's dash, not a pipeline failure
    assert take_failures() == []


def test_take_failures_drains():
    failure = TargetFailure(index=0, kind="crash", message="boom",
                            attempts=2, label="x on y [default]")
    parallel._FAILURES.append(failure)
    assert take_failures() == [failure]
    assert take_failures() == []
    assert failure.as_dict()["kind"] == "crash"


def test_default_faults_materialize_into_requests(tmp_path):
    cache = ResultCache(directory=tmp_path)
    request = JobRequest(spec=tiger(), workload=_QuickWorkload())
    healthy = run_request(request, cache=cache)
    assert healthy.faults is None

    plan = FaultPlan(faults=(CacheDegrade(capacity_factor=0.5),))
    parallel.set_default_faults(plan)
    try:
        faulted = run_request(request, cache=cache)
    finally:
        parallel.set_default_faults(None)
    # the plan reached the simulation and the cell keyed separately
    assert faulted.faults is not None
    assert cache.stats.stores == 2

    again = run_request(request, cache=cache)
    assert again.faults is None  # default cleared; healthy key hits
    assert again.to_dict() == healthy.to_dict()


def test_timeout_and_retry_knobs_round_trip(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_TIMEOUT", "12.5")
    monkeypatch.setenv("REPRO_BENCH_RETRIES", "3")
    parallel.set_default_timeout(None)  # explicit None beats the env
    assert parallel.default_timeout() is None
    parallel.set_default_timeout(2.0)
    assert parallel.default_timeout() == 2.0
    parallel.set_default_retries(None)  # back to the environment
    assert parallel.default_retries() == 3
    parallel.set_default_retries(0)
    assert parallel.default_retries() == 0
    parallel.set_default_retries(None)
    monkeypatch.delenv("REPRO_BENCH_RETRIES")
    assert parallel.default_retries() == 1  # shipped default
    # restore the unset-env default for the rest of the suite
    parallel._DEFAULT_TIMEOUT_SET = False
    parallel._DEFAULT_TIMEOUT = None


# -- regression-gate exclusions --------------------------------------------

def test_excluded_from_baseline_reasons():
    assert excluded_from_baseline({"status": "aborted"}) == "aborted"
    assert excluded_from_baseline({"faults": {"seed": 1}}) == "fault-injected"
    assert excluded_from_baseline({"status": "ok"}) is None
    assert excluded_from_baseline({"faults": None}) is None
