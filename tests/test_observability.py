"""Tests for the observability plane: metrics, tracing, exposition.

The load-bearing promises:

* The metrics helpers are free when no registry is enabled (the null
  path), and exact when one is: counters sum across label sets,
  histograms place observations in fixed buckets, snapshots from
  different processes merge bucket-wise, and quantiles interpolate
  inside the target bucket.
* ``{"op": "metrics"}`` is side-effect-free, answers in JSON and
  Prometheus text, and the router's cluster-wide scrape degrades to
  per-shard ``error`` entries — a dead or malformed shard never fails
  the scrape.
* A ``trace_id`` minted at the client survives the full path —
  router forward → shard protocol handler → session job → executor
  batch — with each hop's ``parent_span`` pointing at the hop above,
  and an untraced request records nothing.
* ``trace export`` reconstructs one request across every process's
  ledger record as Chrome trace JSON.
* The regress replay gate skips records with zero completed requests
  instead of gating against their meaningless p99 of 0.0.
"""

import json
import socket
import time

import pytest

from repro.core.cache import ResultCache
from repro.cluster import Router
from repro.service import Session
from repro.service.daemon import TcpServiceServer
from repro.service.protocol import handle_request
from repro.service.transport import TcpNdjsonServer, serve_in_thread
from repro.telemetry import ledger, metrics, tracecmd, tracing
from repro.telemetry.ledger import RunRecorder
from repro.telemetry.regress import evaluate

FAST_STREAM = {"workload": "stream", "system": "tiger", "ntasks": 2,
               "scheme": "default", "tier": "fast"}
FAST_CG = {"workload": "cg", "system": "tiger", "ntasks": 2,
           "scheme": "default", "tier": "fast"}


@pytest.fixture
def registry():
    """A fresh process-wide metrics registry, torn down afterwards."""
    reg = metrics.enable()
    try:
        yield reg
    finally:
        metrics.disable()


@pytest.fixture
def recorder():
    """An active ledger recorder capturing trace spans."""
    rec = RunRecorder(tool="test").start()
    try:
        yield rec
    finally:
        rec.stop()


@pytest.fixture
def session(tmp_path):
    with Session(cache=ResultCache(directory=tmp_path / "cache"),
                 jobs=1) as sess:
        yield sess


# -- metrics registry and null path -----------------------------------------


def test_disabled_helpers_are_noops_and_snapshot_is_empty():
    metrics.disable()
    metrics.inc("x_total")
    metrics.set_gauge("x_gauge", 7)
    metrics.observe("x_seconds", 0.2)
    assert metrics.active_registry() is None
    assert metrics.snapshot() == {"counters": {}, "gauges": {},
                                  "histograms": {}}


def test_enabled_helpers_record_with_labels(registry):
    metrics.inc("req_total", shard="s0")
    metrics.inc("req_total", 2, shard="s1")
    metrics.inc("req_total")
    metrics.set_gauge("depth", 3)
    snap = metrics.snapshot()
    assert snap["counters"]['req_total{shard="s0"}'] == 1
    assert snap["counters"]['req_total{shard="s1"}'] == 2
    assert metrics.counter_total(snap, "req_total") == 4
    assert metrics.gauge_value(snap, "depth") == 3
    assert metrics.gauge_value(snap, "absent") is None


def test_histogram_buckets_overflow_and_merge():
    hist = metrics.Histogram(bounds=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.counts == [1, 2, 1, 1]  # last slot is the overflow
    assert hist.total == 5
    assert hist.max == 50.0
    other = metrics.Histogram(bounds=(0.1, 1.0, 10.0))
    other.observe(0.2)
    hist.merge(other)
    assert hist.counts == [1, 3, 1, 1]
    assert hist.total == 6
    with pytest.raises(ValueError):
        hist.merge(metrics.Histogram(bounds=(1.0, 2.0)))


def test_histogram_quantile_interpolates_and_overflow_reports_max():
    entry = {"bounds": [0.1, 1.0], "counts": [0, 10, 0], "count": 10,
             "sum": 5.0, "max": 0.9}
    # all mass in (0.1, 1.0]: the median interpolates to the middle
    assert metrics.histogram_quantile(entry, 0.5) == pytest.approx(0.55)
    assert metrics.histogram_quantile(entry, 1.0) == pytest.approx(1.0)
    overflow = {"bounds": [0.1], "counts": [0, 4], "count": 4,
                "sum": 100.0, "max": 42.0}
    assert metrics.histogram_quantile(overflow, 0.99) == 42.0
    assert metrics.histogram_quantile({"bounds": [], "counts": [],
                                       "count": 0}, 0.5) is None


def test_merge_snapshots_sums_and_merges_bucketwise():
    a = {"counters": {"n_total": 2}, "gauges": {"g": 1},
         "histograms": {"h": {"bounds": [1.0], "counts": [1, 0],
                              "count": 1, "sum": 0.5, "max": 0.5}}}
    b = {"counters": {"n_total": 3}, "gauges": {"g": 2},
         "histograms": {"h": {"bounds": [1.0], "counts": [0, 2],
                              "count": 2, "sum": 6.0, "max": 4.0}}}
    merged = metrics.merge_snapshots([a, b])
    assert merged["counters"]["n_total"] == 5
    assert merged["gauges"]["g"] == 3
    assert merged["histograms"]["h"]["counts"] == [1, 2]
    assert merged["histograms"]["h"]["count"] == 3
    assert merged["histograms"]["h"]["max"] == 4.0
    # mismatched bounds fold count/sum only instead of corrupting buckets
    c = {"histograms": {"h": {"bounds": [9.0], "counts": [5, 0],
                              "count": 5, "sum": 1.0, "max": 0.2}}}
    folded = metrics.merge_snapshots([a, c])
    assert folded["histograms"]["h"]["counts"] == [1, 0]
    assert folded["histograms"]["h"]["count"] == 6


def test_prometheus_text_exposition(registry):
    metrics.inc("req_total", 3, shard="s0")
    metrics.set_gauge("depth", 2)
    metrics.observe("lat_seconds", 0.3, bounds=(0.1, 1.0))
    text = metrics.to_prometheus(metrics.snapshot())
    assert 'req_total{shard="s0"} 3\n' in text
    assert "depth 2\n" in text
    assert 'lat_seconds_bucket{le="0.1"} 0\n' in text
    assert 'lat_seconds_bucket{le="1"} 1\n' in text
    assert 'lat_seconds_bucket{le="+Inf"} 1\n' in text
    assert "lat_seconds_count 1\n" in text


# -- the metrics protocol op -------------------------------------------------


def test_metrics_op_json_and_text_forms(session, registry):
    handle_request(session, {"op": "submit", "cell": dict(FAST_STREAM)})
    reply = handle_request(session, {"op": "metrics"})
    assert reply["status"] == "ok"
    assert reply["enabled"] is True
    assert reply["session"] == session.name
    assert "text" not in reply
    snap = reply["metrics"]
    assert metrics.counter_total(snap, "service_submitted_total") >= 1
    assert metrics.counter_total(snap, "service_completed_total") >= 1
    text_reply = handle_request(session, {"op": "metrics",
                                          "format": "text"})
    assert "service_submitted_total" in text_reply["text"]


def test_metrics_op_is_side_effect_free(session, registry):
    before = handle_request(session, {"op": "metrics"})["metrics"]
    again = handle_request(session, {"op": "metrics"})["metrics"]
    assert before["counters"] == again["counters"]
    assert session.stats.as_dict() == session.stats.as_dict()


def test_metrics_op_without_registry_reports_disabled(session):
    metrics.disable()
    reply = handle_request(session, {"op": "metrics"})
    assert reply["status"] == "ok"
    assert reply["enabled"] is False
    assert reply["metrics"]["counters"] == {}


# -- router cluster scrape error paths ---------------------------------------


class FakeMetricsShard:
    """A shard answering the ops the router's scrape needs."""

    def __init__(self, name, metrics_reply):
        self.name = name
        self.metrics_reply = metrics_reply
        self.server = TcpNdjsonServer(("127.0.0.1", 0), self.handle)
        serve_in_thread(self.server, name)

    @property
    def address(self):
        return self.server.address

    def handle(self, message):
        op = message.get("op")
        if op == "metrics":
            return self.metrics_reply
        return {"status": "ok", "op": op, "session": self.name}

    def kill(self):
        self.server.shutdown()
        self.server.close()


def _dead_address():
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


def test_router_metrics_scrape_degrades_per_shard(registry):
    good_snap = {"counters": {"service_completed_total": 7},
                 "gauges": {}, "histograms": {}}
    good = FakeMetricsShard("good", {"status": "ok", "op": "metrics",
                                     "metrics": good_snap})
    malformed = FakeMetricsShard("malformed", {"status": "ok",
                                               "op": "metrics"})
    router = Router([("good", good.address),
                     ("malformed", malformed.address),
                     ("dead", _dead_address())],
                    retries=0, backoff_s=0.01, request_timeout_s=5.0)
    try:
        metrics.inc("router_forwards_total", 2, shard="good")
        reply = router.handle_message({"op": "metrics", "format": "text"})
        assert reply["status"] == "ok"
        assert reply["router"] is True
        merged = reply["metrics"]
        # the good shard's counters merged with the router's own
        assert metrics.counter_total(
            merged, "service_completed_total") == 7
        assert metrics.counter_total(merged, "router_forwards_total") == 2
        assert "metrics" in reply["shards"]["good"]
        assert "error" in reply["shards"]["dead"]
        assert "malformed" in reply["shards"]["malformed"]["error"]
        assert "service_completed_total 7" in reply["text"]
    finally:
        router.stop()
        good.kill()
        malformed.kill()


# -- trace propagation -------------------------------------------------------


def _spans_by_name(recorder, trace_id):
    spans = {}
    for span in recorder.trace_spans:
        if span["trace"] == trace_id:
            spans.setdefault(span["name"], []).append(span)
    return spans


def test_trace_round_trip_router_to_worker(tmp_path, recorder):
    """One trace_id crosses router → shard → session → executor."""
    session = Session(cache=ResultCache(directory=tmp_path / "cache"),
                      jobs=1)
    shard = TcpServiceServer(("127.0.0.1", 0), session)
    serve_in_thread(shard, "traced-shard")
    router = Router([("s0", shard.address)], retries=0, backoff_s=0.01,
                    request_timeout_s=30.0)
    trace_id = tracing.new_trace_id()
    try:
        cell = dict(FAST_STREAM)
        cell["trace"] = tracing.wire_trace(trace_id)
        reply = router.handle_message({"op": "submit", "cell": cell})
        assert reply["status"] == "ok"
        assert reply["trace_id"] == trace_id
    finally:
        router.stop()
        shard.shutdown()
        shard.close()
        session.close()

    spans = _spans_by_name(recorder, trace_id)
    for name in ("router_forward", "service_submit", "session_job",
                 "worker_batch"):
        assert name in spans, f"missing {name} span"
        assert len(spans[name]) == 1
    fwd, sub = spans["router_forward"][0], spans["service_submit"][0]
    job, work = spans["session_job"][0], spans["worker_batch"][0]
    # parent chain: each hop hangs off the hop above it
    assert fwd["parent"] is None
    assert sub["parent"] == fwd["span"]
    assert job["parent"] == sub["span"]
    assert work["parent"] == job["span"]
    assert all(s["count"] == 1 for s in (fwd, sub, job, work))
    assert job["attrs"]["status"] == "ok"


def test_untraced_submit_records_no_spans(session, recorder):
    reply = handle_request(session, {"op": "submit",
                                     "cell": dict(FAST_CG)})
    assert reply["status"] == "ok"
    assert "trace_id" not in reply
    assert recorder.trace_spans == []


def test_batch_traced_cells_record_spans_per_cell(session, recorder):
    trace_a, trace_b = tracing.new_trace_id(), tracing.new_trace_id()
    cell_a = dict(FAST_STREAM, trace=tracing.wire_trace(trace_a))
    cell_b = dict(FAST_CG, trace=tracing.wire_trace(trace_b))
    reply = handle_request(session, {"op": "batch",
                                     "cells": [cell_a, cell_b,
                                               dict(FAST_STREAM)]})
    assert reply["status"] == "ok"
    assert reply["results"][0]["trace_id"] == trace_a
    assert reply["results"][1]["trace_id"] == trace_b
    assert "trace_id" not in reply["results"][2]
    for trace_id in (trace_a, trace_b):
        spans = _spans_by_name(recorder, trace_id)
        assert "service_submit" in spans
        assert "session_job" in spans
        assert spans["session_job"][0]["parent"] == \
            spans["service_submit"][0]["span"]


def test_malformed_trace_envelope_degrades_to_untraced(session, recorder):
    cell = dict(FAST_STREAM)
    cell["trace"] = {"trace_id": 12345}  # not a string: invalid
    reply = handle_request(session, {"op": "submit", "cell": cell})
    assert reply["status"] == "ok"
    assert recorder.trace_spans == []


def test_trace_span_limit_aggregates_then_drops():
    rec = RunRecorder(tool="test")
    rec.TRACE_SPAN_LIMIT = 2
    for _ in range(5):
        rec.record_trace_span("hop", "t1", tracing.new_span_id(), None,
                              time.time(), 0.01)
    assert len(rec.trace_spans) == 2
    # overflow aggregated into the same-shaped span: counts sum to 5
    assert sum(s["count"] for s in rec.trace_spans) == 5
    assert rec.trace_spans_dropped == 0
    # a span with no same-shaped target to fold into counts as dropped
    rec.record_trace_span("other", "t2", tracing.new_span_id(), None,
                          time.time(), 0.01)
    assert rec.trace_spans_dropped == 1
    record = rec.finish(config={})
    assert record["trace_spans_dropped"] == 1
    assert sum(s["count"] for s in record["trace_spans"]) == 5


# -- trace export ------------------------------------------------------------


def _write_trace_record(tmp_path, tool, spans):
    rec = RunRecorder(tool=tool)
    rec.start()
    rec.stop()
    for span in spans:
        rec.record_trace_span(**span)
    ledger.append(rec.finish(config={}), tmp_path)


def test_trace_export_stitches_processes(tmp_path, capsys):
    trace_id = "feedbeefcafef00d"
    t0 = 1700000000.0
    _write_trace_record(tmp_path, "cluster", [
        {"name": "router_forward", "trace_id": trace_id, "span_id": "r1",
         "parent_span": None, "t0": t0, "dur_s": 0.5},
    ])
    _write_trace_record(tmp_path, "serve", [
        {"name": "service_submit", "trace_id": trace_id, "span_id": "s1",
         "parent_span": "r1", "t0": t0 + 0.1, "dur_s": 0.3,
         "attrs": {"session": "shard-0"}},
        {"name": "service_submit", "trace_id": "othertrace",
         "span_id": "x1", "parent_span": None, "t0": t0, "dur_s": 0.1},
    ])
    spans = tracecmd.collect_spans(trace_id, tmp_path)
    assert [s["name"] for s in spans] == ["router_forward",
                                          "service_submit"]
    assert spans[1]["proc"] == "shard-0"
    chrome = tracecmd.to_chrome_trace(trace_id, spans)
    slices = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    assert len(slices) == 2
    assert slices[0]["ts"] == 0.0
    assert slices[1]["ts"] == pytest.approx(1e5)  # +0.1 s in µs
    assert slices[0]["pid"] != slices[1]["pid"]
    assert {e["args"]["name"] for e in chrome["traceEvents"]
            if e["ph"] == "M"} == {"cluster", "shard-0"}

    out = tmp_path / "trace.json"
    rc = tracecmd.main(["export", trace_id, "--out", str(out),
                        "--ledger-dir", str(tmp_path)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["otherData"]["trace_id"] == trace_id

    rc = tracecmd.main(["list", "--ledger-dir", str(tmp_path)])
    assert rc == 0
    listing = capsys.readouterr().out
    assert trace_id in listing and "othertrace" in listing


def test_trace_export_unknown_id_fails_with_hint(tmp_path, capsys):
    rc = tracecmd.main(["export", "nope", "--ledger-dir", str(tmp_path)])
    assert rc == 1
    assert "shutdown" in capsys.readouterr().err


# -- regress replay gate -----------------------------------------------------


def _replay_record(ok, p99, config_hash="h"):
    return {"tool": "replay", "config_hash": config_hash,
            "elapsed_s": 1.0, "status": "ok",
            "replay": {"ok": ok, "errors": 0,
                       "latency_p99_ms": p99}}


def test_regress_skips_zero_completed_replay_candidate():
    records = [_replay_record(100, 20.0), _replay_record(0, 0.0)]
    summary, failures, notes = evaluate(records)
    assert failures == []
    assert any("zero requests" in note for note in notes)


def test_regress_excludes_zero_completed_replay_from_baseline():
    # a 0-ok baseline record carries p99=0.0; gating against it would
    # flag any real latency as an unbounded regression
    records = [_replay_record(0, 0.0), _replay_record(100, 20.0)]
    summary, failures, notes = evaluate(records)
    assert failures == []


def test_regress_still_gates_real_replay_regressions():
    records = [_replay_record(100, 20.0), _replay_record(100, 20.0),
               _replay_record(100, 200.0)]
    _summary, failures, _notes = evaluate(records)
    assert any("p99" in failure for failure in failures)


# -- history --json ----------------------------------------------------------


def test_history_json_emits_run_and_metric_series(tmp_path, capsys):
    from repro.telemetry.history import main as history_main

    for elapsed in (1.0, 2.0):
        rec = RunRecorder(tool="bench")
        rec.start()
        rec.stop()
        record = rec.finish(config={})
        record["elapsed_s"] = elapsed
        ledger.append(record, tmp_path)
    rc = history_main(["--json", "--ledger-dir", str(tmp_path)])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    assert len(payload["runs"]) == 2
    assert payload["metrics"]["elapsed"] == [1.0, 2.0]
    assert "replay-p99-ms" in payload["metrics"]


# -- repro-bench top ---------------------------------------------------------


def test_top_once_renders_live_daemon(tmp_path, registry, capsys):
    from repro.telemetry.top import main as top_main

    session = Session(cache=ResultCache(directory=tmp_path / "cache"),
                      jobs=1)
    shard = TcpServiceServer(("127.0.0.1", 0), session)
    serve_in_thread(shard, "top-test")
    try:
        handle_request(session, {"op": "submit",
                                 "cell": dict(FAST_STREAM)})
        host, port = shard.address
        rc = top_main(["--connect", f"{host}:{port}", "--once"])
    finally:
        shard.shutdown()
        shard.close()
        session.close()
    assert rc == 0
    frame = capsys.readouterr().out
    assert "up" in frame
    assert "done" in frame


def test_top_once_reports_dead_endpoint(capsys):
    from repro.telemetry.top import main as top_main

    host, port = _dead_address()
    rc = top_main(["--connect", f"{host}:{port}", "--once"])
    assert rc == 1
    assert "DOWN" in capsys.readouterr().out
