"""Advanced engine tests: condition failures, urgency, stress properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    AllOf,
    AnyOf,
    BandwidthResource,
    Engine,
    Event,
    Resource,
    Store,
    Tracer,
)


# -- condition events -------------------------------------------------------

def test_all_of_fails_fast_on_child_failure():
    eng = Engine()
    good, bad = eng.event(), eng.event()
    caught = {}

    def watcher(eng):
        try:
            yield eng.all_of([good, bad])
        except RuntimeError as exc:
            caught["exc"] = exc

    eng.process(watcher(eng))
    bad.fail(RuntimeError("child died"))
    eng.run()
    assert "child died" in str(caught["exc"])


def test_any_of_fails_only_when_all_fail():
    eng = Engine()
    a, b = eng.event(), eng.event()
    outcome = {}

    def watcher(eng):
        try:
            value = yield eng.any_of([a, b])
            outcome["ok"] = value
        except ValueError:
            outcome["failed"] = True

    eng.process(watcher(eng))
    a.fail(ValueError("first"))
    b.succeed("second wins")
    eng.run()
    assert "failed" not in outcome
    assert 1 in outcome["ok"].values() or "second wins" in outcome["ok"].values()


def test_any_of_all_failures_propagates():
    eng = Engine()
    a, b = eng.event(), eng.event()
    outcome = {}

    def watcher(eng):
        try:
            yield eng.any_of([a, b])
        except ValueError:
            outcome["failed"] = True

    eng.process(watcher(eng))
    a.fail(ValueError("one"))
    b.fail(ValueError("two"))
    eng.run()
    assert outcome.get("failed")


def test_condition_rejects_foreign_events():
    eng_a, eng_b = Engine(), Engine()
    with pytest.raises(ValueError):
        AllOf(eng_a, [Event(eng_a), Event(eng_b)])


def test_late_callback_on_processed_event_runs_immediately():
    eng = Engine()
    ev = eng.event()
    ev.succeed("v")
    eng.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


# -- urgency ordering ----------------------------------------------------------

def test_urgent_callbacks_run_before_normal_events():
    eng = Engine()
    order = []
    eng.schedule_callback(1.0, lambda _e: order.append("normal"))
    eng.schedule_callback(1.0, lambda _e: order.append("urgent"), urgent=True)
    eng.run()
    assert order == ["urgent", "normal"]


def test_bandwidth_completion_visible_at_same_instant():
    """A flow completing at t also frees capacity for events at t."""
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=100.0)
    times = {}

    def first(eng):
        times["a"] = yield pipe.transfer(100.0)

    def second(eng):
        yield eng.timeout(1.0)  # exactly when the first flow completes
        times["b"] = yield pipe.transfer(100.0)

    eng.process(first(eng))
    eng.process(second(eng))
    eng.run()
    assert times["a"] == pytest.approx(1.0, rel=1e-6)
    # the second transfer gets the full pipe: ~1 s, not ~2 s
    assert times["b"] == pytest.approx(2.0, rel=1e-3)


# -- stress properties ------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=10.0),   # start
                  st.floats(min_value=1.0, max_value=1e5)),   # bytes
        min_size=1, max_size=12,
    )
)
def test_bandwidth_random_arrivals_conserve_bytes(flows):
    eng = Engine()
    pipe = BandwidthResource(eng, capacity=1234.5)
    events = []

    def launcher(eng, delay, nbytes):
        yield eng.timeout(delay)
        events.append(pipe.transfer(nbytes))

    for delay, nbytes in flows:
        eng.process(launcher(eng, delay, nbytes))
    eng.run()
    total = sum(nbytes for _d, nbytes in flows)
    assert pipe.total_transferred == pytest.approx(total, rel=1e-6)
    assert all(ev.triggered and ev.ok for ev in events)


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=5),
    jobs=st.integers(min_value=1, max_value=20),
)
def test_resource_throughput_property(capacity, jobs):
    """A capacity-k semaphore with unit jobs finishes in ceil(n/k) time."""
    eng = Engine()
    res = Resource(eng, capacity=capacity)

    def worker(eng):
        req = res.request()
        yield req
        yield eng.timeout(1.0)
        res.release()

    for _ in range(jobs):
        eng.process(worker(eng))
    eng.run()
    assert eng.now == pytest.approx(-(-jobs // capacity) * 1.0)


@settings(max_examples=25, deadline=None)
@given(items=st.lists(st.integers(), min_size=0, max_size=30))
def test_store_fifo_property(items):
    eng = Engine()
    store = Store(eng)
    received = []

    def consumer(eng):
        for _ in items:
            value = yield store.get()
            received.append(value)

    def producer(eng):
        for item in items:
            yield eng.timeout(0.1)
            store.put(item)

    eng.process(consumer(eng))
    eng.process(producer(eng))
    eng.run()
    assert received == items


# -- tracer ----------------------------------------------------------------------

def test_tracer_aggregations():
    tracer = Tracer()
    tracer.emit(0.0, "compute", rank=0, duration=1.0)
    tracer.emit(1.0, "compute", rank=1, duration=2.0)
    tracer.emit(3.0, "comm", rank=0, duration=0.5)
    assert len(tracer) == 3
    assert tracer.total_time("compute") == pytest.approx(3.0)
    assert tracer.total_time("compute", rank=0) == pytest.approx(1.0)
    assert len(tracer.by_category("comm")) == 1
    assert len(tracer.by_rank(0)) == 2
    tracer.clear()
    assert len(tracer) == 0


def test_tracer_disabled_is_noop():
    tracer = Tracer(enabled=False)
    tracer.emit(0.0, "compute", duration=1.0)
    assert len(tracer) == 0
