"""Tests for NUMA policies, the page table, and the numactl front-end."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numa import (
    PAGE_SIZE,
    FirstTouch,
    Interleave,
    LocalAlloc,
    Membind,
    NumactlConfig,
    PageTable,
    parse_numactl,
)


# -- policies ---------------------------------------------------------------

def test_localalloc_always_local():
    policy = LocalAlloc()
    for page in range(20):
        assert policy.place_page(3, page, 8) == 3
    assert policy.traffic_distribution(3, 8) == {3: 1.0}


def test_first_touch_no_migration_is_local():
    policy = FirstTouch(remote_fraction=0.0)
    assert policy.traffic_distribution(2, 8) == {2: 1.0}
    assert all(policy.place_page(2, p, 8) == 2 for p in range(50))


def test_first_touch_migration_spreads_remainder():
    policy = FirstTouch(remote_fraction=0.1)
    dist = policy.traffic_distribution(0, 4)
    assert dist[0] == pytest.approx(0.9)
    for node in (1, 2, 3):
        assert dist[node] == pytest.approx(0.1 / 3)


def test_first_touch_single_node_always_local():
    policy = FirstTouch(remote_fraction=0.5)
    assert policy.traffic_distribution(0, 1) == {0: 1.0}


def test_first_touch_bad_fraction():
    with pytest.raises(ValueError):
        FirstTouch(remote_fraction=1.0)


def test_membind_round_robin_over_set():
    policy = Membind(nodes=(0, 1))
    placed = [policy.place_page(5, p, 8) for p in range(6)]
    assert placed == [0, 1, 0, 1, 0, 1]
    assert policy.traffic_distribution(5, 8) == {0: 0.5, 1: 0.5}


def test_membind_validates_nodes():
    with pytest.raises(ValueError):
        Membind(nodes=())
    with pytest.raises(ValueError):
        Membind(nodes=(0, 0))
    with pytest.raises(ValueError):
        Membind(nodes=(9,)).place_page(0, 0, 8)


def test_interleave_all_nodes_default():
    policy = Interleave()
    dist = policy.traffic_distribution(0, 4)
    assert dist == {n: pytest.approx(0.25) for n in range(4)}
    assert [policy.place_page(0, p, 4) for p in range(4)] == [0, 1, 2, 3]


def test_interleave_subset():
    policy = Interleave(nodes=(2, 5))
    assert policy.traffic_distribution(0, 8) == {2: 0.5, 5: 0.5}


def test_policy_rejects_bad_toucher():
    with pytest.raises(ValueError):
        LocalAlloc().place_page(8, 0, 8)


@settings(max_examples=60, deadline=None)
@given(
    num_nodes=st.integers(min_value=1, max_value=8),
    home=st.integers(min_value=0, max_value=7),
    remote=st.floats(min_value=0.0, max_value=0.9),
)
def test_distributions_sum_to_one_property(num_nodes, home, remote):
    home = home % num_nodes
    for policy in (FirstTouch(remote_fraction=remote), LocalAlloc(),
                   Interleave(), Membind(nodes=(0,))):
        dist = policy.traffic_distribution(home, num_nodes)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert all(0 <= n < num_nodes for n in dist)


@settings(max_examples=40, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=8),
    npages=st.integers(min_value=200, max_value=2000),
)
def test_page_realization_matches_distribution_property(num_nodes, npages):
    """Page-granular placement converges to the analytic distribution."""
    table = PageTable(num_nodes=num_nodes)
    policy = Interleave()
    region = table.allocate(task=0, nbytes=npages * PAGE_SIZE,
                            toucher_node=0, policy=policy)
    fractions = region.node_fractions()
    expected = policy.traffic_distribution(0, num_nodes)
    for node, frac in expected.items():
        assert fractions.get(node, 0.0) == pytest.approx(frac, abs=2.0 / npages * num_nodes)


def test_first_touch_page_realization_matches_fraction():
    policy = FirstTouch(remote_fraction=0.1)
    table = PageTable(num_nodes=4)
    region = table.allocate(0, 5000 * PAGE_SIZE, toucher_node=1, policy=policy)
    fractions = region.node_fractions()
    assert fractions[1] == pytest.approx(0.9, abs=0.02)


# -- page table ---------------------------------------------------------------

def test_page_table_page_count_rounds_up():
    table = PageTable(num_nodes=2)
    region = table.allocate(0, PAGE_SIZE + 1, 0, LocalAlloc())
    assert region.num_pages == 2


def test_page_table_rejects_empty_allocation():
    table = PageTable(num_nodes=2)
    with pytest.raises(ValueError):
        table.allocate(0, 0, 0, LocalAlloc())


def test_page_table_indices_continue_across_regions():
    """Round-robin policies must not restart at every allocation."""
    table = PageTable(num_nodes=2)
    policy = Interleave()
    first = table.allocate(0, PAGE_SIZE, 0, policy)   # page 0 -> node 0
    second = table.allocate(0, PAGE_SIZE, 0, policy)  # page 1 -> node 1
    assert first.page_nodes == [0]
    assert second.page_nodes == [1]


def test_page_table_task_fractions_aggregates():
    table = PageTable(num_nodes=2)
    table.allocate(7, 10 * PAGE_SIZE, 0, LocalAlloc())
    table.allocate(7, 10 * PAGE_SIZE, 1, LocalAlloc())
    assert table.task_fractions(7) == {0: 0.5, 1: 0.5}


def test_page_table_node_load_detects_hotspot():
    table = PageTable(num_nodes=4)
    for task in range(4):
        table.allocate(task, 100 * PAGE_SIZE, task, Membind(nodes=(0,)))
    load = table.node_load()
    assert load == {0: 400}


# -- numactl front-end -----------------------------------------------------------

def test_numactl_default_config():
    cfg = NumactlConfig()
    assert not cfg.binds_cpu
    assert cfg.command_line() == "(no numactl)"
    policy = cfg.memory_policy(default_remote_fraction=0.08)
    assert isinstance(policy, FirstTouch)
    assert policy.remote_fraction == pytest.approx(0.08)


def test_numactl_bound_default_has_no_migration():
    cfg = NumactlConfig(cpunodebind=(0,))
    policy = cfg.memory_policy(default_remote_fraction=0.08)
    assert policy.remote_fraction == 0.0


def test_numactl_localalloc():
    cfg = NumactlConfig(cpunodebind=(0, 1), localalloc=True)
    assert isinstance(cfg.memory_policy(), LocalAlloc)
    assert "--localalloc" in cfg.command_line()


def test_numactl_exclusive_memory_options():
    with pytest.raises(ValueError):
        NumactlConfig(localalloc=True, membind=(0,))
    with pytest.raises(ValueError):
        NumactlConfig(membind=(0,), interleave=(1,))


def test_numactl_exclusive_cpu_options():
    with pytest.raises(ValueError):
        NumactlConfig(cpunodebind=(0,), physcpubind=(0,))


def test_numactl_empty_id_list_rejected():
    with pytest.raises(ValueError):
        NumactlConfig(membind=())


def test_parse_numactl_round_trip():
    cfg = parse_numactl(
        ["numactl", "--cpunodebind=0-3", "--membind=0,1"]
    )
    assert cfg.cpunodebind == (0, 1, 2, 3)
    assert cfg.membind == (0, 1)
    assert isinstance(cfg.memory_policy(), Membind)


def test_parse_numactl_interleave_all():
    cfg = parse_numactl(["--interleave=all"])
    assert cfg.interleave == ()
    assert isinstance(cfg.memory_policy(), Interleave)


def test_parse_numactl_unknown_option():
    with pytest.raises(ValueError):
        parse_numactl(["--frobnicate=1"])
    with pytest.raises(ValueError):
        parse_numactl(["--membind"])
