"""Tests for metrics and report rendering."""

import pytest

from repro.core import (
    SeriesResult,
    TableResult,
    bandwidth,
    best_scheme,
    flops_rate,
    format_value,
    improvement_percent,
    parallel_efficiency,
    per_core,
    speedup,
)


# -- metrics -----------------------------------------------------------------

def test_speedup_basic():
    assert speedup(10.0, 5.0) == pytest.approx(2.0)


def test_speedup_validates():
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)
    with pytest.raises(ValueError):
        speedup(1.0, -1.0)


def test_parallel_efficiency_table4_semantics():
    # t1=100, t16=25 -> speedup 4 on 16 cores -> efficiency 0.25
    assert parallel_efficiency(100.0, 25.0, 16) == pytest.approx(0.25)
    # superlinear case can exceed 1.0
    assert parallel_efficiency(100.0, 45.0, 2) > 1.0


def test_parallel_efficiency_validates_cores():
    with pytest.raises(ValueError):
        parallel_efficiency(1.0, 1.0, 0)


def test_per_core():
    assert per_core(8.0, 4) == 2.0
    with pytest.raises(ValueError):
        per_core(8.0, 0)


def test_rates():
    assert flops_rate(1e9, 0.5) == pytest.approx(2e9)
    assert bandwidth(100.0, 4.0) == pytest.approx(25.0)
    with pytest.raises(ValueError):
        flops_rate(1.0, 0.0)


def test_improvement_percent():
    # paper phrasing: "over 25% performance improvement"
    assert improvement_percent(100.0, 74.0) == pytest.approx(26.0)
    assert improvement_percent(100.0, 110.0) == pytest.approx(-10.0)


def test_best_scheme():
    times = {"Default": 10.0, "One MPI + Local Alloc": 8.0, "Interleave": 12.0}
    assert best_scheme(times) == "One MPI + Local Alloc"
    with pytest.raises(ValueError):
        best_scheme({})


# -- format_value ---------------------------------------------------------------

def test_format_value_dash_for_none():
    assert format_value(None) == "—"


def test_format_value_numbers():
    assert format_value(3) == "3"
    assert format_value(3.14159) == "3.14"
    assert format_value(0.0) == "0"
    assert format_value(12345.6) == "1.23e+04"


# -- TableResult -----------------------------------------------------------------

def make_table():
    t = TableResult(title="demo", headers=["tasks", "Default", "Local"])
    t.add_row(2, 10.0, 8.0)
    t.add_row(4, 6.0, None)
    return t


def test_table_add_row_checks_width():
    t = make_table()
    with pytest.raises(ValueError):
        t.add_row(8, 1.0)


def test_table_column_and_cell():
    t = make_table()
    assert t.column("Default") == [10.0, 6.0]
    assert t.cell(4, "Local") is None
    assert t.cell(2, "Default") == 10.0
    with pytest.raises(KeyError):
        t.cell(99, "Default")


def test_table_to_text_contains_all_cells():
    text = make_table().to_text()
    assert "demo" in text
    assert "10.00" in text
    assert "—" in text


def test_table_to_csv_round_trips_headers():
    csv = make_table().to_csv()
    lines = csv.strip().split("\n")
    assert lines[0] == "tasks,Default,Local"
    assert len(lines) == 3


def test_table_notes_rendered():
    t = make_table()
    t.notes.append("times in seconds")
    assert "note: times in seconds" in t.to_text()


# -- SeriesResult ---------------------------------------------------------------

def make_series():
    s = SeriesResult(title="fig", x_label="cores", y_label="GB/s")
    s.add_point("Longs", 1, 1.8)
    s.add_point("Longs", 2, 3.5)
    s.add_point("DMZ", 1, 3.6)
    return s


def test_series_xs_union():
    assert make_series().xs() == [1, 2]


def test_series_at_lookup():
    s = make_series()
    assert s.at("DMZ", 1) == pytest.approx(3.6)
    assert s.at("DMZ", 2) is None
    assert s.at("nope", 1) is None


def test_series_to_table_shape():
    table = make_series().to_table()
    assert table.headers == ["cores", "DMZ", "Longs"]
    assert len(table.rows) == 2
    assert table.cell(2, "DMZ") is None


def test_series_to_text_mentions_y_label():
    assert "GB/s" in make_series().to_text()


def test_table_to_json_round_trips():
    import json

    payload = json.loads(make_table().to_json())
    assert payload["headers"] == ["tasks", "Default", "Local"]
    assert payload["rows"][1] == [4, 6.0, None]


def test_series_to_json_round_trips():
    import json

    payload = json.loads(make_series().to_json())
    assert payload["y_label"] == "GB/s"
    assert payload["series"]["DMZ"] == [[1, 3.6]]
