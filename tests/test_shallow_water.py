"""Tests for the functional shallow-water ocean core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.pop import ShallowWaterModel, ShallowWaterState


def make_model(**kwargs):
    defaults = dict(nx=24, ny=20, dx=1.0, gravity=9.8, depth=50.0,
                    coriolis=0.05)
    defaults.update(kwargs)
    return ShallowWaterModel(**defaults)


def test_state_validation():
    with pytest.raises(ValueError):
        ShallowWaterState(np.zeros((4, 4)), np.zeros((4, 4)),
                          np.zeros((4, 5)))
    with pytest.raises(ValueError):
        ShallowWaterState(np.zeros(4), np.zeros(4), np.zeros(4))


def test_model_validation():
    with pytest.raises(ValueError):
        make_model(nx=2)
    with pytest.raises(ValueError):
        make_model(depth=-1.0)


def test_step_rejects_unstable_dt():
    model = make_model()
    state = model.gaussian_bump()
    with pytest.raises(ValueError):
        model.step(state, dt=10 * model.max_stable_dt())


def test_mass_conserved_exactly():
    model = make_model()
    state = model.gaussian_bump(amplitude=0.5)
    mass0 = model.total_mass(state)
    dt = 0.5 * model.max_stable_dt()
    for _ in range(200):
        state = model.step(state, dt)
    assert model.total_mass(state) == pytest.approx(mass0, abs=1e-9)


def test_energy_bounded():
    """The trapezoidal step keeps total energy near its initial value."""
    model = make_model()
    state = model.gaussian_bump(amplitude=0.2)
    e0 = model.total_energy(state)
    dt = 0.4 * model.max_stable_dt()
    for _ in range(300):
        state = model.step(state, dt)
    assert model.total_energy(state) < 1.1 * e0
    assert model.total_energy(state) > 0.3 * e0  # waves, not decay to zero


def test_gravity_waves_radiate_from_bump():
    """An unbalanced bump must excite motion (u, v leave zero)."""
    model = make_model(coriolis=0.0)
    state = model.gaussian_bump(amplitude=1.0)
    dt = 0.4 * model.max_stable_dt()
    for _ in range(20):
        state = model.step(state, dt)
    assert np.max(np.abs(state.u)) > 1e-3


def test_geostrophic_state_is_nearly_steady():
    """A balanced eddy persists; an unbalanced bump disperses."""
    model = make_model()
    dt = 0.4 * model.max_stable_dt()

    balanced = model.geostrophic_state(amplitude=0.1)
    h0 = balanced.h.copy()
    state = balanced.copy()
    for _ in range(100):
        state = model.step(state, dt)
    balanced_drift = float(np.max(np.abs(state.h - h0)))

    bump = model.gaussian_bump(amplitude=0.1)
    state = bump.copy()
    for _ in range(100):
        state = model.step(state, dt)
    bump_drift = float(np.max(np.abs(state.h - bump.h)))

    assert balanced_drift < 0.5 * bump_drift


def test_geostrophic_requires_rotation():
    with pytest.raises(ValueError):
        make_model(coriolis=0.0).geostrophic_state()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 200))
def test_mass_conservation_property(seed):
    model = make_model(nx=12, ny=12)
    rng = np.random.default_rng(seed)
    state = ShallowWaterState(
        rng.normal(0, 0.01, (12, 12)),
        rng.normal(0, 0.01, (12, 12)),
        rng.normal(0, 0.1, (12, 12)),
    )
    mass0 = model.total_mass(state)
    dt = 0.3 * model.max_stable_dt()
    for _ in range(50):
        state = model.step(state, dt)
    assert model.total_mass(state) == pytest.approx(mass0, abs=1e-9)
