"""Tests for the declarative synthetic workload builder."""

import json

import pytest

from repro.core import AffinityScheme, run_workload
from repro.service import default_session
from repro.core.ops import Allreduce, Barrier, Compute, SendRecv
from repro.machine import GB, longs
from repro.workloads import SyntheticWorkload


BASE_SPEC = {
    "name": "demo-solver",
    "ntasks": 4,
    "steps": 20,
    "simulated_steps": 5,
    "ops": [
        {"kind": "compute", "flops": 2e8, "dram_bytes": 1e8,
         "working_set": 5e7, "reuse": 0.4, "phase": "stencil"},
        {"kind": "halo", "nbytes": 65536, "phase": "exchange"},
        {"kind": "allreduce", "nbytes": 8, "phase": "dots"},
    ],
}


def test_from_spec_builds_and_runs():
    workload = SyntheticWorkload.from_spec(BASE_SPEC)
    assert workload.time_scale == pytest.approx(4.0)
    result = run_workload(longs(), workload, AffinityScheme.ONE_MPI_LOCAL)
    assert result.phase_time("stencil") > 0
    assert result.phase_time("exchange") > 0
    # halo payloads plus the tiny allreduce rounds
    assert result.bytes_sent == 4 * 5 * 65536 + 40 * 8


def test_from_json_round_trip():
    workload = SyntheticWorkload.from_json(json.dumps(BASE_SPEC))
    assert workload.name == "demo-solver"
    assert workload.ntasks == 4


def test_program_structure_per_step():
    workload = SyntheticWorkload.from_spec(BASE_SPEC)
    ops = list(workload.program(2))
    computes = [op for op in ops if isinstance(op, Compute)]
    halos = [op for op in ops if isinstance(op, SendRecv)]
    assert len(computes) == 5 and len(halos) == 5
    assert halos[0].send_to == 3 and halos[0].recv_from == 1


def test_single_task_drops_comm_ops():
    spec = dict(BASE_SPEC, ntasks=1)
    ops = list(SyntheticWorkload.from_spec(spec).program(0))
    assert not any(isinstance(op, (SendRecv, Allreduce)) for op in ops)
    assert any(isinstance(op, Compute) for op in ops)


def test_bad_specs_fail_at_build_time():
    with pytest.raises(ValueError):
        SyntheticWorkload.from_spec({"name": "x", "ntasks": 2, "ops": []})
    with pytest.raises(ValueError):
        SyntheticWorkload.from_spec(
            {"name": "x", "ntasks": 2,
             "ops": [{"kind": "warp", "nbytes": 1}]})
    with pytest.raises(ValueError):
        SyntheticWorkload.from_spec(
            {"name": "x", "ntasks": 2,
             "ops": [{"kind": "compute", "flopz": 1.0}]})
    with pytest.raises(ValueError):
        SyntheticWorkload.from_spec({"ntasks": 2, "ops": [{}]})


def test_all_op_kinds_accepted():
    spec = {
        "name": "kinds", "ntasks": 4,
        "ops": [
            {"kind": "compute", "flops": 1e6},
            {"kind": "halo", "nbytes": 1024},
            {"kind": "send", "to_offset": 2, "nbytes": 512},
            {"kind": "allreduce", "nbytes": 8},
            {"kind": "alltoall", "nbytes": 256},
            {"kind": "allgather", "nbytes": 128},
            {"kind": "bcast", "nbytes": 4096, "root": 1},
            {"kind": "barrier"},
        ],
    }
    result = run_workload(longs(), SyntheticWorkload.from_spec(spec),
                          AffinityScheme.ONE_MPI_LOCAL)
    assert result.wall_time > 0


def test_synthetic_workload_in_scheme_comparison():
    """The end-to-end downstream use case: characterize a custom app."""
    memory_bound = {
        "name": "user-app", "ntasks": 8,
        "ops": [{"kind": "compute", "dram_bytes": 0.2 * GB,
                 "working_set": 1 * GB}],
    }
    cmp = default_session().compare_schemes(
        longs(), lambda: SyntheticWorkload.from_spec(memory_bound))
    assert "Membind" in cmp.worst
