"""Unit tests for the fidelity scoring machinery (no heavy runs)."""

import pytest

from repro.bench.fidelity import TableFidelity, paired_values, score_pairs
from repro.bench.paper_data import (
    SCHEME_ORDER,
    TABLE02,
    TABLE04,
    TABLE08,
    TABLE12,
)
from repro.core import TableResult


def test_paper_data_structure():
    assert len(SCHEME_ORDER) == 6
    assert len(TABLE02) == 8
    assert TABLE02[(8, "CG")][0] == pytest.approx(50.93)
    assert TABLE02[(16, "CG")][1] is None  # the paper's dash
    assert TABLE08[(16, "Longs")] == (7.24, 7.35, 14.29, 14.93, 7.97)
    assert TABLE12[(16, "Longs")] == (16.11, 14.85)


def test_paper_data_row_widths_consistent():
    for table, width in ((TABLE02, 6), (TABLE04, 4), (TABLE08, 5),
                         (TABLE12, 2)):
        assert all(len(v) == width for v in table.values())


def test_score_pairs_perfect_agreement():
    pairs = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
    score = score_pairs(pairs, [pairs], "demo")
    assert score.rank_correlation == pytest.approx(1.0)
    assert score.median_ratio == pytest.approx(1.0)
    assert score.ratio_spread == pytest.approx(1.0)


def test_score_pairs_pure_rescaling():
    """A clean 2x rescaling keeps rank correlation at 1.0."""
    pairs = [(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]
    score = score_pairs(pairs, [pairs], "demo")
    assert score.rank_correlation == pytest.approx(1.0)
    assert score.median_ratio == pytest.approx(2.0)


def test_score_pairs_inverted_ordering():
    pairs = [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)]
    score = score_pairs(pairs, [pairs], "demo")
    assert score.rank_correlation == pytest.approx(-1.0)


def test_score_pairs_short_rows_give_none():
    pairs = [(1.0, 1.1), (2.0, 2.1)]
    score = score_pairs(pairs, [pairs], "demo")
    assert score.rank_correlation is None


def test_score_pairs_empty_raises():
    with pytest.raises(ValueError):
        score_pairs([], [], "demo")


def test_paired_values_joins_and_skips_dashes():
    generated = TableResult(title="t", headers=["tasks", "kernel",
                                                "A", "B", "C"])
    generated.add_row(2, "CG", 10.0, 11.0, 12.0)
    generated.add_row(4, "CG", 5.0, None, 6.0)
    generated.add_row(9, "CG", 1.0, 1.0, 1.0)  # not in the paper
    paper = {(2, "CG"): (9.0, 10.0, 13.0), (4, "CG"): (4.0, 4.5, None)}
    groups = paired_values(generated, paper)
    assert len(groups) == 2
    assert groups[0] == [(9.0, 10.0), (10.0, 11.0), (13.0, 12.0)]
    # both the paper dash and the model dash drop out
    assert groups[1] == [(4.0, 5.0)]


def test_paired_values_column_mismatch_raises():
    generated = TableResult(title="t", headers=["tasks", "kernel", "A"])
    generated.add_row(2, "CG", 1.0)
    with pytest.raises(ValueError):
        paired_values(generated, {(2, "CG"): (1.0, 2.0)})
