"""Tests for what-if machines, custom topologies, and the bench layer."""

import networkx as nx
import pytest

from repro.bench.cli import TARGETS, main
from repro.bench.common import RUNTIME_CONFIGS, bound_spread_affinity, memo
from repro.service import default_session
from repro.machine import GB, Machine, MachineSpec, hypothetical
from repro.machine.topology import CoreSpec, SocketSpec, build_socket_graph


# -- custom topologies --------------------------------------------------------

def _spec(topology: str, sockets: int) -> MachineSpec:
    return MachineSpec(
        name=f"t-{topology}", sockets=sockets,
        socket=SocketSpec(cores_per_socket=2,
                          core=CoreSpec(frequency_hz=2e9)),
        topology=topology,
    )


def test_ring_topology_graph():
    g = build_socket_graph(_spec("ring", 6))
    assert g.number_of_edges() == 6
    assert all(d == 2 for _n, d in g.degree())
    assert nx.is_connected(g)


def test_crossbar_topology_graph():
    g = build_socket_graph(_spec("crossbar", 5))
    assert g.number_of_edges() == 10  # complete graph K5
    m = Machine(_spec("crossbar", 5))
    assert m.net.max_hops() == 1


def test_ring_crossbar_need_three_sockets():
    with pytest.raises(ValueError):
        _spec("ring", 2)
    with pytest.raises(ValueError):
        _spec("crossbar", 2)


def test_ring_hops():
    m = Machine(_spec("ring", 8))
    assert m.net.hops(0, 4) == 4
    assert m.net.hops(0, 7) == 1


# -- hypothetical builder --------------------------------------------------------

def test_hypothetical_defaults():
    spec = hypothetical("h1", sockets=1)
    assert spec.topology == "single"
    assert hypothetical("h2", sockets=2).topology == "pair"
    assert hypothetical("h4", sockets=4).topology == "ladder"


def test_hypothetical_probe_cost_override():
    free = hypothetical("free", sockets=8, coherence_probe_cost=0.0)
    machine = Machine(free)
    assert machine.mem.coherence_factor == pytest.approx(1.0)
    assert machine.mem.controller_capacity == pytest.approx(
        6.4 * GB * free.params.dram_achievable_fraction)


def test_hypothetical_validation():
    with pytest.raises(ValueError):
        hypothetical("bad", sockets=8, coherence_probe_cost=-0.1)


def test_hypothetical_frequency_and_cores():
    spec = hypothetical("quad", sockets=4, cores_per_socket=4,
                        frequency_ghz=2.6)
    assert spec.total_cores == 16
    assert spec.socket.core.frequency_hz == pytest.approx(2.6e9)


def test_hypothetical_dram_bandwidth_override():
    spec = hypothetical("ddr2", sockets=2, dram_peak_bandwidth=12.8 * GB)
    assert spec.socket.dram_peak_bandwidth == pytest.approx(12.8 * GB)


# -- bench plumbing ----------------------------------------------------------------

def test_runtime_configs_cover_figure8_legend():
    labels = [c[0] for c in RUNTIME_CONFIGS]
    assert labels == ["Default", "LocalAlloc", "Interleave", "SysV",
                      "USysV", "LocalAlloc+USysV"]


def test_bound_spread_affinity_fills_sockets_first():
    from repro.machine import dmz

    aff = bound_spread_affinity(dmz(), 2)
    assert aff.placement.bound
    assert len(aff.placement.sockets_in_use()) == 2


def test_run_cache_memoizes():
    default_session().clear()
    calls = []

    def factory():
        calls.append(1)
        return "result"

    assert memo(("k",), factory) == "result"
    assert memo(("k",), factory) == "result"
    assert len(calls) == 1
    default_session().clear()
    memo(("k",), factory)
    assert len(calls) == 2


def test_cli_targets_registered():
    # 14 tables + 16 figures + 4 latency panels + 5 ablations
    # + fidelity + 2 extensions
    assert len(TARGETS) == 14 + 16 + 4 + 5 + 1 + 2
    assert "tab02" in TARGETS and "fig08" in TARGETS
    assert "fig14lat" in TARGETS and "abl_hybrid" in TARGETS
    assert "fidelity" in TARGETS and "ext_npb" in TARGETS


def test_cli_list_and_unknown(capsys):
    assert main(["list"]) == 0
    assert "tab02" in capsys.readouterr().out
    assert main(["tab99"]) == 2


def test_cli_renders_data_table(capsys, tmp_path):
    assert main(["tab01", "--csv", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "System Configurations" in out
    assert (tmp_path / "tab01.csv").exists()
