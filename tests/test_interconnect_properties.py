"""Routing and transfer properties of the interconnect model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import GB, Machine, hypothetical, longs


@settings(max_examples=30, deadline=None)
@given(src=st.integers(0, 7), dst=st.integers(0, 7))
def test_paths_are_valid_walks(src, dst):
    """Every routed path walks existing edges from src to dst."""
    machine = Machine(longs())
    path = machine.net.path(src, dst)
    assert path[0] == src and path[-1] == dst
    for a, b in zip(path, path[1:]):
        assert machine.net.graph.has_edge(a, b)
    assert len(machine.net.path_links(src, dst)) == machine.net.hops(src, dst)


@settings(max_examples=30, deadline=None)
@given(src=st.integers(0, 7), dst=st.integers(0, 7))
def test_triangle_inequality_of_hops(src, dst):
    """Shortest-path hops obey the triangle inequality via any waypoint."""
    machine = Machine(longs())
    for mid in range(8):
        assert machine.net.hops(src, dst) <= (
            machine.net.hops(src, mid) + machine.net.hops(mid, dst)
        )


def test_transfer_touches_exactly_path_links():
    machine = Machine(longs())
    src, dst = 0, 3  # three top-rail hops
    machine.net.transfer(src, dst, 1 * GB)
    machine.engine.run()
    moved = {edge: link.total_transferred
             for edge, link in machine.net.links.items()
             if link.total_transferred > 0}
    assert set(moved) == {(0, 1), (1, 2), (2, 3)}
    assert all(v == pytest.approx(1 * GB) for v in moved.values())


def test_reverse_direction_uses_other_links():
    """HT is full duplex: opposite directions never contend."""
    machine = Machine(longs())
    machine.net.transfer(0, 3, 3.2 * GB)
    machine.net.transfer(3, 0, 3.2 * GB)
    machine.engine.run()
    # both finish as if alone: one second at full link rate
    assert machine.engine.now == pytest.approx(1.0, rel=1e-6)


def test_crossbar_any_pair_single_hop_property():
    spec = hypothetical("xbar", sockets=6, topology="crossbar")
    machine = Machine(spec)
    for s in range(6):
        for d in range(6):
            if s != d:
                assert machine.net.hops(s, d) == 1


def test_unroutable_pair_raises():
    spec = hypothetical("solo", sockets=1, topology="single")
    machine = Machine(spec)
    with pytest.raises(ValueError):
        machine.net.path(0, 1)
