"""Tests for the job runtime: op execution, accounting, scheme effects."""

from typing import Iterator, List

import pytest

from repro.core import (
    AffinityScheme,
    Allreduce,
    Barrier,
    Compute,
    Experiment,
    JobRunner,
    Op,
    SendRecv,
    Workload,
    resolve_scheme,
    run_workload,
)
from repro.machine import GB, MB, dmz, longs


class OpsWorkload(Workload):
    """Test helper: every rank executes a fixed op list."""

    def __init__(self, ops: List[Op], ntasks: int = 2, name: str = "test",
                 time_scale: float = 1.0):
        self.ops = ops
        self.ntasks = ntasks
        self.name = name
        self.time_scale = time_scale

    def program(self, rank: int) -> Iterator[Op]:
        yield from self.ops


def test_compute_flop_bound_time():
    """A cache-resident, flop-heavy op runs at peak * efficiency."""
    spec = dmz()
    flops = 4.4e9  # one second at peak
    wl = OpsWorkload([Compute(flops=flops, flop_efficiency=1.0)], ntasks=1)
    result = run_workload(spec, wl, AffinityScheme.DEFAULT)
    assert result.wall_time == pytest.approx(1.0, rel=1e-6)


def test_compute_memory_bound_time():
    """A zero-flop streaming op runs at the controller bandwidth."""
    spec = dmz()
    nbytes = 1 * GB
    wl = OpsWorkload(
        [Compute(dram_bytes=nbytes, working_set=nbytes, reuse=0.0)], ntasks=1
    )
    aff = resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, spec, 1)
    runner = JobRunner(spec, aff)
    result = runner.run(wl)
    expected = nbytes / runner.machine.mem.controller_capacity
    assert result.wall_time == pytest.approx(expected, rel=1e-6)


def test_compute_overlaps_flops_and_memory():
    """Phase time is max(flop time, memory time), not the sum."""
    spec = dmz()
    aff = resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, spec, 1)
    runner = JobRunner(spec, aff)
    mem_time = 1 * GB / runner.machine.mem.controller_capacity
    flop_time = 2.0 * mem_time  # make flops dominate
    flops = flop_time * 4.4e9
    wl = OpsWorkload(
        [Compute(flops=flops, flop_efficiency=1.0,
                 dram_bytes=1 * GB, working_set=1 * GB)], ntasks=1
    )
    result = runner.run(wl)
    assert result.wall_time == pytest.approx(flop_time, rel=1e-4)


def test_cache_resident_workload_ignores_bandwidth():
    """High-reuse ops barely touch DRAM (the DGEMM Star == Single effect)."""
    spec = dmz()
    hot = OpsWorkload(
        [Compute(flops=1e8, flop_efficiency=0.9, dram_bytes=1 * GB,
                 working_set=0.5 * MB, reuse=0.99)], ntasks=1)
    cold = OpsWorkload(
        [Compute(flops=1e8, flop_efficiency=0.9, dram_bytes=1 * GB,
                 working_set=1 * GB, reuse=0.0)], ntasks=1)
    t_hot = run_workload(spec, hot).wall_time
    t_cold = run_workload(spec, cold).wall_time
    assert t_cold > 3 * t_hot


def test_two_tasks_one_socket_contend():
    """Two streaming ranks on one socket take ~2x one rank's time."""
    spec = dmz()
    one = OpsWorkload([Compute(dram_bytes=1 * GB, working_set=1 * GB)], ntasks=1)
    two = OpsWorkload([Compute(dram_bytes=1 * GB, working_set=1 * GB)], ntasks=2)
    t1 = run_workload(spec, one, AffinityScheme.ONE_MPI_LOCAL).wall_time
    t2_packed = run_workload(spec, two, AffinityScheme.TWO_MPI_LOCAL).wall_time
    t2_spread = run_workload(spec, two, AffinityScheme.ONE_MPI_LOCAL).wall_time
    assert t2_packed == pytest.approx(2 * t1, rel=0.01)
    assert t2_spread == pytest.approx(t1, rel=0.01)


def test_membind_slower_than_localalloc_for_memory_bound():
    """The paper's core placement finding on the 8-socket ladder."""
    spec = longs()
    wl = lambda: OpsWorkload([Compute(dram_bytes=0.5 * GB, working_set=1 * GB)],
                             ntasks=8)
    t_local = run_workload(spec, wl(), AffinityScheme.TWO_MPI_LOCAL).wall_time
    t_membind = run_workload(spec, wl(), AffinityScheme.TWO_MPI_MEMBIND).wall_time
    t_inter = run_workload(spec, wl(), AffinityScheme.INTERLEAVE).wall_time
    # membind's two-controller hotspot is by far the worst; interleave
    # trades locality for spreading and lands in a band around local
    assert t_membind > 1.5 * t_local
    assert t_membind > 1.5 * t_inter
    assert 0.6 * t_local < t_inter < 1.5 * t_local


def test_latency_bound_op_uses_numa_latency():
    spec = longs()
    updates = 1_000_000
    wl = lambda: OpsWorkload([Compute(random_accesses=updates,
                                      working_set=1 * GB)], ntasks=2)
    t_local = run_workload(spec, wl(), AffinityScheme.ONE_MPI_LOCAL).wall_time
    t_inter = run_workload(spec, wl(), AffinityScheme.INTERLEAVE).wall_time
    params = spec.params
    assert t_local == pytest.approx(updates * params.dram_latency, rel=0.01)
    assert t_inter > 1.5 * t_local  # interleave pays hop latency


def test_comm_ops_accounted_separately():
    spec = dmz()
    wl = OpsWorkload([
        Compute(flops=1e8, flop_efficiency=1.0),
        Allreduce(nbytes=8),
        Barrier(),
    ], ntasks=2)
    result = run_workload(spec, wl)
    assert result.category_time("compute") > 0
    assert result.category_time("comm") > 0


def test_phase_accounting():
    spec = dmz()
    wl = OpsWorkload([
        Compute(flops=4.4e8, flop_efficiency=1.0, phase="fft"),
        Compute(flops=4.4e8, flop_efficiency=1.0, phase="direct"),
    ], ntasks=1)
    result = run_workload(spec, wl)
    assert result.phases() == ["direct", "fft"]
    assert result.phase_time("fft") == pytest.approx(0.1, rel=1e-3)
    assert result.phase_time("absent") == 0.0


def test_time_scale_multiplies_all_times():
    spec = dmz()
    base = OpsWorkload([Compute(flops=4.4e8, flop_efficiency=1.0, phase="p")],
                       ntasks=1)
    scaled = OpsWorkload([Compute(flops=4.4e8, flop_efficiency=1.0, phase="p")],
                         ntasks=1, time_scale=5.0)
    r1, r5 = run_workload(spec, base), run_workload(spec, scaled)
    assert r5.wall_time == pytest.approx(5 * r1.wall_time)
    assert r5.phase_time("p") == pytest.approx(5 * r1.phase_time("p"))


def test_halo_exchange_completes():
    spec = longs()

    class Halo(Workload):
        name = "halo"
        ntasks = 8

        def program(self, rank):
            p = self.ntasks
            for _ in range(3):
                yield Compute(flops=1e6, flop_efficiency=0.5)
                yield SendRecv(send_to=(rank + 1) % p,
                               recv_from=(rank - 1) % p, nbytes=64 * 1024)

    result = run_workload(spec, Halo(), AffinityScheme.ONE_MPI_LOCAL)
    assert result.wall_time > 0
    assert result.messages == 8 * 3


def test_ntasks_mismatch_raises():
    spec = dmz()
    aff = resolve_scheme(AffinityScheme.DEFAULT, spec, 2)
    runner = JobRunner(spec, aff)
    with pytest.raises(ValueError):
        runner.run(OpsWorkload([Compute(flops=1.0)], ntasks=3))


def test_unknown_op_raises():
    spec = dmz()

    class Bogus(Op):
        pass

    wl = OpsWorkload([Bogus()], ntasks=1)
    with pytest.raises(TypeError):
        run_workload(spec, wl)


def test_experiment_wrapper_runs():
    spec = dmz()
    wl = OpsWorkload([Compute(flops=1e8, flop_efficiency=1.0)], ntasks=2)
    result = Experiment(spec, wl, AffinityScheme.DEFAULT).run()
    assert result.system == "DMZ"
    assert result.scheme == "Default"
    assert result.ntasks == 2


def test_determinism_of_runs():
    spec = longs()
    wl = lambda: OpsWorkload([
        Compute(flops=1e7, dram_bytes=10 * MB, working_set=10 * MB),
        Allreduce(nbytes=1024),
    ], ntasks=8)
    t_a = run_workload(spec, wl(), AffinityScheme.TWO_MPI_LOCAL).wall_time
    t_b = run_workload(spec, wl(), AffinityScheme.TWO_MPI_LOCAL).wall_time
    assert t_a == t_b


def test_compute_validation():
    with pytest.raises(ValueError):
        Compute(flops=-1)
    with pytest.raises(ValueError):
        Compute(reuse=2.0)
    with pytest.raises(ValueError):
        Compute(flop_efficiency=0.0)
