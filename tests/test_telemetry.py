"""Tests for the run ledger, spans, logging, and the regression gate.

The load-bearing properties: telemetry is invisible when unconfigured
(byte-identical CLI stdout, inert spans), every recorded run appends
one parseable JSONL record carrying timings/cache/pool/fidelity data,
and ``repro-bench regress`` trips on injected fidelity and slowdown
regressions while passing an identical repeat.
"""

import json
import logging

import pytest

from repro.bench import cli
from repro.core import TableResult
from repro.sim.trace import Tracer, reset_dropped, total_dropped
from repro.telemetry import ledger
from repro.telemetry.history import metric_series, render_history
from repro.telemetry.ledger import RunRecorder
from repro.telemetry.regress import evaluate, run_class
from repro.telemetry.spans import active_recorder, set_recorder, span


@pytest.fixture(autouse=True)
def _clean_recorder():
    yield
    set_recorder(None)


def _fake_target():
    """A paper-style table (fast stand-in for a real bench target)."""
    table = TableResult(title="fake target", headers=["a", "b"])
    table.add_row(1, 2.0)
    return table


@pytest.fixture
def fake_target(monkeypatch):
    monkeypatch.setitem(cli.TARGETS, "faketab", _fake_target)
    return "faketab"


# -- spans -------------------------------------------------------------------

def test_span_is_inert_without_recorder():
    assert active_recorder() is None
    with span("sweep", cells=3) as s:
        s.note(extra=1)  # must not raise


def test_span_aggregates_into_recorder():
    recorder = RunRecorder(tool="bench").start()
    try:
        for _ in range(3):
            with span("sweep", cells=10) as s:
                s.note(kind="scheme_sweep")
    finally:
        recorder.stop()
    entry = recorder.spans["sweep"]
    assert entry["count"] == 3
    assert entry["cells"] == 30  # numeric attrs sum
    assert entry["kind"] == "scheme_sweep"  # descriptive attrs keep latest
    assert entry["total_s"] >= entry["max_s"] >= 0.0


def test_recorder_stop_uninstalls_itself():
    recorder = RunRecorder(tool="bench").start()
    assert active_recorder() is recorder
    recorder.stop()
    assert active_recorder() is None


# -- ledger ------------------------------------------------------------------

def test_ledger_append_read_roundtrip(tmp_path):
    record = RunRecorder(tool="bench", argv=["tab01"]).start().finish(
        config={"targets": ["tab01"], "jobs": 1})
    path = ledger.append(record, tmp_path)
    assert path == tmp_path / "ledger.jsonl"
    read = ledger.read_records(tmp_path)
    assert read == [record]
    assert read[0]["schema"] == 1
    assert read[0]["config_hash"] == record["config_hash"]


def test_ledger_skips_torn_lines(tmp_path):
    ledger.append({"tool": "bench", "run_id": "a"}, tmp_path)
    with open(tmp_path / "ledger.jsonl", "a") as handle:
        handle.write('{"tool": "bench", "run_id": "tor')  # torn write
    ledger.append({"tool": "bench", "run_id": "b"}, tmp_path)
    ids = [r["run_id"] for r in ledger.read_records(tmp_path)]
    assert ids == ["a", "b"]


def test_read_records_missing_file(tmp_path):
    assert ledger.read_records(tmp_path / "absent") == []


def test_same_config_same_hash_distinct_runs():
    a = RunRecorder(tool="bench").start().finish(config={"targets": ["x"]})
    b = RunRecorder(tool="bench").start().finish(config={"targets": ["x"]})
    c = RunRecorder(tool="bench").start().finish(config={"targets": ["y"]})
    assert a["config_hash"] == b["config_hash"] != c["config_hash"]
    assert a["run_id"] != b["run_id"]


def test_hit_rate():
    assert ledger.hit_rate({"cache": {"memory_hits": 3, "disk_hits": 1,
                                      "misses": 1}}) == 0.8
    assert ledger.hit_rate({"cache": {}}) is None
    assert ledger.hit_rate({}) is None


# -- regression gate ---------------------------------------------------------

def _record(run_id, elapsed=10.0, hits=90, misses=10, rho=0.95,
            targets=(("tab02", 6.0), ("fig08", 4.0)), config_hash="cfg"):
    return {
        "schema": 1, "tool": "bench", "run_id": run_id,
        "elapsed_s": elapsed, "config_hash": config_hash,
        "cache": {"memory_hits": 0, "disk_hits": hits, "misses": misses},
        "targets": [{"name": n, "seconds": s, "cache_hits": 0,
                     "cache_misses": 0} for n, s in targets],
        "fidelity": {"Table 2": {"cells": 44, "rank_correlation": rho,
                                 "median_ratio": 1.0, "ratio_spread": 1.2}},
    }


def test_regress_identical_repeat_passes():
    records = [_record("r1"), _record("r2"), _record("r3")]
    summary, failures, _notes = evaluate(records)
    assert failures == []
    assert summary["class"] == "warm"
    assert summary["baseline_runs"] == ["r1", "r2"]


def test_regress_trips_on_injected_slowdown():
    records = [_record("r1"), _record("r2")]
    _s, failures, notes = evaluate(records, inject_slowdown=1.3)
    assert any("slowdown" in f for f in failures)
    assert any("injected" in n for n in notes)


def test_regress_trips_on_injected_fidelity_drop():
    records = [_record("r1"), _record("r2")]
    _s, failures, _n = evaluate(records, inject_fidelity_drop=0.1)
    assert any("fidelity" in f and "Table 2" in f for f in failures)


def test_regress_small_fidelity_wobble_tolerated():
    records = [_record("r1", rho=0.95), _record("r2", rho=0.92)]
    _s, failures, _n = evaluate(records)
    assert failures == []  # 0.03 < the 0.05 drop threshold


def test_regress_trips_on_per_target_slowdown():
    slow = _record("r3", targets=(("tab02", 9.0), ("fig08", 4.0)))
    _s, failures, _n = evaluate([_record("r1"), _record("r2"), slow])
    assert any("target tab02" in f for f in failures)


def test_regress_trips_on_cache_collapse():
    collapsed = _record("r3", hits=20, misses=15)  # warm (disk >= misses)
    # baseline hit rate 0.9; candidate 20/35 = 0.57 is above 0.45 -> pass
    _s, failures, _n = evaluate([_record("r1"), _record("r2"), collapsed])
    assert failures == []
    collapsed = _record("r3", hits=40, misses=39)  # still warm: 40 >= 39
    # 0.506 is above half the 0.9 baseline -> still fine
    _s, failures, _n = evaluate([_record("r1"), _record("r2"), collapsed])
    assert failures == []


def test_regress_does_not_compare_across_cache_classes():
    cold = _record("cold1", elapsed=100.0, hits=5, misses=95)
    warm = _record("warm1", elapsed=2.0, hits=95, misses=5)
    # candidate is warm; the cold run must not serve as timing baseline
    summary, failures, notes = evaluate([cold, warm, _record("warm2",
                                                             elapsed=2.1)])
    assert failures == []
    assert summary["baseline_runs"] == ["warm1"]


def test_run_class_coalesced_cold_run_is_cold():
    # The seed-cold failure mode: duplicate sweep cells coalesce into
    # *memory* hits (rate 0.54), but every unique cell missed on disk —
    # that run simulated everything and must classify cold.
    record = {"cache": {"memory_hits": 76, "disk_hits": 0, "misses": 64}}
    assert run_class(record) == "cold"


def test_run_class_disk_replay_is_warm():
    record = {"cache": {"memory_hits": 3, "disk_hits": 80, "misses": 2}}
    assert run_class(record) == "warm"


def test_run_class_partial_records_fall_back_to_hit_rate():
    # Without a miss counter only the aggregate rate is recoverable.
    assert run_class({"cache": {"memory_hits": 9, "disk_hits": 0}}) == "warm"
    assert run_class({"cache": {"hits": 9, "misses": 1}}) == "cold"
    assert run_class({}) == "cold"


def test_regress_no_bench_records_raises():
    with pytest.raises(ValueError):
        evaluate([{"tool": "prof", "run_id": "p1"}])


# -- CLI subcommands ---------------------------------------------------------

def _seed_ledger(tmp_path, n=3, **kwargs):
    for i in range(n):
        ledger.append(_record(f"r{i}", **kwargs), tmp_path)


def test_cli_regress_exit_codes(tmp_path, capsys):
    assert cli.main(["regress", "--ledger-dir", str(tmp_path)]) == 2
    _seed_ledger(tmp_path)
    assert cli.main(["regress", "--ledger-dir", str(tmp_path)]) == 0
    assert cli.main(["regress", "--ledger-dir", str(tmp_path),
                     "--inject-slowdown", "1.3"]) == 1
    assert cli.main(["regress", "--ledger-dir", str(tmp_path),
                     "--inject-fidelity-drop", "0.1"]) == 1
    capsys.readouterr()


def test_cli_regress_exports_history(tmp_path, capsys):
    _seed_ledger(tmp_path)
    out = tmp_path / "BENCH_history.json"
    assert cli.main(["regress", "--ledger-dir", str(tmp_path),
                     "--export", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["verdict"] == "ok"
    assert len(payload["runs"]) == 3
    assert payload["gates"]["rank_correlation_drop"] == 0.05
    assert payload["runs"][0]["fidelity_mean_rank_correlation"] == 0.95
    capsys.readouterr()


def test_cli_history_renders_sparklines(tmp_path, capsys):
    assert cli.main(["history", "--ledger-dir", str(tmp_path)]) == 1
    _seed_ledger(tmp_path)
    assert cli.main(["history", "--ledger-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "elapsed" in out and "hit-rate" in out
    assert "Table 2" in out  # per-table rank correlation trend
    assert cli.main(["history", "--ledger-dir", str(tmp_path),
                     "--plot", "elapsed"]) == 0
    assert "elapsed by run" in capsys.readouterr().out


def test_history_metric_series_and_render():
    records = [_record("r1", elapsed=1.0), _record("r2", elapsed=2.0)]
    assert metric_series(records, "elapsed") == [1.0, 2.0]
    assert metric_series(records, "hit-rate") == [0.9, 0.9]
    with pytest.raises(ValueError):
        metric_series(records, "nope")
    text = render_history(records)
    assert "fidelity" in text


# -- CLI recording -----------------------------------------------------------

def test_cli_records_run_and_timings_json(tmp_path, capsys, fake_target):
    timings = tmp_path / "timings.json"
    assert cli.main([fake_target, "--ledger-dir", str(tmp_path),
                     "--timings-json", str(timings)]) == 0
    capsys.readouterr()
    payload = json.loads(timings.read_text())
    assert payload["targets"][0]["name"] == fake_target
    assert payload["total"]["seconds"] >= 0
    records = ledger.read_records(tmp_path)
    assert len(records) == 1
    record = records[0]
    assert record["tool"] == "bench"
    assert record["config"]["targets"] == [fake_target]
    assert record["targets"][0]["name"] == fake_target
    assert "cache" in record and "pool" in record
    assert record["trace_dropped"] == 0


def test_cli_stdout_byte_identical_with_and_without_telemetry(
        tmp_path, capsys, fake_target):
    assert cli.main([fake_target]) == 0
    plain = capsys.readouterr().out
    assert cli.main([fake_target, "--ledger-dir", str(tmp_path),
                     "--timings", "-v"]) == 0
    recorded = capsys.readouterr()
    assert recorded.out == plain  # diagnostics stay on stderr
    assert "recorded to" in recorded.err


def test_cli_timings_sorted_slowest_first(tmp_path, capsys, monkeypatch):
    import time as time_module

    def slow_target():
        time_module.sleep(0.05)
        return _fake_target()

    monkeypatch.setitem(cli.TARGETS, "slowtab", slow_target)
    monkeypatch.setitem(cli.TARGETS, "fasttab", _fake_target)
    assert cli.main(["fasttab", "slowtab", "--timings"]) == 0
    err = capsys.readouterr().err
    assert err.index("slowtab") < err.index("fasttab")
    assert err.rstrip().splitlines()[-1].split()[0] == "total"


def test_fidelity_scores_extraction():
    table = TableResult(
        title="fidelity: model vs paper, per table",
        headers=["Paper table", "cells", "rank corr", "median ratio",
                 "ratio spread"])
    table.add_row("Table 2 (NAS, Longs)", 44, 0.93, 1.01, 1.5)
    scores = cli._fidelity_scores({"fidelity": table})
    assert scores["Table 2 (NAS, Longs)"]["rank_correlation"] == 0.93
    assert cli._fidelity_scores({}) == {}


# -- tracer drop telemetry ---------------------------------------------------

def test_tracer_warns_once_and_counts_drops(caplog):
    reset_dropped()
    tracer = Tracer(capacity=2)
    with caplog.at_level(logging.WARNING, logger="repro.sim.trace"):
        for i in range(5):
            tracer.emit(float(i), "compute")
    warnings = [r for r in caplog.records if "capacity" in r.message]
    assert len(warnings) == 1  # only the first drop logs
    assert tracer.dropped == 3
    assert len(tracer) == 2
    assert total_dropped() == 3
    tracer.clear()
    assert tracer.dropped == 0
    assert total_dropped() == 3  # process-wide tally survives clear()
    reset_dropped()
    assert total_dropped() == 0
