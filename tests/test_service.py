"""Tests for the characterization service: Session, protocol, daemon.

The load-bearing service promises:

* N concurrent identical submits run exactly ONE simulation and every
  waiter receives a byte-identical result (request coalescing).
* Submits beyond the queue bound are REJECTED with a typed, retryable
  error — never silently dropped — while already-accepted jobs still
  complete (admission control).
* ``drain`` completes every accepted job; a drained/closed session
  refuses new work with a typed error (graceful shutdown).
"""

import json
import threading
import time

import pytest

from repro.core import Compute, Workload
from repro.core import parallel
from repro.core.cache import ResultCache
from repro.errors import (
    InfeasibleSchemeError,
    NoFeasibleSchemeError,
    ProtocolError,
    QueueFullError,
    ReproError,
    SessionClosedError,
    UnknownMetricError,
    UnknownNameError,
    error_code,
    from_wire,
)
from repro.machine import dmz, longs, tiger
from repro.service import RunRequest, RunResult, Session
from repro.service.daemon import ServiceServer, request_over_socket
from repro.service.protocol import (
    cell_from_wire,
    decode_line,
    encode_line,
    handle_request,
)


class TinyCompute(Workload):
    """A cheap deterministic workload for fast service tests."""

    name = "tiny-service"

    def __init__(self, ntasks=2, flops=1e7):
        self.ntasks = ntasks
        self.flops = flops

    def program(self, rank):
        yield Compute(flops=self.flops, flop_efficiency=0.5)


def _executed():
    stats = parallel.pool_stats()
    return stats.executed_serial + stats.executed_parallel


def _session(tmp_path, **kwargs):
    return Session(cache=ResultCache(directory=tmp_path / "cache"), **kwargs)


# -- coalescing --------------------------------------------------------------

def test_concurrent_identical_submits_run_one_simulation(tmp_path):
    """16 identical cells: one compute, coalesce counter 15, one payload."""
    with _session(tmp_path, paused=True) as session:
        futures = [session.submit(RunRequest(system=longs(),
                                             workload=TinyCompute(4)))
                   for _ in range(16)]
        before = _executed()
        session.resume()
        results = [f.result(timeout=120) for f in futures]

    assert _executed() - before == 1
    assert session.stats.coalesced == 15
    assert session.stats.accepted == 1
    assert all(r.ok for r in results)
    payloads = {json.dumps(r.job.to_dict(), sort_keys=True) for r in results}
    assert len(payloads) == 1


def test_coalesced_results_identical_to_direct_run(tmp_path):
    request = RunRequest(system=longs(), workload=TinyCompute(4))
    with _session(tmp_path, paused=True) as session:
        futures = [session.submit(request) for _ in range(4)]
        session.resume()
        served = [f.result(timeout=120).job.to_dict() for f in futures]
    with _session(tmp_path / "b") as direct_session:
        direct = direct_session.run(request)
    assert direct.ok and direct.source == "computed"
    for payload in served:
        assert payload == direct.job.to_dict()


def test_coalesce_sources_and_tags(tmp_path):
    """First waiter is 'computed', twins 'coalesced'; tags pass through."""
    with _session(tmp_path, paused=True) as session:
        first = session.submit(RunRequest(system=longs(),
                                          workload=TinyCompute(4),
                                          tag="alpha"))
        twin = session.submit(RunRequest(system=longs(),
                                         workload=TinyCompute(4),
                                         tag="beta"))
        session.resume()
        a, b = first.result(timeout=120), twin.result(timeout=120)
    assert (a.source, b.source) == ("computed", "coalesced")
    # tag is not part of the content address: the twins still coalesced
    assert session.stats.coalesced == 1
    # both waiters carry the owning job's request identity
    assert a.key == b.key


def test_cache_hit_answers_at_admission(tmp_path):
    request = RunRequest(system=longs(), workload=TinyCompute(4))
    with _session(tmp_path) as session:
        session.run(request)
        future = session.submit(request)
        result = future.result(timeout=120)
    assert result.ok and result.source == "cache"
    assert session.stats.cache_hits == 1


def test_sync_run_attaches_to_inflight_twin(tmp_path):
    with _session(tmp_path, paused=True) as session:
        future = session.submit(RunRequest(system=longs(),
                                           workload=TinyCompute(4)))
        got = {}

        def sync_twin():
            got["result"] = session.run(RunRequest(system=longs(),
                                                   workload=TinyCompute(4)))

        thread = threading.Thread(target=sync_twin)
        thread.start()
        deadline = 100
        while session.stats.coalesced == 0 and deadline:
            deadline -= 1
            threading.Event().wait(0.02)
        session.resume()
        thread.join(timeout=120)
        async_result = future.result(timeout=120)
    assert session.stats.coalesced == 1
    assert got["result"].job.to_dict() == async_result.job.to_dict()


# -- admission control -------------------------------------------------------

def test_queue_full_submits_rejected_not_dropped(tmp_path):
    with _session(tmp_path, max_pending=2, paused=True) as session:
        accepted = [session.submit(RunRequest(system=longs(),
                                              workload=TinyCompute(4, flops=f)))
                    for f in (1e6, 2e6)]
        with pytest.raises(QueueFullError) as excinfo:
            session.submit(RunRequest(system=longs(),
                                      workload=TinyCompute(4, flops=3e6)))
        assert excinfo.value.retry_after > 0
        assert excinfo.value.code == "queue_full"
        assert session.stats.rejected == 1
        # a coalescing twin of an accepted cell still gets in: it joins
        # an in-flight job rather than consuming queue depth
        twin = session.submit(RunRequest(system=longs(),
                                         workload=TinyCompute(4, flops=1e6)))
        session.resume()
        results = [f.result(timeout=120) for f in accepted + [twin]]
    assert all(r.ok for r in results)
    assert session.stats.failed == 0


def test_rejected_submit_leaves_no_promise(tmp_path):
    with _session(tmp_path, max_pending=1, paused=True) as session:
        session.submit(RunRequest(system=longs(), workload=TinyCompute(4)))
        with pytest.raises(QueueFullError):
            session.submit(RunRequest(system=longs(),
                                      workload=TinyCompute(8)))
        assert session.stats.accepted == 1
        session.resume()
        assert session.drain(timeout=120)
    assert session.stats.completed == 1


# -- drain / close -----------------------------------------------------------

def test_drain_completes_accepted_jobs(tmp_path):
    with _session(tmp_path, paused=True) as session:
        futures = [session.submit(RunRequest(system=longs(),
                                             workload=TinyCompute(4, flops=f)))
                   for f in (1e6, 2e6, 3e6)]
        session.resume()
        assert session.drain(timeout=120)
        assert all(f.done() for f in futures)
        assert all(f.result().ok for f in futures)
        with pytest.raises(SessionClosedError):
            session.submit(RunRequest(system=longs(),
                                      workload=TinyCompute(4)))


def test_close_without_drain_fails_jobs_instead_of_dropping(tmp_path):
    session = _session(tmp_path, paused=True)
    future = session.submit(RunRequest(system=longs(),
                                       workload=TinyCompute(4)))
    session.close(drain=False)
    result = future.result(timeout=10)
    assert result.status == "failed"
    assert result.kind == "cancelled"
    with pytest.raises(SessionClosedError):
        session.submit(RunRequest(system=longs(), workload=TinyCompute(4)))


# -- results and sweeps ------------------------------------------------------

def test_infeasible_cell_is_a_status_not_an_exception(tmp_path):
    from repro.core import AffinityScheme

    with _session(tmp_path) as session:
        result = session.run(RunRequest(
            system=dmz(), workload=TinyCompute(4),
            scheme=AffinityScheme.ONE_MPI_LOCAL))
    assert result.status == "infeasible"
    assert result.code == "infeasible_scheme"
    with pytest.raises(InfeasibleSchemeError):
        result.require()


def test_run_many_preserves_request_order(tmp_path):
    from repro.core import AffinityScheme

    requests = [
        RunRequest(system=longs(), workload=TinyCompute(4)),
        RunRequest(system=dmz(), workload=TinyCompute(4),
                   scheme=AffinityScheme.ONE_MPI_LOCAL),   # infeasible
        RunRequest(system=longs(), workload=TinyCompute(8)),
    ]
    with _session(tmp_path) as session:
        results = session.run_many(requests)
    assert [r.status for r in results] == ["ok", "infeasible", "ok"]


def test_session_scheme_sweep_matches_table_shape(tmp_path):
    with _session(tmp_path) as session:
        table = session.scheme_sweep(dmz(), lambda n: TinyCompute(n),
                                     task_counts=(2, 4))
    assert len(table.rows) == 2
    # One-MPI schemes are infeasible at 4 tasks on the 2-socket DMZ
    assert table.rows[1][2] is None


def test_session_compare_schemes_raises_typed_error(tmp_path):
    from repro.core import AffinityScheme

    with _session(tmp_path) as session:
        with pytest.raises(NoFeasibleSchemeError):
            session.compare_schemes(
                tiger(), lambda: TinyCompute(64),
                schemes=(AffinityScheme.ONE_MPI_LOCAL,))


def test_session_scaling_study_unknown_metric(tmp_path):
    with _session(tmp_path) as session:
        with pytest.raises(UnknownMetricError):
            session.scaling_study([longs()], lambda n: TinyCompute(n),
                                  (2,), metric="bogus")
        with pytest.raises(ValueError):  # back-compat: still a ValueError
            session.scaling_study([longs()], lambda n: TinyCompute(n),
                                  (2,), metric="bogus")


def test_session_memo_and_clear(tmp_path):
    calls = []
    with _session(tmp_path) as session:
        assert session.memo(("k",), lambda: calls.append(1) or "v") == "v"
        assert session.memo(("k",), lambda: calls.append(1) or "v") == "v"
        assert calls == [1]
        session.clear()
        session.memo(("k",), lambda: calls.append(1) or "v")
        assert calls == [1, 1]


def test_gauges_snapshot(tmp_path):
    with _session(tmp_path, paused=True) as session:
        futures = [session.submit(RunRequest(system=longs(),
                                             workload=TinyCompute(4)))
                   for _ in range(3)]
        session.resume()
        [f.result(timeout=120) for f in futures]
        gauges = session.gauges()
    assert gauges["service_coalesce_hits"] == 2
    assert gauges["service_queue_depth"] == 0
    assert 0 < gauges["service_coalesce_rate"] < 1


# -- error hierarchy ---------------------------------------------------------

def test_typed_errors_have_stable_codes():
    assert QueueFullError("x").code == "queue_full"
    assert SessionClosedError("x").code == "session_closed"
    assert InfeasibleSchemeError("x").code == "infeasible_scheme"
    assert error_code(ValueError("x")) == "internal"


def test_typed_errors_remain_valueerrors():
    # legacy except ValueError blocks must keep working
    assert issubclass(NoFeasibleSchemeError, ValueError)
    assert issubclass(UnknownMetricError, ValueError)
    assert issubclass(InfeasibleSchemeError, ValueError)
    from repro.core.affinity import InfeasibleSchemeError as legacy

    assert legacy is InfeasibleSchemeError


def test_error_wire_round_trip():
    exc = QueueFullError("queue is full", retry_after=1.5)
    wire = exc.to_wire()
    assert wire["status"] == "error"
    assert wire["code"] == "queue_full"
    assert wire["retry_after"] == 1.5
    back = from_wire(wire)
    assert isinstance(back, QueueFullError)
    assert back.retry_after == 1.5
    assert isinstance(from_wire({"code": "nonsense", "message": "m"}),
                      ReproError)


# -- wire protocol -----------------------------------------------------------

def test_run_result_wire_round_trip(tmp_path):
    with _session(tmp_path) as session:
        result = session.run(RunRequest(system=longs(),
                                        workload=TinyCompute(4),
                                        tag="t1"))
    back = RunResult.from_wire(result.to_wire())
    assert back.ok and back.tag == "t1"
    assert back.job.to_dict() == result.job.to_dict()


def test_decode_line_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_line(b"not json\n")
    with pytest.raises(ProtocolError):
        decode_line(b"[1, 2, 3]\n")
    assert decode_line(encode_line({"op": "ping"})) == {"op": "ping"}


def test_cell_from_wire_resolves_names():
    request = cell_from_wire({"system": "longs", "workload": "stream",
                              "ntasks": 4, "scheme": "interleave"})
    assert request.system.name == "Longs"
    assert request.workload.ntasks == 4
    with pytest.raises(UnknownNameError):
        cell_from_wire({"workload": "no-such-workload"})
    with pytest.raises(ProtocolError):
        cell_from_wire({"system": "longs"})  # no workload name
    with pytest.raises(UnknownNameError):
        cell_from_wire({"system": "cray-1", "workload": "stream"})


def test_handle_request_folds_errors_to_wire(tmp_path):
    with _session(tmp_path) as session:
        pong = handle_request(session, {"op": "ping"})
        assert pong["status"] == "ok" and "protocol" in pong
        bad = handle_request(session, {"op": "warp"})
        assert bad["status"] == "error"
        assert bad["code"] == "protocol_error"
        stats = handle_request(session, {"op": "stats"})
        assert "gauges" in stats and "stats" in stats


def test_handle_request_batch_isolates_bad_cells(tmp_path):
    with _session(tmp_path) as session:
        response = handle_request(session, {"op": "batch", "cells": [
            {"system": "longs", "workload": "stream", "ntasks": 4},
            {"system": "longs", "workload": "bogus"},
        ]})
    assert response["status"] == "ok"
    good, bad = response["results"]
    assert good["status"] == "ok"
    assert bad["status"] == "error" and bad["code"] == "unknown_name"


# -- daemon ------------------------------------------------------------------

def test_daemon_round_trip_coalesces_and_drains(tmp_path):
    socket_path = str(tmp_path / "svc.sock")
    session = _session(tmp_path, name="test-daemon")
    server = ServiceServer(socket_path, session)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    try:
        pong = request_over_socket(socket_path, {"op": "ping"}, timeout=30)
        assert pong["status"] == "ok"
        cells = [{"system": "longs", "workload": "stream", "ntasks": 4,
                  "scheme": "interleave"} for _ in range(5)]
        response = request_over_socket(
            socket_path, {"op": "batch", "cells": cells}, timeout=120)
        assert response["status"] == "ok"
        payloads = {json.dumps(r["result"], sort_keys=True)
                    for r in response["results"]}
        assert len(payloads) == 1
        shutdown = request_over_socket(socket_path, {"op": "shutdown"},
                                       timeout=120)
        assert shutdown["status"] == "ok"
        assert shutdown["stats"]["coalesced"] >= 1
        thread.join(timeout=10)
        assert not thread.is_alive()
    finally:
        session.close()
        server.close()


# -- submit client retries ---------------------------------------------------

def _reject_then_accept_server(rejections=1):
    """An NDJSON server whose first N submits answer queue_full."""
    from repro.service.transport import TcpNdjsonServer, serve_in_thread

    calls = {"submit": 0}

    def handle(message):
        if message.get("op") != "submit":
            return {"status": "ok", "op": message.get("op")}
        calls["submit"] += 1
        if calls["submit"] <= rejections:
            return {"status": "error", "op": "submit",
                    "code": "queue_full", "message": "backpressure",
                    "retry_after": 0.01}
        return {"status": "ok", "op": "submit", "source": "computed"}

    server = TcpNdjsonServer(("127.0.0.1", 0), handle)
    serve_in_thread(server, "retry-test")
    return server, calls


def test_submit_client_honors_retry_after_and_retries():
    from repro.service.daemon import _request_with_retries

    server, calls = _reject_then_accept_server(rejections=1)
    try:
        t0 = time.monotonic()
        reply = _request_with_retries(
            server.address, {"op": "submit", "cell": {"workload": "x"}},
            timeout=5.0, retries=2)
        elapsed = time.monotonic() - t0
    finally:
        server.shutdown()
        server.close()
    assert reply["status"] == "ok"
    assert calls["submit"] == 2  # one rejection, one accepted retry
    assert elapsed >= 0.01       # it slept at least the server's hint


def test_submit_client_gives_up_after_budget():
    from repro.service.daemon import _request_with_retries

    server, calls = _reject_then_accept_server(rejections=10)
    try:
        reply = _request_with_retries(
            server.address, {"op": "submit", "cell": {"workload": "x"}},
            timeout=5.0, retries=2)
    finally:
        server.shutdown()
        server.close()
    assert reply["status"] == "error"
    assert reply["code"] == "queue_full"  # the last outcome, surfaced
    assert calls["submit"] == 3           # 1 attempt + 2 retries


def test_submit_client_never_retries_non_retryable_errors():
    from repro.service.daemon import _request_with_retries
    from repro.service.transport import TcpNdjsonServer, serve_in_thread

    calls = {"n": 0}

    def handle(message):
        calls["n"] += 1
        return {"status": "error", "op": "submit",
                "code": "unknown_name", "message": "no such workload"}

    server = TcpNdjsonServer(("127.0.0.1", 0), handle)
    serve_in_thread(server, "no-retry-test")
    try:
        reply = _request_with_retries(
            server.address, {"op": "submit", "cell": {"workload": "x"}},
            timeout=5.0, retries=3)
    finally:
        server.shutdown()
        server.close()
    assert reply["status"] == "error"
    assert reply["code"] == "unknown_name"
    assert calls["n"] == 1  # rejected by the session, not backpressure
