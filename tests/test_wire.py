"""The binary wire layer: codec, frames, and the mixed-schema cache.

Protocol v3 and cache schema 3 share one invariant: a binary round
trip must be observationally identical to the JSON round trip it
replaces — same values, same checksums, same cache keys.  These tests
pin that equivalence for every wire shape the service speaks, plus
the rejection paths (truncated frames, wrong magic, unknown tags).
"""

import io
import json
import math
import struct

import pytest

from repro.core.cache import (
    CACHE_SCHEMA,
    CACHE_STORE_SCHEMA,
    ResultCache,
    parse_entry,
    result_checksum,
)
from repro.core.parallel import JobRequest, run_request
from repro.errors import ProtocolError
from repro.machine import tiger
from repro.service.protocol import (
    PROTOCOL_VERSIONS,
    cell_from_wire,
    handle_request,
    hello_response,
)
from repro.service.session import Session
from repro.wire import codec, frames


# -- representative values ---------------------------------------------------

JSON_VALUES = [
    None,
    True,
    False,
    0,
    255,
    -1,
    2**40,
    -(2**70),          # exceeds int64: bigint spelling
    2**100,
    0.0,
    -0.0,
    math.pi,
    1e-300,
    5e-324,            # smallest subnormal double
    1.7976931348623157e308,
    "",
    "stream",
    "ünïcode ✓",
    "x" * 300,         # long-string spelling (> 255 utf-8 bytes)
    [],
    [1, "two", 3.0, None, True],
    [[1.5, 2.5], [3.5]],
    [0.25, 0.5, 0.75],                      # FLOATS fast path
    {"a": 1.5, "b": 2.5},                   # FLOATMAP fast path
    [{"io": 1.0, "mpi": 2.0}, {"io": 3.0, "mpi": 4.0}],  # FMATRIX
    {},
    {"nested": {"list": [1, 2], "flag": False}, "n": None},
]


@pytest.mark.parametrize("value", JSON_VALUES,
                         ids=[repr(v)[:40] for v in JSON_VALUES])
def test_codec_round_trip_matches_json_round_trip(value):
    decoded = codec.decode(codec.encode(value))
    assert decoded == json.loads(json.dumps(value))
    # and types survive exactly (json would keep them too, but be sure
    # the fast paths do not coerce)
    assert type(decoded) is type(json.loads(json.dumps(value)))


def test_codec_preserves_float_bits_exactly():
    for value in (0.1, -0.0, 5e-324, 1.7976931348623157e308,
                  1 / 3, math.pi):
        decoded = codec.decode(codec.encode(value))
        assert struct.pack(">d", decoded) == struct.pack(">d", value)
    # -0.0 keeps its sign bit, which shortest-repr JSON also does —
    # but here it is guaranteed by construction
    assert math.copysign(1.0, codec.decode(codec.encode(-0.0))) == -1.0


def test_codec_round_trips_bytes():
    payload = b"\x00\xffRW{json-looking"
    assert codec.decode(codec.encode(payload)) == payload


def test_codec_rejects_truncation_at_every_boundary():
    blob = codec.encode({"rank_times": [1.0, 2.0, 3.0],
                         "name": "stream", "n": 16})
    for cut in range(len(blob)):
        with pytest.raises(ProtocolError):
            codec.decode(blob[:cut])


def test_codec_rejects_trailing_garbage_and_unknown_tags():
    with pytest.raises(ProtocolError):
        codec.decode(codec.encode(1) + b"\x00")
    with pytest.raises(ProtocolError):
        codec.decode(b"\xc1")  # unassigned tag byte
    with pytest.raises(ProtocolError):
        codec.decode(b"")


def test_codec_rejects_unencodable_objects():
    with pytest.raises(TypeError):
        codec.encode(object())
    with pytest.raises(TypeError):
        codec.encode({1: "non-string key"})


# -- frames ------------------------------------------------------------------

def test_frame_round_trip_single_and_chunked():
    message = {"op": "batch", "results": [{"rank_times": [0.1] * 100}]}
    blob = frames.pack_frames(message)
    value, offset = frames.unpack_frames(blob)
    assert value == message and offset == len(blob)

    # force chunking with a tiny chunk size: several MORE frames
    chunked = frames.pack_frames(message, chunk_bytes=16)
    assert len(chunked) > len(blob)  # extra headers
    assert chunked[:2] == frames.FRAME_MAGIC
    value, offset = frames.unpack_frames(chunked)
    assert value == message and offset == len(chunked)


def test_frame_stream_read_write_and_clean_eof():
    stream = io.BytesIO()
    frames.write_frame_message(stream, {"op": "ping"})
    frames.write_frame_message(stream, {"op": "stats"}, chunk_bytes=4)
    stream.seek(0)
    assert frames.read_frame_message(stream) == {"op": "ping"}
    assert frames.read_frame_message(stream) == {"op": "stats"}
    assert frames.read_frame_message(stream) is None  # clean EOF


def test_frame_rejects_wrong_magic_version_and_truncation():
    good = frames.pack_frames({"op": "ping"})
    with pytest.raises(ProtocolError, match="magic"):
        frames.unpack_frames(b"XX" + good[2:])
    with pytest.raises(ProtocolError, match="version"):
        frames.unpack_frames(good[:2] + b"\x09" + good[3:])
    for cut in range(1, len(good)):
        with pytest.raises(ProtocolError, match="truncated"):
            frames.unpack_frames(good[:cut])
    # mid-frame EOF on a stream is an error, not a silent None
    with pytest.raises(ProtocolError, match="truncated"):
        frames.read_frame_message(io.BytesIO(good[:-1]))


def test_frame_rejects_oversized_payload_claim():
    header = struct.pack(">2sBBI", frames.FRAME_MAGIC,
                         frames.FRAME_VERSION, 0,
                         frames.MAX_PAYLOAD_BYTES + 1)
    with pytest.raises(ProtocolError, match="limit"):
        frames.unpack_frames(header + b"x")


# -- every wire shape the service speaks -------------------------------------

def _quick_result(tmp_path):
    from repro.bench.chaos import _QuickWorkload
    cache = ResultCache(directory=tmp_path)
    request = JobRequest(spec=tiger(), workload=_QuickWorkload())
    return run_request(request, cache=cache)


def test_service_wire_shapes_survive_binary_identically(tmp_path):
    result = _quick_result(tmp_path / "c")
    session = Session(name="wire-test",
                      cache=ResultCache(directory=tmp_path / "s"))
    try:
        shapes = [
            handle_request(session, {"op": "ping"}),
            hello_response({"op": "hello", "protocol": 3})[0],
            hello_response({"op": "hello", "protocol": 99})[0],
            handle_request(session, {"op": "stats"}),
            handle_request(session, {"op": "nonsense"}),  # protocol_error
            {"status": "ok", "op": "submit", "source": "executed",
             "result": result.to_dict()},
            {"status": "infeasible", "error": "does not fit",
             "code": "infeasible_scheme"},
            {"status": "failed", "error": "worker crashed",
             "code": "job_failed", "kind": "crash"},
        ]
    finally:
        session.close()
    for shape in shapes:
        via_json = json.loads(json.dumps(shape))
        via_binary = codec.decode(codec.encode(shape))
        assert via_binary == via_json, shape
        framed, _ = frames.unpack_frames(frames.pack_frames(shape))
        assert framed == via_json


def test_hello_reports_versions_and_downgrade_path():
    response, selected = hello_response({"op": "hello", "protocol": 3})
    assert response["status"] == "ok" and selected == 3
    assert response["protocol_versions"] == list(PROTOCOL_VERSIONS)
    response, selected = hello_response({"op": "hello", "protocol": 99})
    assert response["status"] == "error"
    assert response["code"] == "protocol_error"
    assert selected == 2  # server keeps speaking NDJSON
    assert response["protocol_versions"] == list(PROTOCOL_VERSIONS)


def test_wire_cell_round_trips_through_cell_from_wire():
    cell = {"system": "tiger", "workload": "stream", "ntasks": 4,
            "scheme": "interleave", "tier": "exact"}
    request = cell_from_wire(codec.decode(codec.encode(cell)))
    assert request.to_job().key() == cell_from_wire(cell).to_job().key()


# -- mixed-schema cache directories ------------------------------------------

def test_cache_mixes_schema2_json_and_schema3_binary(tmp_path):
    from repro.bench.chaos import _QuickWorkload

    json_cache = ResultCache(directory=tmp_path, binary=False)
    request = JobRequest(spec=tiger(), workload=_QuickWorkload())
    original = run_request(request, cache=json_cache)
    path_v2 = json_cache._path(request.key())
    assert path_v2.read_bytes()[:1] == b"{"  # schema-2 JSON on disk

    binary_cache = ResultCache(directory=tmp_path)
    request_fast = JobRequest(spec=tiger(), workload=_QuickWorkload(),
                              tier="fast")
    run_request(request_fast, cache=binary_cache)
    path_v3 = binary_cache._path(request_fast.key())
    assert path_v3.read_bytes()[:2] == frames.FRAME_MAGIC

    # one directory, both formats: a fresh cache reads both as hits
    fresh = ResultCache(directory=tmp_path)
    assert fresh.get(request.key()).to_dict() == original.to_dict()
    assert fresh.get(request_fast.key()) is not None
    assert fresh.stats.disk_hits == 2 and fresh.stats.corrupt == 0

    # entry parsing agrees on schema numbers and checksums
    entry_v2 = parse_entry(path_v2.read_bytes())
    entry_v3 = parse_entry(path_v3.read_bytes())
    assert entry_v2["schema"] == CACHE_SCHEMA
    assert entry_v3["schema"] == CACHE_STORE_SCHEMA
    for entry in (entry_v2, entry_v3):
        assert entry["check"] == result_checksum(entry["result"])


def test_cache_format_is_storage_only_never_in_the_key(tmp_path):
    """Schema 3 must not invalidate a warm schema-2 cache."""
    from repro.bench.chaos import _QuickWorkload

    request = JobRequest(spec=tiger(), workload=_QuickWorkload())
    json_cache = ResultCache(directory=tmp_path, binary=False)
    original = run_request(request, cache=json_cache)

    warm = ResultCache(directory=tmp_path)  # binary-writing reader
    assert warm.get(request.key()).to_dict() == original.to_dict()
    assert warm.stats.disk_hits == 1 and warm.stats.misses == 0


def test_parse_entry_rejects_malformed_input():
    with pytest.raises(ValueError):
        parse_entry(b"RWgarbage-after-magic")
    with pytest.raises(ValueError):
        parse_entry(b"{not json")
    with pytest.raises(ValueError):
        parse_entry(frames.pack_frames(["not", "a", "dict"]))
