"""Parameter-block tests and workload program-structure checks."""

import pytest

from repro.apps.md.amber import AmberSander
from repro.apps.pop import Pop
from repro.core.ops import Allreduce, Alltoall, Barrier, Compute, SendRecv
from repro.machine import DEFAULT_PARAMS, GB, KB, MB, Machine, PerfParams, dmz, longs
from repro.mpi import MpiWorld
from repro.osmodel import spread


# -- PerfParams ----------------------------------------------------------------

def test_with_overrides_returns_new_instance():
    tweaked = DEFAULT_PARAMS.with_overrides(sysv_lock_cost=1.0)
    assert tweaked.sysv_lock_cost == 1.0
    assert DEFAULT_PARAMS.sysv_lock_cost != 1.0
    assert tweaked.usysv_lock_cost == DEFAULT_PARAMS.usysv_lock_cost


def test_with_overrides_rejects_unknown_field():
    with pytest.raises(TypeError):
        DEFAULT_PARAMS.with_overrides(warp_drive=1.0)


def test_unit_constants():
    assert KB == 1024 and MB == 1024 ** 2
    assert GB == 1e9  # bandwidths use decimal GB like the paper


def test_params_physical_sanity():
    p = DEFAULT_PARAMS
    assert 0 < p.dram_achievable_fraction <= 1
    assert p.hop_latency > 0 and p.dram_latency > p.hop_latency / 2
    assert p.sysv_lock_cost > p.pthread_lock_cost > p.usysv_lock_cost
    assert p.intra_socket_copy_bandwidth > p.inter_socket_copy_bandwidth


# -- collective message counts ------------------------------------------------------

def _count_messages(ntasks, op):
    spec = longs()
    machine = Machine(spec)
    world = MpiWorld(machine, spread(spec, ntasks))

    def program(world, rank):
        yield from op(world, rank)

    for r in range(ntasks):
        world.engine.process(program(world, r))
    world.engine.run()
    return world.stats.messages


@pytest.mark.parametrize("p,expected", [(2, 2), (4, 8), (8, 24), (16, 64)])
def test_barrier_message_count(p, expected):
    """Dissemination barrier: p * ceil(log2 p) messages."""
    assert _count_messages(p, lambda w, r: w.barrier(r)) == expected


@pytest.mark.parametrize("p", [2, 4, 8])
def test_allreduce_message_count_power_of_two(p):
    """Recursive doubling: p * log2(p) messages for powers of two."""
    count = _count_messages(p, lambda w, r: w.allreduce(r, 8))
    assert count == p * p.bit_length() - p  # p*log2(p)


def test_alltoall_message_count():
    p = 8
    count = _count_messages(p, lambda w, r: w.alltoall(r, 64))
    assert count == p * (p - 1)


def test_bcast_message_count():
    p = 8
    count = _count_messages(p, lambda w, r: w.bcast(r, 0, 64))
    assert count == p - 1  # a tree delivers exactly one copy per rank


def test_reduce_message_count():
    p = 8
    count = _count_messages(p, lambda w, r: w.reduce(r, 0, 64))
    assert count == p - 1


# -- workload program structure ------------------------------------------------------

def test_amber_pme_program_structure():
    wl = AmberSander("dhfr", 4, simulated_steps=2)
    ops = list(wl.program(0))
    computes = [op for op in ops if isinstance(op, Compute)]
    phases = {op.phase for op in computes}
    assert {"replicated", "direct", "mesh", "fft", "integrate"} <= phases
    # two alltoalls (forward + inverse transpose) per step
    assert sum(isinstance(op, Alltoall) for op in ops) == 4
    # one force allreduce per step
    force_reductions = [op for op in ops if isinstance(op, Allreduce)]
    assert len(force_reductions) == 2
    assert force_reductions[0].nbytes == 24 * 22_930


def test_amber_gb_program_structure():
    wl = AmberSander("gb_mb", 2, simulated_steps=3)
    ops = list(wl.program(1))
    assert not any(isinstance(op, Alltoall) for op in ops)
    gb_ops = [op for op in ops
              if isinstance(op, Compute) and op.phase == "gb"]
    assert len(gb_ops) == 3


def test_amber_single_rank_skips_collectives():
    ops = list(AmberSander("jac", 1, simulated_steps=1).program(0))
    assert not any(isinstance(op, Allreduce) for op in ops)


def test_pop_program_structure():
    wl = Pop(4, simulated_steps=2)
    ops = list(wl.program(0))
    barotropic_reductions = [
        op for op in ops
        if isinstance(op, Allreduce) and op.phase == "barotropic"
    ]
    per_step = Pop.SOLVER_ITERATIONS // wl.solver_coarsening
    assert len(barotropic_reductions) == 2 * per_step
    halos = [op for op in ops if isinstance(op, SendRecv)]
    assert halos  # both phases exchange halos
    assert ops[0].__class__ is Barrier


def test_pop_single_rank_no_comm():
    ops = list(Pop(1, simulated_steps=1).program(0))
    assert not any(isinstance(op, (SendRecv, Allreduce)) for op in ops)
