"""Tests for the scheme-comparison and sweep methods of the Session."""

import pytest

from repro.core import AffinityScheme, Compute, SchemeComparison, Workload
from repro.machine import GB, MB, dmz, longs, tiger
from repro.service import default_session


def compare_schemes(*args, **kwargs):
    return default_session().compare_schemes(*args, **kwargs)


def scheme_sweep(*args, **kwargs):
    return default_session().scheme_sweep(*args, **kwargs)


def scaling_study(*args, **kwargs):
    return default_session().scaling_study(*args, **kwargs)


class MemoryBound(Workload):
    name = "membound"

    def __init__(self, ntasks=8):
        self.ntasks = ntasks

    def program(self, rank):
        yield Compute(dram_bytes=0.2 * GB, working_set=1 * GB)


class TinyCompute(Workload):
    name = "tiny"

    def __init__(self, ntasks=1):
        self.ntasks = ntasks

    def program(self, rank):
        yield Compute(flops=1e8 / self.ntasks, flop_efficiency=0.5)


def test_compare_schemes_finds_local_best_for_memory_bound():
    cmp = compare_schemes(longs(), lambda: MemoryBound(8))
    assert "Membind" in cmp.worst
    assert cmp.spread > 1.5
    assert cmp.best_time == min(cmp.times.values())


def test_compare_schemes_improvement_metric():
    cmp = compare_schemes(longs(), lambda: MemoryBound(8))
    assert cmp.improvement_over_default_percent >= 0 or \
        cmp.improvement_over_default_percent > -5  # default may be best


def test_compare_schemes_skips_infeasible():
    # 4 tasks on DMZ: the One-MPI schemes are infeasible
    cmp = compare_schemes(dmz(), lambda: MemoryBound(4))
    assert "One MPI + Local Alloc" not in cmp.times
    assert "Two MPI + Local Alloc" in cmp.times


def test_compare_schemes_single_core_machine():
    cmp = compare_schemes(tiger(), lambda: MemoryBound(2))
    # only the schemes that fit single-core sockets survive
    assert set(cmp.times) <= {"Default", "One MPI + Local Alloc",
                              "One MPI + Membind", "Interleave"}


def test_scheme_sweep_renders_dashes():
    table = scheme_sweep(dmz(), lambda n: MemoryBound(n), task_counts=(2, 4))
    row4 = [r for r in table.rows if r[0] == 4][0]
    headers = table.headers
    assert row4[headers.index("One MPI + Local Alloc")] is None
    assert row4[headers.index("Two MPI + Local Alloc")] is not None


def test_scaling_study_speedup_metric():
    table = scaling_study([dmz()], lambda n: TinyCompute(n),
                          task_counts=(2, 4), metric="speedup")
    row = table.rows[0]
    assert row[0] == "DMZ"
    assert row[1] == pytest.approx(2.0, rel=0.01)
    assert row[2] == pytest.approx(4.0, rel=0.01)
    with pytest.raises(ValueError):
        scaling_study([dmz()], lambda n: TinyCompute(n), (2,),
                      metric="bogus")
