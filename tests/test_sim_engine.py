"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import AllOf, AnyOf, EmptySchedule, Engine, Event, Interrupt, Timeout


def test_engine_starts_at_zero():
    assert Engine().now == 0.0


def test_engine_custom_start_time():
    assert Engine(start_time=5.0).now == 5.0


def test_timeout_advances_clock():
    eng = Engine()
    done = {}

    def program(eng):
        yield eng.timeout(2.5)
        done["t"] = eng.now

    eng.process(program(eng))
    eng.run()
    assert done["t"] == pytest.approx(2.5)


def test_timeout_rejects_negative_delay():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_process_return_value():
    eng = Engine()

    def program(eng):
        yield eng.timeout(1.0)
        return 42

    proc = eng.process(program(eng))
    eng.run()
    assert proc.ok
    assert proc.value == 42


def test_process_waits_on_process():
    eng = Engine()
    order = []

    def child(eng):
        yield eng.timeout(3.0)
        order.append("child")
        return "payload"

    def parent(eng):
        value = yield eng.process(child(eng))
        order.append("parent")
        return value

    parent_proc = eng.process(parent(eng))
    eng.run()
    assert order == ["child", "parent"]
    assert parent_proc.value == "payload"


def test_events_at_same_time_fire_in_schedule_order():
    eng = Engine()
    order = []

    def make(tag):
        def program(eng):
            yield eng.timeout(1.0)
            order.append(tag)
        return program

    for tag in ("a", "b", "c"):
        eng.process(make(tag)(eng))
    eng.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock():
    eng = Engine()

    def program(eng):
        yield eng.timeout(10.0)

    eng.process(program(eng))
    eng.run(until=4.0)
    assert eng.now == 4.0


def test_run_until_past_raises():
    eng = Engine(start_time=5.0)
    with pytest.raises(ValueError):
        eng.run(until=1.0)


def test_step_on_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Engine().step()


def test_event_succeed_twice_raises():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.event().fail("not an exception")


def test_event_value_before_trigger_raises():
    eng = Engine()
    with pytest.raises(RuntimeError):
        _ = eng.event().value


def test_failed_event_raises_inside_process():
    eng = Engine()
    seen = {}

    def program(eng, ev):
        try:
            yield ev
        except ValueError as exc:
            seen["exc"] = exc

    ev = eng.event()
    eng.process(program(eng, ev))
    ev.fail(ValueError("boom"))
    eng.run()
    assert isinstance(seen["exc"], ValueError)


def test_unhandled_failed_event_propagates():
    eng = Engine()
    ev = eng.event()
    ev.fail(RuntimeError("nobody listening"))
    with pytest.raises(RuntimeError, match="nobody listening"):
        eng.run()


def test_process_exception_fails_its_event():
    eng = Engine()

    def program(eng):
        yield eng.timeout(1.0)
        raise KeyError("inside")

    def watcher(eng, proc):
        try:
            yield proc
        except KeyError:
            return "caught"

    proc = eng.process(program(eng))
    watch = eng.process(watcher(eng, proc))
    eng.run()
    assert watch.value == "caught"


def test_all_of_waits_for_all():
    eng = Engine()
    times = {}

    def program(eng):
        yield eng.all_of([eng.timeout(1.0), eng.timeout(5.0), eng.timeout(3.0)])
        times["done"] = eng.now

    eng.process(program(eng))
    eng.run()
    assert times["done"] == pytest.approx(5.0)


def test_any_of_fires_on_first():
    eng = Engine()
    times = {}

    def program(eng):
        yield eng.any_of([eng.timeout(1.0), eng.timeout(5.0)])
        times["done"] = eng.now

    eng.process(program(eng))
    eng.run()
    assert times["done"] == pytest.approx(1.0)


def test_all_of_empty_succeeds_immediately():
    eng = Engine()
    cond = eng.all_of([])
    assert cond.triggered and cond.ok


def test_interrupt_raises_in_process():
    eng = Engine()
    seen = {}

    def victim(eng):
        try:
            yield eng.timeout(100.0)
        except Interrupt as intr:
            seen["cause"] = intr.cause
            seen["time"] = eng.now

    def attacker(eng, proc):
        yield eng.timeout(2.0)
        proc.interrupt("stop it")

    proc = eng.process(victim(eng))
    eng.process(attacker(eng, proc))
    eng.run()
    assert seen["cause"] == "stop it"
    assert seen["time"] == pytest.approx(2.0)


def test_interrupt_finished_process_raises():
    eng = Engine()

    def quick(eng):
        yield eng.timeout(0.1)

    proc = eng.process(quick(eng))
    eng.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_yielding_non_event_is_an_error():
    eng = Engine()

    def bad(eng):
        yield 42

    proc = eng.process(bad(eng))
    # Nobody waits on the process, so the failure surfaces from run().
    with pytest.raises(TypeError, match="must yield Event"):
        eng.run()
    assert proc.triggered and not proc.ok


def test_watched_bad_yield_fails_process_not_engine():
    eng = Engine()

    def bad(eng):
        yield "nope"

    def watcher(eng, proc):
        try:
            yield proc
        except TypeError:
            return "caught"

    proc = eng.process(bad(eng))
    watch = eng.process(watcher(eng, proc))
    eng.run()
    assert watch.value == "caught"


def test_peek_reports_next_event_time():
    eng = Engine()
    eng.timeout(7.0)
    assert eng.peek() == pytest.approx(7.0)


def test_peek_empty_is_inf():
    assert Engine().peek() == float("inf")


def test_determinism_same_program_same_trace():
    def build():
        eng = Engine()
        log = []

        def worker(eng, tag, delay):
            yield eng.timeout(delay)
            log.append((tag, eng.now))
            yield eng.timeout(delay)
            log.append((tag, eng.now))

        for i, d in enumerate([0.3, 0.1, 0.2]):
            eng.process(worker(eng, i, d))
        eng.run()
        return log

    assert build() == build()


def test_urgent_callback_preempts_normal_at_equal_time():
    # The hot loop orders the schedule by (time, priority, seq): an
    # urgent callback scheduled *after* a normal one for the same
    # instant must still run first.
    eng = Engine()
    order = []
    eng.schedule_callback(1.0, lambda ev: order.append("normal"))
    eng.schedule_callback(1.0, lambda ev: order.append("urgent"), urgent=True)
    eng.run()
    assert order == ["urgent", "normal"]


def test_equal_time_urgent_callbacks_keep_schedule_order():
    # Among equal (time, priority) entries the sequence number breaks
    # the tie, so same-priority callbacks fire in scheduling order.
    eng = Engine()
    order = []
    for tag in ("a", "b", "c"):
        eng.schedule_callback(2.0, lambda ev, t=tag: order.append(t),
                              urgent=True)
    eng.run()
    assert order == ["a", "b", "c"]


def test_urgent_priority_constants_are_ordered():
    assert Engine.PRIORITY_URGENT < Engine.PRIORITY_NORMAL


def test_drained_engine_step_raises_empty_schedule():
    # run() must leave the schedule truly empty -- no dead entries left
    # behind by the urgent path's pre-triggered events.
    eng = Engine()
    eng.schedule_callback(0.5, lambda ev: None, urgent=True)

    def program(eng):
        yield eng.timeout(1.0)

    eng.process(program(eng))
    eng.run()
    with pytest.raises(EmptySchedule):
        eng.step()
