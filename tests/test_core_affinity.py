"""Tests for the Table 5 affinity schemes and their resolution."""

import pytest

from repro.core import (
    ALL_SCHEMES,
    SCHEME_TABLE,
    AffinityScheme,
    membind_node_set,
    resolve_scheme,
)
from repro.machine import dmz, longs, tiger
from repro.numa import FirstTouch, Interleave, LocalAlloc, Membind


def test_six_schemes_match_table5():
    assert len(ALL_SCHEMES) == 6
    assert len(SCHEME_TABLE) == 6
    assert [s.value for s in ALL_SCHEMES] == [
        "Default",
        "One MPI + Local Alloc",
        "One MPI + Membind",
        "Two MPI + Local Alloc",
        "Two MPI + Membind",
        "Interleave",
    ]


def test_default_scheme_unbound_first_touch():
    aff = resolve_scheme(AffinityScheme.DEFAULT, longs(), 4)
    assert not aff.placement.bound
    policy = aff.policy_of(0)
    assert isinstance(policy, FirstTouch)
    assert policy.remote_fraction > 0
    assert aff.numactl.command_line() == "(no numactl)"


def test_one_mpi_local_is_fully_local():
    aff = resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, longs(), 4)
    assert aff.placement.bound
    for rank in range(4):
        assert aff.placement.sharers_on_socket(rank) == 1
        dist = aff.distribution(rank)
        assert dist == {aff.placement.socket_of_rank(rank): 1.0}
    assert isinstance(aff.policy_of(0), LocalAlloc)


def test_one_mpi_schemes_limited_by_sockets():
    with pytest.raises(ValueError):
        resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, longs(), 16)
    with pytest.raises(ValueError):
        resolve_scheme(AffinityScheme.ONE_MPI_MEMBIND, dmz(), 4)


def test_membind_hotspot_concentrates_traffic():
    aff = resolve_scheme(AffinityScheme.TWO_MPI_MEMBIND, longs(), 8)
    assert isinstance(aff.policy_of(0), Membind)
    load = aff.controller_sharers()
    # all traffic on nodes 0 and 1, none elsewhere
    assert load[0] == pytest.approx(4.0)
    assert load[1] == pytest.approx(4.0)
    assert all(load[n] == 0 for n in range(2, 8))


def test_membind_node_set_shape():
    assert membind_node_set(longs()) == (0, 1)
    assert membind_node_set(dmz()) == (0, 1)


def test_two_mpi_local_shares_socket():
    aff = resolve_scheme(AffinityScheme.TWO_MPI_LOCAL, dmz(), 4)
    assert all(aff.placement.sharers_on_socket(r) == 2 for r in range(4))
    assert isinstance(aff.policy_of(0), LocalAlloc)


def test_two_mpi_rejected_on_single_core_sockets():
    with pytest.raises(ValueError):
        resolve_scheme(AffinityScheme.TWO_MPI_LOCAL, tiger(), 2)


def test_interleave_spreads_over_all_nodes():
    aff = resolve_scheme(AffinityScheme.INTERLEAVE, longs(), 2)
    assert isinstance(aff.policy_of(0), Interleave)
    dist = aff.distribution(0)
    assert len(dist) == 8
    assert all(frac == pytest.approx(1 / 8) for frac in dist.values())


def test_buffer_nodes_follow_policy():
    local = resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, longs(), 4)
    for rank, node in local.buffer_nodes().items():
        assert node == local.placement.socket_of_rank(rank)
    hotspot = resolve_scheme(AffinityScheme.ONE_MPI_MEMBIND, longs(), 4)
    assert set(hotspot.buffer_nodes().values()) <= {0, 1}


def test_controller_sharers_conserves_streams():
    for scheme in ALL_SCHEMES:
        aff = resolve_scheme(scheme, longs(), 8)
        load = aff.controller_sharers()
        assert sum(load.values()) == pytest.approx(8.0)


def test_resolve_rejects_zero_tasks():
    with pytest.raises(ValueError):
        resolve_scheme(AffinityScheme.DEFAULT, dmz(), 0)


def test_numactl_command_lines_render():
    aff = resolve_scheme(AffinityScheme.ONE_MPI_MEMBIND, longs(), 2)
    cli = aff.numactl.command_line()
    assert "--membind=0,1" in cli
    assert "--cpunodebind=" in cli
    inter = resolve_scheme(AffinityScheme.INTERLEAVE, longs(), 2)
    assert "--interleave=" in inter.numactl.command_line()
