"""Tests for the sched_setaffinity-style CPU mask API."""

import pytest

from repro.machine import dmz, longs
from repro.osmodel import AffinityRegistry, CpuSet, parse_cpu_list


# -- CpuSet ---------------------------------------------------------------

def test_cpuset_basic_roundtrip():
    cpus = CpuSet([0, 2, 3])
    assert cpus.cpus() == [0, 2, 3]
    assert cpus.to_mask() == 0b1101
    assert CpuSet.from_mask(0b1101) == cpus


def test_cpuset_membership_and_len():
    cpus = CpuSet([1, 5])
    assert 5 in cpus and 0 not in cpus
    assert len(cpus) == 2


def test_cpuset_validation():
    with pytest.raises(ValueError):
        CpuSet([])
    with pytest.raises(ValueError):
        CpuSet([-1])
    with pytest.raises(ValueError):
        CpuSet.from_mask(0)


def test_cpuset_set_algebra():
    a, b = CpuSet([0, 1, 2]), CpuSet([2, 3])
    assert (a & b).cpus() == [2]
    assert (a | b).cpus() == [0, 1, 2, 3]
    with pytest.raises(ValueError):
        CpuSet([0]) & CpuSet([1])


def test_cpuset_hashable():
    assert len({CpuSet([0, 1]), CpuSet([1, 0])}) == 1


# -- parse_cpu_list -----------------------------------------------------------

def test_parse_cpu_list_forms():
    assert parse_cpu_list("0,2,4-6").cpus() == [0, 2, 4, 5, 6]
    assert parse_cpu_list("0xf").cpus() == [0, 1, 2, 3]
    assert parse_cpu_list("3").cpus() == [3]


def test_parse_cpu_list_errors():
    with pytest.raises(ValueError):
        parse_cpu_list("5-2")
    with pytest.raises(ValueError):
        parse_cpu_list("1,,2")


# -- AffinityRegistry ------------------------------------------------------------

def test_registry_default_mask_is_all_cpus():
    registry = AffinityRegistry(dmz())
    assert registry.sched_getaffinity(42).cpus() == [0, 1, 2, 3]


def test_registry_set_and_get():
    registry = AffinityRegistry(dmz())
    registry.sched_setaffinity(1, CpuSet([2]))
    assert registry.sched_getaffinity(1).cpus() == [2]


def test_registry_rejects_nonexistent_cpus():
    registry = AffinityRegistry(dmz())
    with pytest.raises(ValueError):
        registry.sched_setaffinity(1, CpuSet([7]))


def test_registry_builds_placement_first_fit():
    spec = longs()
    registry = AffinityRegistry(spec)
    registry.sched_setaffinity(100, parse_cpu_list("4-5"))
    registry.sched_setaffinity(101, parse_cpu_list("4-5"))
    placement = registry.to_placement([100, 101])
    assert placement.core_of_rank == (4, 5)
    assert placement.socket_of_rank(0) == 2
    assert placement.bound


def test_registry_placement_conflict_detected():
    registry = AffinityRegistry(dmz())
    registry.sched_setaffinity(1, CpuSet([0]))
    registry.sched_setaffinity(2, CpuSet([0]))
    with pytest.raises(ValueError):
        registry.to_placement([1, 2])


def test_registry_placement_runs_in_model():
    """Masks -> placement -> simulation end to end."""
    from repro.core import AffinityScheme, JobRunner, ResolvedAffinity
    from repro.core.affinity import resolve_scheme
    from repro.numa import LocalAlloc
    from repro.workloads import StreamTriad

    spec = dmz()
    registry = AffinityRegistry(spec)
    registry.sched_setaffinity(0, CpuSet([0]))
    registry.sched_setaffinity(1, CpuSet([2]))
    placement = registry.to_placement([0, 1])
    affinity = ResolvedAffinity(
        scheme=AffinityScheme.DEFAULT, spec=spec, placement=placement,
        policies=(LocalAlloc(), LocalAlloc()),
        numactl=resolve_scheme(AffinityScheme.DEFAULT, spec, 2).numactl,
    )
    result = JobRunner(spec, affinity).run(StreamTriad(2, 100_000, passes=2))
    assert result.wall_time > 0
