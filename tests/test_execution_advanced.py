"""Advanced runtime tests: noise, thread interplay, accounting details."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALL_SCHEMES,
    AffinityScheme,
    Allreduce,
    Compute,
    JobRunner,
    Workload,
    resolve_scheme,
    run_workload,
)
from repro.machine import GB, MB, dmz, longs, tiger
from repro.numa import NumactlConfig, parse_numactl


class SingleOp(Workload):
    def __init__(self, op, ntasks=1, time_scale=1.0):
        self.op = op
        self.ntasks = ntasks
        self.time_scale = time_scale
        self.name = "single-op"

    def program(self, rank):
        yield self.op


# -- scheduler noise ------------------------------------------------------------

def test_parked_noise_slows_unbound_compute():
    spec = dmz()
    op = Compute(flops=1e9, flop_efficiency=0.9)
    quiet = run_workload(spec, SingleOp(op, 2), AffinityScheme.DEFAULT)
    noisy = run_workload(spec, SingleOp(op, 2), AffinityScheme.DEFAULT,
                         parked=2)
    assert noisy.wall_time > quiet.wall_time
    expected = 1.0 + 0.25 * 2 / spec.total_cores
    assert noisy.wall_time / quiet.wall_time == pytest.approx(expected,
                                                              rel=1e-3)


def test_bound_schemes_ignore_parked_noise():
    spec = dmz()
    op = Compute(flops=1e9, flop_efficiency=0.9)
    bound = run_workload(spec, SingleOp(op, 2), AffinityScheme.ONE_MPI_LOCAL)
    affinity = resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, spec, 2, parked=2)
    assert affinity.scheduler_noise == 0.0
    bound_parked = JobRunner(spec, affinity).run(SingleOp(op, 2))
    assert bound_parked.wall_time == pytest.approx(bound.wall_time)


# -- stream-demand cap -------------------------------------------------------------

def test_stream_bandwidth_cap_limits_single_stream():
    spec = dmz()
    nbytes = 1 * GB
    capped = run_workload(spec, SingleOp(Compute(
        dram_bytes=nbytes, working_set=nbytes, stream_bandwidth=1e9)),
        AffinityScheme.ONE_MPI_LOCAL)
    free = run_workload(spec, SingleOp(Compute(
        dram_bytes=nbytes, working_set=nbytes)),
        AffinityScheme.ONE_MPI_LOCAL)
    assert capped.wall_time == pytest.approx(1.0, rel=1e-3)
    assert free.wall_time < capped.wall_time


def test_stream_cap_above_controller_is_inert():
    spec = dmz()
    nbytes = 1 * GB
    huge_cap = run_workload(spec, SingleOp(Compute(
        dram_bytes=nbytes, working_set=nbytes, stream_bandwidth=1e12)),
        AffinityScheme.ONE_MPI_LOCAL)
    free = run_workload(spec, SingleOp(Compute(
        dram_bytes=nbytes, working_set=nbytes)),
        AffinityScheme.ONE_MPI_LOCAL)
    assert huge_cap.wall_time == pytest.approx(free.wall_time)


def test_second_core_helps_below_capacity_cap():
    """The Table 3 mechanism: demand below C/2 scales; above C it doesn't."""
    spec = dmz()

    def time_two(demand):
        op = Compute(dram_bytes=0.5 * GB, working_set=1 * GB,
                     stream_bandwidth=demand)
        return run_workload(spec, SingleOp(op, ntasks=2),
                            AffinityScheme.TWO_MPI_LOCAL).wall_time

    def time_one(demand):
        op = Compute(dram_bytes=1 * GB, working_set=1 * GB,
                     stream_bandwidth=demand)
        return run_workload(spec, SingleOp(op, ntasks=1),
                            AffinityScheme.ONE_MPI_LOCAL).wall_time

    low = 1.0e9  # below half the DMZ controller
    assert time_two(low) == pytest.approx(time_one(low) / 2, rel=0.01)
    high = 1.0e12  # saturating
    assert time_two(high) == pytest.approx(time_one(high), rel=0.01)


# -- accounting ---------------------------------------------------------------------

def test_rank_times_monotone_and_bounded_by_wall():
    spec = longs()

    class Staggered(Workload):
        name = "staggered"
        ntasks = 4

        def program(self, rank):
            yield Compute(flops=(rank + 1) * 1e8, flop_efficiency=0.5)

    result = run_workload(spec, Staggered(), AffinityScheme.ONE_MPI_LOCAL)
    assert max(result.rank_times) == pytest.approx(result.wall_time)
    assert result.rank_times == sorted(result.rank_times)


def test_empty_program_runs_instantly():
    class Idle(Workload):
        name = "idle"
        ntasks = 2

        def program(self, rank):
            return iter(())

    result = run_workload(dmz(), Idle())
    assert result.wall_time == 0.0
    assert result.messages == 0


def test_phase_times_sum_to_category_times():
    spec = dmz()

    class Phased(Workload):
        name = "phased"
        ntasks = 1

        def program(self, rank):
            yield Compute(flops=1e8, flop_efficiency=0.5, phase="a")
            yield Compute(flops=2e8, flop_efficiency=0.5, phase="b")

    result = run_workload(spec, Phased())
    total_phases = result.phase_time("a") + result.phase_time("b")
    assert total_phases == pytest.approx(result.category_time("compute"))
    assert result.phase_time("b") == pytest.approx(2 * result.phase_time("a"))


def test_workload_validation_hooks():
    class Bad(Workload):
        name = "bad"
        ntasks = 0

        def program(self, rank):
            yield Compute(flops=1.0)

    with pytest.raises(ValueError):
        run_workload(dmz(), Bad())

    class BadScale(Workload):
        name = "badscale"
        ntasks = 1
        time_scale = 0.0

        def program(self, rank):
            yield Compute(flops=1.0)

    with pytest.raises(ValueError):
        run_workload(dmz(), BadScale())


# -- scheme/numactl round trips ----------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(scheme_index=st.integers(min_value=0, max_value=5),
       ntasks=st.sampled_from([2, 4, 8, 16]))
def test_numactl_command_lines_parse_back(scheme_index, ntasks):
    """Every scheme's generated numactl command parses to the same config."""
    spec = longs()
    scheme = ALL_SCHEMES[scheme_index]
    try:
        affinity = resolve_scheme(scheme, spec, ntasks)
    except ValueError:
        return  # infeasible combination (the paper's dashes)
    command = affinity.numactl.command_line()
    if command == "(no numactl)":
        assert affinity.numactl == NumactlConfig()
        return
    parsed = parse_numactl(command.split()[1:])
    assert parsed == affinity.numactl


def test_all_schemes_run_all_systems_smoke():
    """Every feasible (system, scheme) pair executes a small workload."""
    op = Compute(flops=1e7, dram_bytes=10 * MB, working_set=10 * MB,
                 flop_efficiency=0.5)
    for spec in (tiger(), dmz(), longs()):
        for scheme in ALL_SCHEMES:
            for ntasks in (1, 2):
                try:
                    result = run_workload(spec, SingleOp(op, ntasks), scheme)
                except ValueError:
                    continue
                assert result.wall_time > 0
