"""Tests for the self-healing machinery: breakers, supervision, shedding.

The load-bearing resilience promises:

* The router's per-shard **circuit breaker** opens after consecutive
  forward failures, lets exactly one half-open probe through after the
  cooldown, and re-closes (or re-opens) on the probe's outcome — and
  an open breaker reorders the fallback walk but never strands a key.
* The **shard supervisor** restarts a crashed shard with exponential
  backoff, rewrites the cluster state file atomically, and abandons a
  flapping shard once its restart budget is exhausted instead of
  fork-bombing a crash loop.
* An overloaded session **sheds** ``tier="auto"`` work to the
  surrogate fast path — flagged ``degraded``, byte-identical to the
  queued path — and rejects the rest with a live ``retry_after`` hint.
* **Replay** retries pre-acceptance rejections (nothing was admitted,
  so a retry cannot duplicate work) and reports how often it did.
* ``doctor`` detects a stale cluster state file and ``--fix`` prunes
  exactly the entries that are dead on *both* probes (endpoint + pid).
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cluster.router import (
    BREAKER_STATE_GAUGE,
    CircuitBreaker,
    Router,
    rendezvous_order,
    shard_for_key,
)
from repro.cluster.supervisor import (
    ShardSpec,
    ShardSupervisor,
    atomic_write_json,
)
from repro.core.cache import ResultCache
from repro.errors import QueueFullError
from repro.machine import tiger
from repro.service import RunRequest, Session
from repro.service.transport import TcpNdjsonServer, serve_in_thread
from repro.workloads.lmbench import StreamTriad
from repro.workloads.nas import NasCG

FAST_STREAM = {"workload": "stream", "system": "tiger", "ntasks": 2,
               "scheme": "default", "tier": "fast"}


# -- circuit breaker (unit, fake clock) --------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_consecutive_failures():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=3, open_s=2.0, clock=clock)
    assert breaker.state() == CircuitBreaker.CLOSED
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.allow()  # two failures: still closed
    breaker.record_failure()
    assert breaker.state() == CircuitBreaker.OPEN
    assert not breaker.allow()


def test_breaker_success_resets_the_streak():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=2, open_s=2.0, clock=clock)
    breaker.record_failure()
    breaker.record_success()  # streak broken
    breaker.record_failure()
    assert breaker.state() == CircuitBreaker.CLOSED


def test_breaker_halfopen_grants_exactly_one_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, open_s=2.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    clock.now = 2.5  # past the cooldown: half-open
    assert breaker.state() == CircuitBreaker.HALF_OPEN
    assert breaker.allow()       # the probe slot
    assert not breaker.allow()   # concurrent callers go elsewhere


def test_breaker_probe_success_recloses():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, open_s=1.0, clock=clock)
    breaker.record_failure()
    clock.now = 1.5
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state() == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_breaker_probe_failure_reopens_with_fresh_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, open_s=1.0, clock=clock)
    breaker.record_failure()
    clock.now = 1.5
    assert breaker.allow()
    breaker.record_failure()  # the probe failed
    assert breaker.state() == CircuitBreaker.OPEN
    clock.now = 2.0  # half a cooldown after the re-open: still open
    assert not breaker.allow()
    clock.now = 2.6
    assert breaker.state() == CircuitBreaker.HALF_OPEN


def test_breaker_threshold_zero_disables():
    breaker = CircuitBreaker(failure_threshold=0, open_s=0.1)
    for _ in range(10):
        breaker.record_failure()
    assert breaker.state() == CircuitBreaker.CLOSED
    assert breaker.allow()


def test_breaker_gauge_encoding_covers_every_state():
    assert set(BREAKER_STATE_GAUGE) == {CircuitBreaker.CLOSED,
                                        CircuitBreaker.HALF_OPEN,
                                        CircuitBreaker.OPEN}
    # sorted by increasing badness so dashboards can threshold
    assert BREAKER_STATE_GAUGE[CircuitBreaker.CLOSED] == 0
    assert BREAKER_STATE_GAUGE[CircuitBreaker.OPEN] == 2


# -- circuit breaker (router integration) ------------------------------------


class LocalShard:
    """A protocol-shaped shard that can die and revive on one port."""

    def __init__(self, name, address=("127.0.0.1", 0)):
        self.name = name
        self.served = 0
        self.server = None
        self.revive(address)

    @property
    def address(self):
        return self.server.address

    def handle(self, message):
        op = message.get("op")
        if op == "submit":
            self.served += 1
            return {"status": "ok", "op": "submit", "source": "computed",
                    "served_by": self.name}
        return {"status": "ok", "op": op, "session": self.name,
                "stats": {}, "gauges": {}}

    def revive(self, address=None):
        self.server = TcpNdjsonServer(address or self.address, self.handle)
        serve_in_thread(self.server, self.name)

    def kill(self):
        self.server.shutdown()
        self.server.close()


@pytest.fixture
def breaker_cluster():
    shards = [LocalShard(f"s{i}") for i in range(3)]
    router = Router([(s.name, s.address) for s in shards],
                    retries=0, backoff_s=0.01, request_timeout_s=5.0,
                    breaker_threshold=2, breaker_open_s=0.25)
    try:
        yield shards, router
    finally:
        router.stop()
        for shard in shards:
            try:
                shard.kill()
            except Exception:
                pass


def _home_shard(router, shards, cell):
    key = router._cell_key(cell)
    return next(s for s in shards
                if s.name == shard_for_key(key, [s.name for s in shards]))


def test_router_breaker_opens_and_ejects_flapping_shard(breaker_cluster):
    """A flapping shard (health says alive, forwards fail) trips open.

    A plainly dead shard is already demoted by the health verdict; the
    breaker exists for the nastier case where the prober keeps seeing
    the shard alive but forwards keep failing.  Simulate the flap by
    re-asserting the stale alive verdict between failing forwards.
    """
    shards, router = breaker_cluster
    home = _home_shard(router, shards, FAST_STREAM)
    home.kill()
    for _ in range(2):  # two forward failures trip the threshold
        router._shards[home.name].alive = True  # the stale health verdict
        reply = router.handle_message({"op": "submit",
                                       "cell": dict(FAST_STREAM)})
        assert reply["status"] == "ok"  # rerouted, never lost
    assert router.breaker_states()[home.name] == CircuitBreaker.OPEN
    router._shards[home.name].alive = True
    # with the breaker open the dead shard is not even contacted
    failures = router.forward_failures
    reply = router.handle_message({"op": "submit",
                                   "cell": dict(FAST_STREAM)})
    assert reply["status"] == "ok"
    assert router.forward_failures == failures
    # breaker state shows up in the stats response for `status`/`top`
    stats = router._stats_response()
    assert stats["cluster"]["breakers"][home.name] == CircuitBreaker.OPEN
    assert router.cluster_gauges()["cluster_breakers_open"] == 1


def test_router_halfopen_probe_recovers_revived_shard(breaker_cluster):
    shards, router = breaker_cluster
    home = _home_shard(router, shards, FAST_STREAM)
    address = home.address
    home.kill()
    for _ in range(2):  # flap: stale alive verdict + failing forwards
        router._shards[home.name].alive = True
        router.handle_message({"op": "submit", "cell": dict(FAST_STREAM)})
    assert router.breaker_states()[home.name] == CircuitBreaker.OPEN
    home.revive(address)
    router.check_health()  # the prober sees it alive again
    time.sleep(0.3)        # past the cooldown: half-open
    assert router.breaker_states()[home.name] == CircuitBreaker.HALF_OPEN
    served = home.served
    reply = router.handle_message({"op": "submit",
                                   "cell": dict(FAST_STREAM)})
    assert reply["status"] == "ok"
    assert reply["served_by"] == home.name  # the forward was the probe
    assert home.served == served + 1
    assert router.breaker_states()[home.name] == CircuitBreaker.CLOSED


def test_router_open_breaker_never_strands_a_key(breaker_cluster):
    """When every shard's breaker is open the walk still tries them."""
    shards, router = breaker_cluster
    for state in router._shards.values():
        state.breaker.record_failure()
        state.breaker.record_failure()
    assert all(state == CircuitBreaker.OPEN
               for state in router.breaker_states().values())
    reply = router.handle_message({"op": "submit",
                                   "cell": dict(FAST_STREAM)})
    assert reply["status"] == "ok"  # deferred pass reached a live shard


# -- shard supervisor (unit, fake procs) -------------------------------------


class FakeProc:
    _next_pid = iter(range(40_000, 50_000))

    def __init__(self):
        self.pid = next(self._next_pid)
        self.returncode = None

    def poll(self):
        return self.returncode

    def die(self, code=1):
        self.returncode = code


def _supervisor(tmp_path, clock, *, budget=3, launch=None, ping=None,
                state=None):
    spec = ShardSpec(name="shard-0", address=("127.0.0.1", 7777))
    proc = FakeProc()
    procs = {"shard-0": proc}
    launched = []

    def default_launch(s):
        replacement = FakeProc()
        launched.append(replacement)
        return replacement

    supervisor = ShardSupervisor(
        [spec], procs,
        state_path=str(tmp_path / "cluster.json") if state else None,
        state=state, restart_budget=budget, budget_window_s=60.0,
        backoff_s=0.5, backoff_max_s=4.0,
        launch_fn=launch or default_launch,
        ping_fn=ping or (lambda address, deadline_s: True),
        clock=clock)
    return supervisor, proc, procs, launched


def test_supervisor_restarts_crash_with_backoff_and_state_rewrite(tmp_path):
    clock = FakeClock()
    state = {"shards": {"shard-0": "127.0.0.1:7777"},
             "pids": {"shard-0": 11}, "router": "127.0.0.1:7070"}
    state_path = tmp_path / "cluster.json"
    atomic_write_json(str(state_path), state)
    supervisor, proc, procs, launched = _supervisor(tmp_path, clock,
                                                    state=state)
    assert supervisor.poll_once() == []  # healthy: nothing to do
    proc.die()
    assert supervisor.poll_once() == []  # corpse sighted: backoff first
    clock.now = 0.6                      # past backoff_s * 2**0
    events = supervisor.poll_once()
    assert [e["event"] for e in events] == ["restart"]
    assert events[0]["old_pid"] == proc.pid
    assert events[0]["ready"] is True
    assert procs["shard-0"] is launched[0]  # teardown sees the new proc
    assert supervisor.restarts() == {"shard-0": 1}
    on_disk = json.loads(state_path.read_text())
    assert on_disk["pids"]["shard-0"] == launched[0].pid
    assert on_disk["supervised"] is True
    assert not list(tmp_path.glob("*.tmp.*"))  # the rewrite was atomic


def test_supervisor_budget_exhaustion_abandons_the_shard(tmp_path):
    clock = FakeClock()
    supervisor, proc, procs, launched = _supervisor(tmp_path, clock,
                                                    budget=2)
    abandoned = None
    for _ in range(10):  # crash-loop until the supervisor gives up
        procs["shard-0"].die()
        supervisor.poll_once()           # sight the corpse
        clock.now += 5.0                 # past backoff, inside the window
        events = supervisor.poll_once()
        if events and events[0]["event"] == "abandon":
            abandoned = events[0]
            break
    assert abandoned is not None
    assert abandoned["budget"] == 2
    assert supervisor.abandoned() == ["shard-0"]
    assert len(launched) == 2  # exactly the budget, not one more
    # once abandoned the shard is never touched again
    clock.now += 100.0
    assert supervisor.poll_once() == []


def test_supervisor_backoff_doubles_within_the_window(tmp_path):
    clock = FakeClock()
    supervisor, proc, procs, launched = _supervisor(tmp_path, clock,
                                                    budget=5)
    proc.die()
    supervisor.poll_once()
    watch = supervisor._watches["shard-0"]
    first_delay = watch.not_before - clock.now
    clock.now = watch.not_before + 0.01
    supervisor.poll_once()  # restart #1
    procs["shard-0"].die()
    supervisor.poll_once()  # sight the second corpse
    second_delay = watch.not_before - clock.now
    assert second_delay == pytest.approx(first_delay * 2)


def test_supervisor_launch_failure_counts_against_budget(tmp_path):
    clock = FakeClock()

    def broken_launch(spec):
        raise OSError("exec failed")

    supervisor, proc, procs, launched = _supervisor(
        tmp_path, clock, budget=2, launch=broken_launch)
    proc.die()
    events = []
    for _ in range(10):
        clock.now += 5.0  # past backoff, inside the budget window
        events += supervisor.poll_once()
        if supervisor.abandoned():
            break
    kinds = [e["event"] for e in events]
    assert kinds.count("restart_failed") == 2
    assert kinds[-1] == "abandon"


def test_supervisor_stop_halts_restarts(tmp_path):
    clock = FakeClock()
    supervisor, proc, procs, launched = _supervisor(tmp_path, clock)
    supervisor.start()
    supervisor.stop()
    proc.die()
    clock.now = 100.0
    assert supervisor.poll_once() == []  # stopped: corpse left alone
    assert launched == []


def test_supervisor_external_stop_wins(tmp_path):
    import threading

    clock = FakeClock()
    external = threading.Event()
    spec = ShardSpec(name="shard-0", address=("127.0.0.1", 7777))
    proc = FakeProc()
    supervisor = ShardSupervisor(
        [spec], {"shard-0": proc}, launch_fn=lambda s: FakeProc(),
        ping_fn=lambda a, d: True, clock=clock, external_stop=external)
    external.set()  # e.g. the router began a protocol shutdown
    proc.die()
    clock.now = 100.0
    assert supervisor.poll_once() == []


# -- adaptive load shedding ---------------------------------------------------


def _auto_cell(workload):
    return RunRequest(system=tiger(), workload=workload, tier="auto")


def test_overload_sheds_auto_tier_to_surrogate(tmp_path):
    from repro.core.parallel import run_request

    with Session(cache=ResultCache(directory=tmp_path / "svc"), jobs=1,
                 max_pending=1, paused=True, shed_threshold=0.5,
                 name="shed-test") as session:
        queued = session.submit(_auto_cell(StreamTriad(2)))
        shed = session.submit(_auto_cell(NasCG(2)))
        # the degraded job resolved inline, before resume
        assert shed.done()
        degraded = shed.result()
        assert degraded.ok
        assert degraded.degraded is True
        assert degraded.to_wire().get("degraded") is True
        assert session.stats.degraded == 1
        session.resume()
        assert session.drain(timeout=60.0)
        result = queued.result()
        assert result.ok
        assert result.degraded is False
        assert "degraded" not in result.to_wire()

    # cache coherence: the shed path produced exactly what the queued
    # path would have (auto resolves its tier before cache keying)
    baseline = run_request(
        _auto_cell(NasCG(2)).to_job(),
        cache=ResultCache(directory=tmp_path / "base"))
    assert degraded.job.to_dict() == baseline.to_dict()


def test_overload_rejects_non_degradable_with_retry_after(tmp_path):
    with Session(cache=ResultCache(directory=tmp_path / "svc"), jobs=1,
                 max_pending=1, paused=True, shed_threshold=0.5,
                 name="shed-reject") as session:
        session.submit(RunRequest(system=tiger(),
                                  workload=StreamTriad(2), tier="exact"))
        with pytest.raises(QueueFullError) as excinfo:
            session.submit(RunRequest(system=tiger(),
                                      workload=NasCG(2), tier="exact"))
        assert excinfo.value.retry_after > 0
        assert excinfo.value.code == "queue_full"
        session.resume()
        session.drain(timeout=60.0)


def test_shedding_off_by_default_keeps_old_rejection(tmp_path):
    with Session(cache=ResultCache(directory=tmp_path / "svc"), jobs=1,
                 max_pending=1, paused=True, name="shed-off") as session:
        session.submit(_auto_cell(StreamTriad(2)))
        with pytest.raises(QueueFullError, match="queue is full"):
            session.submit(_auto_cell(NasCG(2)))
        assert session.stats.degraded == 0
        session.resume()
        session.drain(timeout=60.0)


def test_wait_p99_gauge_is_published(tmp_path):
    with Session(cache=ResultCache(directory=tmp_path / "svc"), jobs=1,
                 name="gauge-test") as session:
        session.run(_auto_cell(StreamTriad(2)))
        gauges = session.gauges()
        assert "service_wait_seconds_p99" in gauges
        assert "service_degraded" in gauges
        assert gauges["service_wait_seconds_p99"] >= 0.0


# -- replay client retries ----------------------------------------------------


class RejectOnceShard:
    """Answers each cell's first submit with queue_full, then ok."""

    def __init__(self):
        self.seen = set()
        self.submits = 0
        self.server = TcpNdjsonServer(("127.0.0.1", 0), self.handle)
        serve_in_thread(self.server, "reject-once")

    def handle(self, message):
        op = message.get("op")
        if op != "submit":
            return {"status": "ok", "op": op, "stats": {}, "gauges": {}}
        self.submits += 1
        key = json.dumps(message.get("cell"), sort_keys=True)
        if key not in self.seen:
            self.seen.add(key)
            return {"status": "error", "op": "submit",
                    "code": "queue_full", "message": "backpressure",
                    "retry_after": 0.01}
        return {"status": "ok", "op": "submit", "source": "computed",
                "served_by": "reject-once"}

    def close(self):
        self.server.shutdown()
        self.server.close()


def test_replay_retries_preacceptance_rejections():
    from repro.cluster.replay import run_replay

    shard = RejectOnceShard()
    trace = [{"t": 0.0, "cell": dict(FAST_STREAM, ntasks=n)}
             for n in (1, 2, 4)]
    try:
        report = run_replay(shard.server.address, trace, rate=0.0,
                            clients=2, timeout=30.0, retries=2)
    finally:
        shard.close()
    assert report["errors"] == 0
    assert report["retries"] == 3  # one retry per unique cell
    assert report["ok"] == 3


def test_replay_without_retries_surfaces_the_rejection():
    from repro.cluster.replay import run_replay

    shard = RejectOnceShard()
    trace = [{"t": 0.0, "cell": dict(FAST_STREAM)}]
    try:
        report = run_replay(shard.server.address, trace, rate=0.0,
                            clients=1, timeout=30.0, retries=0)
    finally:
        shard.close()
    assert report["errors"] == 1
    assert report["error_codes"] == {"queue_full": 1}
    assert report["retries"] == 0


# -- doctor: stale cluster state ---------------------------------------------


def _dead_pid():
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


def _free_port_address():
    import socket

    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    _, port = sock.getsockname()
    sock.close()
    return f"127.0.0.1:{port}"


def test_doctor_detects_and_removes_fully_dead_state(tmp_path):
    from repro.telemetry.doctor import check_cluster_state

    path = str(tmp_path / "cluster.json")
    atomic_write_json(path, {
        "router": _free_port_address(), "router_pid": _dead_pid(),
        "shards": {"shard-0": _free_port_address()},
        "pids": {"shard-0": _dead_pid()}})
    report = check_cluster_state(path)
    assert report["present"]
    assert sorted(report["dead"]) == ["router", "shard-0"]
    assert os.path.exists(path)  # a dry run never mutates

    fixed = check_cluster_state(path, fix=True)
    assert fixed["deleted_file"] is True
    assert not os.path.exists(path)


def test_doctor_prunes_only_the_dead_shard(tmp_path):
    from repro.telemetry.doctor import check_cluster_state

    live = LocalShard("live-shard")
    host, port = live.address
    path = str(tmp_path / "cluster.json")
    try:
        atomic_write_json(path, {
            "router": f"{host}:{port}", "router_pid": os.getpid(),
            "shards": {"shard-0": f"{host}:{port}",
                       "shard-1": _free_port_address()},
            "pids": {"shard-0": os.getpid(), "shard-1": _dead_pid()}})
        report = check_cluster_state(path, fix=True)
        assert report["dead"] == ["shard-1"]
        assert report["pruned"] == ["shard-1"]
        assert report["deleted_file"] is False
        on_disk = json.loads(open(path).read())
        assert "shard-1" not in on_disk["shards"]
        assert "shard-0" in on_disk["shards"]
    finally:
        live.kill()


def test_doctor_absent_state_is_healthy(tmp_path):
    from repro.telemetry.doctor import check_cluster_state

    report = check_cluster_state(str(tmp_path / "missing.json"))
    assert report["present"] is False
    assert report["dead"] == []


def test_doctor_cli_fixes_stale_state(tmp_path, capsys):
    from repro.telemetry.doctor import main

    path = str(tmp_path / "cluster.json")
    atomic_write_json(path, {
        "router": _free_port_address(), "router_pid": _dead_pid(),
        "shards": {}, "pids": {}})
    code = main(["--ledger-dir", str(tmp_path / "ledger"),
                 "--cache-dir", str(tmp_path / "cache"),
                 "--state", path, "--fix"])
    out = capsys.readouterr().out
    assert code == 0
    assert "state file removed" in out
    assert not os.path.exists(path)


# -- chaos search -------------------------------------------------------------


def test_chaos_search_profiles_cover_every_property():
    from repro.bench.chaos_search import PROFILES, PROPERTIES

    for profile, budgets in PROFILES.items():
        assert set(budgets) == set(PROPERTIES)
        assert all(n > 0 for n in budgets.values())
    assert all(PROFILES["nightly"][p] > PROFILES["ci"][p]
               for p in PROPERTIES)


def test_chaos_search_cell_property_single_example():
    from repro.bench.chaos_search import _check_cell_invariants
    from repro.faults import FaultPlan, LinkDegrade

    cell = {"system": "tiger", "workload": "stream", "ntasks": 2,
            "scheme": "default"}
    _check_cell_invariants(cell, "auto", None)
    _check_cell_invariants(
        cell, "exact",
        FaultPlan(seed=7, faults=(LinkDegrade(src=0, dst=1,
                                              bandwidth_factor=0.2),)))


def test_chaos_search_cluster_property_single_example():
    from repro.bench.chaos_search import _check_cluster_kill

    cells = [
        {"system": "tiger", "workload": "stream", "ntasks": 2,
         "scheme": "default"},
        {"system": "dmz", "workload": "cg", "ntasks": 2,
         "scheme": "default"},
    ]
    _check_cluster_kill(cells, 2, 0, 0.3)


def test_chaos_search_hypothesis_profile_runs(tmp_path):
    pytest.importorskip("hypothesis")
    from repro.bench.chaos_search import run_search

    report = run_search(profile="ci", corpus_dir=str(tmp_path / "corpus"),
                        names=["shed-degrade"])
    assert report["ok"] is True
    assert report["properties"]["shed-degrade"]["examples"] > 0
