"""Tests for the repro.perfctr counter subsystem.

The load-bearing properties: conservation invariants hold across
workload classes (L1 misses == L2 accesses, L2 misses == total DRAM
accesses == local + remote == reads + writes), marker regions bracket
exactly the work between start and stop, profiling never perturbs the
simulated result, and profiled cells live under distinct cache keys.
"""

import pytest

from repro.core import AffinityScheme, Compute, MarkerStart, MarkerStop, Workload
from repro.core.cache import job_key
from repro.core.execution import JobRunner, run_workload
from repro.core.parallel import JobRequest
from repro.core.affinity import resolve_scheme
from repro.mpi.implementations import OPENMPI
from repro.apps.md.lammps import LammpsBench
from repro.machine import by_name, dmz, longs
from repro.machine.cache import CacheModel
from repro.numa import Interleave, LocalAlloc, PageTable, numastat
from repro.numa import remote_fraction
from repro.perfctr import (
    CACHE_LINE,
    PerfSession,
    format_bytes,
    format_count,
    remote_access_ratio,
)
from repro.sim import Engine, Tracer
from repro.workloads.blas_scaling import DgemmBench
from repro.workloads.hpcc import HpccRandomAccess
from repro.workloads.lmbench import StreamTriad, triad_bytes_moved


def totals_of(result):
    assert result.perf is not None
    return result.perf["totals"]


def get(counters, event):
    return counters.get(event, 0.0)


# -- conservation invariants ------------------------------------------------

def assert_conserved(totals):
    """The hierarchy must neither create nor lose cacheline accesses."""
    l2_accesses = get(totals, "l2_hits") + get(totals, "l2_misses")
    assert get(totals, "l1_misses") == pytest.approx(l2_accesses, rel=1e-9)
    dram = (get(totals, "dram_local_accesses")
            + get(totals, "dram_remote_accesses"))
    assert get(totals, "l2_misses") == pytest.approx(dram, rel=1e-9)
    reads_writes = get(totals, "dram_reads") + get(totals, "dram_writes")
    assert reads_writes == pytest.approx(dram, rel=1e-9)


@pytest.mark.parametrize("factory", [
    lambda: StreamTriad(2, elements_per_task=200_000, passes=2),
    lambda: DgemmBench(2, 250),
    lambda: LammpsBench("lj", 2, steps=10, simulated_steps=5),
])
def test_conservation_across_workloads(factory):
    result = run_workload(dmz(), factory(), profile=True)
    totals = totals_of(result)
    assert totals["cycles"] > 0
    assert_conserved(totals)


def test_conservation_with_dependent_accesses():
    # RandomAccess exercises the latency-bound counting path
    result = run_workload(
        dmz(), HpccRandomAccess(1, mode="single", updates=50_000, rounds=8),
        profile=True)
    totals = totals_of(result)
    assert totals["dram_local_accesses"] > 0
    assert_conserved(totals)


def test_mpi_counters_match_world_stats():
    result = run_workload(longs(), StreamTriad(4, elements_per_task=100_000),
                          profile=True)
    totals = totals_of(result)
    assert totals["mpi_messages"] == result.messages
    assert get(totals, "mpi_bytes") == result.bytes_sent


# -- counter-derived bandwidth vs. table values -----------------------------

def test_counter_bandwidth_matches_table_within_one_percent():
    from repro.bench.common import bound_spread_affinity

    spec = longs()
    for ncores in (1, 2, 4):
        workload = StreamTriad(ncores)
        affinity = bound_spread_affinity(spec, ncores)
        result = JobRunner(spec, affinity, profile=True).run(workload)
        per_task = triad_bytes_moved(workload) / ncores
        table_bw = sum(per_task / result.phase_times[r]["triad"]
                       for r in range(ncores))
        region = result.perf["regions"]["triad"]
        counter_bw = sum(
            (get(e["counters"], "dram_local_bytes")
             + get(e["counters"], "dram_remote_bytes")) / e["seconds"]
            for e in region.values())
        assert counter_bw == pytest.approx(table_bw, rel=0.01)


def test_remote_ratio_ordering_matches_paper():
    spec = longs()
    ratios = {}
    for scheme in (AffinityScheme.TWO_MPI_LOCAL, AffinityScheme.DEFAULT,
                   AffinityScheme.INTERLEAVE):
        result = run_workload(spec, StreamTriad(8, elements_per_task=100_000),
                              scheme=scheme, profile=True)
        ratios[scheme] = remote_access_ratio(totals_of(result))
    assert (ratios[AffinityScheme.TWO_MPI_LOCAL]
            < ratios[AffinityScheme.DEFAULT]
            < ratios[AffinityScheme.INTERLEAVE])


# -- zero overhead / byte identity when disabled ----------------------------

def test_unprofiled_results_identical_and_carry_no_perf():
    workload = StreamTriad(2, elements_per_task=100_000)
    plain = run_workload(longs(), workload)
    profiled = run_workload(longs(), workload, profile=True)
    assert plain.perf is None
    assert "perf" not in plain.to_dict()
    assert profiled.perf is not None
    # profiling must not perturb the simulation
    assert profiled.wall_time == plain.wall_time
    assert profiled.rank_times == plain.rank_times
    assert profiled.phase_times == plain.phase_times


def test_profile_flag_changes_cache_key_only_when_set():
    spec = longs()
    workload = StreamTriad(2)
    base = job_key(spec, workload)
    assert job_key(spec, workload, profile=False) == base
    assert job_key(spec, workload, profile=True) != base
    plain = JobRequest(spec=spec, workload=workload)
    profiled = JobRequest(spec=spec, workload=workload, profile=True)
    assert plain.key() != profiled.key()
    # the disabled path keeps the exact pre-profiling key layout
    assert plain.key() == job_key(spec, workload, scheme=plain.scheme,
                                  impl=OPENMPI)


def test_perf_snapshot_round_trips_through_cache_json():
    import json

    from repro.core.execution import JobResult

    result = run_workload(dmz(), StreamTriad(2, elements_per_task=100_000),
                          profile=True)
    clone = JobResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert clone.perf == result.perf


# -- marker regions ---------------------------------------------------------

class MarkedWorkload(Workload):
    """Two compute slices, only the second inside an explicit region."""

    name = "marked"
    ntasks = 1

    def program(self, rank):
        yield Compute(flops=1e7, flop_efficiency=0.5)
        yield MarkerStart(name="hot")
        yield Compute(flops=2e7, flop_efficiency=0.5,
                      dram_bytes=64e6, working_set=64e6)
        yield MarkerStop(name="hot")


def test_marker_region_brackets_exactly_the_enclosed_ops():
    result = run_workload(dmz(), MarkedWorkload(), profile=True)
    region = result.perf["regions"]["hot"]
    (entry,) = region.values()
    assert entry["calls"] == 1
    assert get(entry["counters"], "flops") == pytest.approx(2e7)
    assert get(entry["counters"], "dram_local_bytes") > 0
    # the first slice's flops stay outside the region
    assert get(totals_of(result), "flops") == pytest.approx(3e7)


class LeakyWorkload(Workload):
    name = "leaky"
    ntasks = 1

    def program(self, rank):
        yield MarkerStart(name="open")
        yield Compute(flops=1e6, flop_efficiency=0.5)


def test_unclosed_marker_region_raises():
    with pytest.raises(ValueError, match="unclosed"):
        run_workload(dmz(), LeakyWorkload(), profile=True)


def test_markers_are_free_when_profiling_is_off():
    plain = run_workload(dmz(), MarkedWorkload())
    assert plain.perf is None
    profiled = run_workload(dmz(), MarkedWorkload(), profile=True)
    assert plain.wall_time == profiled.wall_time


def test_engine_marker_api_is_noop_without_session():
    engine = Engine()
    engine.marker_start("anything", core=0)   # must not raise
    engine.marker_stop("anything", core=0)
    session = PerfSession()
    session.bind(engine, 2)
    engine.marker_start("r", core=1)
    session.count(1, "flops", 5.0)
    engine.marker_stop("r", core=1)
    assert session.regions.data["r"][1]["counters"]["flops"] == 5.0
    with pytest.raises(ValueError, match="not started"):
        engine.marker_stop("r", core=0)


# -- hierarchy split unit tests ---------------------------------------------

def test_hierarchy_counts_conserve_lines():
    model = CacheModel(dmz().socket.core)
    for working_set, reuse in [(64e6, 0.0), (256e3, 0.9), (1e6, 0.5)]:
        counts = model.hierarchy_counts(working_set, reuse, 1e6)
        assert counts["l1_hits"] + counts["l1_misses"] == pytest.approx(1e6)
        assert counts["l2_hits"] + counts["l2_misses"] == pytest.approx(
            counts["l1_misses"])
        assert counts["l2_misses"] == pytest.approx(
            1e6 * model.dram_traffic_factor(working_set, reuse))
    assert model.hierarchy_counts(1e6, 0.5, 0.0)["l1_hits"] == 0.0
    with pytest.raises(ValueError):
        model.hierarchy_counts(1e6, 0.5, -1.0)


def test_compute_write_fraction_validation():
    with pytest.raises(ValueError, match="write_fraction"):
        Compute(flops=1.0, write_fraction=1.5)


# -- page-level NUMA counters -----------------------------------------------

def test_page_table_feeds_uncore_counters_and_numastat():
    session = PerfSession()
    table = PageTable(num_nodes=4, perf=session)
    table.allocate(0, 40 * 4096, 0, LocalAlloc())
    table.allocate(1, 40 * 4096, 1, Interleave())
    uncore = session.uncore
    assert uncore.get("numa_local_pages") == 40 + 10
    assert uncore.get("numa_remote_pages") == 30
    stats = numastat(table, {0: 0, 1: 1})
    assert remote_fraction(stats) == pytest.approx(30 / 80)
    assert remote_fraction({}) == 0.0


def test_scheme_remote_page_fraction_ordering():
    spec = by_name("longs")
    fractions = {}
    for scheme in (AffinityScheme.TWO_MPI_LOCAL, AffinityScheme.DEFAULT,
                   AffinityScheme.INTERLEAVE):
        affinity = resolve_scheme(scheme, spec, 8)
        table = PageTable(num_nodes=spec.sockets)
        task_nodes = {}
        for rank in range(8):
            node = affinity.placement.socket_of_rank(rank)
            task_nodes[rank] = node
            table.allocate(rank, 256 * 4096, node, affinity.policies[rank])
        fractions[scheme] = remote_fraction(numastat(table, task_nodes))
    assert (fractions[AffinityScheme.TWO_MPI_LOCAL]
            < fractions[AffinityScheme.DEFAULT]
            < fractions[AffinityScheme.INTERLEAVE])


# -- bounded tracer ---------------------------------------------------------

def test_tracer_bounded_capacity_drops_and_counts():
    tracer = Tracer(enabled=True, capacity=3)
    for i in range(5):
        tracer.emit(float(i), "compute", rank=0)
    assert len(tracer.records) == 3
    assert tracer.dropped == 2
    assert [r.time for r in tracer.records] == [0.0, 1.0, 2.0]
    tracer.clear()
    assert len(tracer.records) == 0 and tracer.dropped == 0
    tracer.emit(9.0, "compute")
    assert len(tracer.records) == 1


def test_tracer_capacity_validation_and_disabled_path():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
    tracer = Tracer(enabled=False, capacity=1)
    tracer.emit(0.0, "compute")
    tracer.emit(1.0, "compute")
    assert len(tracer.records) == 0 and tracer.dropped == 0


def test_unbounded_tracer_unchanged():
    tracer = Tracer(enabled=True)
    for i in range(10):
        tracer.emit(float(i), "compute")
    assert len(tracer.records) == 10 and tracer.dropped == 0


# -- session plumbing -------------------------------------------------------

def test_session_grows_banks_and_rejects_unknown_events():
    session = PerfSession()
    session.count(5, "flops", 2.0)
    assert session.core_counters(5)["flops"] == 2.0
    assert session.core_counters(99) == {}
    session.count(None, "numa_local_pages", 3.0)
    assert session.totals()["numa_local_pages"] == 3.0
    with pytest.raises(ValueError, match="unknown counter event"):
        session.count(0, "no_such_event")


def test_snapshot_scales_cycles_and_seconds_by_time_scale():
    engine = Engine()
    session = PerfSession()
    session.bind(engine, 1)
    session.region_start("r", 0)
    session.count(0, "cycles", 100.0)
    session.count(0, "flops", 10.0)
    engine._now = 2.0
    session.region_stop("r", 0)
    snap = session.snapshot(time_scale=5.0)
    assert snap["cores"]["0"]["cycles"] == 500.0
    assert snap["cores"]["0"]["flops"] == 10.0
    entry = snap["regions"]["r"]["0"]
    assert entry["seconds"] == 10.0
    assert entry["counters"]["cycles"] == 500.0


# -- formatting helpers -----------------------------------------------------

def test_format_count():
    assert format_count(0) == "0"
    assert format_count(960) == "960"
    assert format_count(12_345_678) == "12.3M"
    assert format_count(3.87e9) == "3.87G"
    assert format_count(-2000) == "-2K"


def test_format_bytes():
    assert format_bytes(512) == "512 B"
    assert format_bytes(3.84e9) == "3.84 GB"


def test_cache_line_constant():
    assert CACHE_LINE == 64
