"""Tests for the fast-tier analytic surrogate and its tier plumbing.

Three properties matter and each gets its own section below:

* **fidelity** — on supported cells the surrogate must agree with the
  event-driven engine (wall time, message and byte accounting);
* **honesty** — on unsupported cells (marker profiling, fault plans)
  an explicit ``tier="fast"`` refuses loudly, and ``tier="auto"``
  falls back to the exact engine with byte-identical cache keys;
* **availability** — the pure-python fallback path produces the same
  numbers as the numpy path, so a numpy-less install still works.
"""

import pytest

from repro.core.affinity import AffinityScheme, resolve_scheme
from repro.core.parallel import (JobRequest, default_tier, set_default_tier)
from repro.errors import SurrogateUnsupportedError
from repro.faults import CoreSlowdown, FaultPlan
from repro.machine import dmz, longs
from repro.surrogate import (HAVE_NUMPY, SurrogateEvaluator,
                             evaluate_workload, unsupported_reason)
from repro.surrogate import evaluator as surrogate_evaluator
from repro.surrogate.calibration import spearman
from repro.workloads.hpcc import HpccDgemm, HpccRandomAccess, HpccStream
from repro.workloads.nas import NasCG, NasFT


def _cell(workload, scheme=AffinityScheme.DEFAULT, spec=None, **kwargs):
    return JobRequest(spec=spec if spec is not None else longs(),
                      workload=workload, scheme=scheme, **kwargs)


# -- fidelity: fast agrees with exact on supported cells ----------------


AGREEMENT_CELLS = [
    (HpccStream(4), AffinityScheme.DEFAULT),
    (HpccStream(4), AffinityScheme.INTERLEAVE),
    (HpccDgemm(2), AffinityScheme.DEFAULT),
    (HpccRandomAccess(4), AffinityScheme.ONE_MPI_LOCAL),
    (NasCG(4), AffinityScheme.DEFAULT),
    (NasFT(4), AffinityScheme.INTERLEAVE),
]


@pytest.mark.parametrize("workload,scheme", AGREEMENT_CELLS,
                         ids=lambda value: str(value))
def test_fast_tier_matches_exact_wall_time(workload, scheme):
    exact = _cell(workload, scheme, tier="exact").execute()
    fast = _cell(workload, scheme, tier="fast").execute()
    assert fast.wall_time == pytest.approx(exact.wall_time, rel=0.02)


def test_fast_tier_matches_exact_message_accounting():
    # Collective expansion (CG is allreduce/bcast heavy) must post the
    # same messages and bytes as the engine's MpiWorld algorithms.
    exact = _cell(NasCG(4), tier="exact").execute()
    fast = _cell(NasCG(4), tier="fast").execute()
    assert fast.messages == exact.messages
    assert fast.bytes_sent == exact.bytes_sent


def test_fast_tier_matches_exact_on_dmz_fractional_placement():
    # DMZ's Default distribution splits pages across nodes; the
    # processor-sharing drain term must reproduce the engine's
    # fair-share bandwidth behavior, not just whole-node placements.
    for scheme in (AffinityScheme.DEFAULT, AffinityScheme.INTERLEAVE):
        exact = _cell(HpccStream(4), scheme, spec=dmz(),
                      tier="exact").execute()
        fast = _cell(HpccStream(4), scheme, spec=dmz(),
                     tier="fast").execute()
        assert fast.wall_time == pytest.approx(exact.wall_time, rel=0.02)


def test_surrogate_preserves_scheme_ranking():
    walls = {}
    for scheme in (AffinityScheme.DEFAULT, AffinityScheme.ONE_MPI_LOCAL,
                   AffinityScheme.INTERLEAVE):
        walls[scheme] = (
            _cell(HpccStream(4), scheme, tier="exact").execute().wall_time,
            _cell(HpccStream(4), scheme, tier="fast").execute().wall_time,
        )
    exact_order = sorted(walls, key=lambda s: walls[s][0])
    fast_order = sorted(walls, key=lambda s: walls[s][1])
    assert exact_order == fast_order


# -- honesty: unsupported cells refuse or fall back ---------------------


def test_unsupported_reason_is_none_for_plain_cells():
    assert unsupported_reason(HpccStream(4)) is None


def test_unsupported_reason_flags_profiling_and_faults():
    assert "profil" in unsupported_reason(HpccStream(4), profile=True)
    plan = FaultPlan(seed=1, faults=(CoreSlowdown(core=0, factor=2.0),))
    assert "fault" in unsupported_reason(HpccStream(4), faults=plan)


def test_explicit_fast_tier_refuses_profiled_cell():
    request = _cell(HpccStream(4), profile=True, tier="fast")
    with pytest.raises(SurrogateUnsupportedError):
        request.execute()


def test_explicit_fast_tier_refuses_faulted_cell():
    plan = FaultPlan(seed=1, faults=(CoreSlowdown(core=0, factor=2.0),))
    request = _cell(HpccStream(4), faults=plan, tier="fast")
    with pytest.raises(SurrogateUnsupportedError):
        request.execute()


def test_auto_tier_falls_back_to_exact_for_profiled_cell():
    auto = _cell(HpccStream(4), profile=True, tier="auto")
    assert auto.effective_tier() == "exact"
    result = auto.execute()
    assert result.perf is not None  # the engine ran, counters attached
    exact = _cell(HpccStream(4), profile=True, tier="exact").execute()
    assert result.wall_time == exact.wall_time


def test_auto_tier_uses_surrogate_for_supported_cell():
    assert _cell(HpccStream(4), tier="auto").effective_tier() == "fast"


# -- cache keys: tiers never collide, fallback is byte-identical --------


def test_fast_and_exact_cache_keys_differ():
    exact_key = _cell(HpccStream(4), tier="exact").key()
    fast_key = _cell(HpccStream(4), tier="fast").key()
    assert exact_key != fast_key


def test_default_tier_none_keys_like_exact():
    # Pre-surrogate ledgers and caches keyed cells with no tier at all;
    # those entries must stay addressable.
    assert _cell(HpccStream(4)).key() == _cell(HpccStream(4),
                                               tier="exact").key()


def test_auto_key_matches_resolved_tier():
    assert (_cell(HpccStream(4), tier="auto").key()
            == _cell(HpccStream(4), tier="fast").key())
    profiled_auto = _cell(HpccStream(4), profile=True, tier="auto")
    profiled_exact = _cell(HpccStream(4), profile=True, tier="exact")
    assert profiled_auto.key() == profiled_exact.key()


def test_set_default_tier_materializes_and_validates():
    assert default_tier() is None
    set_default_tier("fast")
    try:
        assert default_tier() == "fast"
    finally:
        set_default_tier(None)
    with pytest.raises(ValueError):
        set_default_tier("warp")


# -- availability: the pure-python fallback agrees with numpy -----------


def test_pure_python_fallback_matches_numpy(monkeypatch):
    if not HAVE_NUMPY:
        pytest.skip("numpy unavailable; the fallback is the only path")
    with_numpy = evaluate_workload(longs(), HpccStream(4))
    monkeypatch.setattr(surrogate_evaluator, "_np", None)
    without_numpy = evaluate_workload(longs(), HpccStream(4))
    assert without_numpy.wall_time == pytest.approx(
        with_numpy.wall_time, rel=1e-9)
    assert without_numpy.messages == with_numpy.messages
    assert without_numpy.bytes_sent == with_numpy.bytes_sent


def test_evaluator_handles_fully_occupied_machine():
    spec = longs()
    workload = HpccStream(spec.total_cores)
    affinity = resolve_scheme(AffinityScheme.DEFAULT, spec, workload.ntasks)
    result = SurrogateEvaluator(spec, affinity).run(workload)
    assert result.wall_time > 0


# -- the calibration gate's correlation statistic -----------------------


def test_spearman_perfect_and_reversed():
    assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
    assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)


def test_spearman_handles_ties():
    rho = spearman([1.0, 2.0, 2.0, 3.0], [1.0, 2.5, 2.5, 4.0])
    assert rho == pytest.approx(1.0)


def test_spearman_degenerate_inputs_return_none():
    assert spearman([], []) is None
    assert spearman([1.0], [2.0]) is None
    assert spearman([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) is None


def test_spearman_length_mismatch_raises():
    with pytest.raises(ValueError):
        spearman([1.0, 2.0], [1.0])
