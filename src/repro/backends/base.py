"""The execution-backend contract: one scheduling API, many engines.

The executor (:func:`repro.core.parallel.run_requests`) owns everything
content-addressed — cache lookups, duplicate coalescing, failure
accounting, cache stores — and delegates the actual *running* of the
cache-miss cells to an :class:`ExecutionBackend`.  The split is the
point: a backend never touches the cache or the content address, which
is why the same batch is byte-identical whether it ran on threads, on
the crash-isolated process pool, or on a daemon across the network.

The contract:

* :meth:`~ExecutionBackend.submit_cells` takes a batch of
  :class:`~repro.core.parallel.JobRequest` values and returns one
  :class:`~concurrent.futures.Future` per cell, in batch order.  Each
  future resolves to the executor outcome pair ``("ok", JobResult)``,
  ``("infeasible", reason)`` or ``("failed", {"kind": ..., "message":
  ...})`` — exactly the shape ``_execute_cell`` produces, so backends
  compose with the scheduler's accounting without translation.  A
  future never raises for cell-caused failures; those fold into the
  ``"failed"`` outcome.
* :meth:`~ExecutionBackend.capacity` reports how many cells the
  backend can usefully run at once (a scheduling hint, not a limit).
* :meth:`~ExecutionBackend.drain` blocks until previously submitted
  work is finished; :meth:`~ExecutionBackend.close` releases pools and
  connections.  Both are idempotent.
* :meth:`~ExecutionBackend.healthy` is the liveness hook (the cluster
  router's shard probing keys off it) and
  :meth:`~ExecutionBackend.gauges` the metrics hook — submitted /
  completed / failed / in-flight counters every backend keeps.
"""

from __future__ import annotations

import abc
import threading
from concurrent.futures import Future
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.parallel import JobRequest
from ..telemetry import metrics as _metrics

__all__ = ["ExecutionBackend", "Outcome"]

#: what every per-cell future resolves to: ``("ok", JobResult)``,
#: ``("infeasible", reason)`` or ``("failed", {"kind", "message"})``
Outcome = Tuple[str, object]


class ExecutionBackend(abc.ABC):
    """Runs batches of cells; knows nothing about caching or keys."""

    #: stable backend name (``threads`` / ``processes`` / ``remote``);
    #: shows up in metrics labels and span notes, never in cache keys
    name: str = "backend"

    def __init__(self) -> None:
        self._accounting_lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0

    # -- the scheduling API ----------------------------------------------

    @abc.abstractmethod
    def submit_cells(self, batch: Sequence[JobRequest],
                     jobs: Optional[int] = None,
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None,
                     ) -> "List[Future[Outcome]]":
        """Run ``batch``; one outcome future per cell, in batch order."""

    @abc.abstractmethod
    def capacity(self) -> int:
        """How many cells this backend can usefully run at once."""

    def drain(self) -> None:
        """Block until previously submitted cells finish (idempotent)."""

    def close(self) -> None:
        """Release pools/connections; the backend is done (idempotent)."""

    # -- health / metrics hooks ------------------------------------------

    def healthy(self) -> bool:
        """Can this backend accept work right now?"""
        return True

    def gauges(self) -> Dict[str, float]:
        """Live counters for dashboards and the metrics plane."""
        with self._accounting_lock:
            return {
                "backend_submitted": float(self._submitted),
                "backend_completed": float(self._completed),
                "backend_failed": float(self._failed),
                "backend_inflight": float(self._submitted
                                          - self._completed),
            }

    # -- shared accounting ------------------------------------------------

    def _watch(self, future: "Future[Outcome]") -> "Future[Outcome]":
        """Count one submitted cell and its eventual outcome."""
        with self._accounting_lock:
            self._submitted += 1
        _metrics.inc("backend_cells_total", backend=self.name)
        future.add_done_callback(self._note_done)
        return future

    def _note_done(self, future: "Future[Outcome]") -> None:
        failed = True
        try:
            outcome = future.result()
            failed = outcome[0] == "failed"
        except BaseException:
            pass
        with self._accounting_lock:
            self._completed += 1
            if failed:
                self._failed += 1
        if failed:
            _metrics.inc("backend_failed_total", backend=self.name)

    def _resolved(self, outcome: Outcome) -> "Future[Outcome]":
        """An already-finished future (synchronous backends)."""
        future: "Future[Outcome]" = Future()
        self._watch(future)
        future.set_result(outcome)
        return future

    # -- lifecycle sugar --------------------------------------------------

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"
