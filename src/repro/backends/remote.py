"""Remote backend: cells over the daemon protocol to a serve endpoint.

One :class:`RemoteBackend` owns one persistent
:class:`~repro.service.transport.Connection` to a ``repro-bench
serve`` daemon (or a cluster router) and forwards whole batches as a
single ``{"op": "batch"}`` request.  The connection negotiates
protocol 3 on open, so against any current daemon the cells and their
results travel as :mod:`repro.wire` binary frames; against an older
v2-only daemon everything still works over NDJSON — the backend never
needs to know the server's age.

Cells are translated to their name-based wire spelling by
:func:`~repro.service.registry.wire_cell_for`, which *verifies* every
resolution by canonical token — so a cell that executes remotely lands
under exactly the local content address, and backends stay
byte-interchangeable.  Cells the wire cannot express (explicit
affinities, fault plans, unregistered workloads) fail individually;
they never poison the rest of the batch.

The cluster router reuses the lower-level :meth:`RemoteBackend.forward`
for its per-shard forwarding: one persistent negotiated connection per
shard when traffic is sequential, falling back to the classic one-shot
socket when the connection is busy, so slow sweeps never serialize
health probes behind them.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Dict, List, Optional, Sequence

from ..core.execution import JobResult
from ..core.parallel import JobRequest
from ..errors import ProtocolError, ReproError
from ..service.transport import (Connection, format_address, parse_address,
                                 request as one_shot_request)
from ..telemetry import metrics as _metrics
from .base import ExecutionBackend, Outcome

__all__ = ["RemoteBackend"]


class RemoteBackend(ExecutionBackend):
    """Batches forwarded to a daemon endpoint over one connection."""

    name = "remote"

    def __init__(self, address, timeout: float = 600.0,
                 capacity_hint: int = 64):
        super().__init__()
        self.address = parse_address(address)
        self.timeout = timeout
        self._capacity = max(1, capacity_hint)
        self._conn: Optional[Connection] = None
        self._conn_lock = threading.Lock()

    # -- transport ---------------------------------------------------------

    def _drop_connection(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def _forward_locked(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if self._conn is None:
            self._conn = Connection(self.address, timeout=self.timeout)
        try:
            return self._conn.request(message)
        except (ConnectionError, OSError):
            # the persistent socket may simply have aged out (server
            # restart, idle drop); requests are pre-acceptance
            # idempotent, so one fresh-connection retry is safe
            self._drop_connection()
            self._conn = Connection(self.address, timeout=self.timeout)
            try:
                return self._conn.request(message)
            except BaseException:
                self._drop_connection()
                raise
        except ValueError:
            # undecodable reply: the stream cannot be trusted past it
            self._drop_connection()
            raise

    def forward(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One protocol request/response against this endpoint.

        Uses the persistent negotiated connection when it is free; a
        busy connection (another thread mid-request) falls back to a
        one-shot socket so concurrent callers never queue behind a
        long-running batch.  Raises :class:`ConnectionError`/
        :class:`OSError` when the endpoint is unreachable — the same
        contract as :func:`repro.service.transport.request`, which the
        router's health tracking keys off.
        """
        if self._conn_lock.acquire(blocking=False):
            try:
                return self._forward_locked(message)
            finally:
                self._conn_lock.release()
        _metrics.inc("backend_oneshot_fallback_total", backend=self.name)
        return one_shot_request(self.address, message,
                                timeout=self.timeout)

    # -- the scheduling API ------------------------------------------------

    def submit_cells(self, batch: Sequence[JobRequest],
                     jobs: Optional[int] = None,
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None,
                     ) -> "List[Future[Outcome]]":
        from ..service.registry import wire_cell_for

        outcomes: List[Optional[Outcome]] = [None] * len(batch)
        sendable: List[int] = []
        cells: List[Dict[str, Any]] = []
        for i, request in enumerate(batch):
            try:
                cells.append(wire_cell_for(request))
                sendable.append(i)
            except (ProtocolError, ReproError, ValueError) as exc:
                outcomes[i] = ("failed", {
                    "kind": "error",
                    "message": f"cell has no wire spelling: {exc}"})
        if sendable:
            # timeout/retries stay server-side: the daemon's executor
            # owns the watchdog and retry budget for cells it runs
            try:
                response = self.forward({"op": "batch", "cells": cells})
            except (OSError, ValueError) as exc:
                failure: Outcome = ("failed", {
                    "kind": "transport",
                    "message": f"{format_address(self.address)}: {exc}"})
                for i in sendable:
                    outcomes[i] = failure
            else:
                results = response.get("results") \
                    if response.get("status") == "ok" else None
                if not isinstance(results, list) \
                        or len(results) != len(sendable):
                    detail = response.get("message") \
                        or response.get("error") \
                        or f"malformed batch response from " \
                           f"{format_address(self.address)}"
                    for i in sendable:
                        outcomes[i] = ("failed", {
                            "kind": response.get("kind", "error"),
                            "message": str(detail)})
                else:
                    for i, wire in zip(sendable, results):
                        outcomes[i] = self._outcome_from_wire(wire)
        return [self._resolved(outcome if outcome is not None
                               else ("failed", {"kind": "error",
                                                "message": "cell never "
                                                           "dispatched"}))
                for outcome in outcomes]

    @staticmethod
    def _outcome_from_wire(wire: Any) -> Outcome:
        """Fold one per-cell wire result back to the executor shape."""
        if not isinstance(wire, dict):
            return ("failed", {"kind": "error",
                               "message": "malformed per-cell response"})
        status = wire.get("status")
        if status == "ok" and wire.get("result") is not None:
            try:
                return ("ok", JobResult.from_dict(wire["result"]))
            except (KeyError, TypeError, ValueError) as exc:
                return ("failed", {"kind": "error",
                                   "message": f"undecodable result: {exc}"})
        if status == "infeasible":
            return ("infeasible",
                    wire.get("error") or "scheme infeasible for this cell")
        return ("failed", {
            "kind": wire.get("kind") or wire.get("code") or "error",
            "message": wire.get("error") or wire.get("message")
            or "remote execution failed"})

    def capacity(self) -> int:
        return self._capacity

    # -- health / lifecycle ------------------------------------------------

    def healthy(self, timeout: float = 2.0) -> bool:
        """Liveness probe (always a one-shot socket, never the shared
        connection, so a slow in-flight batch cannot fail the probe)."""
        try:
            response = one_shot_request(self.address, {"op": "ping"},
                                        timeout=timeout)
        except (OSError, ValueError):
            return False
        return response.get("status") == "ok"

    def server_info(self) -> Dict[str, Any]:
        """What the endpoint's ``hello`` advertised (empty before the
        first forwarded request, or against a v2-only server)."""
        with self._conn_lock:
            return dict(self._conn.server_info) if self._conn else {}

    def protocol(self) -> int:
        """The negotiated protocol version (2 until a connection exists)."""
        with self._conn_lock:
            return self._conn.protocol if self._conn else 2

    def close(self) -> None:
        with self._conn_lock:
            self._drop_connection()
