"""In-process backends: a thread pool and the crash-isolated process pool.

:class:`ProcessBackend` is the default — it is the PR-3 executor
machinery (worker processes, stall watchdog, crash isolation, retry
with backoff) behind the backend API, with its exact dispatch rules
preserved: ``jobs > 1`` sends even a single straggler to the pool so
crash isolation holds for the last missing cell too, and a batch with
any unpicklable cell falls back to a serial in-process loop.

:class:`ThreadBackend` runs cells on a thread pool in this process.
No crash isolation and no watchdog (a thread cannot be killed), and
the simulator is pure Python, so threads buy overlap rather than
speedup — it exists as the zero-setup backend for tests, embedders,
and the backend-parity harness, where "same bytes from a completely
different execution plane" is the property under test.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import List, Optional, Sequence

from ..core import parallel as _parallel
from ..core.parallel import (JobRequest, _execute_cell, _run_parallel,
                             default_jobs, default_retries, default_timeout)
from .base import ExecutionBackend, Outcome

__all__ = ["ProcessBackend", "ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Cells on an in-process thread pool; futures resolve as they run."""

    name = "threads"

    def __init__(self, workers: Optional[int] = None):
        super().__init__()
        self._workers = workers
        self._size = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    def _executor(self, jobs: Optional[int]) -> ThreadPoolExecutor:
        size = self._workers or jobs or default_jobs()
        with self._pool_lock:
            if self._pool is None or size > self._size:
                # growing is safe mid-flight: the old pool keeps running
                # the futures it already owns
                old, self._pool = self._pool, ThreadPoolExecutor(
                    max_workers=size, thread_name_prefix="repro-backend")
                self._size = size
                if old is not None:
                    old.shutdown(wait=False)
            return self._pool

    def submit_cells(self, batch: Sequence[JobRequest],
                     jobs: Optional[int] = None,
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None,
                     ) -> "List[Future[Outcome]]":
        # timeout/retries guard against crashed or stalled *worker
        # processes*; threads share this process, so neither applies
        pool = self._executor(jobs)
        _parallel.pool_stats().executed_serial += len(batch)
        return [self._watch(pool.submit(_execute_cell, request))
                for request in batch]

    def capacity(self) -> int:
        return self._size or self._workers or default_jobs()

    def drain(self) -> None:
        with self._pool_lock:
            pool = self._pool
        if pool is not None:
            # idle=True barrier: a fresh no-op future flushes the queue
            pool.submit(lambda: None).result()

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._size = 0
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessBackend(ExecutionBackend):
    """The crash-isolated worker-process executor behind the backend API.

    ``submit_cells`` returns already-resolved futures: the process
    pool's own workers are the concurrency, and running the dispatch on
    the caller's thread keeps ``KeyboardInterrupt`` semantics exactly
    as they were (the interrupt kills the pool and propagates to the
    caller, never to a detached dispatcher thread).
    """

    name = "processes"

    def __init__(self, jobs: Optional[int] = None):
        super().__init__()
        self._jobs = jobs

    def submit_cells(self, batch: Sequence[JobRequest],
                     jobs: Optional[int] = None,
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None,
                     ) -> "List[Future[Outcome]]":
        jobs = self._jobs or (default_jobs() if jobs is None
                              else max(1, jobs))
        timeout = default_timeout() if timeout is None else (
            timeout if timeout > 0 else None)
        retries = default_retries() if retries is None else max(0, retries)
        stats = _parallel.pool_stats()
        outcomes: Optional[List[Outcome]] = None
        # jobs > 1 dispatches even a single straggler to the pool:
        # crash isolation must hold for the last missing cell too
        if jobs > 1:
            try:
                for request in batch:
                    pickle.dumps(request)
            except Exception:
                outcomes = None  # unpicklable cell: serial fallback
            else:
                outcomes = _run_parallel(list(batch), jobs, timeout,
                                         retries)
                stats.executed_parallel += len(batch)
        if outcomes is None:
            outcomes = [_execute_cell(request) for request in batch]
            stats.executed_serial += len(batch)
        return [self._resolved(outcome) for outcome in outcomes]

    def capacity(self) -> int:
        return self._jobs or default_jobs()

    def close(self) -> None:
        _parallel.shutdown_pool()
