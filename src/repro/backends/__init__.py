"""Pluggable execution backends behind one scheduling API.

Every execution plane in the repo — ``Experiment.run()``, the sweep
executor, the service :class:`~repro.service.session.Session`, the
cluster router's shards — schedules cells through one contract,
:class:`~repro.backends.base.ExecutionBackend`:

* :class:`~repro.backends.local.ProcessBackend` (the default) — the
  crash-isolated worker-process pool with stall watchdog and retries;
* :class:`~repro.backends.local.ThreadBackend` — an in-process thread
  pool, zero setup, no isolation;
* :class:`~repro.backends.remote.RemoteBackend` — cells forwarded to a
  ``repro-bench serve`` daemon (or cluster router) over the wire
  protocol, negotiating the binary v3 framing when the server speaks
  it.

Backends run cells; they never see the cache.  Content addressing,
hit/duplicate coalescing, and stores stay in
:func:`repro.core.parallel.run_requests`, which is why the backend
choice can never leak into a cache key and results are byte-identical
across all three.

CLI spellings (``repro-bench --backend`` / ``serve --backend``) are
resolved by :func:`resolve_backend`: ``threads``, ``processes``, or
``remote:<addr>`` where ``<addr>`` is a ``host:port`` or socket path.
"""

from __future__ import annotations

import threading
from typing import Optional, Union

from .base import ExecutionBackend, Outcome
from .local import ProcessBackend, ThreadBackend
from .remote import RemoteBackend

__all__ = ["ExecutionBackend", "Outcome", "ProcessBackend",
           "RemoteBackend", "ThreadBackend", "default_backend",
           "resolve_backend", "set_default_backend"]

_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Optional[ExecutionBackend] = None


def resolve_backend(spec: Union[str, ExecutionBackend, None]
                    ) -> ExecutionBackend:
    """An :class:`ExecutionBackend` from its CLI spelling.

    ``"threads"`` / ``"threads:N"``, ``"processes"`` /
    ``"processes:N"`` (N workers), or ``"remote:<addr>"``.  Passing an
    existing backend returns it unchanged; ``None`` returns the
    process-wide default.
    """
    if spec is None:
        return default_backend()
    if isinstance(spec, ExecutionBackend):
        return spec
    kind, _, rest = str(spec).partition(":")
    kind = kind.strip().lower()
    if kind in ("threads", "thread"):
        workers = int(rest) if rest else None
        return ThreadBackend(workers=workers)
    if kind in ("processes", "process"):
        jobs = int(rest) if rest else None
        return ProcessBackend(jobs=jobs)
    if kind == "remote":
        if not rest:
            raise ValueError(
                "remote backend needs an address: remote:<host:port> "
                "or remote:<socket-path>")
        return RemoteBackend(rest)
    raise ValueError(
        f"unknown backend {spec!r}; choose threads, processes, or "
        f"remote:<addr>")


def default_backend() -> ExecutionBackend:
    """The process-wide backend (a :class:`ProcessBackend` unless
    :func:`set_default_backend` — e.g. the CLIs' ``--backend`` — said
    otherwise)."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = ProcessBackend()
        return _DEFAULT


def set_default_backend(backend: Union[str, ExecutionBackend, None]
                        ) -> None:
    """Install (or with ``None`` reset) the process-wide backend."""
    global _DEFAULT
    resolved = None if backend is None else resolve_backend(backend)
    with _DEFAULT_LOCK:
        _DEFAULT = resolved
