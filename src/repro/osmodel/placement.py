"""Task-to-core placement strategies.

The paper's experiments pin MPI tasks either one-per-socket or
two-per-socket (Table 5), or leave them to the Linux scheduler
("Default").  On the Longs ladder the authors additionally chose central
sockets "so as to minimize the effect of the HT ladder" for small task
counts (Section 3.5) — :func:`preferred_socket_order` reproduces that
choice by ordering sockets by total distance to all others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..machine.topology import MachineSpec, build_socket_graph

import networkx as nx

__all__ = [
    "Placement",
    "preferred_socket_order",
    "spread",
    "packed",
    "one_per_socket",
    "two_per_socket",
]


@dataclass(frozen=True)
class Placement:
    """An assignment of MPI ranks to cores.

    ``core_of_rank[r]`` is the global core id of rank ``r``; cores are
    numbered socket-major, so the socket of a core is
    ``core_id // cores_per_socket``.  ``bound`` records whether the
    assignment is enforced (numactl/sched_setaffinity) or merely the
    scheduler's initial choice.
    """

    core_of_rank: Tuple[int, ...]
    cores_per_socket: int
    bound: bool = True

    def __post_init__(self):
        if len(set(self.core_of_rank)) != len(self.core_of_rank):
            raise ValueError("placement assigns two ranks to one core")

    @property
    def ntasks(self) -> int:
        return len(self.core_of_rank)

    def socket_of_rank(self, rank: int) -> int:
        """NUMA node / socket id hosting ``rank``."""
        return self.core_of_rank[rank] // self.cores_per_socket

    def ranks_on_socket(self, socket_id: int) -> List[int]:
        """Ranks whose core lives on ``socket_id``."""
        return [r for r in range(self.ntasks)
                if self.socket_of_rank(r) == socket_id]

    def sharers_on_socket(self, rank: int) -> int:
        """Number of ranks (including ``rank``) on the rank's socket."""
        return len(self.ranks_on_socket(self.socket_of_rank(rank)))

    def sockets_in_use(self) -> List[int]:
        """Distinct sockets hosting at least one rank, ascending."""
        return sorted({self.socket_of_rank(r) for r in range(self.ntasks)})


def preferred_socket_order(spec: MachineSpec) -> List[int]:
    """Sockets ordered by centrality (total hops to all other sockets).

    Ties break on socket id, so the order is deterministic.  On the 2×4
    ladder this prefers the central columns, matching the paper's use of
    "nodes 2, 3, 4, and 5" for small runs.
    """
    graph = build_socket_graph(spec)
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    return sorted(
        range(spec.sockets),
        key=lambda s: (sum(lengths[s].values()), s),
    )


def _check_tasks(ntasks: int, limit: int, what: str) -> None:
    if ntasks < 1:
        raise ValueError("need at least one task")
    if ntasks > limit:
        raise ValueError(f"{ntasks} tasks exceed {what} ({limit})")


def spread(spec: MachineSpec, ntasks: int, bound: bool = True) -> Placement:
    """One task per socket first (central sockets first), then second cores."""
    _check_tasks(ntasks, spec.total_cores, "total cores")
    order = preferred_socket_order(spec)
    cores: List[int] = []
    for local in range(spec.cores_per_socket):
        for socket in order:
            cores.append(socket * spec.cores_per_socket + local)
    return Placement(tuple(cores[:ntasks]), spec.cores_per_socket, bound=bound)


def packed(spec: MachineSpec, ntasks: int, bound: bool = True) -> Placement:
    """Fill every core of a socket before moving to the next socket."""
    _check_tasks(ntasks, spec.total_cores, "total cores")
    order = preferred_socket_order(spec)
    cores: List[int] = []
    for socket in order:
        for local in range(spec.cores_per_socket):
            cores.append(socket * spec.cores_per_socket + local)
    return Placement(tuple(cores[:ntasks]), spec.cores_per_socket, bound=bound)


def one_per_socket(spec: MachineSpec, ntasks: int) -> Placement:
    """Exactly one bound task per socket (Table 5 "One MPI" schemes)."""
    _check_tasks(ntasks, spec.sockets, "socket count")
    order = preferred_socket_order(spec)
    cores = tuple(order[i] * spec.cores_per_socket for i in range(ntasks))
    return Placement(cores, spec.cores_per_socket, bound=True)


def two_per_socket(spec: MachineSpec, ntasks: int) -> Placement:
    """Both cores of each socket in use (Table 5 "Two MPI" schemes)."""
    if spec.cores_per_socket < 2:
        raise ValueError(f"{spec.name} has single-core sockets")
    _check_tasks(ntasks, spec.total_cores, "total cores")
    return packed(spec, ntasks, bound=True)
