"""`sched_setaffinity` / `taskset`-style CPU masks.

Section 2.1 notes that besides ``numactl``, "recent Linux kernels also
contain system calls such as sched_setaffinity to set processor
affinity".  This module emulates that interface: CPU sets with mask
semantics, a per-task registry, and a bridge that turns registered
masks into a :class:`~repro.osmodel.placement.Placement` the runtime
can execute.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List

from ..machine.topology import MachineSpec
from .placement import Placement

__all__ = ["CpuSet", "AffinityRegistry", "parse_cpu_list"]


def parse_cpu_list(text: str) -> "CpuSet":
    """Parse a taskset-style CPU list: ``"0,2,4-7"`` or hex ``"0xf"``."""
    text = text.strip()
    if text.lower().startswith("0x"):
        return CpuSet.from_mask(int(text, 16))
    cpus: List[int] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            raise ValueError(f"empty element in CPU list {text!r}")
        if "-" in chunk:
            lo, hi = chunk.split("-", 1)
            if int(hi) < int(lo):
                raise ValueError(f"descending range {chunk!r}")
            cpus.extend(range(int(lo), int(hi) + 1))
        else:
            cpus.append(int(chunk))
    return CpuSet(cpus)


class CpuSet:
    """An immutable set of CPU ids with cpu_set_t mask semantics."""

    def __init__(self, cpus: Iterable[int]):
        frozen = frozenset(int(c) for c in cpus)
        if not frozen:
            raise ValueError("a CPU set may not be empty")
        if any(c < 0 for c in frozen):
            raise ValueError("CPU ids must be non-negative")
        self._cpus: FrozenSet[int] = frozen

    @classmethod
    def from_mask(cls, mask: int) -> "CpuSet":
        """Build from a bitmask (bit i set = CPU i allowed)."""
        if mask <= 0:
            raise ValueError(f"mask must be positive, got {mask:#x}")
        return cls(i for i in range(mask.bit_length()) if mask >> i & 1)

    def to_mask(self) -> int:
        """The equivalent bitmask."""
        mask = 0
        for cpu in self._cpus:
            mask |= 1 << cpu
        return mask

    def cpus(self) -> List[int]:
        """Sorted CPU ids."""
        return sorted(self._cpus)

    def __contains__(self, cpu: int) -> bool:
        return cpu in self._cpus

    def __len__(self) -> int:
        return len(self._cpus)

    def __eq__(self, other) -> bool:
        return isinstance(other, CpuSet) and self._cpus == other._cpus

    def __hash__(self) -> int:
        return hash(self._cpus)

    def __and__(self, other: "CpuSet") -> "CpuSet":
        overlap = self._cpus & other._cpus
        if not overlap:
            raise ValueError("CPU sets do not intersect")
        return CpuSet(overlap)

    def __or__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self._cpus | other._cpus)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CpuSet({self.cpus()})"


class AffinityRegistry:
    """Tracks per-task CPU masks against one machine, like the kernel."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self._masks: Dict[int, CpuSet] = {}
        self._all = CpuSet(range(spec.total_cores))

    def sched_setaffinity(self, task: int, cpuset: CpuSet) -> None:
        """Restrict ``task`` to ``cpuset`` (must be valid CPUs)."""
        invalid = [c for c in cpuset.cpus() if c >= self.spec.total_cores]
        if invalid:
            raise ValueError(
                f"CPUs {invalid} do not exist on {self.spec.name} "
                f"({self.spec.total_cores} cores)"
            )
        self._masks[task] = cpuset

    def sched_getaffinity(self, task: int) -> CpuSet:
        """Current mask of ``task`` (all CPUs if never restricted)."""
        return self._masks.get(task, self._all)

    def to_placement(self, tasks: Iterable[int]) -> Placement:
        """Assign each task the lowest free CPU in its mask.

        This mirrors how MPI launch wrappers of the era pinned ranks:
        deterministic first-fit over the allowed set.  Raises when two
        tasks' masks cannot be satisfied simultaneously.
        """
        chosen: List[int] = []
        used: set = set()
        task_list = list(tasks)
        for task in task_list:
            mask = self.sched_getaffinity(task)
            free = [c for c in mask.cpus() if c not in used]
            if not free:
                raise ValueError(
                    f"no free CPU for task {task} within {mask.cpus()}"
                )
            chosen.append(free[0])
            used.add(free[0])
        return Placement(tuple(chosen), self.spec.cores_per_socket,
                         bound=True)
