"""Linux scheduler model for unbound runs.

The paper's "Default" configuration lets the 2.6 kernel place and
occasionally migrate tasks.  Two first-order consequences matter for the
characterization:

* the kernel's load balancer initially spreads runnable tasks across
  sockets (so the Default column behaves close to one-task-per-socket at
  low task counts), and
* migrations after first-touch leave a fraction of each task's pages
  remote — the :class:`~repro.numa.policy.FirstTouch` policy's
  ``remote_fraction`` — which is why Default trails "One MPI + Local
  Alloc" slightly on Longs (Table 2).

"Parked" processes (Figures 16–17: extra processes that exist but do not
communicate) occupy cores and raise the effective migration noise of the
active tasks; :meth:`SchedulerModel.noise_factor` models that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.topology import MachineSpec
from .placement import Placement, spread

__all__ = ["SchedulerModel"]


@dataclass(frozen=True)
class SchedulerModel:
    """Deterministic model of default-kernel task placement."""

    spec: MachineSpec

    def default_placement(self, ntasks: int, parked: int = 0) -> Placement:
        """Where the load balancer puts ``ntasks`` runnable tasks.

        ``parked`` extra idle-but-present processes are placed after the
        active ones (they matter only through :meth:`remote_fraction`).
        """
        total = ntasks + parked
        if total > self.spec.total_cores:
            raise ValueError(
                f"{total} processes oversubscribe {self.spec.total_cores} cores"
            )
        placement = spread(self.spec, total, bound=False)
        return Placement(
            placement.core_of_rank[:ntasks],
            self.spec.cores_per_socket,
            bound=False,
        )

    def remote_fraction(self, parked: int = 0) -> float:
        """Expected remote-page fraction for an unbound task.

        Parked processes give the balancer more reasons to migrate, so
        each parked process adds half of the base migration fraction.
        """
        base = self.spec.params.migration_remote_fraction
        return min(0.9, base * (1.0 + 0.5 * parked))

    def oversubscription_penalty(self, tasks_on_core: int) -> float:
        """Multiplier on runtime when a core time-shares tasks."""
        if tasks_on_core < 1:
            raise ValueError("tasks_on_core must be >= 1")
        return float(tasks_on_core)
