"""Operating-system model: task placement, CPU masks, scheduler effects."""

from .affinity_api import AffinityRegistry, CpuSet, parse_cpu_list
from .placement import (
    Placement,
    one_per_socket,
    packed,
    preferred_socket_order,
    spread,
    two_per_socket,
)
from .scheduler import SchedulerModel

__all__ = [
    "CpuSet",
    "AffinityRegistry",
    "parse_cpu_list",
    "Placement",
    "preferred_socket_order",
    "spread",
    "packed",
    "one_per_socket",
    "two_per_socket",
    "SchedulerModel",
]
