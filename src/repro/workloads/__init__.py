"""Benchmark-suite workloads built on the instrumented kernels.

lmbench STREAM scaling, BLAS level 1/3 scaling, the HPC Challenge suite
(Single/Star/MPI modes), the Intel MPI Benchmarks, and NAS CG/FT
class B.
"""

from .blas_scaling import DaxpyBench, DgemmBench
from .hpcc import (
    MODES,
    HpccDgemm,
    HpccFft,
    HpccHpl,
    HpccPtrans,
    HpccRandomAccess,
    HpccStream,
    PingPong,
    RingExchange,
)
from .imb import (
    IMB_MESSAGE_SIZES,
    ImbAllreduce,
    ImbBcast,
    ImbExchange,
    ImbPingPong,
    ImbSendRecv,
    exchange_bandwidth,
    pingpong_oneway_time,
)
from .hybrid import HybridNasCG, HybridNasFT, HybridWorkload, hybrid_affinity
from .lmbench import StreamTriad, triad_bytes_moved
from .synthetic import SyntheticWorkload
from .nas import (
    CLASS_B_CG,
    CLASS_B_EP,
    CLASS_B_FT,
    CLASS_B_MG,
    NasCG,
    NasEP,
    NasFT,
    NasMG,
)

__all__ = [
    "StreamTriad",
    "triad_bytes_moved",
    "DaxpyBench",
    "DgemmBench",
    "MODES",
    "HpccDgemm",
    "HpccFft",
    "HpccStream",
    "HpccRandomAccess",
    "HpccPtrans",
    "HpccHpl",
    "PingPong",
    "RingExchange",
    "ImbPingPong",
    "ImbExchange",
    "ImbSendRecv",
    "ImbAllreduce",
    "ImbBcast",
    "IMB_MESSAGE_SIZES",
    "pingpong_oneway_time",
    "exchange_bandwidth",
    "NasCG",
    "NasFT",
    "NasEP",
    "NasMG",
    "CLASS_B_CG",
    "CLASS_B_FT",
    "CLASS_B_EP",
    "CLASS_B_MG",
    "HybridWorkload",
    "HybridNasCG",
    "HybridNasFT",
    "hybrid_affinity",
    "SyntheticWorkload",
]
