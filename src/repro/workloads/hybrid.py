"""Hybrid MPI+OpenMP workloads (the paper's Section 3.4 proposal).

"A programming model using OpenMP only within each multi-core
processor, and MPI for communication both between processor sockets
and between system nodes might be a high-performance alternative that
best exploits the three classes of communication performance."

These variants place one MPI rank per socket with a thread team on the
socket's cores: the same total parallelism as the pure-MPI two-per-
socket configuration, but intra-socket MPI messages are replaced by
shared memory within the team.  :func:`hybrid_affinity` builds the
corresponding placement, and the ablation bench
(``benchmarks/test_ablation_hybrid.py``) quantifies the trade.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator

from ..core.affinity import AffinityScheme, ResolvedAffinity, resolve_scheme
from ..core.ops import Compute, Op
from ..core.workload import Workload
from ..machine.topology import MachineSpec
from ..numa import LocalAlloc
from ..openmp import ThreadTeam
from ..osmodel import one_per_socket
from .nas import NasCG, NasFT

__all__ = ["hybrid_affinity", "HybridWorkload", "HybridNasCG", "HybridNasFT"]


def hybrid_affinity(spec: MachineSpec, nranks: int,
                    threads: int) -> ResolvedAffinity:
    """One bound rank per socket, ``threads`` cores each, local pages."""
    ThreadTeam(threads).validate_for(spec)
    placement = one_per_socket(spec, nranks)
    base = resolve_scheme(AffinityScheme.ONE_MPI_LOCAL, spec, nranks)
    return ResolvedAffinity(
        scheme=AffinityScheme.ONE_MPI_LOCAL,
        spec=spec,
        placement=placement,
        policies=tuple(LocalAlloc() for _ in range(nranks)),
        numactl=base.numactl,
    )


class HybridWorkload(Workload):
    """Wrap a pure-MPI workload: fewer ranks, threaded compute slices.

    The inner workload is built for ``nranks`` MPI tasks; every
    ``Compute`` op it emits is widened to the thread team (its counts
    already reflect the per-rank share, which the team now executes
    cooperatively).
    """

    def __init__(self, inner: Workload, threads: int):
        team = ThreadTeam(threads)
        self.inner = inner
        self.threads = team.threads
        self.ntasks = inner.ntasks
        self.time_scale = inner.time_scale
        self.name = f"{inner.name}+omp{threads}"

    def validate(self) -> None:
        super().validate()
        self.inner.validate()

    def program(self, rank: int) -> Iterator[Op]:
        for op in self.inner.program(rank):
            if isinstance(op, Compute):
                yield replace(op, threads=self.threads)
            else:
                yield op


class HybridNasCG(HybridWorkload):
    """NAS CG with one rank per socket and a thread team per rank.

    Total cores used = ``nranks * threads``; the inner CG problem is
    decomposed over the ranks only (threads share the rank's rows).
    """

    def __init__(self, nranks: int, threads: int,
                 simulated_inner_iters: int = 25):
        super().__init__(NasCG(nranks, simulated_inner_iters), threads)


class HybridNasFT(HybridWorkload):
    """NAS FT with one rank per socket and a thread team per rank."""

    def __init__(self, nranks: int, threads: int, simulated_iters: int = 10):
        super().__init__(NasFT(nranks, simulated_iters), threads)
