"""Intel MPI Benchmarks: PingPong and Exchange (Section 3.4, Figures 14–17).

IMB conventions:

* **PingPong** reports the one-way time (half the round trip) and the
  bandwidth ``nbytes / t_oneway``.
* **Exchange** runs every process in a chain; per repetition each
  process sends to and receives from both neighbours (4 transfers), and
  the reported bandwidth is ``4 * nbytes / t_rep``.

The paper runs these on a DMZ node across MPICH2/LAM/OpenMPI
(Figures 14–15) and across processor-affinity configurations of OpenMPI
(Figures 16–17), including the "2 procs, unbound, 2 parked"
configuration with extra idle processes.
"""

from __future__ import annotations

from typing import Iterator, List

from ..core.ops import Barrier, Op, Recv, Send, SendRecv
from ..core.workload import Workload
from .hpcc import PingPong

__all__ = ["ImbPingPong", "ImbExchange", "ImbSendRecv", "ImbAllreduce",
           "ImbBcast", "IMB_MESSAGE_SIZES",
           "pingpong_oneway_time", "exchange_bandwidth"]

#: the power-of-four ladder IMB sweeps (bytes)
IMB_MESSAGE_SIZES: List[int] = [0, 1, 4, 16, 64, 256, 1024, 4096,
                                16384, 65536, 262144, 1048576, 4194304]


class ImbPingPong(PingPong):
    """IMB PingPong (same wire pattern as the HPCC probe)."""

    def __init__(self, nbytes: int, reps: int = 20, ntasks: int = 2):
        super().__init__(nbytes, reps=reps, ntasks=ntasks)
        self.name = f"imb-pingpong[{nbytes}B]"


class ImbExchange(Workload):
    """IMB Exchange: bidirectional neighbour traffic in a periodic chain."""

    def __init__(self, ntasks: int, nbytes: int, reps: int = 20):
        if ntasks < 2:
            raise ValueError("Exchange needs at least 2 ranks")
        if reps < 1 or nbytes < 0:
            raise ValueError("reps must be positive and nbytes non-negative")
        self.ntasks = ntasks
        self.nbytes = nbytes
        self.reps = reps
        self.name = f"imb-exchange[{nbytes}B,p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        p = self.ntasks
        left, right = (rank - 1) % p, (rank + 1) % p
        for _ in range(self.reps):
            # send right / recv left, then send left / recv right
            yield SendRecv(send_to=right, recv_from=left,
                           nbytes=self.nbytes, tag=1, phase="exchange")
            yield SendRecv(send_to=left, recv_from=right,
                           nbytes=self.nbytes, tag=2, phase="exchange")
        yield Barrier()


class ImbSendRecv(Workload):
    """IMB SendRecv: every rank sends right while receiving from left.

    Unlike Exchange there is one transfer per direction per repetition
    (2 x nbytes through each process).
    """

    def __init__(self, ntasks: int, nbytes: int, reps: int = 20):
        if ntasks < 2:
            raise ValueError("SendRecv needs at least 2 ranks")
        if reps < 1 or nbytes < 0:
            raise ValueError("reps must be positive and nbytes non-negative")
        self.ntasks = ntasks
        self.nbytes = nbytes
        self.reps = reps
        self.name = f"imb-sendrecv[{nbytes}B,p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        p = self.ntasks
        for _ in range(self.reps):
            yield SendRecv(send_to=(rank + 1) % p, recv_from=(rank - 1) % p,
                           nbytes=self.nbytes, phase="sendrecv")
        yield Barrier()


class ImbAllreduce(Workload):
    """IMB Allreduce over all ranks."""

    def __init__(self, ntasks: int, nbytes: int, reps: int = 20):
        if ntasks < 1:
            raise ValueError("Allreduce needs at least 1 rank")
        if reps < 1 or nbytes < 0:
            raise ValueError("reps must be positive and nbytes non-negative")
        self.ntasks = ntasks
        self.nbytes = nbytes
        self.reps = reps
        self.name = f"imb-allreduce[{nbytes}B,p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        from ..core.ops import Allreduce
        for _ in range(self.reps):
            yield Allreduce(nbytes=self.nbytes, phase="allreduce")
        yield Barrier()


class ImbBcast(Workload):
    """IMB Bcast from a rotating root (root fixed at 0 here)."""

    def __init__(self, ntasks: int, nbytes: int, reps: int = 20,
                 root: int = 0):
        if ntasks < 1:
            raise ValueError("Bcast needs at least 1 rank")
        if not 0 <= root < ntasks:
            raise ValueError("root outside the communicator")
        if reps < 1 or nbytes < 0:
            raise ValueError("reps must be positive and nbytes non-negative")
        self.ntasks = ntasks
        self.nbytes = nbytes
        self.reps = reps
        self.root = root
        self.name = f"imb-bcast[{nbytes}B,p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        from ..core.ops import Bcast
        for _ in range(self.reps):
            yield Bcast(root=self.root, nbytes=self.nbytes, phase="bcast")
        yield Barrier()


def pingpong_oneway_time(wall_time: float, reps: int) -> float:
    """IMB PingPong metric: half the average round-trip time."""
    if reps < 1:
        raise ValueError("reps must be positive")
    return wall_time / (2 * reps)


def exchange_bandwidth(wall_time: float, reps: int, nbytes: int) -> float:
    """IMB Exchange metric: 4 transfers of ``nbytes`` per repetition."""
    if wall_time <= 0:
        raise ValueError("wall_time must be positive")
    return 4.0 * nbytes * reps / wall_time
