"""Declarative synthetic workloads.

The paper's methodology generalizes beyond its benchmark set: any
application expressible as per-step compute slices plus communication
can be placed on the model and swept across affinity schemes.  A
:class:`SyntheticWorkload` builds such a program from a plain data
specification (dict or JSON), so downstream users can characterize
*their* code without writing a Workload subclass::

    spec = {
        "name": "my-solver",
        "ntasks": 8,
        "steps": 50,
        "simulated_steps": 10,
        "ops": [
            {"kind": "compute", "flops": 2e8, "dram_bytes": 1e8,
             "working_set": 5e7, "reuse": 0.4, "phase": "stencil"},
            {"kind": "halo", "nbytes": 65536, "phase": "exchange"},
            {"kind": "allreduce", "nbytes": 8, "phase": "dots"},
        ],
    }
    workload = SyntheticWorkload.from_spec(spec)

Supported op kinds: ``compute``, ``halo`` (ring sendrecv), ``send``
(to a fixed peer offset), ``allreduce``, ``alltoall``, ``allgather``,
``bcast``, ``barrier``.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Mapping, Sequence

from ..core.ops import (
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    Op,
    SendRecv,
)
from ..core.workload import Workload

__all__ = ["SyntheticWorkload"]

_COMPUTE_FIELDS = ("flops", "dram_bytes", "working_set", "reuse",
                   "flop_efficiency", "random_accesses",
                   "stream_bandwidth", "threads", "phase")


class SyntheticWorkload(Workload):
    """A workload assembled from a declarative op list."""

    def __init__(self, name: str, ntasks: int, ops: Sequence[Mapping[str, Any]],
                 steps: int = 1, simulated_steps: int | None = None):
        if steps < 1:
            raise ValueError("steps must be >= 1")
        simulated = steps if simulated_steps is None else simulated_steps
        if not 1 <= simulated <= steps:
            raise ValueError("need 1 <= simulated_steps <= steps")
        if not ops:
            raise ValueError("the op list may not be empty")
        self.name = name
        self.ntasks = ntasks
        self.ops_spec = [dict(op) for op in ops]
        self.simulated_steps = simulated
        self.time_scale = steps / simulated
        # validate eagerly so bad specs fail at build time, not run time
        for op in self.ops_spec:
            self._build_op(op, rank=0)

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "SyntheticWorkload":
        """Build from a dict with name/ntasks/ops[/steps/simulated_steps]."""
        try:
            return cls(
                name=str(spec["name"]),
                ntasks=int(spec["ntasks"]),
                ops=spec["ops"],
                steps=int(spec.get("steps", 1)),
                simulated_steps=(int(spec["simulated_steps"])
                                 if "simulated_steps" in spec else None),
            )
        except KeyError as missing:
            raise ValueError(f"spec is missing required key {missing}") from None

    @classmethod
    def from_json(cls, text: str) -> "SyntheticWorkload":
        """Build from a JSON document (the CLI-friendly entry point)."""
        return cls.from_spec(json.loads(text))

    # -- op construction -------------------------------------------------------

    def _build_op(self, spec: Mapping[str, Any], rank: int) -> Op:
        kind = spec.get("kind")
        phase = str(spec.get("phase", ""))
        p = self.ntasks
        if kind == "compute":
            kwargs = {k: spec[k] for k in _COMPUTE_FIELDS if k in spec}
            kwargs.pop("phase", None)
            unknown = set(spec) - set(_COMPUTE_FIELDS) - {"kind"}
            if unknown:
                raise ValueError(f"unknown compute fields {sorted(unknown)}")
            return Compute(phase=phase, **kwargs)
        if kind == "halo":
            offset = int(spec.get("offset", 1))
            return SendRecv(send_to=(rank + offset) % p,
                            recv_from=(rank - offset) % p,
                            nbytes=int(spec["nbytes"]), phase=phase)
        if kind == "send":
            return SendRecv(send_to=(rank + int(spec["to_offset"])) % p,
                            recv_from=(rank - int(spec["to_offset"])) % p,
                            nbytes=int(spec["nbytes"]), phase=phase)
        if kind == "allreduce":
            return Allreduce(nbytes=int(spec["nbytes"]), phase=phase)
        if kind == "alltoall":
            return Alltoall(nbytes=int(spec["nbytes"]), phase=phase)
        if kind == "allgather":
            return Allgather(nbytes=int(spec["nbytes"]), phase=phase)
        if kind == "bcast":
            return Bcast(root=int(spec.get("root", 0)),
                         nbytes=int(spec["nbytes"]), phase=phase)
        if kind == "barrier":
            return Barrier(phase=phase)
        raise ValueError(f"unknown op kind {kind!r}")

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        comm_kinds = {"halo", "send", "allreduce", "alltoall", "allgather",
                      "bcast", "barrier"}
        for _ in range(self.simulated_steps):
            for spec in self.ops_spec:
                if self.ntasks == 1 and spec.get("kind") in comm_kinds:
                    continue
                yield self._build_op(spec, rank)
        yield Barrier()
