"""BLAS level 1/3 scaling workloads (Figures 4–7).

Each rank repeatedly executes its own DAXPY or DGEMM instance
("embarrassingly parallel", like running one benchmark binary per
core).  ``vendor=True`` models the ACML library, ``vendor=False`` the
"vanilla" compiled loop — the paper's Figures 4/6 vs. 5/7 contrast.
"""

from __future__ import annotations

from typing import Iterator

from ..core.ops import Barrier, Op
from ..core.workload import Workload
from ..kernels import blas

__all__ = ["DaxpyBench", "DgemmBench"]


class DaxpyBench(Workload):
    """Per-rank DAXPY sweeps of length ``n``."""

    def __init__(self, ntasks: int, n: int, vendor: bool = True,
                 repeats: int = 50):
        if n < 1 or repeats < 1:
            raise ValueError("n and repeats must be positive")
        self.ntasks = ntasks
        self.n = n
        self.vendor = vendor
        self.repeats = repeats
        flavor = "acml" if vendor else "vanilla"
        self.name = f"daxpy-{flavor}[n={n},p={ntasks}]"

    @property
    def flops_per_task(self) -> float:
        """Total DAXPY flops each rank performs."""
        return blas.daxpy_flops(self.n) * self.repeats

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        yield blas.daxpy_model(self.n, vendor=self.vendor,
                               repeats=self.repeats, phase="daxpy")
        yield Barrier()


class DgemmBench(Workload):
    """Per-rank n×n DGEMM."""

    def __init__(self, ntasks: int, n: int, vendor: bool = True):
        if n < 1:
            raise ValueError("n must be positive")
        self.ntasks = ntasks
        self.n = n
        self.vendor = vendor
        flavor = "acml" if vendor else "vanilla"
        self.name = f"dgemm-{flavor}[n={n},p={ntasks}]"

    @property
    def flops_per_task(self) -> float:
        """Total DGEMM flops each rank performs."""
        return blas.dgemm_flops(self.n)

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        yield blas.dgemm_model(self.n, vendor=self.vendor, phase="dgemm")
        yield Barrier()
