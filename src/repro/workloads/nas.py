"""NAS Parallel Benchmarks CG and FT, class B (Section 3.5, Tables 2–4).

Class B parameters (NPB 3.2):

* **CG** — n = 75 000 rows, ~14.7 M nonzeros ((nonzer+1)² per row with
  nonzer = 13), 75 outer iterations of 25 CG iterations each.  Parallel
  structure per CG iteration: a local SpMV, vector updates, two 8-byte
  allreduces (the dot products), and a gather of the shared vector —
  the small-allreduce path is what makes CG placement-sensitive.
* **FT** — a 512×256×256 complex grid (N = 2^25), 20 iterations, each
  performing a 3-D FFT by slab decomposition: local butterfly passes
  with one global transpose (alltoall) in the middle.  The transpose's
  large messages make FT bandwidth- rather than latency-sensitive.

Long homogeneous loops are simulated at reduced length with
``time_scale`` restoring reported times (see
:class:`~repro.core.workload.Workload`).
"""

from __future__ import annotations

from typing import Iterator

from ..core.ops import (
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Compute,
    Op,
    SendRecv,
)
from ..core.workload import Workload
from ..kernels import cg as cg_kernels
from ..kernels import fft as fft_kernels

__all__ = ["NasCG", "NasFT", "NasEP", "NasMG",
           "CLASS_B_CG", "CLASS_B_FT", "CLASS_B_EP", "CLASS_B_MG"]

#: NPB class B constants
CLASS_B_CG = {"na": 75_000, "nonzer": 13, "shift": 60.0,
              "outer_iters": 75, "inner_iters": 25}
CLASS_B_FT = {"nx": 512, "ny": 256, "nz": 256, "iters": 20}
CLASS_B_EP = {"pairs": 2 ** 30}
CLASS_B_MG = {"grid": 256, "iters": 20, "levels": 8}


class NasCG(Workload):
    """NAS CG class B on ``ntasks`` ranks (row-striped SpMV)."""

    def __init__(self, ntasks: int, simulated_inner_iters: int = 25):
        if simulated_inner_iters < 1:
            raise ValueError("simulated_inner_iters must be positive")
        self.ntasks = ntasks
        self.na = CLASS_B_CG["na"]
        nnz_per_row = (CLASS_B_CG["nonzer"] + 1) ** 2
        self.counts = cg_kernels.cg_iteration_counts(
            self.na, nnz_per_row, ntasks
        )
        total_inner = CLASS_B_CG["outer_iters"] * CLASS_B_CG["inner_iters"]
        self.simulated_iters = simulated_inner_iters
        self.time_scale = total_inner / simulated_inner_iters
        self.name = f"nas-cg-B[p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        gather_bytes = 8 * self.na // self.ntasks
        for _ in range(self.simulated_iters):
            yield cg_kernels.spmv_model(self.counts, phase="spmv")
            yield cg_kernels.cg_vector_model(self.counts, phase="vectors")
            if self.ntasks > 1:
                # assemble the shared vector for the next SpMV; NAS CG's
                # 2-D decomposition moves roughly two local-vector
                # volumes per iteration (transpose + row-sum exchange)
                yield Allgather(nbytes=gather_bytes, phase="gather")
                yield Allgather(nbytes=gather_bytes, phase="gather")
                # the two dot-product reductions
                yield Allreduce(nbytes=8, phase="dots")
                yield Allreduce(nbytes=8, phase="dots")
        yield Barrier()


class NasFT(Workload):
    """NAS FT class B on ``ntasks`` ranks (slab-decomposed 3-D FFT)."""

    def __init__(self, ntasks: int, simulated_iters: int = 10):
        if simulated_iters < 1:
            raise ValueError("simulated_iters must be positive")
        self.ntasks = ntasks
        self.n_points = CLASS_B_FT["nx"] * CLASS_B_FT["ny"] * CLASS_B_FT["nz"]
        if self.n_points % ntasks:
            raise ValueError("task count must divide the FT grid")
        self.simulated_iters = simulated_iters
        self.time_scale = CLASS_B_FT["iters"] / simulated_iters
        self.name = f"nas-ft-B[p={ntasks}]"

    def _fft_half(self) -> Compute:
        """Half of one 3-D FFT's butterfly work on this rank."""
        n_local = self.n_points // self.ntasks
        return Compute(
            phase="fft",
            flops=fft_kernels.fft_flops(self.n_points) / self.ntasks / 2,
            # each half streams the local slab through memory ~1.5 times
            dram_bytes=24.0 * n_local,
            working_set=16.0 * n_local,
            reuse=0.55,
            flop_efficiency=0.12,  # gnu-compiled stride-heavy butterflies
        )

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        n_local = self.n_points // self.ntasks
        for _ in range(self.simulated_iters):
            # evolve step: one streaming multiply over the local slab
            yield Compute(phase="evolve", flops=2.0 * n_local,
                          dram_bytes=32.0 * n_local,
                          working_set=16.0 * n_local, reuse=0.0,
                          flop_efficiency=0.5)
            yield self._fft_half()
            if self.ntasks > 1:
                yield Alltoall(nbytes=16 * n_local // self.ntasks,
                               phase="transpose")
            yield self._fft_half()
            if self.ntasks > 1:
                # checksum reduction closing the iteration
                yield Allreduce(nbytes=16, phase="checksum")
        yield Barrier()


class NasEP(Workload):
    """NAS EP class B: embarrassingly parallel Gaussian-pair generation.

    Beyond the paper's CG/FT subset, but part of the same suite: 2^30
    random pairs, pure per-rank compute with a single closing 40-byte
    reduction.  The control case every placement scheme should leave
    untouched.
    """

    def __init__(self, ntasks: int):
        self.ntasks = ntasks
        self.pairs = CLASS_B_EP["pairs"]
        self.name = f"nas-ep-B[p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        local_pairs = self.pairs / self.ntasks
        # ~45 flops per pair (LCG advance, log/sqrt acceptance test);
        # the state fits in registers/L1, so no DRAM traffic to speak of
        yield Compute(phase="pairs", flops=45.0 * local_pairs,
                      dram_bytes=16.0 * local_pairs * 0.001,
                      working_set=64 * 1024, reuse=0.9,
                      flop_efficiency=0.35)
        if self.ntasks > 1:
            yield Allreduce(nbytes=40, phase="sums")
        yield Barrier()


class NasMG(Workload):
    """NAS MG class B: V-cycle multigrid on a 256^3 grid.

    Also beyond the paper's subset.  Its signature communication
    pattern differs from both CG and FT: every V-cycle walks the level
    hierarchy, exchanging halos whose size shrinks by 4x per level —
    fine grids are bandwidth-bound, coarse grids pure latency, so MG
    probes both ends of the interconnect at once.
    """

    def __init__(self, ntasks: int, simulated_iters: int = 5):
        if simulated_iters < 1:
            raise ValueError("simulated_iters must be positive")
        self.ntasks = ntasks
        self.grid = CLASS_B_MG["grid"]
        self.levels = CLASS_B_MG["levels"]
        if self.grid ** 3 % ntasks:
            raise ValueError("task count must divide the MG grid")
        self.simulated_iters = simulated_iters
        self.time_scale = CLASS_B_MG["iters"] / simulated_iters
        self.name = f"nas-mg-B[p={ntasks}]"

    def _level_ops(self, rank: int, level: int) -> Iterator[Op]:
        """Smooth + residual at one level (level 0 = finest)."""
        points = (self.grid >> level) ** 3
        local = max(1.0, points / self.ntasks)
        # 4 sweeps of a 27-point stencil per level visit; stencils are
        # memory-bound (cache-blocked reads ~24 B/point per sweep)
        yield Compute(phase=f"level{level}" if level < 2 else "coarse",
                      flops=4.0 * 30.0 * local,
                      dram_bytes=4.0 * 24.0 * local,
                      working_set=16.0 * local,
                      reuse=0.6, flop_efficiency=0.45,
                      stream_bandwidth=1.2e9)
        if self.ntasks > 1:
            face = max(1, int((local ** (2.0 / 3.0)) * 8))
            p = self.ntasks
            yield SendRecv(send_to=(rank + 1) % p, recv_from=(rank - 1) % p,
                           nbytes=face, phase="halo")

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        for _ in range(self.simulated_iters):
            # down-sweep to the coarsest level and back up
            for level in range(self.levels):
                yield from self._level_ops(rank, level)
            for level in reversed(range(self.levels - 1)):
                yield from self._level_ops(rank, level)
            if self.ntasks > 1:
                yield Allreduce(nbytes=8, phase="norm")
        yield Barrier()
