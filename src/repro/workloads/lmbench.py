"""LMbench3 STREAM scaling workload (Figures 2 and 3).

Every active rank sweeps the triad over its private arrays; aggregate
and per-core bandwidth follow from the phase time.  The paper activates
one core per socket first, then the second cores — that policy lives in
the affinity layer (:func:`repro.osmodel.spread`), which the Default
and One-MPI schemes both realize.
"""

from __future__ import annotations

from typing import Iterator

from ..core.ops import Barrier, Op
from ..core.workload import Workload
from ..kernels import stream

__all__ = ["StreamTriad", "triad_bytes_moved"]


class StreamTriad(Workload):
    """Concurrent STREAM triad on every rank (lmbench bw_mem style)."""

    def __init__(self, ntasks: int, elements_per_task: int = 4_000_000,
                 passes: int = 10):
        if elements_per_task < 1 or passes < 1:
            raise ValueError("elements_per_task and passes must be positive")
        self.ntasks = ntasks
        self.elements_per_task = elements_per_task
        self.passes = passes
        self.name = f"stream-triad[{ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        yield stream.triad_model(self.elements_per_task, passes=self.passes,
                                 phase="triad")
        yield Barrier()


def triad_bytes_moved(workload: StreamTriad) -> float:
    """Total DRAM bytes the triad phase moves across all ranks."""
    return (stream.BYTES_PER_ELEMENT["triad"] * workload.elements_per_task
            * workload.passes * workload.ntasks)
