"""HPC Challenge benchmark workloads (Section 3.3, Figures 8–13).

The suite's *Single* mode runs the kernel on exactly one process while
the rest idle at the closing barrier; *Star* ("embarrassingly
parallel") runs it concurrently on every process with no communication;
the *MPI* variants are globally coupled.  The paper reads per-socket
efficiency out of the Single:Star ratio — DGEMM ~1:1, FFT slightly
below, STREAM worse than 2:1, RandomAccess between — and uses HPL,
PTRANS, and the latency/bandwidth probes to expose the LAM sub-layer ×
NUMA-placement interactions.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..core.ops import Allreduce, Alltoall, Barrier, Bcast, Compute, Op, SendRecv
from ..core.workload import Workload
from ..kernels import blas, fft, hpl, ptrans, randomaccess, stream

__all__ = [
    "MODES",
    "HpccDgemm",
    "HpccFft",
    "HpccStream",
    "HpccRandomAccess",
    "HpccPtrans",
    "HpccHpl",
    "PingPong",
    "RingExchange",
]

MODES = ("single", "star", "mpi")


class _HpccWorkload(Workload):
    """Shared single/star plumbing: who computes, plus the closing barrier."""

    def __init__(self, ntasks: int, mode: str):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.ntasks = ntasks
        self.mode = mode

    def _active(self, rank: int) -> bool:
        return self.mode != "single" or rank == 0

    def _kernel_ops(self, rank: int) -> Iterator[Op]:
        raise NotImplementedError

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        if self._active(rank):
            yield from self._kernel_ops(rank)
        yield Barrier()


class HpccDgemm(_HpccWorkload):
    """Single/Star DGEMM (Figure 9's most cache-friendly pair)."""

    def __init__(self, ntasks: int, mode: str = "star", n: int = 1500):
        super().__init__(ntasks, mode)
        self.n = n
        self.name = f"hpcc-dgemm-{mode}[p={ntasks}]"

    @property
    def flops_per_task(self) -> float:
        return blas.dgemm_flops(self.n)

    def _kernel_ops(self, rank: int) -> Iterator[Op]:
        yield blas.dgemm_model(self.n, vendor=True, phase="dgemm")


class HpccFft(_HpccWorkload):
    """Single/Star/MPI FFT.

    MPI mode is a slab-decomposed 1-D FFT: local butterfly passes plus
    one global transpose (alltoall) — the large-message collective that
    makes MPI-FFT insensitive to the SysV latency penalty.
    """

    def __init__(self, ntasks: int, mode: str = "star", n: int = 1 << 22):
        super().__init__(ntasks, mode)
        if not fft.is_power_of_two(n):
            raise ValueError("HPCC FFT size must be a power of two")
        self.n = n
        self.name = f"hpcc-fft-{mode}[p={ntasks}]"

    @property
    def flops_per_task(self) -> float:
        if self.mode == "mpi":
            return fft.fft_flops(self.n) / self.ntasks
        return fft.fft_flops(self.n)

    def _kernel_ops(self, rank: int) -> Iterator[Op]:
        if self.mode != "mpi":
            yield fft.fft_model(self.n, phase="fft")
            return
        local = self.n // self.ntasks
        # local passes on the slab, transpose, remaining passes
        half = fft.fft_model(local, phase="fft")
        yield Compute(phase="fft", flops=fft.fft_flops(self.n) / self.ntasks / 2,
                      dram_bytes=half.dram_bytes, working_set=half.working_set,
                      reuse=half.reuse, flop_efficiency=half.flop_efficiency)
        yield Alltoall(nbytes=16 * local // self.ntasks, phase="transpose")
        yield Compute(phase="fft", flops=fft.fft_flops(self.n) / self.ntasks / 2,
                      dram_bytes=half.dram_bytes, working_set=half.working_set,
                      reuse=half.reuse, flop_efficiency=half.flop_efficiency)


class HpccStream(_HpccWorkload):
    """Single/Star STREAM triad (Figure 10)."""

    def __init__(self, ntasks: int, mode: str = "star",
                 elements: int = 4_000_000, passes: int = 10):
        super().__init__(ntasks, mode)
        self.elements = elements
        self.passes = passes
        self.name = f"hpcc-stream-{mode}[p={ntasks}]"

    @property
    def bytes_per_task(self) -> float:
        return stream.BYTES_PER_ELEMENT["triad"] * self.elements * self.passes

    def _kernel_ops(self, rank: int) -> Iterator[Op]:
        yield stream.triad_model(self.elements, passes=self.passes,
                                 phase="triad")


class HpccRandomAccess(_HpccWorkload):
    """Single/Star/MPI RandomAccess (Figure 11).

    MPI mode uses the bucketed-exchange algorithm: rounds of local update
    batches followed by small alltoall exchanges — the small-message
    pattern that exposes the SysV semaphore cost.
    """

    def __init__(self, ntasks: int, mode: str = "star",
                 table_bytes: float = 1 << 28, updates: int = 200_000,
                 rounds: int = 64):
        super().__init__(ntasks, mode)
        if updates < 1 or rounds < 1:
            raise ValueError("updates and rounds must be positive")
        self.table_bytes = table_bytes
        self.updates = updates
        self.rounds = rounds
        self.name = f"hpcc-ra-{mode}[p={ntasks}]"

    def _kernel_ops(self, rank: int) -> Iterator[Op]:
        if self.mode != "mpi":
            yield randomaccess.randomaccess_model(
                self.updates, self.table_bytes, phase="ra")
            return
        per_round = self.updates // self.rounds
        bucket = max(1, 8 * per_round // max(1, self.ntasks))
        for _ in range(self.rounds):
            yield randomaccess.randomaccess_model(
                per_round, self.table_bytes, phase="ra")
            yield Alltoall(nbytes=bucket, phase="ra-exchange")


class HpccPtrans(Workload):
    """MPI PTRANS on a square process grid (Figure 12).

    Each rank exchanges its off-diagonal blocks with the mirrored owner
    and adds; traffic is the whole matrix crossing the network once.
    """

    def __init__(self, ntasks: int, n: int = 4096):
        grid = int(math.isqrt(ntasks))
        if grid * grid != ntasks:
            raise ValueError("PTRANS needs a square process count")
        self.ntasks = ntasks
        self.grid = grid
        self.n = n
        self.name = f"hpcc-ptrans[p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        row, col = divmod(rank, self.grid)
        partner = col * self.grid + row
        block_bytes = int(8 * (self.n // self.grid) ** 2)
        if partner != rank:
            yield SendRecv(send_to=partner, recv_from=partner,
                           nbytes=block_bytes, phase="exchange")
        yield ptrans.ptrans_local_model(self.n, self.ntasks, phase="add")
        yield Barrier()


class HpccHpl(Workload):
    """HPL: blocked LU with panel broadcasts (Figure 8).

    Per block column: the panel owner factorizes, broadcasts the panel,
    everyone applies the DGEMM-shaped trailing update on its share, and
    a small allreduce stands in for pivot bookkeeping.
    """

    def __init__(self, ntasks: int, n: int = 8192, nb: int = 128):
        if n < nb or nb < 1:
            raise ValueError("need n >= nb >= 1")
        self.ntasks = ntasks
        self.n = n
        self.nb = nb
        self.name = f"hpcc-hpl[p={ntasks},n={n}]"

    @property
    def total_flops(self) -> float:
        return hpl.hpl_flops(self.n)

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        panels = self.n // self.nb
        for k in range(panels):
            remaining = self.n - k * self.nb
            owner = k % self.ntasks
            if rank == owner:
                # panel factorization: tall-skinny, modest efficiency
                yield Compute(phase="panel",
                              flops=remaining * self.nb ** 2,
                              dram_bytes=8.0 * remaining * self.nb,
                              working_set=8.0 * remaining * self.nb,
                              reuse=0.6, flop_efficiency=0.4)
            yield Bcast(root=owner, nbytes=int(hpl.panel_bytes(remaining, self.nb)),
                        phase="bcast")
            update_flops = 2.0 * remaining * remaining * self.nb / self.ntasks
            share_bytes = 8.0 * remaining * remaining / self.ntasks
            yield Compute(phase="update", flops=update_flops,
                          dram_bytes=share_bytes, working_set=share_bytes,
                          reuse=0.93, flop_efficiency=0.8)
            yield Allreduce(nbytes=8, phase="pivot")
        yield Barrier()


class PingPong(Workload):
    """HPCC/IMB PingPong between ranks 0 and 1 (Figures 13–16)."""

    def __init__(self, nbytes: int, reps: int = 20, ntasks: int = 2):
        if ntasks < 2:
            raise ValueError("PingPong needs at least 2 ranks")
        if reps < 1 or nbytes < 0:
            raise ValueError("reps must be positive and nbytes non-negative")
        self.ntasks = ntasks
        self.nbytes = nbytes
        self.reps = reps
        self.name = f"pingpong[{nbytes}B]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        from ..core.ops import Recv, Send
        for _ in range(self.reps):
            if rank == 0:
                yield Send(dst=1, nbytes=self.nbytes, phase="pingpong")
                yield Recv(src=1, phase="pingpong")
            elif rank == 1:
                yield Recv(src=0, phase="pingpong")
                yield Send(dst=0, nbytes=self.nbytes, phase="pingpong")
        yield Barrier()


class RingExchange(Workload):
    """Ring pattern: every rank sendrecvs around the ring (Figures 12–13)."""

    def __init__(self, ntasks: int, nbytes: int, reps: int = 20):
        if ntasks < 2:
            raise ValueError("a ring needs at least 2 ranks")
        if reps < 1 or nbytes < 0:
            raise ValueError("reps must be positive and nbytes non-negative")
        self.ntasks = ntasks
        self.nbytes = nbytes
        self.reps = reps
        self.name = f"ring[{nbytes}B,p={ntasks}]"

    def program(self, rank: int) -> Iterator[Op]:
        yield Barrier()
        p = self.ntasks
        for _ in range(self.reps):
            yield SendRecv(send_to=(rank + 1) % p, recv_from=(rank - 1) % p,
                           nbytes=self.nbytes, phase="ring")
        yield Barrier()
