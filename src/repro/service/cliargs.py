"""Shared argparse plumbing for every networked subcommand.

``submit``, ``replay``, ``top``, ``trace`` and the ``cluster`` verbs
all talk to a daemon or router over the same transport, so they must
agree on how an endpoint is spelled (``host:port`` for TCP, a
filesystem path for a Unix socket) and on the client-side timeout
default.  Historically each subcommand re-declared ``--connect`` and
``--timeout`` with its own wording and defaults; this module is the
single source of truth they now share.

:func:`~repro.service.transport.parse_address` (re-exported here for
convenience) turns the accepted spellings into a typed address; the
helpers below only *declare* the flags — resolution stays with the
caller so subcommand-specific fallbacks (state files, ``--socket``)
keep working.
"""

from __future__ import annotations

import argparse
from typing import Optional

from .transport import Address, parse_address

__all__ = [
    "DEFAULT_SOCKET",
    "DEFAULT_TIMEOUT_S",
    "add_connect_argument",
    "add_timeout_argument",
    "parse_address",
    "resolve_connect",
]

#: where `repro-bench serve` listens when nothing else is configured
DEFAULT_SOCKET = ".repro/service.sock"
#: client-side response timeout shared by every networked subcommand
DEFAULT_TIMEOUT_S = 600.0

_CONNECT_HELP = ("service endpoint: host:port for TCP or a "
                 "filesystem path for a Unix socket")


def add_connect_argument(parser: argparse.ArgumentParser, *,
                         default: Optional[str] = None,
                         help: Optional[str] = None,  # noqa: A002
                         ) -> argparse.ArgumentParser:
    """Declare the shared ``--connect ADDR`` flag on *parser*.

    Callers may override *help* to describe their fallback behaviour
    (state file, ``--socket``); the metavar and the accepted spellings
    are fixed so every subcommand's ``--help`` reads identically.
    """
    parser.add_argument("--connect", metavar="ADDR", default=default,
                        help=help or _CONNECT_HELP)
    return parser


def add_timeout_argument(parser: argparse.ArgumentParser, *,
                         default: float = DEFAULT_TIMEOUT_S,
                         help: Optional[str] = None,  # noqa: A002
                         ) -> argparse.ArgumentParser:
    """Declare the shared ``--timeout S`` flag on *parser*."""
    parser.add_argument(
        "--timeout", type=float, default=default, metavar="S",
        help=help or ("client-side response timeout in seconds "
                      f"(default: {default:g})"))
    return parser


def resolve_connect(args: argparse.Namespace,
                    fallback: Optional[str] = None) -> Optional[Address]:
    """The endpoint named by ``--connect`` (or *fallback*), parsed.

    Returns ``None`` when neither is given so callers can fall back to
    discovery (cluster state files) or error out with their own
    message.
    """
    text = getattr(args, "connect", None) or fallback
    if text is None:
        return None
    return parse_address(text)
