"""Typed request/result values of the characterization service.

:class:`RunRequest` is the one description of "simulate this cell" that
every entry point now routes through — the :class:`~.session.Session`
facade, the sweep helpers, the wire protocol, and (via shims) the
legacy free functions.  It is a frozen value: two requests describing
the same cell hash to the same content address
(:func:`repro.core.cache.job_key`), which is what request coalescing
and the result cache key on.

:class:`RunResult` wraps the simulation outcome
(:class:`~repro.core.execution.JobResult`) together with service
metadata: how the result was obtained (``computed`` / ``cache`` /
``coalesced``), how long the request waited in the queue, and — for
infeasible or failed cells — the stable error code a client can switch
on.  ``require()`` converts a non-ok result back into the typed
exception, so sync callers keep exception semantics while the service
plane stays data-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..core.cache import Uncacheable
from ..core.execution import JobResult
from ..core.parallel import JobRequest
from ..core.workload import Workload
from ..errors import InfeasibleSchemeError, JobFailedError
from ..machine.topology import MachineSpec

__all__ = ["RunRequest", "RunResult"]


@dataclass(frozen=True)
class RunRequest:
    """One characterization cell, fully described by value.

    The typed replacement for the old ad-hoc ``run(spec, workload,
    scheme=..., lock=...)`` kwargs.  ``tag`` is a free-form client
    label carried through to the matching :class:`RunResult`; it is
    *not* part of the cell's content address, so differently-tagged
    twins still coalesce.
    """

    system: MachineSpec
    workload: Workload
    scheme: Any = None          # AffinityScheme; None = Default
    affinity: Any = None        # ResolvedAffinity override
    impl: Any = None            # MpiImplementation; None = OpenMPI
    lock: Optional[str] = None
    parked: int = 0
    profile: bool = False
    faults: Any = None          # FaultPlan
    #: "fast" | "exact" | "auto"; None defers to the executor default
    tier: Optional[str] = None
    tag: Optional[str] = None
    #: distributed-trace identity (see telemetry.tracing); like ``tag``,
    #: never part of the content address, so traced twins still coalesce
    trace_id: Optional[str] = None
    parent_span: Optional[str] = None

    def to_job(self) -> JobRequest:
        """The executor/cache form of this request.

        A ``tier`` of ``None`` materializes the process-wide default
        (the CLIs' ``--tier``) here, so session-level coalescing keys
        agree with the tier the executor will actually run.
        """
        from ..core.affinity import AffinityScheme
        from ..core.parallel import default_tier

        scheme = self.scheme if self.scheme is not None \
            else AffinityScheme.DEFAULT
        tier = self.tier if self.tier is not None else default_tier()
        return JobRequest(spec=self.system, workload=self.workload,
                          scheme=scheme, affinity=self.affinity,
                          impl=self.impl, lock=self.lock,
                          parked=self.parked, profile=self.profile,
                          faults=self.faults, tier=tier)

    def key(self) -> Optional[str]:
        """Content address of the cell, or ``None`` when uncacheable."""
        try:
            return self.to_job().key()
        except Uncacheable:
            return None

    def label(self) -> str:
        """Short human-readable cell description (for logs/failures)."""
        return self.to_job().label()


@dataclass
class RunResult:
    """Outcome of one :class:`RunRequest` plus service metadata.

    ``status`` is ``"ok"`` (``job`` holds the simulation result),
    ``"infeasible"`` (the paper tables' dashes), or ``"failed"`` (the
    cell ran and was lost to a crash/stall/injected fault; ``error``
    and ``code`` describe it).  ``source`` records how an ok result was
    obtained: freshly ``computed``, served from the result ``cache``,
    or ``coalesced`` onto another waiter's in-flight simulation.
    """

    status: str
    job: Optional[JobResult] = None
    key: Optional[str] = None
    source: str = "computed"
    #: queue wait in seconds (0 for sync / cache-served requests)
    wait_s: float = 0.0
    error: Optional[str] = None
    code: Optional[str] = None
    kind: Optional[str] = None
    tag: Optional[str] = None
    #: True when load shedding degraded this ``tier="auto"`` request to
    #: the surrogate fast path instead of queueing it; the payload is
    #: still the cell's canonical fast-tier result (same content
    #: address), only the route differs
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def require(self) -> JobResult:
        """The simulation result, or the typed error re-raised."""
        if self.status == "ok" and self.job is not None:
            return self.job
        if self.status == "infeasible":
            raise InfeasibleSchemeError(
                self.error or "scheme infeasible for this cell")
        raise JobFailedError(self.error or "job failed",
                             kind=self.kind or "error")

    def to_wire(self) -> Dict[str, Any]:
        """The protocol form (status + result payload + metadata)."""
        wire: Dict[str, Any] = {
            "status": self.status,
            "source": self.source,
            "wait_s": round(self.wait_s, 6),
        }
        if self.key is not None:
            wire["key"] = self.key
        if self.tag is not None:
            wire["tag"] = self.tag
        if self.job is not None:
            wire["result"] = self.job.to_dict()
        if self.error is not None:
            wire["error"] = self.error
        if self.code is not None:
            wire["code"] = self.code
        if self.kind is not None:
            wire["kind"] = self.kind
        if self.degraded:
            wire["degraded"] = True
        return wire

    @classmethod
    def from_wire(cls, wire: Dict[str, Any]) -> "RunResult":
        """Rebuild a result from its protocol form (client side)."""
        job = None
        if wire.get("result") is not None:
            job = JobResult.from_dict(wire["result"])
        return cls(status=wire.get("status", "failed"), job=job,
                   key=wire.get("key"), source=wire.get("source", "computed"),
                   wait_s=wire.get("wait_s", 0.0), error=wire.get("error"),
                   code=wire.get("code"), kind=wire.get("kind"),
                   tag=wire.get("tag"),
                   degraded=bool(wire.get("degraded", False)))
