"""NDJSON wire protocol of the characterization service.

One JSON object per line in both directions over a Unix domain socket.

Requests::

    {"op": "ping"}
    {"op": "hello", "protocol": 3}             # negotiate, see below
    {"op": "stats"}
    {"op": "metrics"}                          # live registry snapshot
    {"op": "trace", "trace_id": "9f.."}        # buffered spans (id optional)
    {"op": "submit", "cell": {...}}            # one cell, wait for it
    {"op": "batch",  "cells": [{...}, ...]}    # many cells, wait for all
    {"op": "drain"}                            # stop admitting, finish all
    {"op": "shutdown"}                         # drain, then stop the server

A **cell** names its inputs through :mod:`~repro.service.registry`::

    {"system": "longs", "workload": "stream", "ntasks": 4,
     "scheme": "interleave", "lock": null, "parked": 0, "tag": "t0",
     "tier": "fast",           # "fast" | "exact" | "auto" (optional)
     "params": {...},          # extra workload parameters (optional)
     "trace": {"trace_id": "9f..", "parent_span": "ab.."}}  # optional

The ``trace`` envelope is optional distributed-trace identity (see
:mod:`repro.telemetry.tracing`): servers that know about it open a
``service_submit`` span and thread the ids through session and
executor; servers that don't simply ignore the unknown field — tracing
is metadata, never load-bearing.  ``metrics`` is side-effect-free and
returns the process metrics snapshot (add ``"format": "text"`` for the
Prometheus exposition alongside).

``hello`` is side-effect-free: it reports the versions this server
speaks (``protocol_versions``), its name, and its capability strings.
When the request carries ``"protocol": 3`` and the server supports it,
the *rest of that connection* switches to the :mod:`repro.wire` framed
binary format (protocol v3) — same messages, compact spelling.  A
server that predates ``hello`` answers with its ordinary unknown-op
``protocol_error``, which clients treat as "speak v2 NDJSON"; a
``hello`` naming a version outside ``protocol_versions`` gets a
``protocol_error`` reply that still lists the supported versions, so
the client can downgrade instead of guessing.

Responses are ``{"status": "ok", ...}`` or the wire form of a
:class:`~repro.errors.ReproError` (``{"status": "error", "code": ...,
"message": ..., "retry_after": ...}``).  A ``submit`` answers with the
:meth:`RunResult.to_wire` payload; ``batch`` answers with ``{"status":
"ok", "results": [...]}`` where each element is a per-cell result or
error object — queue-full rejections reject *that cell only*, they
never poison the rest of the batch.  Traced submits echo ``trace_id``
in the response.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ProtocolError, ReproError, error_code
from ..telemetry import metrics as metrics_mod
from ..telemetry import tracing
from .api import RunRequest, RunResult
from .registry import resolve_scheme_name, resolve_system, resolve_workload
from .session import Session

__all__ = ["PROTOCOL_VERSION", "PROTOCOL_VERSIONS", "SERVER_CAPS",
           "cell_from_wire", "decode_line", "encode_line", "handle_request",
           "hello_response", "metrics_response"]

#: baseline protocol revision, echoed by ping (2 adds `metrics` + trace
#: fields); every connection starts at v2 NDJSON
PROTOCOL_VERSION = 2
#: every revision this server speaks; 3 is the framed binary format,
#: entered per-connection via a successful `hello`
PROTOCOL_VERSIONS = (2, 3)
#: capability strings advertised by `hello`
SERVER_CAPS = ("batch", "metrics", "trace", "binary-frames")


def encode_line(message: Dict[str, Any]) -> bytes:
    """One message as a newline-terminated JSON line."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line (raises :class:`ProtocolError`)."""
    try:
        message = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def cell_from_wire(cell: Any) -> RunRequest:
    """Build a typed :class:`RunRequest` from a wire cell description."""
    if not isinstance(cell, dict):
        raise ProtocolError("cell must be a JSON object")
    try:
        system = resolve_system(str(cell.get("system", "longs")))
        workload_name = cell.get("workload")
        if not isinstance(workload_name, str):
            raise ProtocolError("cell needs a 'workload' name")
        ntasks = int(cell.get("ntasks", 4))
        params = cell.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        workload = resolve_workload(workload_name, ntasks, **params)
        scheme = resolve_scheme_name(str(cell.get("scheme", "default")))
    except ReproError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed cell: {exc}") from exc
    lock = cell.get("lock")
    if lock is not None and not isinstance(lock, str):
        raise ProtocolError("'lock' must be a string or null")
    tier = cell.get("tier")
    if tier is not None and tier not in ("fast", "exact", "auto"):
        raise ProtocolError(
            "'tier' must be 'fast', 'exact', 'auto' or null")
    tag = cell.get("tag")
    trace_id, parent_span = tracing.trace_from_cell(cell)
    return RunRequest(system=system, workload=workload, scheme=scheme,
                      lock=lock, parked=int(cell.get("parked", 0)),
                      profile=bool(cell.get("profile", False)),
                      tier=tier,
                      tag=str(tag) if tag is not None else None,
                      trace_id=trace_id, parent_span=parent_span)


def hello_response(message: Dict[str, Any],
                   server: str = "repro-service"
                   ) -> "Tuple[Dict[str, Any], int]":
    """The side-effect-free ``hello`` reply plus the selected version.

    Returns ``(response, protocol)``: ``protocol`` is the version the
    rest of the connection should speak — the requested one when this
    server supports it, else :data:`PROTOCOL_VERSION` (the response is
    then a typed ``protocol_error`` that still carries
    ``protocol_versions`` so the client can downgrade gracefully).
    """
    requested = message.get("protocol")
    if requested is not None and requested not in PROTOCOL_VERSIONS:
        error = ProtocolError(
            f"unsupported protocol version {requested!r}; "
            f"this server speaks {list(PROTOCOL_VERSIONS)}")
        wire = error.to_wire()
        wire["op"] = "hello"
        wire["protocol_versions"] = list(PROTOCOL_VERSIONS)
        return wire, PROTOCOL_VERSION
    selected = int(requested) if requested is not None else PROTOCOL_VERSION
    return ({"status": "ok", "op": "hello", "protocol": selected,
             "protocol_versions": list(PROTOCOL_VERSIONS),
             "server": server, "caps": list(SERVER_CAPS)}, selected)


def _error_wire(exc: BaseException) -> Dict[str, Any]:
    if isinstance(exc, ReproError):
        return exc.to_wire()
    return {"status": "error", "code": error_code(exc),
            "message": f"{type(exc).__name__}: {exc}"}


def metrics_response(message: Dict[str, Any],
                     session: Optional[Session] = None) -> Dict[str, Any]:
    """The side-effect-free ``metrics`` response for this process."""
    try:
        from ..sim.trace import total_dropped
        metrics_mod.set_gauge("sim_trace_dropped", total_dropped())
    except Exception:
        pass
    snap = metrics_mod.snapshot()
    response: Dict[str, Any] = {"status": "ok", "op": "metrics",
                                "metrics": snap,
                                "enabled":
                                metrics_mod.active_registry() is not None}
    if session is not None:
        response["session"] = session.name
        response["gauges"] = session.gauges()
    if message.get("format") == "text":
        response["text"] = metrics_mod.to_prometheus(snap)
    return response


def _submit_traced(session: Session, request: RunRequest) -> Dict[str, Any]:
    """One traced submit: open the service hop, thread its span down."""
    with tracing.traced("service_submit", request.trace_id,
                        request.parent_span, session=session.name) as tspan:
        if tspan.span_id is not None:
            request = replace(request, parent_span=tspan.span_id)
        result = session.submit(request).result()
        tspan.note(source=result.source, status=result.status)
    wire = result.to_wire()
    wire["trace_id"] = request.trace_id
    return wire


def handle_request(session: Session, message: Dict[str, Any]
                   ) -> Dict[str, Any]:
    """Serve one decoded request against a session (server side).

    Returns the response object; never raises for client-caused
    failures (they fold into error responses).  The ``drain`` and
    ``shutdown`` ops mark their effect in the response; actually
    stopping the accept loop is the daemon's job (it watches for
    ``shutdown`` responses).
    """
    op = message.get("op")
    try:
        if op == "ping":
            return {"status": "ok", "op": "ping",
                    "protocol": PROTOCOL_VERSION,
                    "session": session.name}
        if op == "hello":
            # the transport layer intercepts hello to switch framing;
            # answering here too keeps direct handle_request callers
            # (tests, embedders) working identically
            return hello_response(message, server=session.name)[0]
        if op == "stats":
            return {"status": "ok", "op": "stats",
                    "stats": session.stats.as_dict(),
                    "gauges": session.gauges()}
        if op == "metrics":
            return metrics_response(message, session)
        if op == "trace":
            # side-effect-free: the trace spans still buffered in this
            # process's run recorder (they only reach the ledger at
            # shutdown); lets `repro-bench trace --connect` stitch
            # traces from live daemons
            from ..telemetry.spans import active_recorder
            recorder = active_recorder()
            spans = list(getattr(recorder, "trace_spans", None) or [])
            wanted = message.get("trace_id")
            if wanted is not None:
                spans = [s for s in spans if s.get("trace") == wanted]
            return {"status": "ok", "op": "trace", "spans": spans,
                    "dropped": int(getattr(recorder,
                                           "trace_spans_dropped", 0) or 0),
                    "session": session.name}
        if op == "submit":
            request = cell_from_wire(message.get("cell"))
            if request.trace_id is not None:
                wire = _submit_traced(session, request)
            else:
                wire = session.submit(request).result().to_wire()
            wire["op"] = "submit"
            return wire
        if op == "batch":
            cells = message.get("cells")
            if not isinstance(cells, list) or not cells:
                raise ProtocolError("'cells' must be a non-empty list")
            futures: List[Any] = []
            for cell in cells:
                try:
                    request = cell_from_wire(cell)
                    if request.trace_id is not None:
                        span = tracing.TraceSpan(
                            "service_submit", request.trace_id,
                            request.parent_span, {"session": session.name,
                                                  "op": "batch"})
                        request = replace(request,
                                          parent_span=span.span_id)
                        futures.append((session.submit(request),
                                        span, time.time(),
                                        time.perf_counter()))
                    else:
                        futures.append(session.submit(request))
                except Exception as exc:
                    futures.append(exc)
            results = []
            for entry in futures:
                if isinstance(entry, BaseException):
                    results.append(_error_wire(entry))
                elif isinstance(entry, tuple):
                    future, span, t0_wall, t0 = entry
                    result = future.result()
                    tracing.record_trace_span(
                        span.name, span.trace_id, span.span_id,
                        span.parent_span, t0_wall,
                        time.perf_counter() - t0,
                        dict(span.attrs, source=result.source,
                             status=result.status))
                    wire = result.to_wire()
                    wire["trace_id"] = span.trace_id
                    results.append(wire)
                else:
                    results.append(entry.result().to_wire())
            return {"status": "ok", "op": "batch", "results": results}
        if op == "drain":
            session.drain()
            return {"status": "ok", "op": "drain",
                    "stats": session.stats.as_dict()}
        if op == "shutdown":
            session.drain()
            return {"status": "ok", "op": "shutdown",
                    "stats": session.stats.as_dict(),
                    "gauges": session.gauges()}
        raise ProtocolError(f"unknown op {op!r}")
    except BaseException as exc:  # fold everything into the wire form
        wire = _error_wire(exc)
        wire["op"] = op
        return wire
