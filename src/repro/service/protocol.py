"""NDJSON wire protocol of the characterization service.

One JSON object per line in both directions over a Unix domain socket.

Requests::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "submit", "cell": {...}}            # one cell, wait for it
    {"op": "batch",  "cells": [{...}, ...]}    # many cells, wait for all
    {"op": "drain"}                            # stop admitting, finish all
    {"op": "shutdown"}                         # drain, then stop the server

A **cell** names its inputs through :mod:`~repro.service.registry`::

    {"system": "longs", "workload": "stream", "ntasks": 4,
     "scheme": "interleave", "lock": null, "parked": 0, "tag": "t0",
     "tier": "fast",           # "fast" | "exact" | "auto" (optional)
     "params": {...}}          # extra workload parameters (optional)

Responses are ``{"status": "ok", ...}`` or the wire form of a
:class:`~repro.errors.ReproError` (``{"status": "error", "code": ...,
"message": ..., "retry_after": ...}``).  A ``submit`` answers with the
:meth:`RunResult.to_wire` payload; ``batch`` answers with ``{"status":
"ok", "results": [...]}`` where each element is a per-cell result or
error object — queue-full rejections reject *that cell only*, they
never poison the rest of the batch.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import ProtocolError, ReproError, error_code
from .api import RunRequest, RunResult
from .registry import resolve_scheme_name, resolve_system, resolve_workload
from .session import Session

__all__ = ["cell_from_wire", "decode_line", "encode_line", "handle_request"]

#: protocol revision, echoed by ping
PROTOCOL_VERSION = 1


def encode_line(message: Dict[str, Any]) -> bytes:
    """One message as a newline-terminated JSON line."""
    return (json.dumps(message, sort_keys=True,
                       separators=(",", ":")) + "\n").encode()


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one request line (raises :class:`ProtocolError`)."""
    try:
        message = json.loads(line.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable request line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def cell_from_wire(cell: Any) -> RunRequest:
    """Build a typed :class:`RunRequest` from a wire cell description."""
    if not isinstance(cell, dict):
        raise ProtocolError("cell must be a JSON object")
    try:
        system = resolve_system(str(cell.get("system", "longs")))
        workload_name = cell.get("workload")
        if not isinstance(workload_name, str):
            raise ProtocolError("cell needs a 'workload' name")
        ntasks = int(cell.get("ntasks", 4))
        params = cell.get("params") or {}
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        workload = resolve_workload(workload_name, ntasks, **params)
        scheme = resolve_scheme_name(str(cell.get("scheme", "default")))
    except ReproError:
        raise
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed cell: {exc}") from exc
    lock = cell.get("lock")
    if lock is not None and not isinstance(lock, str):
        raise ProtocolError("'lock' must be a string or null")
    tier = cell.get("tier")
    if tier is not None and tier not in ("fast", "exact", "auto"):
        raise ProtocolError(
            "'tier' must be 'fast', 'exact', 'auto' or null")
    tag = cell.get("tag")
    return RunRequest(system=system, workload=workload, scheme=scheme,
                      lock=lock, parked=int(cell.get("parked", 0)),
                      profile=bool(cell.get("profile", False)),
                      tier=tier,
                      tag=str(tag) if tag is not None else None)


def _error_wire(exc: BaseException) -> Dict[str, Any]:
    if isinstance(exc, ReproError):
        return exc.to_wire()
    return {"status": "error", "code": error_code(exc),
            "message": f"{type(exc).__name__}: {exc}"}


def handle_request(session: Session, message: Dict[str, Any]
                   ) -> Dict[str, Any]:
    """Serve one decoded request against a session (server side).

    Returns the response object; never raises for client-caused
    failures (they fold into error responses).  The ``drain`` and
    ``shutdown`` ops mark their effect in the response; actually
    stopping the accept loop is the daemon's job (it watches for
    ``shutdown`` responses).
    """
    op = message.get("op")
    try:
        if op == "ping":
            return {"status": "ok", "op": "ping",
                    "protocol": PROTOCOL_VERSION,
                    "session": session.name}
        if op == "stats":
            return {"status": "ok", "op": "stats",
                    "stats": session.stats.as_dict(),
                    "gauges": session.gauges()}
        if op == "submit":
            request = cell_from_wire(message.get("cell"))
            result = session.submit(request).result()
            wire = result.to_wire()
            wire["op"] = "submit"
            return wire
        if op == "batch":
            cells = message.get("cells")
            if not isinstance(cells, list) or not cells:
                raise ProtocolError("'cells' must be a non-empty list")
            futures: List[Any] = []
            for cell in cells:
                try:
                    futures.append(session.submit(cell_from_wire(cell)))
                except Exception as exc:
                    futures.append(exc)
            results = []
            for entry in futures:
                if isinstance(entry, BaseException):
                    results.append(_error_wire(entry))
                else:
                    results.append(entry.result().to_wire())
            return {"status": "ok", "op": "batch", "results": results}
        if op == "drain":
            session.drain()
            return {"status": "ok", "op": "drain",
                    "stats": session.stats.as_dict()}
        if op == "shutdown":
            session.drain()
            return {"status": "ok", "op": "shutdown",
                    "stats": session.stats.as_dict(),
                    "gauges": session.gauges()}
        raise ProtocolError(f"unknown op {op!r}")
    except BaseException as exc:  # fold everything into the wire form
        wire = _error_wire(exc)
        wire["op"] = op
        return wire
