"""The :class:`Session` facade: characterization as a long-running service.

A session owns everything the old free functions kept in module
globals — the result cache, the ad-hoc memo table the bench generators
use, and the executor configuration — plus an **async job queue**:

* ``submit(request)`` returns a ``concurrent.futures.Future`` that
  resolves to a :class:`~.api.RunResult`; a background dispatcher
  drains the queue in **batches** through the crash-isolated worker
  pool of :mod:`repro.core.parallel` (stall watchdog, bounded retry,
  and worker-crash isolation all apply to served jobs).
* concurrent submits of **identical cells coalesce**: the first keyed
  submit owns the simulation, later twins attach as waiters and every
  future resolves to the same (byte-identical) payload — one
  simulation, N answers.
* **admission control**: the queue depth is bounded; a submit beyond
  it raises :class:`~repro.errors.QueueFullError` (the service's 429)
  carrying a ``retry_after`` hint derived from observed service times.
  Rejected jobs were never accepted, accepted jobs are never dropped.
* **graceful drain**: ``drain()`` stops admitting and completes every
  accepted job; ``close()`` drains and stops the dispatcher.  A
  session is a context manager (``with Session() as s: ...``).

``run(request)`` is the synchronous form: it executes in the calling
thread (attaching to an in-flight twin when one exists) and returns the
:class:`RunResult` directly.  The sweep methods (:meth:`scheme_sweep`,
:meth:`compare_schemes`, :meth:`scaling_study`) are the typed,
session-routed implementations behind the deprecated free functions of
:mod:`repro.core.experiment`.

Per-request telemetry: every batch is bracketed in a ``service_batch``
span, and :meth:`gauges` exposes perfctr-style queue-depth /
wait-time / coalesce counters that the ``serve`` daemon folds into its
ledger record so ``repro-bench history``/``regress`` cover served
traffic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.cache import ResultCache, default_cache
from ..core.metrics import parallel_efficiency
from ..core.parallel import run_requests, take_failures
from ..core.report import TableResult
from ..errors import (
    NoFeasibleSchemeError,
    QueueFullError,
    SessionClosedError,
    UnknownMetricError,
)
from ..telemetry import metrics, tracing
from ..telemetry.spans import span
from .api import RunRequest, RunResult

__all__ = ["ServiceStats", "Session", "default_session", "set_default_session"]

#: default bound on queued-but-undispatched jobs (the admission limit)
DEFAULT_MAX_PENDING = 256
#: default cap on cells dispatched to the pool as one batch
DEFAULT_MAX_BATCH = 64

#: one executor flight at a time: `run_requests` + `take_failures` share
#: process-wide state (pool, failure list), so concurrent sessions and
#: sync runs serialize their batches around this lock
_EXEC_LOCK = threading.Lock()


@dataclass
class ServiceStats:
    """Perfctr-style service counters and gauges, all plain numbers.

    Counter semantics: ``submitted`` counts every submit/run arrival,
    split into ``accepted`` (queued), ``coalesced`` (attached to an
    in-flight twin), ``cache_hits`` (answered at admission from the
    result cache), and ``rejected`` (backpressure).  ``computed`` /
    ``completed`` / ``infeasible`` / ``failed`` count *jobs* reaching a
    terminal state; ``wait_s_*`` measure queue time from submit to
    delivery; ``queue_depth`` / ``queue_depth_peak`` gauge the backlog.
    """

    submitted: int = 0
    accepted: int = 0
    coalesced: int = 0
    cache_hits: int = 0
    rejected: int = 0
    degraded: int = 0
    computed: int = 0
    completed: int = 0
    infeasible: int = 0
    failed: int = 0
    batches: int = 0
    queue_depth: int = 0
    queue_depth_peak: int = 0
    wait_s_total: float = 0.0
    wait_s_max: float = 0.0
    busy_s_total: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "coalesced": self.coalesced,
            "cache_hits": self.cache_hits,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "computed": self.computed,
            "completed": self.completed,
            "infeasible": self.infeasible,
            "failed": self.failed,
            "batches": self.batches,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
            "wait_s_total": round(self.wait_s_total, 6),
            "wait_s_max": round(self.wait_s_max, 6),
            "busy_s_total": round(self.busy_s_total, 6),
        }


class _Job:
    """One accepted cell and the futures fanned out to its waiters."""

    __slots__ = ("request", "job_request", "key", "futures",
                 "submitted_at", "outcome", "trace", "traces",
                 "span_id", "submitted_wall", "degraded")

    def __init__(self, request: RunRequest, key: Optional[str]):
        self.request = request
        self.job_request = request.to_job()
        self.key = key
        self.futures: List[Future] = []
        self.submitted_at = time.perf_counter()
        #: resolved inline via the surrogate by load shedding
        self.degraded = False
        #: terminal ("ok"|"infeasible"|"failed", payload) once delivered
        self.outcome: Optional[Tuple[str, Any]] = None
        #: distributed-trace context; everything below stays None/empty
        #: on the untraced path (no clock reads, no id minting)
        self.trace: Optional[Tuple[str, Optional[str]]] = None
        self.traces: List[Optional[Tuple[str, Optional[str]]]] = []
        self.span_id: Optional[str] = None
        self.submitted_wall = 0.0
        if request.trace_id is not None:
            self.trace = (request.trace_id, request.parent_span)
            self.span_id = tracing.new_span_id()
            self.submitted_wall = time.time()


class Session:
    """A characterization service instance (see module docstring).

    ``cache=None`` shares the process-wide content-addressed cache;
    pass an explicit :class:`~repro.core.cache.ResultCache` for an
    isolated (e.g. per-tenant or per-test) session.  ``jobs``,
    ``timeout`` and ``retries`` default to the executor's process-wide
    resolution (CLI flags / environment).  ``paused=True`` holds the
    dispatcher so tests and batch clients can stage submits — staging
    is also what makes coalescing deterministic to observe.
    ``backend`` picks the execution plane every batch is scheduled on
    (an :class:`~repro.backends.ExecutionBackend` or its CLI spelling:
    ``threads``, ``processes``, ``remote:<addr>``); the default is the
    process-wide crash-isolated worker pool, and since backends never
    touch the cache the choice cannot change a single result byte.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 jobs: Optional[int] = None,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 batch_window: float = 0.0,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 name: str = "session",
                 paused: bool = False,
                 shed_threshold: Optional[float] = None,
                 backend=None):
        self._cache = cache
        self.jobs = jobs
        #: the ExecutionBackend every batch is scheduled on (``None``
        #: defers to the process-wide default — see repro.backends);
        #: accepts a CLI spelling like "threads" or "remote:<addr>"
        self.backend = None
        if backend is not None:
            from ..backends import resolve_backend
            self.backend = resolve_backend(backend)
        self.max_pending = max(1, max_pending)
        self.max_batch = max(1, max_batch)
        self.batch_window = max(0.0, batch_window)
        self.timeout = timeout
        self.retries = retries
        self.name = name
        #: queue-wait p99 (seconds) beyond which submits are shed:
        #: rejected with a live retry-after, or — for ``tier="auto"``
        #: cells the surrogate supports — degraded to an inline fast
        #: evaluation that bypasses the backlog.  ``None`` disables.
        self.shed_threshold = shed_threshold
        self.stats = ServiceStats()

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: Deque[_Job] = deque()
        self._inflight: Dict[str, _Job] = {}
        self._outstanding = 0          # accepted jobs not yet delivered
        self._memo: Dict[Any, Any] = {}
        self._paused = paused
        self._draining = False
        self._closed = False
        self._dispatcher: Optional[threading.Thread] = None
        #: EWMA of per-cell service seconds, for retry-after hints
        self._cell_s = 0.05
        #: recent queue waits, the shedding signal (bounded window)
        self._wait_samples: Deque[float] = deque(maxlen=256)

    # -- plumbing --------------------------------------------------------

    @property
    def cache(self) -> ResultCache:
        """This session's result cache (the process default if unset)."""
        if self._cache is None:
            return default_cache()
        return self._cache

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-session-{self.name}", daemon=True)
            self._dispatcher.start()

    def _retry_after(self) -> float:
        """Backpressure hint: when the backlog should have drained."""
        from ..core.parallel import default_jobs

        workers = self.jobs if self.jobs is not None else default_jobs()
        backlog = len(self._queue) + 1
        return max(0.05, self._cell_s * backlog / max(1, workers))

    def wait_p99(self) -> float:
        """p99 of recent queue waits (0 until samples accumulate)."""
        with self._lock:
            samples = sorted(self._wait_samples)
        if not samples:
            return 0.0
        return samples[min(len(samples) - 1,
                           int(0.99 * (len(samples) - 1) + 0.5))]

    def _should_shed_locked(self) -> bool:
        """Is the queue-wait p99 past the shedding threshold?

        Only meaningful with backlog: an idle session never sheds, even
        right after a burst left high wait samples behind.
        """
        if self.shed_threshold is None or not self._queue:
            return False
        samples = sorted(self._wait_samples)
        if len(samples) < 4:  # too little signal to condemn the queue
            return False
        p99 = samples[min(len(samples) - 1,
                          int(0.99 * (len(samples) - 1) + 0.5))]
        return p99 > self.shed_threshold

    @staticmethod
    def _degradable(request: RunRequest) -> bool:
        """May this request be shed to the surrogate fast path?

        Only ``tier="auto"`` cells the surrogate supports: their
        effective tier is already ``fast`` (resolved *before* cache
        keying), so the inline surrogate answer is byte- and
        key-identical to what the queued path would have produced.
        """
        if request.tier != "auto":
            return False
        try:
            return request.to_job().effective_tier() == "fast"
        except Exception:
            return False

    def _execute_degraded(self, job: _Job) -> Tuple[str, Any]:
        """Run one shed job inline through the surrogate fast path.

        Called **without** the session lock — the whole point is to
        bypass the overloaded queue, not to block it.  The normal
        cache-get/execute/put path keeps the result coherent with
        queued twins (idempotent content-addressed put).
        """
        from ..core.parallel import run_request
        from ..errors import InfeasibleSchemeError, ReproError

        t0 = time.perf_counter()
        try:
            result = run_request(job.job_request, cache=self.cache)
        except InfeasibleSchemeError as exc:
            return "infeasible", str(exc)
        except ReproError as exc:
            return "failed", {"kind": "error", "message": str(exc)}
        finally:
            metrics.observe("service_degraded_seconds",
                            time.perf_counter() - t0)
        return "ok", result

    # -- the async plane -------------------------------------------------

    def submit(self, request: RunRequest) -> "Future[RunResult]":
        """Queue one cell; the future resolves to its :class:`RunResult`.

        Admission order: coalesce onto an in-flight twin (free), answer
        from the result cache (free), then admit against the queue
        bound — or reject with :class:`QueueFullError`.  A returned
        future is a promise: accepted jobs are never dropped, even by
        :meth:`drain`/:meth:`close` or a worker crash (failures resolve
        the future with a ``failed`` result, not silence).

        With ``shed_threshold`` set, an overloaded session (queue-wait
        p99 past the threshold, or queue full) **sheds**: ``tier="auto"``
        cells the surrogate supports are answered inline through the
        fast path (``degraded=True`` on the result, same content
        address as the queued path would produce); everything else is
        rejected with a live ``retry_after``.
        """
        future: "Future[RunResult]" = Future()
        degrade: Optional[_Job] = None
        with self._cond:
            if self._closed or self._draining:
                self.stats.rejected += 1
                metrics.inc("service_rejected_total")
                raise SessionClosedError(
                    f"session {self.name!r} is "
                    f"{'closed' if self._closed else 'draining'}")
            self.stats.submitted += 1
            metrics.inc("service_submitted_total")
            key = request.key()
            if key is not None:
                twin = self._inflight.get(key)
                if twin is not None and twin.outcome is None:
                    self.stats.coalesced += 1
                    metrics.inc("service_coalesce_hits_total")
                    twin.futures.append(future)
                    twin.traces.append(
                        (request.trace_id, request.parent_span)
                        if request.trace_id is not None else None)
                    return future
                hit = self.cache.get(key)
                if hit is not None:
                    self.stats.cache_hits += 1
                    self.stats.completed += 1
                    metrics.inc("service_admission_cache_hits_total")
                    if request.trace_id is not None:
                        tracing.record_trace_span(
                            "session_job", request.trace_id,
                            tracing.new_span_id(), request.parent_span,
                            time.time(), 0.0,
                            {"session": self.name, "source": "cache"})
                    future.set_result(RunResult(
                        status="ok", job=hit, key=key, source="cache",
                        tag=request.tag))
                    return future
            overloaded = len(self._queue) >= self.max_pending
            shedding = overloaded or self._should_shed_locked()
            if shedding and self.shed_threshold is not None \
                    and self._degradable(request):
                job = _Job(request, key)
                job.degraded = True
                job.futures.append(future)
                job.traces.append(job.trace)
                if key is not None:
                    self._inflight[key] = job
                self._outstanding += 1
                self.stats.accepted += 1
                self.stats.degraded += 1
                metrics.inc("service_accepted_total")
                metrics.inc("service_degraded_total")
                degrade = job
            elif shedding:
                self.stats.rejected += 1
                metrics.inc("service_rejected_total")
                retry_after = self._retry_after()
                if overloaded:
                    reason = f"queue is full ({self.max_pending} pending)"
                else:
                    reason = (f"queue wait p99 {self.wait_p99():.3f}s is "
                              f"over the shed threshold "
                              f"({self.shed_threshold}s)")
                raise QueueFullError(
                    f"session {self.name!r} {reason}",
                    retry_after=retry_after)
            else:
                job = _Job(request, key)
                job.futures.append(future)
                job.traces.append(job.trace)
                if key is not None:
                    self._inflight[key] = job
                self._queue.append(job)
                self._outstanding += 1
                self.stats.accepted += 1
                metrics.inc("service_accepted_total")
                self.stats.queue_depth = len(self._queue)
                self.stats.queue_depth_peak = max(
                    self.stats.queue_depth_peak, self.stats.queue_depth)
                metrics.set_gauge("service_queue_depth",
                                  self.stats.queue_depth)
                self._ensure_dispatcher()
                self._cond.notify_all()
        if degrade is not None:
            # execute outside the lock: shedding must not block the
            # very queue it is relieving
            outcome = self._execute_degraded(degrade)
            with self._cond:
                self._deliver_locked(degrade, outcome)
        return future

    def pause(self) -> None:
        """Hold the dispatcher (submits still accepted and coalesced)."""
        with self._cond:
            self._paused = True

    def resume(self) -> None:
        """Release a paused dispatcher."""
        with self._cond:
            self._paused = False
            if self._queue:
                self._ensure_dispatcher()
            self._cond.notify_all()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting; wait for every accepted job to complete.

        Returns ``True`` when the queue drained (``False`` on timeout).
        The session rejects new submits from the first ``drain`` call
        on — this is the shutdown half of backpressure.
        """
        t0 = time.monotonic()
        deadline = None if timeout is None else t0 + timeout
        with self._cond:
            self._draining = True
            self._paused = False
            self._cond.notify_all()
            while self._outstanding > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(timeout=remaining if remaining is not None
                                else 0.1)
        metrics.observe("service_drain_seconds", time.monotonic() - t0)
        return True

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Drain (by default) and stop the dispatcher thread."""
        if drain:
            self.drain(timeout=timeout)
        dispatcher = None
        with self._cond:
            self._draining = True
            self._closed = True
            undelivered = []
            while self._queue:
                undelivered.append(self._queue.popleft())
            self.stats.queue_depth = 0
            for job in undelivered:
                # only reachable on drain=False: surface, never drop
                self._deliver_locked(job, ("failed", {
                    "kind": "cancelled",
                    "message": "session closed before the job ran"}))
            dispatcher = self._dispatcher
            self._dispatcher = None
            self._cond.notify_all()
        if dispatcher is not None and dispatcher.is_alive():
            dispatcher.join(timeout=5.0)
        if self.backend is not None:
            self.backend.close()

    # -- the sync plane ---------------------------------------------------

    def run(self, request: RunRequest) -> RunResult:
        """Execute one cell synchronously and return its result.

        Attaches to an in-flight twin when the async plane is already
        simulating the same cell (a coalesce hit); otherwise executes
        in the calling thread through the same cache/executor path the
        dispatcher uses, so sync and served results are byte-identical.
        """
        with self._cond:
            if self._closed:
                raise SessionClosedError(f"session {self.name!r} is closed")
            self.stats.submitted += 1
            key = request.key()
            twin = self._inflight.get(key) if key is not None else None
            if twin is not None and twin.outcome is None:
                self.stats.coalesced += 1
                metrics.inc("service_coalesce_hits_total")
                future: "Future[RunResult]" = Future()
                twin.futures.append(future)
                twin.traces.append(None)
            else:
                future = None
        if future is not None:
            return future.result()
        job = _Job(request, key)
        outcome = self._execute([job])[0]
        with self._cond:
            self._account(job, outcome)
        return self._result_for(job, outcome, wait_s=0.0)

    def run_many(self, requests: Sequence[RunRequest],
                 jobs: Optional[int] = None) -> List[RunResult]:
        """Execute a batch synchronously, in request order.

        The sweep primitive: infeasible cells come back as
        ``status="infeasible"`` results (the tables' dashes) rather
        than raising.  Duplicate cells within the batch are computed
        once by the executor.
        """
        batch = [_Job(request, request.key()) for request in requests]
        outcomes = self._execute(batch, jobs=jobs)
        results = []
        with self._cond:
            for job, outcome in zip(batch, outcomes):
                self.stats.submitted += 1
                self._account(job, outcome)
        for job, outcome in zip(batch, outcomes):
            results.append(self._result_for(job, outcome, wait_s=0.0))
        return results

    # -- execution core ---------------------------------------------------

    def _execute(self, batch: List[_Job],
                 jobs: Optional[int] = None) -> List[Tuple[str, Any]]:
        """Run a batch through the executor; fold outcomes to data."""
        t0 = time.perf_counter()
        traced_jobs = [job for job in batch if job.trace is not None]
        wall0 = time.time() if traced_jobs else 0.0
        with _EXEC_LOCK:
            take_failures()  # drop stale records from other flows
            with span("service_batch", session=self.name,
                      cells=len(batch)) as batch_span:
                results = run_requests(
                    [job.job_request for job in batch],
                    jobs=jobs if jobs is not None else self.jobs,
                    cache=self.cache, timeout=self.timeout,
                    retries=self.retries, backend=self.backend)
                failures = {f.index: f for f in take_failures()}
                batch_span.note(failed=len(failures))
        elapsed = time.perf_counter() - t0
        metrics.observe("service_batch_seconds", elapsed)
        metrics.observe("service_batch_cells", len(batch),
                        bounds=metrics.COUNT_BUCKETS)
        for job in traced_jobs:
            # the executor hop of each traced job; the whole batch shares
            # one pool flight, so every span covers the same interval
            tracing.record_trace_span(
                "worker_batch", job.trace[0], tracing.new_span_id(),
                job.span_id, wall0, elapsed,
                {"session": self.name, "cells": len(batch),
                 "failed": len(failures)})
        with self._lock:
            self.stats.busy_s_total += elapsed
            # EWMA over per-cell service time feeds retry-after hints
            per_cell = elapsed / max(1, len(batch))
            self._cell_s = 0.7 * self._cell_s + 0.3 * per_cell
        outcomes: List[Tuple[str, Any]] = []
        for index, (job, result) in enumerate(zip(batch, results)):
            if result is not None:
                outcomes.append(("ok", result))
            elif index in failures:
                outcomes.append(("failed", failures[index].as_dict()))
            else:
                outcomes.append(("infeasible",
                                 f"{job.request.label()}: scheme "
                                 "infeasible for this cell"))
        return outcomes

    def _account(self, job: _Job, outcome: Tuple[str, Any]) -> None:
        """Terminal-state statistics for one job (caller holds the lock)."""
        status = outcome[0]
        self.stats.computed += 1
        if status == "ok":
            self.stats.completed += 1
            metrics.inc("service_completed_total")
        elif status == "infeasible":
            self.stats.infeasible += 1
            metrics.inc("service_infeasible_total")
        else:
            self.stats.failed += 1
            metrics.inc("service_failed_total")

    def _result_for(self, job: _Job, outcome: Tuple[str, Any],
                    wait_s: float, source: str = "computed") -> RunResult:
        status, payload = outcome
        degraded = job.degraded
        if status == "ok":
            return RunResult(status="ok", job=payload, key=job.key,
                             source=source, wait_s=wait_s,
                             tag=job.request.tag, degraded=degraded)
        if status == "infeasible":
            return RunResult(status="infeasible", key=job.key,
                             source=source, wait_s=wait_s,
                             error=str(payload), code="infeasible_scheme",
                             tag=job.request.tag, degraded=degraded)
        detail = payload or {}
        return RunResult(status="failed", key=job.key, source=source,
                         wait_s=wait_s,
                         error=detail.get("message", "job failed"),
                         code="job_failed",
                         kind=detail.get("kind", "error"),
                         tag=job.request.tag, degraded=degraded)

    def _deliver_locked(self, job: _Job, outcome: Tuple[str, Any]) -> None:
        """Resolve one job's waiters (caller holds the lock)."""
        job.outcome = outcome
        if job.key is not None and self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        wait_s = time.perf_counter() - job.submitted_at
        self._account(job, outcome)
        self.stats.wait_s_total += wait_s
        self.stats.wait_s_max = max(self.stats.wait_s_max, wait_s)
        self._wait_samples.append(wait_s)
        metrics.observe("service_wait_seconds", wait_s)
        metrics.set_gauge("service_queue_depth", self.stats.queue_depth)
        self._outstanding -= 1
        for i, future in enumerate(job.futures):
            source = "computed" if i == 0 else "coalesced"
            trace = job.traces[i] if i < len(job.traces) else None
            if trace is not None:
                # the session hop: from submit to delivery, one span per
                # waiter (the owner reuses the id the executor parented to)
                span_id = job.span_id if i == 0 and job.span_id is not None \
                    else tracing.new_span_id()
                tracing.record_trace_span(
                    "session_job", trace[0], span_id, trace[1],
                    job.submitted_wall or time.time() - wait_s, wait_s,
                    {"session": self.name, "source": source,
                     "status": outcome[0]})
            result = self._result_for(job, outcome, wait_s=wait_s,
                                      source=source)
            if not future.set_running_or_notify_cancel():
                continue  # a waiter cancelled; the job itself never is
            future.set_result(result)
        self._cond.notify_all()

    def _dispatch_loop(self) -> None:
        """Background dispatcher: drain the queue in batches."""
        while True:
            with self._cond:
                while not self._queue or self._paused:
                    if self._closed or (self._draining and not self._queue):
                        return
                    self._cond.wait(timeout=0.1)
                batch = []
                while self._queue and len(batch) < self.max_batch:
                    batch.append(self._queue.popleft())
                self.stats.queue_depth = len(self._queue)
            if self.batch_window > 0 and len(batch) < self.max_batch:
                # brief accumulation window: let near-simultaneous
                # submits ride the same pool batch
                time.sleep(self.batch_window)
                with self._cond:
                    while self._queue and len(batch) < self.max_batch:
                        batch.append(self._queue.popleft())
                    self.stats.queue_depth = len(self._queue)
            with self._lock:
                self.stats.batches += 1
            try:
                outcomes = self._execute(batch)
            except BaseException as exc:  # deliver, never lose a promise
                outcomes = [("failed", {"kind": "error",
                                        "message": f"dispatcher error: "
                                                   f"{type(exc).__name__}: "
                                                   f"{exc}"})
                            for _ in batch]
            with self._cond:
                for job, outcome in zip(batch, outcomes):
                    self._deliver_locked(job, outcome)

    # -- session-scoped bench memo ----------------------------------------

    def memo(self, key: Any, factory: Callable[[], Any]) -> Any:
        """Memoize ``factory()`` under an explicit hashable key.

        The session-scoped replacement for the old module-global
        ``bench.common.run_cached``: several paper tables are different
        projections of the same sweep, and this keeps them sharing runs
        without any cross-session leakage.
        """
        with self._lock:
            if key in self._memo:
                return self._memo[key]
        value = factory()
        with self._lock:
            return self._memo.setdefault(key, value)

    def clear(self) -> None:
        """Drop session-scoped memoized state (memo + cache memory tier).

        On-disk cache entries are untouched; they are content-addressed
        and remain valid.
        """
        with self._lock:
            self._memo.clear()
        self.cache.clear_memory()

    # -- telemetry ---------------------------------------------------------

    def gauges(self) -> Dict[str, float]:
        """Perfctr-style gauge snapshot for dashboards and the ledger."""
        stats = self.stats
        lookups = stats.coalesced + stats.cache_hits + stats.accepted
        gauges = {
            "service_queue_depth": stats.queue_depth,
            "service_queue_depth_peak": stats.queue_depth_peak,
            "service_outstanding": self._outstanding,
            "service_coalesce_hits": stats.coalesced,
            "service_cache_hits": stats.cache_hits,
            "service_rejected": stats.rejected,
            "service_degraded": stats.degraded,
            "service_wait_seconds_p99": round(self.wait_p99(), 6),
            "service_wait_seconds_max": round(stats.wait_s_max, 6),
            "service_wait_seconds_mean": round(
                stats.wait_s_total / stats.computed, 6)
                if stats.computed else 0.0,
            "service_coalesce_rate": round(stats.coalesced / lookups, 6)
                if lookups else 0.0,
        }
        if self.backend is not None:
            gauges.update(self.backend.gauges())
        return gauges

    # -- typed sweep API ----------------------------------------------------

    def scheme_sweep(self, system, workload_factory, task_counts,
                     schemes=None, impl=None, lock=None,
                     value=None, title="", jobs=None,
                     tier=None) -> TableResult:
        """A paper-style numactl table for one workload on one system.

        Rows are task counts, columns the affinity schemes; infeasible
        combinations render as dashes, exactly like the paper's tables.
        """
        from ..core.experiment import ALL_SCHEMES

        schemes = tuple(ALL_SCHEMES) if schemes is None else tuple(schemes)
        value = value if value is not None else (lambda r: r.wall_time)
        table = TableResult(
            title=title or f"{system.name}: numactl scheme sweep",
            headers=["MPI tasks"] + [str(s) for s in schemes],
        )
        requests = []
        for ntasks in task_counts:
            workload = workload_factory(ntasks)
            for scheme in schemes:
                requests.append(RunRequest(system=system, workload=workload,
                                           scheme=scheme, impl=impl,
                                           lock=lock, tier=tier))
        with span("sweep", kind="scheme_sweep", table=table.title,
                  cells=len(requests)):
            results = self.run_many(requests, jobs=jobs)
        cells = iter(results)
        for ntasks in task_counts:
            row: List[Any] = [ntasks]
            for _scheme in schemes:
                result = next(cells)
                row.append(value(result.job) if result.ok else None)
            table.add_row(*row)
        return table

    def compare_schemes(self, system, workload_factory, schemes=None,
                        impl=None, lock=None, value=None, jobs=None,
                        tier=None):
        """Run one workload under every feasible scheme and rank them."""
        from ..core.experiment import ALL_SCHEMES, SchemeComparison

        schemes = tuple(ALL_SCHEMES) if schemes is None else tuple(schemes)
        value = value if value is not None else (lambda r: r.wall_time)
        workload = workload_factory()
        requests = [RunRequest(system=system, workload=workload,
                               scheme=scheme, impl=impl, lock=lock,
                               tier=tier)
                    for scheme in schemes]
        with span("sweep", kind="compare_schemes", workload=workload.name,
                  cells=len(requests)):
            results = self.run_many(requests, jobs=jobs)
        times = {str(scheme): value(result.job)
                 for scheme, result in zip(schemes, results) if result.ok}
        if not times:
            raise NoFeasibleSchemeError("no feasible scheme for this "
                                        "workload")
        ordered = sorted(times, key=lambda k: times[k])
        return SchemeComparison(times=times, best=ordered[0],
                                worst=ordered[-1])

    def scaling_study(self, systems, workload_factory, task_counts,
                      scheme=None, impl=None, value=None, title="",
                      metric="efficiency", jobs=None,
                      tier=None) -> TableResult:
        """Parallel-efficiency (or speedup) rows per system (Table 4)."""
        from ..core.affinity import AffinityScheme

        scheme = scheme if scheme is not None else AffinityScheme.DEFAULT
        value = value if value is not None else (lambda r: r.wall_time)
        if metric not in ("efficiency", "speedup"):
            raise UnknownMetricError(f"unknown metric {metric!r}")
        table = TableResult(
            title=title or f"multi-core {metric}",
            headers=["System"] + [f"{n} cores" for n in task_counts],
        )
        requests = []
        cells: List[Tuple[Any, Optional[int]]] = []
        for system in systems:
            requests.append(RunRequest(system=system,
                                       workload=workload_factory(1),
                                       scheme=AffinityScheme.DEFAULT,
                                       impl=impl, tier=tier))
            cells.append((system, None))
            for n in task_counts:
                if n > system.total_cores:
                    continue
                requests.append(RunRequest(system=system,
                                           workload=workload_factory(n),
                                           scheme=scheme, impl=impl,
                                           tier=tier))
                cells.append((system, n))
        with span("sweep", kind="scaling_study", table=table.title,
                  cells=len(requests)):
            results = dict(zip(cells, self.run_many(requests, jobs=jobs)))
        for system in systems:
            t1 = value(results[(system, None)].require())
            row: List[Any] = [system.name]
            for n in task_counts:
                if n > system.total_cores:
                    row.append(None)
                    continue
                tn = value(results[(system, n)].require())
                if metric == "efficiency":
                    row.append(parallel_efficiency(t1, tn, n))
                else:
                    row.append(t1 / tn)
            table.add_row(*row)
        return table


_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide session (shares the default result cache).

    The compatibility shims in :mod:`repro.core.experiment` and
    :mod:`repro.bench.common` delegate here, so legacy callers and new
    session-based code share one memo table and one cache.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = Session(name="default")
        return _DEFAULT_SESSION


def set_default_session(session: Optional[Session]) -> Optional[Session]:
    """Replace the process-wide session (tests); returns the old one."""
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        old, _DEFAULT_SESSION = _DEFAULT_SESSION, session
        return old
