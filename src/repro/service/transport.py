"""Shared NDJSON transport: Unix-socket and TCP servers plus clients.

Every service endpoint — the single-session ``repro-bench serve``
daemon and the :mod:`repro.cluster` router — speaks the same
newline-delimited-JSON protocol (:mod:`~.protocol`) over a stream
socket.  This module owns everything transport-shaped so the daemon and
the router only implement ``handle_message``:

* **address parsing**: ``"host:port"`` (or ``tcp://host:port``) is TCP,
  anything else (or ``unix://path``) is a Unix socket path, so one
  ``--connect`` flag reaches either transport;
* **server plumbing**: threaded accept loops (one handler thread per
  connection), a bounded request-line size, typed error replies for
  undecodable or oversized lines, and resilience to clients that
  disconnect mid-stream;
* **stale-socket recovery**: binding a Unix path that already exists
  probes it first — a live daemon is never clobbered (the bind fails
  with a clear error), a leftover socket from a crashed daemon is
  removed and reclaimed;
* **client side**: one-shot ``request()`` (connect, one line out, one
  line in) used by the CLI clients and the replay load generator, and
  the persistent :class:`Connection` used by the remote execution
  backend and the router;
* **protocol negotiation**: a ``hello`` asking for protocol 3 flips
  one connection (both directions) to the :mod:`repro.wire` framed
  binary format; every connection starts as — and v2-only peers stay
  on — NDJSON.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import socketserver
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import ProtocolError, ReproError
from ..telemetry import metrics as _metrics
from ..wire import frames as _frames
from .protocol import decode_line, encode_line, hello_response

__all__ = [
    "Address",
    "Connection",
    "MAX_LINE_BYTES",
    "format_address",
    "make_server",
    "parse_address",
    "prepare_unix_socket",
    "request",
    "serve_in_thread",
]

_LOG = logging.getLogger("repro.service.transport")

#: hard bound on one NDJSON request line; longer lines are rejected with
#: a typed ``protocol_error`` and the connection dropped (the stream
#: cannot be re-framed past an unterminated line)
MAX_LINE_BYTES = 1 << 20

#: a Unix socket path, or a (host, port) TCP endpoint
Address = Union[str, Tuple[str, int]]


def parse_address(text: Union[str, Address]) -> Address:
    """Resolve one CLI spelling into a transport address.

    ``tcp://host:port`` and ``host:port`` become a TCP endpoint;
    ``unix://path`` and everything else stay a Unix socket path.  A
    bare ``:port`` binds/connects on localhost.
    """
    if isinstance(text, tuple):
        return (str(text[0]), int(text[1]))
    if text.startswith("unix://"):
        return text[len("unix://"):]
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    elif "/" in text or ":" not in text:
        return text
    host, _, port = text.rpartition(":")
    if not port.isdigit():
        return text
    return (host or "127.0.0.1", int(port))


def format_address(address: Address) -> str:
    """The canonical printable form of an address."""
    if isinstance(address, tuple):
        return f"{address[0]}:{address[1]}"
    return address


def prepare_unix_socket(path: str) -> None:
    """Make ``path`` bindable, without ever clobbering a live daemon.

    A leftover socket file from a crashed daemon would otherwise fail
    the bind with ``Address already in use``.  Probe it: when a connect
    succeeds something is still accepting there and binding must fail
    loudly; when the connect is refused (or the file is not a socket at
    all, which unlink surfaces) the file is stale and is removed.
    """
    if not os.path.exists(path):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(1.0)
    try:
        probe.connect(path)
    except OSError:
        # nothing accepting: a crashed daemon's leftover — reclaim it
        _LOG.warning("removing stale service socket %s", path)
        os.unlink(path)
    else:
        raise OSError(
            f"socket {path} is in use by a live daemon; "
            f"shut it down first or serve on a different path")
    finally:
        probe.close()


class _NdjsonHandler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines.

    Client-caused failures (garbage lines, oversized lines, mid-stream
    disconnects) never take the server down — they answer with a typed
    error or end this connection only.
    """

    def handle(self) -> None:  # noqa: C901 - one loop, explicit cases
        server = self.server  # type: ignore[assignment]
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES + 1)
            except OSError:
                return  # client vanished mid-line
            if not line:
                return  # clean disconnect
            if len(line) > MAX_LINE_BYTES:
                # the rest of the stream is unframeable: answer, drop
                error = ProtocolError(
                    f"request line exceeds {MAX_LINE_BYTES} bytes")
                self._reply(error.to_wire())
                return
            if not line.strip():
                continue
            try:
                message = decode_line(line)
            except ReproError as exc:
                if not self._reply(exc.to_wire()):
                    return
                continue
            if message.get("op") == "hello":
                # negotiation is a transport concern: a successful
                # protocol-3 hello flips *this connection* to framed
                # binary before the next message
                response, selected = hello_response(
                    message, server=server.server_name)
                if not self._reply(response):
                    return
                if selected >= 3:
                    _metrics.inc("wire_binary_connections_total")
                    self._handle_binary(server)
                    return
                continue
            try:
                response = server.handle_message(message)
            except BaseException as exc:  # a handler bug, not a protocol
                _LOG.exception("handler error for op %r",
                               message.get("op"))
                response = {"status": "error", "code": "internal",
                            "message": f"{type(exc).__name__}: {exc}"}
            if not self._reply(response):
                return
            if server.is_shutdown_response(response):
                server.initiate_shutdown()
                return

    def _handle_binary(self, server) -> None:
        """Serve framed binary messages until disconnect (protocol v3).

        Same request/response loop as NDJSON with the framing swapped:
        one :mod:`repro.wire` message in, one out.  A malformed frame
        (bad magic, unknown version, truncation, oversize) gets a typed
        ``protocol_error`` reply and ends the connection — past a bad
        header the stream cannot be re-framed.
        """
        while True:
            try:
                message = _frames.read_frame_message(self.rfile)
            except ProtocolError as exc:
                self._reply_binary(exc.to_wire())
                return
            except OSError:
                return  # client vanished mid-frame
            if message is None:
                return  # clean disconnect
            _metrics.inc("wire_binary_messages_total")
            if not isinstance(message, dict):
                error = ProtocolError("request must be a wire object")
                if not self._reply_binary(error.to_wire()):
                    return
                continue
            try:
                response = server.handle_message(message)
            except BaseException as exc:
                _LOG.exception("handler error for op %r",
                               message.get("op"))
                response = {"status": "error", "code": "internal",
                            "message": f"{type(exc).__name__}: {exc}"}
            if not self._reply_binary(response):
                return
            if server.is_shutdown_response(response):
                server.initiate_shutdown()
                return

    def _reply_binary(self, response: Dict[str, Any]) -> bool:
        """Write one framed response; False when the client went away."""
        try:
            sent = _frames.write_frame_message(self.wfile, response)
            _metrics.inc("wire_binary_bytes_sent_total", sent)
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False

    def _reply(self, response: Dict[str, Any]) -> bool:
        """Write one response line; False when the client went away."""
        try:
            self.wfile.write(encode_line(response))
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False


class _NdjsonServerCore:
    """Behaviour shared by the Unix and TCP NDJSON servers."""

    daemon_threads = True
    allow_reuse_address = True

    def _init_core(self,
                   handle_message: Callable[[Dict[str, Any]],
                                            Dict[str, Any]],
                   server_name: str = "repro-service") -> None:
        self.handle_message = handle_message
        #: advertised in `hello` replies
        self.server_name = server_name
        self._shutdown_started = threading.Event()

    def is_shutdown_response(self, response: Dict[str, Any]) -> bool:
        return (response.get("op") == "shutdown"
                and response.get("status") == "ok")

    def initiate_shutdown(self) -> None:
        """Stop the accept loop from any thread (idempotent)."""
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        # shutdown() blocks until serve_forever exits, so hop threads
        threading.Thread(target=self.shutdown, daemon=True).start()


class UnixNdjsonServer(_NdjsonServerCore, socketserver.ThreadingMixIn,
                       socketserver.UnixStreamServer):
    """Threaded NDJSON server on a Unix socket path."""

    def __init__(self, path: str,
                 handle_message: Callable[[Dict[str, Any]],
                                          Dict[str, Any]],
                 server_name: str = "repro-service"):
        self._init_core(handle_message, server_name)
        self.address = path
        prepare_unix_socket(path)
        super().__init__(path, _NdjsonHandler)

    def close(self) -> None:
        self.server_close()
        try:
            os.unlink(self.address)
        except OSError:
            pass


class TcpNdjsonServer(_NdjsonServerCore, socketserver.ThreadingMixIn,
                      socketserver.TCPServer):
    """Threaded NDJSON server on a TCP host:port."""

    def __init__(self, address: Tuple[str, int],
                 handle_message: Callable[[Dict[str, Any]],
                                          Dict[str, Any]],
                 server_name: str = "repro-service"):
        self._init_core(handle_message, server_name)
        super().__init__(address, _NdjsonHandler)
        #: the bound endpoint (resolves port 0 to the kernel's choice)
        self.address: Tuple[str, int] = self.server_address[:2]

    def close(self) -> None:
        self.server_close()


def make_server(address: Union[str, Address],
                handle_message: Callable[[Dict[str, Any]], Dict[str, Any]],
                server_name: str = "repro-service",
                ) -> Union[UnixNdjsonServer, TcpNdjsonServer]:
    """An NDJSON server for ``address``, transport chosen by its form.

    ``server_name`` is what `hello` replies advertise for this
    endpoint (a daemon passes its session name, the router its own).
    """
    resolved = parse_address(address)
    if isinstance(resolved, tuple):
        return TcpNdjsonServer(resolved, handle_message, server_name)
    return UnixNdjsonServer(resolved, handle_message, server_name)


def serve_in_thread(server: Union[UnixNdjsonServer, TcpNdjsonServer],
                    name: str = "ndjson-server") -> threading.Thread:
    """Run ``serve_forever`` on a daemon thread (tests, in-process shards)."""
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05},
                              name=name, daemon=True)
    thread.start()
    return thread


def _connect(address: Address, timeout: float) -> socket.socket:
    if isinstance(address, tuple):
        return socket.create_connection(address, timeout=timeout)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    try:
        sock.connect(address)
    except BaseException:
        sock.close()
        raise
    return sock


def request(address: Union[str, Address], message: Dict[str, Any],
            timeout: float = 600.0) -> Dict[str, Any]:
    """Client side: send one request line, read one response line.

    Raises :class:`ConnectionError`/:class:`OSError` when the endpoint
    is unreachable or closes mid-request — the router's health tracking
    and the CLI clients both key off those.
    """
    resolved = parse_address(address)
    with _connect(resolved, timeout) as sock:
        sock.sendall(encode_line(message))
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
    if not buffer.strip():
        raise ConnectionError(
            f"{format_address(resolved)} closed the connection mid-request")
    return json.loads(buffer.decode())


class Connection:
    """A persistent client connection with protocol negotiation.

    Opens at v2 NDJSON and (by default) sends a ``hello`` asking for
    protocol 3; when the server agrees, every subsequent request on
    this connection travels as :mod:`repro.wire` binary frames.  A
    server that rejects or does not understand ``hello`` — any v2-only
    peer — leaves the connection speaking NDJSON, so clients never
    need to know the server's age in advance.  :attr:`protocol` says
    what was negotiated; :attr:`server_info` keeps the ``hello`` reply
    (name, caps) when there was one.

    Used by the remote execution backend and the cluster router's
    forwarding path, where connection reuse and compact framing matter;
    one-shot CLI pings keep using :func:`request`.
    """

    def __init__(self, address: Union[str, Address],
                 timeout: float = 600.0, binary: bool = True):
        self.address = parse_address(address)
        self.timeout = timeout
        self.protocol = 2
        self.server_info: Dict[str, Any] = {}
        self._sock: Optional[socket.socket] = _connect(self.address, timeout)
        self._rfile = self._sock.makefile("rb")
        if binary:
            self._negotiate()

    def _read_ndjson(self) -> Dict[str, Any]:
        line = self._rfile.readline(MAX_LINE_BYTES + 1)
        if not line.strip():
            raise ConnectionError(
                f"{format_address(self.address)} closed the connection "
                f"mid-request")
        return json.loads(line.decode())

    def _negotiate(self) -> None:
        """Ask for protocol 3; stay at 2 on any non-ok answer."""
        assert self._sock is not None
        self._sock.sendall(encode_line({"op": "hello", "protocol": 3}))
        reply = self._read_ndjson()
        if reply.get("status") == "ok" and reply.get("op") == "hello":
            self.server_info = {k: reply[k] for k in
                                ("server", "caps", "protocol_versions")
                                if k in reply}
            if reply.get("protocol") == 3:
                self.protocol = 3
        # an error reply (unknown op on an old server, or an
        # unsupported-version protocol_error) is the downgrade path:
        # the connection simply keeps speaking v2 NDJSON

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request, wait for its response (either framing)."""
        if self._sock is None:
            raise ConnectionError("connection is closed")
        if self.protocol >= 3:
            sent = _frames.write_frame_message(self._sock, message)
            _metrics.inc("wire_binary_bytes_sent_total", sent)
            reply = _frames.read_frame_message(self._rfile)
            if reply is None:
                raise ConnectionError(
                    f"{format_address(self.address)} closed the "
                    f"connection mid-request")
            if not isinstance(reply, dict):
                raise ProtocolError("response must be a wire object")
            return reply
        self._sock.sendall(encode_line(message))
        return self._read_ndjson()

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
