"""Name registries for the service wire protocol (and the prof CLI).

The NDJSON protocol describes cells by *name* — a system from the
paper's three evaluation machines, a workload from the characterization
spectrum, a Table 5 scheme — and this module is the one place those
names resolve.  ``repro-prof`` imports the same tables, so a cell that
profiles from the command line is spelled identically over the socket.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..apps.md.amber import AmberSander
from ..apps.md.lammps import LammpsBench
from ..apps.pop import Pop
from ..core.affinity import AffinityScheme
from ..errors import ProtocolError, UnknownNameError
from ..machine import by_name
from ..machine.topology import MachineSpec
from ..workloads.blas_scaling import DgemmBench
from ..workloads.hpcc import HpccStream
from ..workloads.lmbench import StreamTriad
from ..workloads.nas import NasCG, NasEP, NasFT, NasMG
from ..workloads.synthetic import SyntheticWorkload

__all__ = ["WORKLOADS", "SCHEME_ALIASES", "resolve_scheme_name",
           "resolve_system", "resolve_workload", "wire_cell_for"]

#: name -> factory(ntasks); the paper's workload spectrum
WORKLOADS: Dict[str, Callable[[int], object]] = {
    "stream": StreamTriad,
    "hpcc-stream": lambda n: HpccStream(ntasks=n),
    "dgemm": lambda n: DgemmBench(n, 1000, vendor=True),
    "cg": NasCG,
    "ep": NasEP,
    "ft": NasFT,
    "mg": NasMG,
    "jac": lambda n: AmberSander("jac", n),
    "lj": lambda n: LammpsBench("lj", n),
    "chain": lambda n: LammpsBench("chain", n),
    "pop": Pop,
}

#: CLI/wire spellings of the Table 5 schemes (plus numactl aliases)
SCHEME_ALIASES: Dict[str, AffinityScheme] = {
    "default": AffinityScheme.DEFAULT,
    "one-local": AffinityScheme.ONE_MPI_LOCAL,
    "one-membind": AffinityScheme.ONE_MPI_MEMBIND,
    "two-local": AffinityScheme.TWO_MPI_LOCAL,
    "two-membind": AffinityScheme.TWO_MPI_MEMBIND,
    "interleave": AffinityScheme.INTERLEAVE,
    "localalloc": AffinityScheme.TWO_MPI_LOCAL,
}


def resolve_system(name: str) -> MachineSpec:
    """A machine spec by paper name (tiger/dmz/longs)."""
    try:
        return by_name(name)
    except (KeyError, ValueError) as exc:
        raise UnknownNameError(f"unknown system {name!r}") from exc


def resolve_workload(name: str, ntasks: int, **params) -> object:
    """Instantiate a registered workload for ``ntasks`` MPI tasks.

    ``synthetic`` additionally accepts a declarative spec dict (the
    ``characterize_your_app`` path) via ``spec=``.
    """
    if name == "synthetic":
        spec = params.get("spec")
        if not isinstance(spec, dict):
            raise UnknownNameError("workload 'synthetic' needs a "
                                   "'spec' dict parameter")
        return SyntheticWorkload.from_spec(spec)
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(sorted(WORKLOADS))} or 'synthetic'") from None
    return factory(ntasks)


def resolve_scheme_name(name: str) -> AffinityScheme:
    """An affinity scheme from its CLI/wire spelling."""
    try:
        return SCHEME_ALIASES[name.lower()]
    except KeyError:
        raise UnknownNameError(
            f"unknown scheme {name!r}; choose from "
            f"{', '.join(sorted(SCHEME_ALIASES))}") from None


def _synthetic_spec(workload: Any) -> Dict[str, Any]:
    """The declarative spec dict of a synthetic workload, verified."""
    from ..core.cache import canonical_token

    spec = {"name": workload.name, "ntasks": workload.ntasks,
            "ops": [dict(op) for op in workload.ops],
            "steps": workload.steps,
            "simulated_steps": workload.simulated_steps}
    if canonical_token(SyntheticWorkload.from_spec(spec)) \
            != canonical_token(workload):
        raise ProtocolError(
            "synthetic workload does not round-trip through its spec")
    return spec


def wire_cell_for(request: Any) -> Dict[str, Any]:
    """The name-based wire cell of one executor request (reverse lookup).

    The wire protocol spells cells by registry *name*; an arbitrary
    :class:`~repro.core.parallel.JobRequest` may carry values that have
    none — an explicit resolved affinity, a fault plan, a non-default
    MPI implementation, an unregistered workload object.  Those raise
    :class:`~repro.errors.ProtocolError`; the remote execution backend
    folds that into a per-cell failure instead of poisoning the batch.

    Every resolution is *verified by canonical token*, never assumed
    from a name attribute: the cell this function emits rebuilds (via
    :func:`~repro.service.protocol.cell_from_wire`) into a request with
    the same content address, so results computed remotely land under
    the same cache key bit for bit.
    """
    from ..core.cache import Uncacheable, canonical_token

    if request.affinity is not None:
        raise ProtocolError(
            "explicit resolved affinity has no wire spelling")
    if request.faults is not None:
        raise ProtocolError("fault plans are not carried on the wire")
    if request.profile:
        raise ProtocolError("profiled cells are not carried on the wire")
    try:
        if request.impl is not None and canonical_token(request.impl) \
                != canonical_token(_default_impl()):
            raise ProtocolError(
                f"MPI implementation {request.impl!r} has no wire "
                f"spelling (the wire always means the default)")

        system_name = str(request.spec.name).lower()
        try:
            candidate = by_name(system_name)
        except (KeyError, ValueError):
            raise ProtocolError(
                f"system {request.spec.name!r} is not in the registry")
        if canonical_token(candidate) != canonical_token(request.spec):
            raise ProtocolError(
                f"system spec differs from the registered "
                f"{system_name!r} machine")

        token = canonical_token(request.workload)
        ntasks = int(request.workload.ntasks)
        workload_name = None
        params: Dict[str, Any] = {}
        for name, factory in WORKLOADS.items():
            try:
                if canonical_token(factory(ntasks)) == token:
                    workload_name = name
                    break
            except Exception:
                continue
        if workload_name is None and isinstance(request.workload,
                                                SyntheticWorkload):
            workload_name = "synthetic"
            params = {"spec": _synthetic_spec(request.workload)}
        if workload_name is None:
            raise ProtocolError(
                f"workload {type(request.workload).__name__} for "
                f"{ntasks} task(s) matches no registry entry")
    except Uncacheable as exc:
        raise ProtocolError(
            f"cell has no canonical form: {exc}") from exc

    scheme_name = None
    for alias, scheme in SCHEME_ALIASES.items():
        if scheme is request.scheme:
            scheme_name = alias  # first alias wins ("two-local", not
            break                # its "localalloc" numactl synonym)
    if scheme_name is None:
        raise ProtocolError(
            f"scheme {request.scheme!r} has no wire spelling")

    cell: Dict[str, Any] = {"system": system_name,
                            "workload": workload_name,
                            "ntasks": ntasks, "scheme": scheme_name,
                            # explicit tier: the remote side must never
                            # substitute its own process-wide default
                            "tier": request.tier or "exact"}
    if params:
        cell["params"] = params
    if request.lock is not None:
        cell["lock"] = request.lock
    if request.parked:
        cell["parked"] = int(request.parked)
    return cell


def _default_impl():
    from ..mpi import OPENMPI

    return OPENMPI
