"""Name registries for the service wire protocol (and the prof CLI).

The NDJSON protocol describes cells by *name* — a system from the
paper's three evaluation machines, a workload from the characterization
spectrum, a Table 5 scheme — and this module is the one place those
names resolve.  ``repro-prof`` imports the same tables, so a cell that
profiles from the command line is spelled identically over the socket.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..apps.md.amber import AmberSander
from ..apps.md.lammps import LammpsBench
from ..apps.pop import Pop
from ..core.affinity import AffinityScheme
from ..errors import UnknownNameError
from ..machine import by_name
from ..machine.topology import MachineSpec
from ..workloads.blas_scaling import DgemmBench
from ..workloads.hpcc import HpccStream
from ..workloads.lmbench import StreamTriad
from ..workloads.nas import NasCG, NasEP, NasFT, NasMG
from ..workloads.synthetic import SyntheticWorkload

__all__ = ["WORKLOADS", "SCHEME_ALIASES", "resolve_scheme_name",
           "resolve_system", "resolve_workload"]

#: name -> factory(ntasks); the paper's workload spectrum
WORKLOADS: Dict[str, Callable[[int], object]] = {
    "stream": StreamTriad,
    "hpcc-stream": lambda n: HpccStream(ntasks=n),
    "dgemm": lambda n: DgemmBench(n, 1000, vendor=True),
    "cg": NasCG,
    "ep": NasEP,
    "ft": NasFT,
    "mg": NasMG,
    "jac": lambda n: AmberSander("jac", n),
    "lj": lambda n: LammpsBench("lj", n),
    "chain": lambda n: LammpsBench("chain", n),
    "pop": Pop,
}

#: CLI/wire spellings of the Table 5 schemes (plus numactl aliases)
SCHEME_ALIASES: Dict[str, AffinityScheme] = {
    "default": AffinityScheme.DEFAULT,
    "one-local": AffinityScheme.ONE_MPI_LOCAL,
    "one-membind": AffinityScheme.ONE_MPI_MEMBIND,
    "two-local": AffinityScheme.TWO_MPI_LOCAL,
    "two-membind": AffinityScheme.TWO_MPI_MEMBIND,
    "interleave": AffinityScheme.INTERLEAVE,
    "localalloc": AffinityScheme.TWO_MPI_LOCAL,
}


def resolve_system(name: str) -> MachineSpec:
    """A machine spec by paper name (tiger/dmz/longs)."""
    try:
        return by_name(name)
    except (KeyError, ValueError) as exc:
        raise UnknownNameError(f"unknown system {name!r}") from exc


def resolve_workload(name: str, ntasks: int, **params) -> object:
    """Instantiate a registered workload for ``ntasks`` MPI tasks.

    ``synthetic`` additionally accepts a declarative spec dict (the
    ``characterize_your_app`` path) via ``spec=``.
    """
    if name == "synthetic":
        spec = params.get("spec")
        if not isinstance(spec, dict):
            raise UnknownNameError("workload 'synthetic' needs a "
                                   "'spec' dict parameter")
        return SyntheticWorkload.from_spec(spec)
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise UnknownNameError(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(sorted(WORKLOADS))} or 'synthetic'") from None
    return factory(ntasks)


def resolve_scheme_name(name: str) -> AffinityScheme:
    """An affinity scheme from its CLI/wire spelling."""
    try:
        return SCHEME_ALIASES[name.lower()]
    except KeyError:
        raise UnknownNameError(
            f"unknown scheme {name!r}; choose from "
            f"{', '.join(sorted(SCHEME_ALIASES))}") from None
