"""``repro-bench serve`` / ``submit``: the service over a Unix socket.

The daemon wraps one :class:`~.session.Session` in a threaded
``AF_UNIX`` accept loop speaking the NDJSON protocol of
:mod:`~.protocol`.  Each connection gets a handler thread, so a slow
sweep on one connection never blocks a ``stats`` probe on another;
coalescing happens inside the shared session, which is exactly what
makes concurrent identical submits from different clients collapse
into one simulation.

Shutdown is **graceful by construction**: a ``shutdown`` op (or
SIGTERM/SIGINT) drains the session — every accepted job completes and
answers its client — before the socket closes.  With ``--ledger`` the
daemon appends a ``tool="serve"`` run record carrying the service
counters and gauges, so ``repro-bench history``/``regress`` cover
served traffic alongside batch runs.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import signal
import socket
import socketserver
import sys
import threading
from typing import Any, Dict, List, Optional

from ..errors import ReproError
from .protocol import decode_line, encode_line, handle_request
from .session import Session

__all__ = ["ServiceServer", "main", "request_over_socket", "submit_main"]

_LOG = logging.getLogger("repro.service.daemon")


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "ServiceServer" = self.server  # type: ignore[assignment]
        while True:
            line = self.rfile.readline()
            if not line:
                return
            if not line.strip():
                continue
            try:
                message = decode_line(line)
            except ReproError as exc:
                self.wfile.write(encode_line(exc.to_wire()))
                continue
            response = handle_request(server.session, message)
            try:
                self.wfile.write(encode_line(response))
                self.wfile.flush()
            except (BrokenPipeError, OSError):
                return
            if response.get("op") == "shutdown" \
                    and response.get("status") == "ok":
                server.initiate_shutdown()
                return


class ServiceServer(socketserver.ThreadingMixIn,
                    socketserver.UnixStreamServer):
    """Threaded Unix-socket server around one shared session."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, socket_path: str, session: Session):
        self.session = session
        self.socket_path = socket_path
        self._shutdown_started = threading.Event()
        if os.path.exists(socket_path):
            os.unlink(socket_path)  # a previous daemon's stale socket
        super().__init__(socket_path, _Handler)

    def initiate_shutdown(self) -> None:
        """Stop the accept loop from any thread (idempotent)."""
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        # shutdown() blocks until serve_forever exits, so hop threads
        threading.Thread(target=self.shutdown, daemon=True).start()

    def close(self) -> None:
        self.server_close()
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass


def request_over_socket(socket_path: str, message: Dict[str, Any],
                        timeout: float = 600.0) -> Dict[str, Any]:
    """Client side: send one request line, read one response line."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(encode_line(message))
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
    if not buffer.strip():
        raise ConnectionError("server closed the connection mid-request")
    return json.loads(buffer.decode())


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench serve``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Run the characterization service: an async batched "
                    "job server with request coalescing, admission "
                    "control, and graceful drain, over a Unix socket.",
    )
    parser.add_argument("--socket", metavar="PATH",
                        default=".repro/service.sock",
                        help="Unix socket path (default: "
                             ".repro/service.sock)")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for batched cells")
    parser.add_argument("--queue-depth", type=int, default=64, metavar="N",
                        help="admission bound on queued jobs "
                             "(default: 64)")
    parser.add_argument("--max-batch", type=int, default=64, metavar="N",
                        help="max cells dispatched per pool batch")
    parser.add_argument("--batch-window", type=float, default=0.005,
                        metavar="S",
                        help="seconds to accumulate near-simultaneous "
                             "submits into one batch (default: 0.005)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="stall watchdog for served batches")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry budget for crashed/stalled cells")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="serve from an isolated result cache "
                             "directory instead of the process default")
    parser.add_argument("--ledger", action="store_true",
                        help="append a serve-run record to the ledger "
                             "on shutdown")
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="ledger location (implies --ledger)")
    parser.add_argument("-v", "--verbose", action="count", default=0)
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from ..telemetry.log import configure_logging

    configure_logging(-1 if args.quiet else args.verbose)

    cache = None
    if args.cache_dir:
        from ..core.cache import ResultCache

        cache = ResultCache(directory=args.cache_dir)
    session = Session(cache=cache, jobs=args.jobs,
                      max_pending=args.queue_depth,
                      max_batch=args.max_batch,
                      batch_window=args.batch_window,
                      timeout=args.timeout, retries=args.retries,
                      name="serve")

    recorder = None
    if args.ledger or args.ledger_dir:
        from ..telemetry import ledger as run_ledger

        recorder = run_ledger.RunRecorder(tool="serve", argv=argv).start()

    socket_dir = os.path.dirname(args.socket)
    if socket_dir:
        os.makedirs(socket_dir, exist_ok=True)
    server = ServiceServer(args.socket, session)
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum,
                          lambda *_: server.initiate_shutdown())
        except ValueError:  # pragma: no cover - non-main thread
            pass

    print(f"[repro service listening on {args.socket}]", file=sys.stderr)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        # drain before the socket goes away: accepted jobs all answer
        session.close(drain=True)
        server.close()
        stats = session.stats
        print(f"[drained: {stats.completed} completed, "
              f"{stats.coalesced} coalesced, {stats.rejected} rejected, "
              f"{stats.failed} failed]", file=sys.stderr)
        if recorder is not None:
            from ..core import parallel
            from ..core.cache import default_cache
            from ..telemetry import ledger as run_ledger

            cache_obj = session.cache if cache is not None \
                else default_cache()
            record = recorder.finish(
                config={"socket": args.socket, "jobs": args.jobs,
                        "queue_depth": args.queue_depth,
                        "batch_window": args.batch_window},
                service=stats.as_dict(),
                gauges=session.gauges(),
                cache=cache_obj.stats.as_dict(),
                pool=parallel.pool_stats().as_dict(),
            )
            path = run_ledger.append(record, args.ledger_dir)
            print(f"[serve run {record['run_id']} recorded to {path}]",
                  file=sys.stderr)
        from ..core.parallel import shutdown_pool

        shutdown_pool()
    return 0


def _print_result(wire: Dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(wire, sort_keys=True))
        return
    status = wire.get("status")
    if status == "ok" and "result" in wire:
        result = wire["result"]
        print(f"{result.get('workload')} on {result.get('system')} "
              f"[{result.get('scheme')}] x{result.get('ntasks')}: "
              f"wall {result.get('wall_time'):.6g}s "
              f"({wire.get('source')}, wait {wire.get('wait_s', 0):.3g}s)")
    elif status == "ok":
        print(json.dumps(wire, sort_keys=True))
    else:
        hint = f" (retry after {wire['retry_after']:.3g}s)" \
            if "retry_after" in wire else ""
        print(f"error [{wire.get('code')}]: {wire.get('message')}{hint}")


def submit_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench submit`` (the client)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench submit",
        description="Submit characterization cells to a running "
                    "'repro-bench serve' daemon over its Unix socket.",
    )
    parser.add_argument("--socket", metavar="PATH",
                        default=".repro/service.sock")
    parser.add_argument("--system", default="longs",
                        help="system preset (tiger/dmz/longs)")
    parser.add_argument("--workload", default=None,
                        help="registered workload name (e.g. stream, cg)")
    parser.add_argument("--ntasks", type=int, default=4)
    parser.add_argument("--scheme", default="default",
                        help="Table 5 scheme spelling (e.g. interleave)")
    parser.add_argument("--lock", default=None,
                        help="LAM locking sub-layer (sysv/usysv)")
    parser.add_argument("--parked", type=int, default=0)
    parser.add_argument("--count", type=int, default=1, metavar="N",
                        help="submit N copies of the cell in one batch "
                             "(identical copies coalesce server-side)")
    parser.add_argument("--tag", default=None)
    parser.add_argument("--stats", action="store_true",
                        help="fetch service counters/gauges")
    parser.add_argument("--ping", action="store_true")
    parser.add_argument("--shutdown", action="store_true",
                        help="drain the server and stop it")
    parser.add_argument("--json", action="store_true",
                        help="print raw response JSON lines")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="client-side response timeout (seconds)")
    args = parser.parse_args(argv)

    requests: List[Dict[str, Any]] = []
    if args.ping:
        requests.append({"op": "ping"})
    if args.workload:
        cell = {"system": args.system, "workload": args.workload,
                "ntasks": args.ntasks, "scheme": args.scheme,
                "parked": args.parked}
        if args.lock:
            cell["lock"] = args.lock
        if args.tag:
            cell["tag"] = args.tag
        if args.count > 1:
            requests.append({"op": "batch",
                             "cells": [dict(cell) for _ in
                                       range(args.count)]})
        else:
            requests.append({"op": "submit", "cell": cell})
    if args.stats:
        requests.append({"op": "stats"})
    if args.shutdown:
        requests.append({"op": "shutdown"})
    if not requests:
        parser.error("nothing to do: pass --workload, --stats, --ping "
                     "and/or --shutdown")

    exit_code = 0
    for message in requests:
        try:
            response = request_over_socket(args.socket, message,
                                           timeout=args.timeout)
        except (OSError, ValueError) as exc:
            print(f"cannot reach service at {args.socket}: {exc}",
                  file=sys.stderr)
            return 2
        if message["op"] == "batch" and response.get("status") == "ok" \
                and not args.json:
            for wire in response.get("results", []):
                _print_result(wire, as_json=False)
                if wire.get("status") == "error":
                    exit_code = 1
        else:
            _print_result(response, as_json=args.json)
        if response.get("status") != "ok":
            exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
