"""``repro-bench serve`` / ``submit``: the service over a stream socket.

The daemon wraps one :class:`~.session.Session` behind the shared
NDJSON transport of :mod:`~.transport` — a Unix socket by default, a
TCP endpoint with ``--tcp host:port``, or both at once.  Each
connection gets a handler thread, so a slow sweep on one connection
never blocks a ``stats`` probe on another; coalescing happens inside
the shared session, which is exactly what makes concurrent identical
submits from different clients collapse into one simulation.  The same
daemon is what :mod:`repro.cluster` launches N times as the shards of
a sharded cluster.

Shutdown is **graceful by construction**: a ``shutdown`` op (or
SIGTERM/SIGINT) drains the session — every accepted job completes and
answers its client — before the sockets close.  With ``--ledger`` the
daemon appends a ``tool="serve"`` run record carrying the service
counters, gauges, and a bounded **traffic log** of the cells it served
(what ``repro-bench replay`` replays), so ``repro-bench history``/
``regress`` cover served traffic alongside batch runs.
"""

from __future__ import annotations

import argparse
import json
import logging
import signal
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from . import cliargs
from .protocol import handle_request
from .session import Session
from .transport import (
    TcpNdjsonServer,
    UnixNdjsonServer,
    format_address,
    parse_address,
    request,
    serve_in_thread,
)

__all__ = ["ServiceFrontend", "ServiceServer", "TcpServiceServer",
           "main", "request_over_socket", "submit_main"]

_LOG = logging.getLogger("repro.service.daemon")

#: bounded traffic-log length folded into the serve ledger record
TRAFFIC_LOG_LIMIT = 512


class ServiceFrontend:
    """The transport-independent half of the daemon: one shared session.

    ``handle_message`` is what both socket servers call per request
    line; it additionally keeps a bounded **traffic log** — arrival
    offset plus wire cell for every submit/batch cell — which the
    ledger record carries so recorded traffic can be replayed later by
    ``repro-bench replay``.
    """

    def __init__(self, session: Session,
                 traffic_limit: int = TRAFFIC_LOG_LIMIT):
        self.session = session
        self._t0 = time.perf_counter()
        self._traffic: Deque[Dict[str, Any]] = deque(maxlen=traffic_limit)
        self._requests_seen = 0
        self._lock = threading.Lock()

    def handle_message(self, message: Dict[str, Any]) -> Dict[str, Any]:
        op = message.get("op")
        if op == "submit":
            self._observe([message.get("cell")])
        elif op == "batch":
            cells = message.get("cells")
            if isinstance(cells, list):
                self._observe(cells)
        return handle_request(self.session, message)

    def _observe(self, cells: List[Any]) -> None:
        now = round(time.perf_counter() - self._t0, 6)
        with self._lock:
            for cell in cells:
                if isinstance(cell, dict):
                    self._requests_seen += 1
                    self._traffic.append({"t": now, "cell": cell})

    def traffic(self) -> Dict[str, Any]:
        """The traffic log in its ledger/replay form."""
        with self._lock:
            return {"requests": self._requests_seen,
                    "recorded": list(self._traffic)}


class ServiceServer(UnixNdjsonServer):
    """Threaded Unix-socket server around one shared session.

    Binding a path with a leftover socket file from a crashed daemon
    reclaims it after a connect-probe; a live daemon on the same path
    fails the bind instead of being clobbered
    (:func:`~.transport.prepare_unix_socket`).
    """

    def __init__(self, socket_path: str, session: Session,
                 frontend: Optional[ServiceFrontend] = None):
        self.session = session
        self.frontend = frontend or ServiceFrontend(session)
        super().__init__(socket_path, self.frontend.handle_message)

    @property
    def socket_path(self) -> str:
        return self.address


class TcpServiceServer(TcpNdjsonServer):
    """Threaded TCP server around one shared session (the shard form)."""

    def __init__(self, address, session: Session,
                 frontend: Optional[ServiceFrontend] = None):
        self.session = session
        self.frontend = frontend or ServiceFrontend(session)
        super().__init__(address, self.frontend.handle_message)


def request_over_socket(socket_path, message: Dict[str, Any],
                        timeout: float = 600.0) -> Dict[str, Any]:
    """Client side: one request line out, one response line back.

    Accepts a Unix socket path or a TCP ``host:port`` spelling — the
    transport is chosen by the address form.
    """
    return request(socket_path, message, timeout=timeout)


def _link_shutdown(servers: List[Any]) -> None:
    """Make a shutdown arriving on any listener stop every listener."""
    def stop_all(*_args) -> None:
        for server in servers:
            type(server).initiate_shutdown(server)

    for server in servers:
        server.initiate_shutdown = stop_all  # type: ignore[assignment]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench serve``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Run the characterization service: an async batched "
                    "job server with request coalescing, admission "
                    "control, and graceful drain, over a Unix socket "
                    "and/or TCP.",
    )
    parser.add_argument("--socket", metavar="PATH", default=None,
                        help="Unix socket path (default: "
                             ".repro/service.sock unless --tcp is given)")
    parser.add_argument("--tcp", metavar="HOST:PORT", default=None,
                        help="also (or instead) listen on a TCP endpoint; "
                             "port 0 picks a free port")
    parser.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                        help="worker processes for batched cells")
    parser.add_argument("--backend", metavar="SPEC", default=None,
                        help="execution backend for served batches: "
                             "'processes' (default; crash-isolated "
                             "worker pool), 'threads', or "
                             "'remote:<addr>' to delegate to another "
                             "daemon — results are byte-identical "
                             "across all three")
    parser.add_argument("--queue-depth", type=int, default=64, metavar="N",
                        help="admission bound on queued jobs "
                             "(default: 64)")
    parser.add_argument("--max-batch", type=int, default=64, metavar="N",
                        help="max cells dispatched per pool batch")
    parser.add_argument("--batch-window", type=float, default=0.005,
                        metavar="S",
                        help="seconds to accumulate near-simultaneous "
                             "submits into one batch (default: 0.005)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="stall watchdog for served batches")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="retry budget for crashed/stalled cells")
    parser.add_argument("--shed-threshold", type=float, default=None,
                        metavar="S",
                        help="adaptive load shedding: when queue-wait "
                             "p99 exceeds S seconds, reject with a live "
                             "retry-after and degrade tier=auto cells "
                             "to the surrogate fast path (default: off)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="serve from an isolated result cache "
                             "directory instead of the process default "
                             "(cluster shards share one via this flag)")
    parser.add_argument("--name", default="serve",
                        help="session name (shards use shard-N)")
    parser.add_argument("--ledger", action="store_true",
                        help="append a serve-run record to the ledger "
                             "on shutdown")
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="ledger location (implies --ledger)")
    parser.add_argument("-v", "--verbose", action="count", default=0)
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from ..telemetry import metrics as metrics_mod
    from ..telemetry.log import configure_logging

    configure_logging(-1 if args.quiet else args.verbose)
    # daemons always serve a live registry; plain bench runs never
    # enable one, which is what keeps the instrumentation free there
    metrics_mod.enable()

    cache = None
    if args.cache_dir:
        from ..core.cache import ResultCache

        cache = ResultCache(directory=args.cache_dir)
    backend = None
    if args.backend:
        from ..backends import resolve_backend

        try:
            backend = resolve_backend(args.backend)
        except ValueError as exc:
            print(f"--backend: {exc}", file=sys.stderr)
            return 2
    session = Session(cache=cache, jobs=args.jobs,
                      max_pending=args.queue_depth,
                      max_batch=args.max_batch,
                      batch_window=args.batch_window,
                      timeout=args.timeout, retries=args.retries,
                      name=args.name,
                      shed_threshold=args.shed_threshold,
                      backend=backend)
    frontend = ServiceFrontend(session)

    recorder = None
    if args.ledger or args.ledger_dir:
        from ..telemetry import ledger as run_ledger

        recorder = run_ledger.RunRecorder(tool="serve", argv=argv).start()

    servers: List[Any] = []
    try:
        if args.socket or not args.tcp:
            servers.append(ServiceServer(
                args.socket or ".repro/service.sock", session, frontend))
        if args.tcp:
            servers.append(TcpServiceServer(
                parse_address(args.tcp), session, frontend))
    except OSError as exc:
        print(f"cannot listen: {exc}", file=sys.stderr)
        for server in servers:
            server.close()
        return 2
    _link_shutdown(servers)
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, servers[0].initiate_shutdown)
        except ValueError:  # pragma: no cover - non-main thread
            pass

    for server in servers:
        print(f"[repro service listening on "
              f"{format_address(server.address)}]", file=sys.stderr)
    threads = [serve_in_thread(server, name=f"serve-{i}")
               for i, server in enumerate(servers)]
    try:
        while any(thread.is_alive() for thread in threads):
            for thread in threads:
                thread.join(timeout=0.2)
    finally:
        # drain before the sockets go away: accepted jobs all answer
        session.close(drain=True)
        for server in servers:
            server.close()
        stats = session.stats
        print(f"[drained: {stats.completed} completed, "
              f"{stats.coalesced} coalesced, {stats.rejected} rejected, "
              f"{stats.failed} failed]", file=sys.stderr)
        if recorder is not None:
            from ..core import parallel
            from ..core.cache import default_cache
            from ..telemetry import ledger as run_ledger

            cache_obj = session.cache if cache is not None \
                else default_cache()
            record = recorder.finish(
                config={"socket": args.socket, "tcp": args.tcp,
                        "jobs": args.jobs, "backend": args.backend,
                        "queue_depth": args.queue_depth,
                        "batch_window": args.batch_window,
                        "shed_threshold": args.shed_threshold},
                service=stats.as_dict(),
                gauges=session.gauges(),
                traffic=frontend.traffic(),
                cache=cache_obj.stats.as_dict(),
                pool=parallel.pool_stats().as_dict(),
                metrics=metrics_mod.snapshot(),
            )
            path = run_ledger.append(record, args.ledger_dir)
            print(f"[serve run {record['run_id']} recorded to {path}]",
                  file=sys.stderr)
        from ..core.parallel import shutdown_pool

        shutdown_pool()
    return 0


def _request_with_retries(address, message: Dict[str, Any],
                          timeout: float, retries: int,
                          max_sleep: float = 5.0) -> Dict[str, Any]:
    """One request with bounded retries on retryable rejections.

    A ``queue_full``/``shard_unavailable`` reply (both pre-acceptance:
    nothing was admitted, so a retry cannot duplicate work) is retried
    after sleeping the server's ``retry_after`` hint — jittered, capped
    at ``max_sleep`` — falling back to exponential backoff when no hint
    came.  Transport errors retry on the same schedule; the last
    attempt's outcome (or transport exception) is surfaced as-is.
    """
    import random

    from ..errors import RETRYABLE_CODES

    last_exc: Optional[BaseException] = None
    for attempt in range(retries + 1):
        if attempt:
            base = 0.1 * (2 ** (attempt - 1))
            if last_exc is None and response.get("retry_after") is not None:
                base = float(response["retry_after"])
            sleep = min(max_sleep, base) * (1.0 + random.uniform(0, 0.25))
            time.sleep(sleep)
        try:
            response = request_over_socket(address, message,
                                           timeout=timeout)
            last_exc = None
        except (OSError, ValueError) as exc:
            last_exc = exc
            if attempt == retries:
                raise
            continue
        if response.get("status") == "error" \
                and response.get("code") in RETRYABLE_CODES \
                and attempt < retries:
            continue
        return response
    if last_exc is not None:  # pragma: no cover - raised above
        raise last_exc
    return response


def _print_result(wire: Dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(wire, sort_keys=True))
        return
    status = wire.get("status")
    if status == "ok" and "result" in wire:
        result = wire["result"]
        shard = f" shard {wire['shard']}" if "shard" in wire else ""
        degraded = " degraded," if wire.get("degraded") else ""
        print(f"{result.get('workload')} on {result.get('system')} "
              f"[{result.get('scheme')}] x{result.get('ntasks')}: "
              f"wall {result.get('wall_time'):.6g}s "
              f"({wire.get('source')},{degraded} "
              f"wait {wire.get('wait_s', 0):.3g}s"
              f"{shard})")
    elif status == "ok":
        print(json.dumps(wire, sort_keys=True))
    else:
        hint = f" (retry after {wire['retry_after']:.3g}s)" \
            if "retry_after" in wire else ""
        print(f"error [{wire.get('code')}]: {wire.get('message')}{hint}")


def submit_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench submit`` (the client)."""
    parser = argparse.ArgumentParser(
        prog="repro-bench submit",
        description="Submit characterization cells to a running "
                    "'repro-bench serve' daemon or cluster router over "
                    "its Unix socket or TCP endpoint.",
    )
    parser.add_argument("--socket", metavar="PATH",
                        default=cliargs.DEFAULT_SOCKET)
    cliargs.add_connect_argument(
        parser, help="service endpoint (host:port or socket path; "
                     "overrides --socket)")
    parser.add_argument("--system", default="longs",
                        help="system preset (tiger/dmz/longs/chiplet)")
    parser.add_argument("--workload", default=None,
                        help="registered workload name (e.g. stream, cg)")
    parser.add_argument("--ntasks", type=int, default=4)
    parser.add_argument("--scheme", default="default",
                        help="Table 5 scheme spelling (e.g. interleave)")
    parser.add_argument("--lock", default=None,
                        help="LAM locking sub-layer (sysv/usysv)")
    parser.add_argument("--parked", type=int, default=0)
    parser.add_argument("--count", type=int, default=1, metavar="N",
                        help="submit N copies of the cell in one batch "
                             "(identical copies coalesce server-side)")
    parser.add_argument("--tag", default=None)
    parser.add_argument("--trace", action="store_true",
                        help="mint a trace id for this submission and "
                             "print it (see repro-bench trace export)")
    parser.add_argument("--trace-id", metavar="ID", default=None,
                        help="propagate an existing trace id instead of "
                             "minting one (implies --trace)")
    parser.add_argument("--stats", action="store_true",
                        help="fetch service counters/gauges")
    parser.add_argument("--metrics", action="store_true",
                        help="fetch the live metrics snapshot")
    parser.add_argument("--ping", action="store_true")
    parser.add_argument("--shutdown", action="store_true",
                        help="drain the server and stop it")
    parser.add_argument("--json", action="store_true",
                        help="print raw response JSON lines")
    cliargs.add_timeout_argument(parser)
    parser.add_argument("--retries", type=int, default=2, metavar="N",
                        help="client retries for retryable rejections "
                             "(queue_full honoring its retry_after, "
                             "shard_unavailable; default: 2)")
    parser.add_argument("--retry-max-sleep", type=float, default=5.0,
                        metavar="S",
                        help="cap on a single retry sleep (default: 5s)")
    args = parser.parse_args(argv)
    address = args.connect or args.socket

    requests: List[Dict[str, Any]] = []
    if args.ping:
        requests.append({"op": "ping"})
    if args.workload:
        cell = {"system": args.system, "workload": args.workload,
                "ntasks": args.ntasks, "scheme": args.scheme,
                "parked": args.parked}
        if args.lock:
            cell["lock"] = args.lock
        if args.tag:
            cell["tag"] = args.tag
        if args.trace or args.trace_id:
            from ..telemetry import tracing

            trace_id = args.trace_id or tracing.new_trace_id()
            cell["trace"] = tracing.wire_trace(trace_id)
            print(f"[trace {trace_id}]", file=sys.stderr)
        if args.count > 1:
            requests.append({"op": "batch",
                             "cells": [dict(cell) for _ in
                                       range(args.count)]})
        else:
            requests.append({"op": "submit", "cell": cell})
    if args.stats:
        requests.append({"op": "stats"})
    if args.metrics:
        requests.append({"op": "metrics"})
    if args.shutdown:
        requests.append({"op": "shutdown"})
    if not requests:
        parser.error("nothing to do: pass --workload, --stats, "
                     "--metrics, --ping and/or --shutdown")

    exit_code = 0
    for message in requests:
        try:
            response = _request_with_retries(
                address, message, timeout=args.timeout,
                retries=args.retries if message["op"] in ("submit",
                                                          "batch") else 0,
                max_sleep=args.retry_max_sleep)
        except (OSError, ValueError) as exc:
            print(f"cannot reach service at {address}: {exc}",
                  file=sys.stderr)
            return 2
        if message["op"] == "batch" and response.get("status") == "ok" \
                and not args.json:
            for wire in response.get("results", []):
                _print_result(wire, as_json=False)
                if wire.get("status") == "error":
                    exit_code = 1
        else:
            _print_result(response, as_json=args.json)
        if response.get("status") != "ok":
            exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
