"""Characterization-as-a-service: the unified Session API.

The :class:`Session` facade is the one front door for running
characterization cells — synchronously (:meth:`Session.run`), as a
batch sweep (:meth:`Session.run_many` and the typed sweep methods), or
asynchronously (:meth:`Session.submit` returning a future).  Behind it
sits an async job queue with request coalescing (concurrent identical
cells collapse into one simulation), batching into the shared worker
pool, bounded-queue admission control, and graceful drain.

The same session powers the ``repro-bench serve`` daemon, which speaks
newline-delimited JSON over a Unix socket (:mod:`~.protocol`,
:mod:`~.daemon`), so remote clients and in-process callers share one
cache, one coalescing map, and one telemetry stream.
"""

from .api import RunRequest, RunResult
from .registry import (SCHEME_ALIASES, WORKLOADS, resolve_scheme_name,
                       resolve_system, resolve_workload)
from .session import (Session, ServiceStats, default_session,
                      set_default_session)

__all__ = [
    "RunRequest",
    "RunResult",
    "SCHEME_ALIASES",
    "ServiceStats",
    "Session",
    "WORKLOADS",
    "default_session",
    "resolve_scheme_name",
    "resolve_system",
    "resolve_workload",
    "set_default_session",
]
