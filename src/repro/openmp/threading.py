"""Intra-process threading model (OpenMP-style parallel regions).

The paper's conclusion proposes a programming model that uses "OpenMP
only within each multi-core processor, and MPI for communication both
between processor sockets and between system nodes" as the best match
for the three classes of communication channel it identifies
(Section 3.4).  This module supplies the missing substrate: a thread
team bound to the cores of one socket, executing compute slices with
fork/join overhead and shared-memory-link semantics.

A threaded :class:`~repro.core.ops.Compute` divides its flop and
latency work across the team while its DRAM traffic becomes a
weight-``T`` flow on the socket's controller — T streams from one
socket contend exactly like T single-threaded processes would, so the
model preserves the paper's bandwidth findings while eliminating
intra-socket MPI messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..machine.topology import MachineSpec

__all__ = ["ThreadTeam", "fork_join_cost"]

#: base cost of waking one worker thread for a parallel region (seconds)
_FORK_BASE = 0.9e-6
#: per-doubling barrier cost at region end (tree barrier)
_JOIN_STEP = 0.35e-6


def fork_join_cost(threads: int) -> float:
    """Fork/join overhead of one parallel region with ``threads`` workers.

    A fork wakes workers in a tree (log T steps) and the closing
    barrier costs another log T; single-threaded regions are free.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if threads == 1:
        return 0.0
    steps = math.ceil(math.log2(threads))
    return _FORK_BASE + (steps * (_FORK_BASE + _JOIN_STEP))


@dataclass(frozen=True)
class ThreadTeam:
    """A team of OpenMP threads owned by one MPI rank.

    ``threads`` may not exceed the cores available to the rank on its
    socket — the paper's proposal explicitly scopes OpenMP to one
    multi-core processor.
    """

    threads: int

    def __post_init__(self):
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")

    def validate_for(self, spec: MachineSpec) -> None:
        """Check the team fits within one socket of ``spec``."""
        if self.threads > spec.cores_per_socket:
            raise ValueError(
                f"team of {self.threads} threads exceeds the "
                f"{spec.cores_per_socket} cores of a {spec.name} socket"
            )

    @property
    def region_overhead(self) -> float:
        """Fork/join cost of one parallel region."""
        return fork_join_cost(self.threads)

    def speedup_for_flops(self) -> float:
        """Parallel-region flop speedup (ideal within a socket)."""
        return float(self.threads)
