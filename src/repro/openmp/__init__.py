"""OpenMP-style intra-socket threading (the paper's proposed hybrid model).

Supplies thread teams and fork/join costs; threaded compute slices are
expressed by setting ``threads`` on :class:`repro.core.ops.Compute`,
and :mod:`repro.workloads.hybrid` builds hybrid MPI+OpenMP variants of
the NAS kernels.
"""

from .threading import ThreadTeam, fork_join_cost

__all__ = ["ThreadTeam", "fork_join_cost"]
