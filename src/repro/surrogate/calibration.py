"""The pinned calibration sweep behind the surrogate-fidelity gate.

The fast tier is only useful if it *orders* cells the way the exact
tier does — the paper's conclusions are rankings (which scheme wins,
which system scales), not absolute seconds.  This module pins a small
sweep spanning the regimes the surrogate must get right (bandwidth-
bound STREAM, compute-bound DGEMM, latency-bound RandomAccess, and the
communication-heavy NAS kernels, across schemes and machines) and
measures per-table Spearman rank correlation of fast-vs-exact wall
times.

:func:`compare` runs the sweep in both tiers and returns the per-table
correlations plus wall-clock totals; ``repro-bench regress
--surrogate-gate`` and the CI ``surrogate-gate`` job fail when any
table's correlation falls below ``1 - RANK_CORRELATION_DROP`` (the same
tolerance the fidelity gate applies to model-vs-paper agreement).

Everything here is dependency-light on purpose: the rank correlation is
computed in pure python (no scipy), so the gate also runs on the
numpy-less fallback path.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "calibration_tables",
    "compare",
    "format_report",
    "spearman",
]


def calibration_tables() -> List[Tuple[str, List[Any]]]:
    """The pinned sweep: ``(table_name, [JobRequest, ...])`` groups.

    Deliberately a function (not a module constant) so importing this
    module stays cheap; the cells are deterministic values, so the two
    tiers of one calibration run always describe the same sweep.
    """
    from ..apps.md.amber import AmberSander
    from ..apps.md.lammps import LammpsBench
    from ..apps.pop import Pop
    from ..core.experiment import ALL_SCHEMES
    from ..core.parallel import JobRequest
    from ..machine import dmz, longs
    from ..workloads.hpcc import HpccDgemm, HpccRandomAccess, HpccStream
    from ..workloads.nas import NasCG, NasFT

    kernels = [
        ("stream", HpccStream, (2, 4), tuple(ALL_SCHEMES)),
        ("dgemm", HpccDgemm, (2, 4), tuple(ALL_SCHEMES)),
        ("randomaccess", HpccRandomAccess, (2, 4), tuple(ALL_SCHEMES)),
        ("nas-cg", NasCG, (2, 4, 8), tuple(ALL_SCHEMES[:3])),
        ("nas-ft", NasFT, (2, 4, 8), tuple(ALL_SCHEMES[:3])),
        ("amber", lambda n: AmberSander("jac", n), (4, 8),
         tuple(ALL_SCHEMES[:3])),
        ("lammps", lambda n: LammpsBench("lj", n), (4, 8),
         tuple(ALL_SCHEMES[:3])),
        ("pop", Pop, (4, 8),
         (ALL_SCHEMES[0], ALL_SCHEMES[5])),
    ]
    tables: List[Tuple[str, List[Any]]] = []
    for spec in (longs(), dmz()):
        for family, factory, counts, schemes in kernels:
            requests = [
                JobRequest(spec=spec, workload=factory(ntasks),
                           scheme=scheme)
                for ntasks in counts
                for scheme in schemes
            ]
            tables.append((f"{spec.name.lower()}:{family}", requests))
    return tables


def _ranks(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based; ties share the mean of their positions)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (j + 1 < len(order)
               and values[order[j + 1]] == values[order[i]]):
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Spearman rank correlation (tie-aware, pure python).

    ``None`` when fewer than two pairs or either side is constant —
    a degenerate table neither passes nor fails on correlation alone.
    """
    if len(xs) != len(ys):
        raise ValueError("length mismatch")
    if len(xs) < 2:
        return None
    rx, ry = _ranks(xs), _ranks(ys)
    mx = sum(rx) / len(rx)
    my = sum(ry) / len(ry)
    sxx = sum((r - mx) ** 2 for r in rx)
    syy = sum((r - my) ** 2 for r in ry)
    if sxx == 0 or syy == 0:
        return None
    sxy = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    return sxy / (sxx * syy) ** 0.5


def _sweep(requests, tier: str, jobs, cache) -> Tuple[List[Any], float]:
    """Run every request in one tier; returns (results, wall seconds)."""
    from ..core.parallel import run_requests

    tiered = [replace(r, tier=tier) for r in requests]
    start = time.perf_counter()
    kwargs = {} if cache is None else {"cache": cache}
    results = run_requests(tiered, jobs=jobs, **kwargs)
    return results, time.perf_counter() - start


def compare(jobs: Optional[int] = None, cache=None) -> Dict[str, Any]:
    """Run the calibration sweep in both tiers and score the agreement.

    Returns::

        {"tables": {name: {"cells": int, "rank_correlation": float|None,
                           "fast_mean_ratio": float}},
         "mean_rank_correlation": float,
         "min_rank_correlation": float,
         "exact_seconds": float, "fast_seconds": float,
         "speedup": float, "cells": int}

    Wall-clock numbers are honest only against a cold cache — pass a
    scratch ``cache`` (or point ``REPRO_BENCH_CACHE_DIR`` somewhere
    fresh) when using them for the speedup gate; the correlations are
    cache-independent.
    """
    tables = calibration_tables()
    flat = [request for _name, requests in tables for request in requests]
    exact_results, exact_s = _sweep(flat, "exact", jobs, cache)
    fast_results, fast_s = _sweep(flat, "fast", jobs, cache)

    report: Dict[str, Any] = {"tables": {}}
    rhos: List[float] = []
    cells = 0
    offset = 0
    for name, requests in tables:
        n = len(requests)
        exact_t, fast_t = [], []
        for exact, fast in zip(exact_results[offset:offset + n],
                               fast_results[offset:offset + n]):
            if exact is None or fast is None:
                continue  # infeasible in both tiers (same resolver)
            exact_t.append(exact.wall_time)
            fast_t.append(fast.wall_time)
        offset += n
        rho = spearman(exact_t, fast_t)
        ratio = (sum(f / e for f, e in zip(fast_t, exact_t)) / len(fast_t)
                 if fast_t else None)
        report["tables"][name] = {
            "cells": len(exact_t),
            "rank_correlation": rho,
            "fast_mean_ratio": ratio,
        }
        cells += len(exact_t)
        if rho is not None:
            rhos.append(rho)
    report["mean_rank_correlation"] = (sum(rhos) / len(rhos)
                                       if rhos else None)
    report["min_rank_correlation"] = min(rhos) if rhos else None
    report["exact_seconds"] = exact_s
    report["fast_seconds"] = fast_s
    report["speedup"] = exact_s / fast_s if fast_s > 0 else None
    report["cells"] = cells
    return report


def format_report(report: Dict[str, Any]) -> str:
    """The comparison table as text (CI artifact / regress output)."""
    lines = ["surrogate calibration: fast-vs-exact rank agreement",
             f"{'table':24s} {'cells':>5s} {'rho':>7s} {'fast/exact':>10s}"]
    for name, scores in sorted(report["tables"].items()):
        rho = scores["rank_correlation"]
        ratio = scores["fast_mean_ratio"]
        rho_text = f"{rho:7.4f}" if rho is not None else f"{'-':>7s}"
        ratio_text = f"{ratio:10.3f}" if ratio is not None else f"{'-':>10s}"
        lines.append(f"{name:24s} {scores['cells']:5d} "
                     f"{rho_text} {ratio_text}")
    mean = report["mean_rank_correlation"]
    lines.append(
        f"mean rho {mean:.4f}  "
        f"exact {report['exact_seconds']:.2f}s  "
        f"fast {report['fast_seconds']:.2f}s  "
        f"speedup {report['speedup']:.1f}x"
        if mean is not None else "no scorable tables")
    return "\n".join(lines)
