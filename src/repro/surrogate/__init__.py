"""Fast analytic tier: closed-form evaluation of experiment cells.

``repro.surrogate`` answers the same question as
:class:`repro.core.execution.JobRunner` — *how long does this workload
take on this machine under this affinity scheme?* — without stepping
the discrete-event engine.  Every cost the engine accumulates event by
event (cache-filtered DRAM traffic on contended controllers, NUMA
latency with queueing, MPI protocol/lock/copy overheads, collective
round structure) has a closed-form counterpart here, batch-evaluated
with numpy where available.

The surrogate trades *bit-exactness* for speed: absolute times differ
slightly from the exact tier (no dynamic bandwidth renegotiation, no
queue-lock contention), but the *ordering* of schemes and systems —
what the paper's tables are about — is preserved, and the regression
gate (:mod:`repro.surrogate.calibration`) enforces that rank agreement
on a pinned sweep.

Cells the analytic model cannot honour (marker profiling, fault plans,
wildcard receives) raise
:class:`~repro.errors.SurrogateUnsupportedError`; ``tier="auto"``
callers never see it because the executor routes such cells to the
exact tier before keying.
"""

from ..errors import SurrogateUnsupportedError
from .evaluator import (
    HAVE_NUMPY,
    SurrogateEvaluator,
    evaluate_request,
    evaluate_workload,
    unsupported_reason,
)

__all__ = [
    "HAVE_NUMPY",
    "SurrogateEvaluator",
    "SurrogateUnsupportedError",
    "evaluate_request",
    "evaluate_workload",
    "unsupported_reason",
]
