"""The analytic evaluator behind the ``fast`` tier.

The exact tier pays for generality: every byte of DRAM traffic and
every MPI fragment becomes engine events whose costs emerge from
dynamic fair-share bandwidth renegotiation.  For the healthy,
unprofiled cells that dominate the paper sweeps, those costs are
predictable enough to compute directly:

* **Compute ops** — the same cache-residency, flop-ceiling, NUMA-latency
  and serial-stream-floor formulas as ``JobRunner._compute``, with the
  dynamic controller contention replaced by the static
  ``controller_sharers()`` estimate (the quantity the exact tier already
  uses for its latency queueing term).  Unique ``(op, placement)``
  combinations across a program are deduplicated and batch-evaluated as
  numpy array expressions (pure-python loop when numpy is missing).
* **Messages** — protocol overhead, queue-lock cost, eager copies /
  rendezvous handshake + pipelined bulk, HT wire latency: the same
  constants as :mod:`repro.mpi.simmpi`, composed arithmetically instead
  of as engine timeouts.
* **Collectives** — expanded into the *identical* per-rank send/recv
  round structure as ``MpiWorld`` (dissemination barrier, recursive
  doubling, binomial trees, pairwise exchange, ring), so message and
  byte counts match the exact tier exactly and the timing inherits the
  algorithms' log/linear shapes.

Cross-rank coupling is honoured by a lightweight per-rank virtual-clock
scheduler with FIFO message matching — not a discrete-event engine,
just ``max()`` over a handful of closed-form completion times per
message.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

try:  # satellite guard: the fast tier degrades to pure python without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

import networkx as nx

from ..core.affinity import AffinityScheme, ResolvedAffinity, resolve_scheme
from ..core.execution import JobResult
from ..core.ops import (
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    MarkerStart,
    MarkerStop,
    Op,
    Recv,
    Reduce,
    Send,
    SendRecv,
)
from ..core.workload import Workload
from ..errors import SurrogateUnsupportedError
from ..machine.cache import CacheModel
from ..machine.topology import MachineSpec, build_socket_graph
from ..mpi.implementations import LockLayer, MpiImplementation, OPENMPI
from ..mpi.simmpi import MpiWorld
from ..openmp import fork_join_cost

__all__ = [
    "HAVE_NUMPY",
    "SurrogateEvaluator",
    "evaluate_request",
    "evaluate_workload",
    "unsupported_reason",
]

HAVE_NUMPY = _np is not None

_KNOWN_OPS = (Compute, MarkerStart, MarkerStop, Send, Recv, SendRecv,
              Barrier, Allreduce, Alltoall, Allgather, Bcast, Reduce)


def unsupported_reason(workload: Workload, profile: bool = False,
                       faults=None) -> Optional[str]:
    """Why the fast tier cannot evaluate this cell, or ``None`` if it can.

    The checks are static and cheap (one pass over the materialized
    programs), so ``tier="auto"`` can call this before cache keying:
    cells routed to the exact tier keep exact-tier content addresses.
    """
    if profile:
        return "marker profiling needs the exact event-driven tier"
    if faults:
        return "fault plans need the exact event-driven tier"
    for rank in range(workload.ntasks):
        for op in workload.program(rank):
            if isinstance(op, Recv) and op.src is None:
                return ("wildcard Recv(src=None) needs the exact tier's "
                        "arrival-order matching")
            if not isinstance(op, _KNOWN_OPS):
                return f"unknown operation {type(op).__name__}"
    return None


# -- sub-operation vocabulary the scheduler runs ---------------------------
# ('compute', op) | ('send', dst, nbytes, tag) | ('recv', src, tag)
# | ('sendrecv', to, frm, nbytes, tag)


def _expand_collective(op: Op, rank: int, p: int) -> List[tuple]:
    """Mirror the MpiWorld algorithm of one collective as sub-ops."""
    subops: List[tuple] = []
    if isinstance(op, Barrier):
        if p == 1:
            return subops
        step, round_no = 1, 0
        while step < p:
            subops.append(("sendrecv", (rank + step) % p, (rank - step) % p,
                           0, MpiWorld._TAG_BARRIER + round_no))
            step *= 2
            round_no += 1
        return subops
    if isinstance(op, Allreduce):
        if p == 1:
            return subops
        p2 = 1
        while p2 * 2 <= p:
            p2 *= 2
        extra = p - p2
        tag0 = MpiWorld._TAG_ALLREDUCE
        if rank >= p2:
            subops.append(("send", rank - p2, op.nbytes, tag0))
            subops.append(("recv", rank - p2, tag0 + 99))
            return subops
        if rank < extra:
            subops.append(("recv", rank + p2, tag0))
        step, round_no = 1, 1
        while step < p2:
            partner = rank ^ step
            subops.append(("sendrecv", partner, partner, op.nbytes,
                           tag0 + round_no))
            step *= 2
            round_no += 1
        if rank < extra:
            subops.append(("send", rank + p2, op.nbytes, tag0 + 99))
        return subops
    if isinstance(op, Bcast):
        if p == 1:
            return subops
        vrank = (rank - op.root) % p
        tag = MpiWorld._TAG_BCAST
        mask = 1
        while mask < p:
            if vrank & mask:
                parent = ((vrank ^ mask) + op.root) % p
                subops.append(("recv", parent, tag))
                break
            mask *= 2
        mask //= 2
        while mask >= 1:
            child = vrank + mask
            if child < p:
                subops.append(("send", (child + op.root) % p, op.nbytes, tag))
            mask //= 2
        return subops
    if isinstance(op, Alltoall):
        for i in range(1, p):
            subops.append(("sendrecv", (rank + i) % p, (rank - i) % p,
                           op.nbytes, MpiWorld._TAG_ALLTOALL + i))
        return subops
    if isinstance(op, Allgather):
        for i in range(p - 1):
            subops.append(("sendrecv", (rank + 1) % p, (rank - 1) % p,
                           op.nbytes, MpiWorld._TAG_ALLGATHER + i))
        return subops
    if isinstance(op, Reduce):
        if p == 1:
            return subops
        vrank = (rank - op.root) % p
        tag = MpiWorld._TAG_REDUCE
        mask = 1
        while mask < p:
            if vrank & mask:
                parent = (vrank & ~mask)
                subops.append(("send", (parent + op.root) % p, op.nbytes, tag))
                return subops
            child = vrank | mask
            if child < p:
                subops.append(("recv", (child + op.root) % p, tag))
            mask *= 2
        return subops
    raise TypeError(f"not a collective: {op!r}")  # pragma: no cover


class SurrogateEvaluator:
    """Closed-form evaluator for one (machine, affinity, MPI) binding.

    Mirrors :class:`~repro.core.execution.JobRunner`'s constructor
    signature minus the engine-only knobs; reusable across workloads on
    the same binding.
    """

    def __init__(self, spec: MachineSpec, affinity: ResolvedAffinity,
                 impl: MpiImplementation = OPENMPI,
                 lock: Optional[str] = None):
        if affinity.spec.name != spec.name:
            raise ValueError("affinity was resolved for a different system")
        self.spec = spec
        self.affinity = affinity
        self.impl = impl or OPENMPI
        params = spec.params
        self.params = params
        self.om = 1.0 + affinity.scheduler_noise
        self.lock_cost = LockLayer(
            lock if lock is not None else self.impl.default_lock
        ).cost(params) * self.om
        graph = build_socket_graph(spec)
        self.hops: Dict[int, Dict[int, int]] = {
            src: dict(lengths)
            for src, lengths in nx.all_pairs_shortest_path_length(graph)
        }
        coherence = 1.0 / (
            1.0 + params.coherence_probe_cost * (spec.sockets - 1))
        self.ctrl_capacity = (spec.socket.dram_peak_bandwidth
                              * params.dram_achievable_fraction * coherence)
        self.cache = CacheModel.for_socket(
            spec.socket, traffic_floor=params.compulsory_traffic_floor)
        self.sharers = affinity.controller_sharers()
        self.buffer_nodes = affinity.buffer_nodes()
        n = affinity.ntasks
        self.socket_of = [affinity.placement.socket_of_rank(r)
                          for r in range(n)]
        # derated bytes-per-byte each rank puts on each controller when
        # streaming: the flow sizes the fluid fair-share model sees
        self._flow_coef: List[Dict[int, float]] = []
        for r in range(n):
            sock = self.socket_of[r]
            self._flow_coef.append({
                node: frac * (1.0 + params.hop_bandwidth_derate
                              * self.hops[sock][node])
                for node, frac in affinity.distribution(r).items()
                if frac > 0
            })
        self._scalars = [self._rank_scalars(r) for r in range(n)]

    # -- per-rank placement scalars ------------------------------------

    def _rank_scalars(self, rank: int) -> Tuple[float, float, float]:
        """(expected latency, stream cost factor, drain s/byte) for a rank.

        The latency and stream-factor formulas are the exact tier's
        ``MemorySystem.expected_latency`` / ``stream_cost_factor``.  The
        drain term is the processor-sharing closed form of the engine's
        fluid fair-share controllers: with every rank streaming at once
        (the symmetric-program case the sweeps are made of), flow *i* on
        a controller completes at ``sum_j min(bytes_j, bytes_i) /
        capacity`` — early finishers return their share to the rest.
        """
        params = self.params
        dist = self.affinity.distribution(rank)
        sock = self.socket_of[rank]
        hops = self.hops[sock]
        total = sum(dist.values())
        extra = max(0.0, sum(
            frac * (self.sharers.get(node, 1.0) - 1.0)
            for node, frac in dist.items()
        ))
        e_lat = 0.0
        s_factor = 1.0
        if total > 0:
            contention = 1.0 + params.latency_contention_factor * extra
            e_lat = contention * sum(
                frac / total * (params.dram_latency
                                + params.hop_latency * hops[node])
                for node, frac in dist.items()
            )
            s_factor = sum(
                frac / total
                * (1.0 + params.remote_stream_penalty * hops[node])
                for node, frac in dist.items()
            )
        drain = 0.0
        mine = self._flow_coef[rank]
        for node, coef in mine.items():
            per_byte = sum(
                min(other.get(node, 0.0), coef)
                for other in self._flow_coef
            ) / self.ctrl_capacity
            if hops[node]:
                per_byte = max(per_byte,
                               dist[node] / params.ht_link_bandwidth)
            drain = max(drain, per_byte)
        return e_lat, s_factor, drain

    def _check_thread_team(self, op: Compute, rank: int) -> None:
        if op.threads == 1:
            return
        placement = self.affinity.placement
        occupied = placement.sharers_on_socket(rank) * op.threads
        if occupied > self.spec.cores_per_socket:
            raise ValueError(
                f"rank {rank}: {op.threads} threads with "
                f"{placement.sharers_on_socket(rank)} ranks on the socket "
                f"oversubscribe its {self.spec.cores_per_socket} cores"
            )

    # -- compute-op batch costing --------------------------------------

    def _compute_costs(self, entries: List[Tuple[Compute, int]]
                       ) -> List[float]:
        """Cost every unique (Compute op, rank) pair, vectorized."""
        if not entries:
            return []
        if _np is not None:
            return self._compute_costs_numpy(entries)
        return [self._compute_cost_scalar(op, rank) for op, rank in entries]

    def _compute_cost_scalar(self, op: Compute, rank: int) -> float:
        """Pure-python fallback, kept semantically identical to numpy."""
        e_lat, s_factor, drain = self._scalars[rank]
        threads = op.threads
        residency = self.cache.dram_traffic_factor(
            op.working_set / threads, op.reuse)
        core = self.spec.socket.core
        flop_t = 0.0
        if op.flops > 0:
            flop_t = op.flops / (core.peak_flops * op.flop_efficiency
                                 * threads)
        lat_t = 0.0
        if op.random_accesses > 0:
            lat_t = op.random_accesses * residency / threads * e_lat
        mem_floor = stream_t = 0.0
        if op.dram_bytes > 0:
            traffic = op.dram_bytes * residency
            rate = min(op.stream_bandwidth * threads, self.ctrl_capacity)
            mem_floor = traffic * s_factor / rate
            stream_t = traffic * drain
        noise = self.om
        return fork_join_cost(threads) + max(
            flop_t * noise, (lat_t + mem_floor) * noise, stream_t)

    def _compute_costs_numpy(self, entries: List[Tuple[Compute, int]]
                             ) -> List[float]:
        np = _np
        ops = [e[0] for e in entries]
        scalars = [self._scalars[e[1]] for e in entries]
        flops = np.array([op.flops for op in ops])
        dram = np.array([op.dram_bytes for op in ops])
        ws = np.array([op.working_set for op in ops])
        reuse = np.array([op.reuse for op in ops])
        eff = np.array([op.flop_efficiency for op in ops])
        ra = np.array([op.random_accesses for op in ops])
        sbw = np.array([op.stream_bandwidth for op in ops])
        threads = np.array([float(op.threads) for op in ops])
        e_lat = np.array([s[0] for s in scalars])
        s_factor = np.array([s[1] for s in scalars])
        drain = np.array([s[2] for s in scalars])

        floor = self.cache.traffic_floor
        cap = self.cache.capacity
        ws_slice = ws / threads
        with np.errstate(divide="ignore"):
            resident = np.minimum(1.0, np.where(ws_slice > 0,
                                                cap / np.maximum(ws_slice,
                                                                 1e-300),
                                                np.inf))
        residency = np.where(ws_slice > 0,
                             np.maximum(floor, 1.0 - reuse * resident),
                             floor)
        peak = self.spec.socket.core.peak_flops
        flop_t = np.where(flops > 0, flops / (peak * eff * threads), 0.0)
        lat_t = np.where(ra > 0, ra * residency / threads * e_lat, 0.0)
        traffic = dram * residency
        rate = np.minimum(sbw * threads, self.ctrl_capacity)
        mem_floor = np.where(dram > 0, traffic * s_factor / rate, 0.0)
        stream_t = np.where(dram > 0, traffic * drain, 0.0)
        steps = np.ceil(np.log2(np.maximum(threads, 1.0)))
        base, step = 0.9e-6, 0.35e-6
        fj = np.where(threads > 1, base + steps * (base + step), 0.0)
        # keep the fork/join constants owned by repro.openmp: recompute
        # via the authoritative function for the (few) threaded entries
        if np.any(threads > 1):
            fj = np.array([fork_join_cost(op.threads) for op in ops])
        noise = self.om
        cost = fj + np.maximum(
            np.maximum(flop_t * noise, (lat_t + mem_floor) * noise),
            stream_t)
        return [float(c) for c in cost]

    # -- message cost pieces -------------------------------------------

    def _copy_bw(self, core_socket: int, buffer_node: int) -> float:
        params = self.params
        base = (params.intra_socket_copy_bandwidth
                if core_socket == buffer_node
                else params.inter_socket_copy_bandwidth)
        return base * self.impl.copy_bandwidth_factor

    def _copy_time(self, core_socket: int, buffer_node: int,
                   nbytes: float) -> float:
        """One eager-protocol buffer copy (copy-in or copy-out)."""
        if nbytes <= 0:
            return 0.0
        t = max(nbytes / self.ctrl_capacity,
                nbytes / self._copy_bw(core_socket, buffer_node))
        if self.hops[core_socket][buffer_node]:
            t = max(t, nbytes / self.params.ht_link_bandwidth)
        return t

    def _bulk_time(self, sender_socket: int, receiver_socket: int,
                   sender_rank: int, nbytes: float) -> float:
        """Rendezvous bulk transfer through the sender's shared buffer."""
        if nbytes <= 0:
            return 0.0
        buffer = self.buffer_nodes[sender_rank]
        copies = self.impl.copy_cost_factor(nbytes)
        bw = min(self._copy_bw(sender_socket, buffer),
                 self._copy_bw(receiver_socket, buffer))
        t = max(nbytes * copies / self.ctrl_capacity, nbytes * copies / bw)
        link = self.params.ht_link_bandwidth
        if self.hops[sender_socket][buffer]:
            t = max(t, nbytes / link)
        if self.hops[receiver_socket][buffer]:
            t = max(t, nbytes / link)
        return t

    def _post_send(self, src: int, dst: int, nbytes: int, tag: int,
                   t0: float) -> dict:
        """Sender-side costs; returns the in-flight message record.

        ``avail`` is when the receiver can match it; ``send_end`` is when
        the *sender* unblocks (filled in by the receiver for rendezvous).
        """
        oh2 = self.impl.protocol_overhead(nbytes) / 2.0 * self.om
        if self.impl.is_eager(nbytes):
            avail = (t0 + oh2 + self.lock_cost
                     + self._copy_time(self.socket_of[src],
                                       self.buffer_nodes[src], nbytes))
            return {"src": src, "tag": tag, "nbytes": nbytes,
                    "avail": avail, "eager": True, "send_end": avail}
        header = t0 + oh2 + self.lock_cost
        return {"src": src, "tag": tag, "nbytes": nbytes,
                "avail": header, "eager": False, "send_end": None}

    def _complete_recv(self, dst: int, msg: dict, t0: float) -> float:
        """Receiver-side completion; fills ``msg['send_end']``."""
        nbytes = msg["nbytes"]
        matched = max(t0 + self.lock_cost, msg["avail"])
        oh2 = self.impl.protocol_overhead(nbytes) / 2.0 * self.om
        src_sock = self.socket_of[msg["src"]]
        dst_sock = self.socket_of[dst]
        wire = self.hops[src_sock][dst_sock] * self.params.ht_link_latency
        t = matched + oh2 + wire
        if msg["eager"]:
            return t + self._copy_time(dst_sock,
                                       self.buffer_nodes[msg["src"]], nbytes)
        fragment = self.params.shm_fragment_bytes
        extra_fragments = max(0, -(-nbytes // fragment) - 1)
        done = (t + extra_fragments * self.lock_cost
                + self._bulk_time(src_sock, dst_sock, msg["src"], nbytes))
        msg["send_end"] = done
        return done

    # -- the virtual-clock scheduler -----------------------------------

    def run(self, workload: Workload) -> JobResult:
        """Evaluate the workload; mirrors ``JobRunner.run`` accounting."""
        workload.validate()
        if workload.ntasks != self.affinity.ntasks:
            raise ValueError(
                f"workload wants {workload.ntasks} ranks but affinity "
                f"provides {self.affinity.ntasks}"
            )
        n = workload.ntasks

        # Phase 1: materialize and expand every rank's program.
        programs: List[List[Tuple[Op, str, List[tuple]]]] = []
        compute_index: Dict[Tuple[Compute, int], int] = {}
        compute_entries: List[Tuple[Compute, int]] = []
        for rank in range(n):
            items: List[Tuple[Op, str, List[tuple]]] = []
            for op in workload.program(rank):
                if isinstance(op, (MarkerStart, MarkerStop)):
                    continue  # zero-cost observability brackets
                if isinstance(op, Compute):
                    self._check_thread_team(op, rank)
                    key = (op, rank)
                    if key not in compute_index:
                        compute_index[key] = len(compute_entries)
                        compute_entries.append(key)
                    items.append((op, "compute", [("compute", op)]))
                elif isinstance(op, Send):
                    if op.nbytes < 0:
                        raise ValueError("message size must be non-negative")
                    items.append((op, "comm",
                                  [("send", op.dst, op.nbytes, op.tag)]))
                elif isinstance(op, Recv):
                    if op.src is None:
                        raise SurrogateUnsupportedError(
                            "wildcard Recv(src=None) needs the exact tier")
                    items.append((op, "comm", [("recv", op.src, op.tag)]))
                elif isinstance(op, SendRecv):
                    items.append((op, "comm",
                                  [("sendrecv", op.send_to, op.recv_from,
                                    op.nbytes, op.tag)]))
                elif isinstance(op, _KNOWN_OPS):
                    items.append((op, "comm",
                                  _expand_collective(op, rank, n)))
                else:
                    raise SurrogateUnsupportedError(
                        f"unknown operation {type(op).__name__}")
            programs.append(items)

        # Phase 2: batch-cost the unique compute entries.
        costs = self._compute_costs(compute_entries)
        compute_cost = {key: costs[i] for key, i in compute_index.items()}

        # Phase 3: advance per-rank virtual clocks to completion.
        clocks = [0.0] * n
        item_pos = [0] * n
        sub_pos = [0] * n
        op_start = [0.0] * n
        # rank wait states: ("send", msg) | ("sendrecv", recv_end, msg)
        waiting: List[Optional[tuple]] = [None] * n
        pending_out: List[Optional[dict]] = [None] * n
        queues: Dict[Tuple[int, int], List[dict]] = {}
        messages = 0
        bytes_sent = 0
        category_times: List[Dict[str, float]] = [dict() for _ in range(n)]
        phase_times: List[Dict[str, float]] = [dict() for _ in range(n)]

        def finish_item(rank: int) -> None:
            op, category, _subops = programs[rank][item_pos[rank]]
            elapsed = clocks[rank] - op_start[rank]
            bucket = category_times[rank]
            bucket[category] = bucket.get(category, 0.0) + elapsed
            if op.phase:
                pbucket = phase_times[rank]
                pbucket[op.phase] = pbucket.get(op.phase, 0.0) + elapsed
            item_pos[rank] += 1
            sub_pos[rank] = 0

        def take_match(src: int, dst: int, tag: Optional[int]
                       ) -> Optional[dict]:
            queue = queues.get((src, dst))
            if not queue:
                return None
            for i, msg in enumerate(queue):
                if tag is None or msg["tag"] == tag:
                    return queue.pop(i)
            return None

        def advance_one(rank: int) -> bool:
            """Advance one sub-op (or resume from a wait); False = stuck."""
            nonlocal messages, bytes_sent
            state = waiting[rank]
            if state is not None:
                msg = state[-1]
                if msg["send_end"] is None:
                    return False
                if state[0] == "send":
                    clocks[rank] = msg["send_end"]
                else:
                    clocks[rank] = max(state[1], msg["send_end"])
                waiting[rank] = None
                sub_pos[rank] += 1
                if sub_pos[rank] >= len(programs[rank][item_pos[rank]][2]):
                    finish_item(rank)
                return True
            if item_pos[rank] >= len(programs[rank]):
                return False  # rank done
            op, _category, subops = programs[rank][item_pos[rank]]
            if sub_pos[rank] == 0 and pending_out[rank] is None:
                op_start[rank] = clocks[rank]
            if not subops:  # e.g. a collective at p == 1
                finish_item(rank)
                return True
            sub = subops[sub_pos[rank]]
            kind = sub[0]
            if kind == "compute":
                clocks[rank] += compute_cost[(sub[1], rank)]
            elif kind == "send":
                _, dst, nbytes, tag = sub
                messages += 1
                bytes_sent += nbytes
                msg = self._post_send(rank, dst, nbytes, tag, clocks[rank])
                queues.setdefault((rank, dst), []).append(msg)
                if msg["send_end"] is None:
                    clocks[rank] = msg["avail"]
                    waiting[rank] = ("send", msg)
                    return True
                clocks[rank] = msg["send_end"]
            elif kind == "recv":
                _, src, tag = sub
                msg = take_match(src, rank, tag)
                if msg is None:
                    return False
                clocks[rank] = self._complete_recv(rank, msg, clocks[rank])
            else:  # sendrecv: the send is concurrent (isend semantics)
                _, to, frm, nbytes, tag = sub
                out = pending_out[rank]
                if out is None:
                    messages += 1
                    bytes_sent += nbytes
                    out = self._post_send(rank, to, nbytes, tag, clocks[rank])
                    queues.setdefault((rank, to), []).append(out)
                    pending_out[rank] = out
                msg = take_match(frm, rank, tag)
                if msg is None:
                    return False
                recv_end = self._complete_recv(rank, msg, clocks[rank])
                pending_out[rank] = None
                if out["send_end"] is None:
                    clocks[rank] = recv_end
                    waiting[rank] = ("sendrecv", recv_end, out)
                    return True
                clocks[rank] = max(recv_end, out["send_end"])
            sub_pos[rank] += 1
            if sub_pos[rank] >= len(subops):
                finish_item(rank)
            return True

        progressed = True
        while progressed:
            progressed = False
            for rank in range(n):
                while advance_one(rank):
                    progressed = True
        if any(item_pos[r] < len(programs[r]) or waiting[r] is not None
               for r in range(n)):
            stuck = [r for r in range(n)
                     if item_pos[r] < len(programs[r])
                     or waiting[r] is not None]
            raise SurrogateUnsupportedError(
                f"{workload.name}: ranks {stuck} never complete under "
                "analytic matching (unmatched point-to-point traffic)")

        scale = workload.time_scale
        return JobResult(
            workload=workload.name,
            system=self.spec.name,
            scheme=str(self.affinity.scheme),
            ntasks=n,
            wall_time=max(clocks, default=0.0) * scale,
            rank_times=[t * scale for t in clocks],
            category_times=[{k: v * scale for k, v in ct.items()}
                            for ct in category_times],
            phase_times=[{k: v * scale for k, v in pt.items()}
                         for pt in phase_times],
            messages=messages,
            bytes_sent=bytes_sent,
            perf=None,
            faults=None,
        )


def evaluate_request(spec: MachineSpec, workload: Workload,
                     affinity: ResolvedAffinity,
                     impl: MpiImplementation = OPENMPI,
                     lock: Optional[str] = None) -> JobResult:
    """Evaluate one cell analytically (the fast-tier ``execute`` body)."""
    return SurrogateEvaluator(spec, affinity, impl=impl, lock=lock
                              ).run(workload)


def evaluate_workload(spec: MachineSpec, workload: Workload,
                      scheme: AffinityScheme = AffinityScheme.DEFAULT,
                      impl: MpiImplementation = OPENMPI,
                      lock: Optional[str] = None,
                      parked: int = 0) -> JobResult:
    """One-call convenience mirroring ``run_workload``, fast tier."""
    affinity = resolve_scheme(scheme, spec, workload.ntasks, parked=parked)
    return evaluate_request(spec, workload, affinity, impl=impl, lock=lock)
