"""FFT kernels: an iterative radix-2 implementation plus cost models.

FFT appears throughout the paper: HPCC FFT (Figure 9), NAS FT class B
(Tables 2–4), and the reciprocal-space part of AMBER's PME method
(Table 7).  Its characterization sits between DGEMM and STREAM: each
butterfly pass streams the whole array, but log n passes over data that
partially stays in cache gives it moderate temporal reuse ("the
somewhat less cache-friendly FFT", Section 3.3).

The functional implementation is a standard iterative Cooley–Tukey
radix-2 transform, validated against numpy.fft in the tests.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.ops import Compute

__all__ = [
    "fft_radix2",
    "ifft_radix2",
    "fft3d",
    "ifft3d",
    "fft_flops",
    "fft_model",
    "is_power_of_two",
]


def is_power_of_two(n: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return n >= 1 and (n & (n - 1)) == 0


def fft_radix2(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT (power-of-two length)."""
    x = np.asarray(x, dtype=complex)
    n = x.shape[0]
    if not is_power_of_two(n):
        raise ValueError(f"radix-2 FFT requires power-of-two length, got {n}")
    if n == 1:
        return x.copy()
    # bit-reversal permutation
    levels = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=int)
    for bit in range(levels):
        reversed_indices |= ((indices >> bit) & 1) << (levels - 1 - bit)
    result = x[reversed_indices].copy()
    # butterfly passes
    size = 2
    while size <= n:
        half = size // 2
        twiddle = np.exp(-2j * np.pi * np.arange(half) / size)
        for start in range(0, n, size):
            # copy: `top` must not alias the slice written below
            top = result[start:start + half].copy()
            bottom = result[start + half:start + size] * twiddle
            result[start:start + half] = top + bottom
            result[start + half:start + size] = top - bottom
        size *= 2
    return result


def ifft_radix2(x: np.ndarray) -> np.ndarray:
    """Inverse transform via conjugation."""
    x = np.asarray(x, dtype=complex)
    return np.conj(fft_radix2(np.conj(x))) / x.shape[0]


def fft3d(x: np.ndarray) -> np.ndarray:
    """3-D FFT by successive 1-D transforms along each axis.

    This is the transform-then-transpose structure the parallel NAS FT
    and PME workloads model: 1-D butterflies along the contiguous axis,
    reorient, repeat.  All dimensions must be powers of two.
    """
    x = np.asarray(x, dtype=complex)
    if x.ndim != 3:
        raise ValueError("fft3d requires a 3-D array")
    out = x.copy()
    for axis in range(3):
        # bring `axis` last (the "transpose"), transform all pencils
        moved = np.moveaxis(out, axis, -1)
        shape = moved.shape
        pencils = moved.reshape(-1, shape[-1])
        transformed = np.stack([fft_radix2(p) for p in pencils])
        out = np.moveaxis(transformed.reshape(shape), -1, axis)
    return out


def ifft3d(x: np.ndarray) -> np.ndarray:
    """Inverse 3-D transform via conjugation."""
    x = np.asarray(x, dtype=complex)
    return np.conj(fft3d(np.conj(x))) / x.size


def fft_flops(n: int) -> float:
    """The standard 5 n log2 n flop count for a complex length-n FFT."""
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        return 0.0
    return 5.0 * n * math.log2(n)


def fft_model(n: int, batches: int = 1, phase: str = "") -> Compute:
    """Descriptor for ``batches`` complex FFTs of length ``n``.

    Natural traffic: a cache-exceeding transform makes roughly two full
    read+write sweeps over its 16-byte complex elements (64 B/elt);
    with moderate reuse (0.55) this reproduces the paper's "slightly
    more impact going from Single FFT to Star FFT" relative to DGEMM's
    near-zero traffic.
    """
    if n < 1 or batches < 1:
        raise ValueError("n and batches must be positive")
    return Compute(
        phase=phase,
        flops=fft_flops(n) * batches,
        dram_bytes=64.0 * n * batches,
        working_set=16.0 * n,
        reuse=0.55,
        flop_efficiency=0.45,
    )
