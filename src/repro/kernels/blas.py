"""BLAS level 1 and 3 kernels: DAXPY and DGEMM (Section 3.2).

The paper contrasts the vendor library (ACML) against "vanilla"
compiled Fortran.  For DGEMM the difference is dramatic — the vendor
kernel blocks for cache (reuse ≈ 0.97) and sustains ~88 % of peak,
while a naive triple loop streams operands and reaches a fraction of
peak.  For DAXPY both are memory-bound at large n; the vendor advantage
only shows for cache-resident vectors.

Functional implementations: numpy's BLAS (`a @ b`) stands in for ACML;
an explicit blocked/naive pair exists for validation and as the
"vanilla" reference.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import Compute

__all__ = [
    "daxpy",
    "dgemm",
    "naive_dgemm",
    "blocked_dgemm",
    "daxpy_model",
    "dgemm_model",
    "daxpy_flops",
    "dgemm_flops",
]


# -- functional ------------------------------------------------------------

def daxpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y <- alpha*x + y`` (returns the new y)."""
    if x.shape != y.shape:
        raise ValueError("daxpy requires conforming vectors")
    return alpha * x + y

def dgemm(a: np.ndarray, b: np.ndarray, alpha: float = 1.0,
          beta: float = 0.0, c: np.ndarray | None = None) -> np.ndarray:
    """``C <- alpha*A@B + beta*C`` via the platform BLAS (the "ACML" path)."""
    if a.shape[1] != b.shape[0]:
        raise ValueError("dgemm requires conforming matrices")
    result = alpha * (a @ b)
    if beta != 0.0:
        if c is None:
            raise ValueError("beta != 0 requires C")
        result = result + beta * c
    return result


def naive_dgemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Triple-loop matrix multiply (the "vanilla" reference; small sizes)."""
    if a.shape[1] != b.shape[0]:
        raise ValueError("dgemm requires conforming matrices")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.result_type(a, b))
    for i in range(m):
        for j in range(n):
            total = 0.0
            for p in range(k):
                total += a[i, p] * b[p, j]
            c[i, j] = total
    return c


def blocked_dgemm(a: np.ndarray, b: np.ndarray, block: int = 32) -> np.ndarray:
    """Cache-blocked multiply (illustrates the vendor-library strategy)."""
    if a.shape[1] != b.shape[0]:
        raise ValueError("dgemm requires conforming matrices")
    if block < 1:
        raise ValueError("block must be positive")
    m, k = a.shape
    _, n = b.shape
    c = np.zeros((m, n), dtype=np.result_type(a, b))
    for i0 in range(0, m, block):
        for p0 in range(0, k, block):
            for j0 in range(0, n, block):
                c[i0:i0 + block, j0:j0 + block] += (
                    a[i0:i0 + block, p0:p0 + block]
                    @ b[p0:p0 + block, j0:j0 + block]
                )
    return c


# -- operation counts ------------------------------------------------------

def daxpy_flops(n: int) -> float:
    """2n flops (one multiply, one add per element)."""
    return 2.0 * n


def dgemm_flops(n: int) -> float:
    """2n^3 flops for square matrices."""
    return 2.0 * n ** 3


# -- models -------------------------------------------------------------------

def daxpy_model(n: int, vendor: bool = True, repeats: int = 1,
                phase: str = "") -> Compute:
    """DAXPY descriptor: streaming sweeps (read x, read+write y, 24 B/elt).

    A single sweep has no temporal reuse, but the benchmark loop repeats
    the sweep: when the vectors fit in cache, all but the first pass hit
    (reuse ``(repeats-1)/repeats``), which is where the vendor/vanilla
    compiler gap becomes visible (Figures 4-5's small sizes).  Large
    vectors fall back to pure DRAM streaming regardless.
    """
    if n < 1 or repeats < 1:
        raise ValueError("n and repeats must be positive")
    return Compute(
        phase=phase,
        flops=daxpy_flops(n) * repeats,
        dram_bytes=24.0 * n * repeats,
        working_set=16.0 * n,
        reuse=(repeats - 1) / repeats,
        flop_efficiency=0.85 if vendor else 0.40,
    )


def dgemm_model(n: int, vendor: bool = True, phase: str = "") -> Compute:
    """DGEMM descriptor for square n×n matrices.

    The vendor kernel blocks all three matrices through cache
    (reuse ≈ 0.97, ~88 % of peak); vanilla code achieves neither.
    Natural traffic is one read of A and B and a write of C per
    blocked panel sweep, ~32 n² bytes.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return Compute(
        phase=phase,
        flops=dgemm_flops(n),
        dram_bytes=32.0 * n ** 2,
        working_set=24.0 * n ** 2,
        reuse=0.97 if vendor else 0.60,
        flop_efficiency=0.88 if vendor else 0.30,
    )
