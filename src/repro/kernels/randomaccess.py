"""HPCC RandomAccess (GUPS): functional kernel and latency-bound model.

RandomAccess "is designed to measure the performance of the last level
of hierarchy of the memory system" (Section 3.3): a stream of XOR
updates to random 8-byte words of a huge table.  Every update is a
dependent remote-or-local access, so its cost is dominated by NUMA
latency — and, in the MPI variant, by per-message overhead of the
locking sub-layer, which is exactly where the paper sees SysV
semaphores collapse.

The functional version implements the HPCC update rule (the x(n+1) =
(x(n) << 1) XOR (poly if MSB set) LCG over GF(2)) including the
benchmark's self-verification step.
"""

from __future__ import annotations

import numpy as np

from ..core.ops import Compute

__all__ = [
    "POLY",
    "random_stream",
    "random_access_update",
    "verify_table",
    "randomaccess_model",
]

#: the HPCC polynomial for the GF(2) linear generator
POLY = 0x0000000000000007
_MASK64 = (1 << 64) - 1


def random_stream(count: int, start: int = 1) -> np.ndarray:
    """The HPCC pseudo-random sequence a(i) as uint64."""
    if count < 0:
        raise ValueError("count must be non-negative")
    out = np.empty(count, dtype=np.uint64)
    value = start & _MASK64
    for i in range(count):
        high_bit = value >> 63
        value = ((value << 1) & _MASK64) ^ (POLY if high_bit else 0)
        out[i] = value
    return out


def random_access_update(table: np.ndarray, updates: int,
                         start: int = 1) -> np.ndarray:
    """Apply ``updates`` XOR updates; table length must be a power of two."""
    n = table.shape[0]
    if n & (n - 1):
        raise ValueError("table length must be a power of two")
    stream = random_stream(updates, start)
    indices = (stream & np.uint64(n - 1)).astype(np.int64)
    for idx, value in zip(indices, stream):
        table[idx] ^= value
    return table


def verify_table(table_size: int, updates: int, start: int = 1) -> float:
    """Run updates then un-apply them; returns the fraction of errors.

    A correct implementation returns 0.0 (XOR updates are involutory
    when replayed, and our serial version has no races).
    """
    table = np.arange(table_size, dtype=np.uint64)
    random_access_update(table, updates, start)
    random_access_update(table, updates, start)  # replay undoes every update
    errors = int(np.count_nonzero(table != np.arange(table_size, dtype=np.uint64)))
    return errors / table_size


def randomaccess_model(updates: int, table_bytes: float,
                       phase: str = "") -> Compute:
    """Descriptor: ``updates`` dependent accesses over a huge table.

    The table dwarfs any cache, so the working set equals the table and
    reuse is zero; the read-modify-write traffic itself is tiny compared
    to the latency cost, which the runtime charges per access.
    """
    if updates < 0 or table_bytes <= 0:
        raise ValueError("updates must be >= 0 and table_bytes positive")
    return Compute(
        phase=phase,
        flops=updates,  # one XOR per update
        dram_bytes=16.0 * updates,
        working_set=table_bytes,
        reuse=0.0,
        flop_efficiency=0.5,
        random_accesses=updates,
    )
