"""Conjugate-gradient kernels: a working solver plus NAS-CG cost models.

CG is the paper's second headline kernel (NAS CG, Tables 2–4) and the
heart of POP's barotropic phase (Section 4.2).  Per iteration it
performs one sparse matrix-vector product (irregular, low reuse), a
handful of vector updates, and two dot products — the dot products are
the latency-critical allreduce points in the parallel version.

The functional solver works on CSR-like data via numpy (and accepts
scipy.sparse matrices); :func:`random_spd_matrix` builds NAS-style
random sparse SPD systems for validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.ops import Compute

__all__ = [
    "conjugate_gradient",
    "random_spd_matrix",
    "CgIterationCounts",
    "cg_iteration_counts",
    "spmv_model",
    "cg_vector_model",
]


def random_spd_matrix(n: int, nonzeros_per_row: int = 7,
                      shift: float = 10.0, seed: int = 0) -> sp.csr_matrix:
    """A random sparse symmetric positive-definite matrix.

    Built as ``R @ R.T + shift*I`` with a random sparse R — the same
    construction idea as the NAS CG benchmark's fractional-outer-product
    matrix, guaranteeing SPD for any seed.
    """
    if n < 1 or nonzeros_per_row < 1:
        raise ValueError("n and nonzeros_per_row must be positive")
    rng = np.random.default_rng(seed)
    density = min(1.0, nonzeros_per_row / n)
    r = sp.random(n, n, density=density, random_state=rng, format="csr")
    a = (r @ r.T).tocsr()
    return (a + shift * sp.identity(n, format="csr")).tocsr()


def conjugate_gradient(
    a, b: np.ndarray, tol: float = 1e-8, maxiter: Optional[int] = None,
    x0: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, int, float]:
    """Classic unpreconditioned CG; returns (x, iterations, residual).

    ``a`` is any object supporting ``a @ v`` (scipy sparse or ndarray).
    """
    n = b.shape[0]
    if maxiter is None:
        maxiter = 10 * n
    x = np.zeros_like(b) if x0 is None else x0.astype(float).copy()
    r = b - a @ x
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    iterations = 0
    while iterations < maxiter and np.sqrt(rs_old) / b_norm > tol:
        ap = a @ p
        denom = float(p @ ap)
        if denom <= 0:
            raise ValueError("matrix is not positive definite")
        alpha = rs_old / denom
        x += alpha * p
        r -= alpha * ap
        rs_new = float(r @ r)
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
        iterations += 1
    return x, iterations, np.sqrt(rs_old) / b_norm


@dataclass(frozen=True)
class CgIterationCounts:
    """Per-iteration operation counts of parallel CG on one rank."""

    rows_local: int
    nnz_local: int

    @property
    def spmv_flops(self) -> float:
        return 2.0 * self.nnz_local

    @property
    def spmv_bytes(self) -> float:
        # CSR value (8 B) + column index (4 B) per nonzero, plus ~4 B of
        # amortized x-gather cacheline waste per nonzero, plus the row
        # pointers and the result vector.
        return 16.0 * self.nnz_local + 16.0 * self.rows_local

    @property
    def vector_flops(self) -> float:
        # 3 axpy-like updates + 2 dot products, ~10 flops per row
        return 10.0 * self.rows_local

    @property
    def vector_bytes(self) -> float:
        return 6.0 * 8.0 * self.rows_local

    @property
    def working_set(self) -> float:
        return self.spmv_bytes + 5 * 8.0 * self.rows_local


def cg_iteration_counts(n: int, nonzeros_per_row: int,
                        ntasks: int) -> CgIterationCounts:
    """Counts for one rank of an n-row system split row-wise."""
    if ntasks < 1:
        raise ValueError("ntasks must be positive")
    rows = n // ntasks
    return CgIterationCounts(rows_local=rows,
                             nnz_local=rows * nonzeros_per_row)


def spmv_model(counts: CgIterationCounts, phase: str = "") -> Compute:
    """Descriptor for one local sparse matrix-vector product.

    Irregular column gathers give SpMV low-but-nonzero reuse (~0.25),
    plus a dependent-access component: of the ~14 column gathers per
    row, a couple miss cache with no overlap across iterations of the
    inner loop (folded memory-level parallelism), charged at the page
    placement's NUMA latency.  This term is what makes CG sensitive to
    interleave/membind even when bandwidth is not saturated.
    """
    return Compute(
        phase=phase,
        flops=counts.spmv_flops,
        dram_bytes=counts.spmv_bytes,
        working_set=counts.working_set,
        reuse=0.25,
        flop_efficiency=0.25,
        random_accesses=2.0 * counts.rows_local,
        # Irregular gathers cap SpMV's own streaming demand well below a
        # small system's controller (a second core still helps on DMZ)
        # but above half of the coherence-derated 8-socket ladder's
        # (two cores per Longs socket split the link).
        stream_bandwidth=1.5e9,
    )


def cg_vector_model(counts: CgIterationCounts, phase: str = "") -> Compute:
    """Descriptor for one iteration's vector updates and dot products."""
    return Compute(
        phase=phase,
        flops=counts.vector_flops,
        dram_bytes=counts.vector_bytes,
        working_set=5 * 8.0 * counts.rows_local,
        reuse=0.15,
        flop_efficiency=0.5,
    )
