"""STREAM kernels (McCalpin), functional and modeled.

The paper uses the LMbench3 STREAM-triad variant (Section 3.1) and the
HPCC STREAM embedding (Section 3.3).  STREAM has no temporal reuse at
all — every element is touched once per pass — which is what makes it
the pure memory-link probe of the study.

Natural traffic per element (8-byte doubles):

* copy:  c = a          → 16 B, 0 flops
* scale: b = q*c        → 16 B, 1 flop
* add:   c = a + b      → 24 B, 1 flop
* triad: a = b + q*c    → 24 B, 2 flops

(Write-allocate traffic is folded into the achievable-bandwidth
fraction of the machine model rather than counted per kernel, matching
how STREAM itself reports bandwidth.)
"""

from __future__ import annotations

import numpy as np

from ..core.ops import Compute

__all__ = [
    "copy",
    "scale",
    "add",
    "triad",
    "triad_model",
    "stream_model",
    "BYTES_PER_ELEMENT",
    "WRITE_FRACTION",
]

BYTES_PER_ELEMENT = {"copy": 16, "scale": 16, "add": 24, "triad": 24}
FLOPS_PER_ELEMENT = {"copy": 0, "scale": 1, "add": 1, "triad": 2}
#: writes / (reads + writes) per element: copy and scale stream one
#: read and one write; add and triad read two arrays and write one
WRITE_FRACTION = {"copy": 0.5, "scale": 0.5, "add": 1 / 3, "triad": 1 / 3}


# -- functional -----------------------------------------------------------

def copy(a: np.ndarray) -> np.ndarray:
    """STREAM copy: ``c = a``."""
    return a.copy()


def scale(c: np.ndarray, q: float) -> np.ndarray:
    """STREAM scale: ``b = q * c``."""
    return q * c


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """STREAM add: ``c = a + b``."""
    return a + b


def triad(b: np.ndarray, c: np.ndarray, q: float) -> np.ndarray:
    """STREAM triad: ``a = b + q * c``."""
    return b + q * c


# -- model ----------------------------------------------------------------

def stream_model(kind: str, n: int, passes: int = 1,
                 phase: str = "") -> Compute:
    """Operation-count descriptor for ``passes`` sweeps of one kernel.

    ``n`` is elements per array.  ``reuse`` is zero by construction;
    the flop efficiency is irrelevant (the kernel is bandwidth-bound)
    but set to the streaming-FPU value for completeness.
    """
    if kind not in BYTES_PER_ELEMENT:
        raise ValueError(f"unknown STREAM kernel {kind!r}")
    if n < 1 or passes < 1:
        raise ValueError("n and passes must be positive")
    return Compute(
        phase=phase,
        flops=FLOPS_PER_ELEMENT[kind] * n * passes,
        dram_bytes=BYTES_PER_ELEMENT[kind] * n * passes,
        working_set=BYTES_PER_ELEMENT[kind] * n,
        reuse=0.0,
        flop_efficiency=0.9,
        write_fraction=WRITE_FRACTION[kind],
    )


def triad_model(n: int, passes: int = 1, phase: str = "") -> Compute:
    """Convenience: the triad descriptor (the paper's headline kernel)."""
    return stream_model("triad", n, passes, phase)
