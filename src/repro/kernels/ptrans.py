"""PTRANS: parallel matrix transpose (A <- A^T + A).

PTRANS stresses the interconnect: with a 2-D block distribution every
process exchanges its block with the holder of the mirrored block, so
total traffic is the whole matrix crossing the network.  The paper uses
it to expose the SysV/USysV gap on bulk communication (Figure 12).

The functional part implements the block-cyclic pair structure and a
local verification; the model emits per-rank communication volume.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..core.ops import Compute

__all__ = [
    "transpose_add",
    "block_owner",
    "exchange_pairs",
    "ptrans_local_model",
    "ptrans_block_bytes",
]


def transpose_add(a: np.ndarray) -> np.ndarray:
    """The PTRANS computation on one node: ``A^T + A``."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("PTRANS requires a square matrix")
    return a.T + a


def block_owner(block_row: int, block_col: int, proc_rows: int,
                proc_cols: int) -> int:
    """Owner rank of a block under a 2-D block-cyclic distribution."""
    return (block_row % proc_rows) * proc_cols + (block_col % proc_cols)


def exchange_pairs(proc_rows: int, proc_cols: int,
                   blocks_per_dim: int) -> Dict[int, List[Tuple[int, int, int]]]:
    """For each rank: list of (block_row, block_col, partner_rank).

    The partner holds the mirrored block (col, row); diagonal blocks
    partner with themselves (local transpose, no traffic).
    """
    if proc_rows < 1 or proc_cols < 1 or blocks_per_dim < 1:
        raise ValueError("grid dimensions must be positive")
    result: Dict[int, List[Tuple[int, int, int]]] = {
        r: [] for r in range(proc_rows * proc_cols)
    }
    for br in range(blocks_per_dim):
        for bc in range(blocks_per_dim):
            owner = block_owner(br, bc, proc_rows, proc_cols)
            partner = block_owner(bc, br, proc_rows, proc_cols)
            result[owner].append((br, bc, partner))
    return result


def ptrans_block_bytes(n: int, blocks_per_dim: int) -> float:
    """Bytes of one block of an n×n double matrix."""
    block_dim = n // blocks_per_dim
    return 8.0 * block_dim * block_dim


def ptrans_local_model(n: int, ntasks: int, phase: str = "") -> Compute:
    """Local add+store work of one rank's share of ``A^T + A``."""
    if n < 1 or ntasks < 1:
        raise ValueError("n and ntasks must be positive")
    elements = n * n / ntasks
    return Compute(
        phase=phase,
        flops=elements,
        dram_bytes=24.0 * elements,
        working_set=16.0 * elements,
        reuse=0.0,
        flop_efficiency=0.6,
    )
