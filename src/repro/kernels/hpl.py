"""HPL: LU factorization kernels (the HPCC headline benchmark, Figure 8).

HPL factorizes a dense matrix with partial pivoting; its inner loop is
DGEMM-shaped (rank-k updates), which is why it inherits DGEMM's cache
friendliness, moderated by panel factorization and pivot broadcasts
that touch the network every block column.

The functional implementation is a right-looking blocked LU with
partial pivoting, validated against scipy.linalg.lu in the tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.ops import Compute

__all__ = ["lu_factor", "lu_reconstruct", "hpl_flops", "hpl_update_model",
           "panel_bytes"]


def lu_factor(a: np.ndarray, block: int = 32) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked right-looking LU with partial pivoting.

    Returns (lu, piv): the packed L\\U factors and the pivot rows, with
    the same conventions as scipy.linalg.lu_factor.
    """
    a = np.array(a, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("LU requires a square matrix")
    if block < 1:
        raise ValueError("block must be positive")
    n = a.shape[0]
    piv = np.arange(n)
    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # panel factorization with partial pivoting
        for k in range(k0, k1):
            pivot = k + int(np.argmax(np.abs(a[k:, k])))
            if a[pivot, k] == 0.0:
                raise ValueError("matrix is singular")
            if pivot != k:
                a[[k, pivot], :] = a[[pivot, k], :]
                piv[k], piv[pivot] = piv[pivot], piv[k]
            a[k + 1:, k] /= a[k, k]
            if k + 1 < k1:
                a[k + 1:, k + 1:k1] -= np.outer(a[k + 1:, k], a[k, k + 1:k1])
        # triangular solve for the block row, then the trailing update
        if k1 < n:
            lower = np.tril(a[k0:k1, k0:k1], -1) + np.eye(k1 - k0)
            a[k0:k1, k1:] = np.linalg.solve(lower, a[k0:k1, k1:])
            a[k1:, k1:] -= a[k1:, k0:k1] @ a[k0:k1, k1:]
    return a, piv


def lu_reconstruct(lu: np.ndarray, piv: np.ndarray) -> np.ndarray:
    """Rebuild the (row-permuted) original matrix from packed factors."""
    n = lu.shape[0]
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    permuted = lower @ upper
    restored = np.empty_like(permuted)
    restored[piv] = permuted
    return restored


def hpl_flops(n: int) -> float:
    """The standard HPL operation count: 2/3 n^3 + 2 n^2."""
    return 2.0 / 3.0 * n ** 3 + 2.0 * n ** 2


def panel_bytes(n: int, block: int) -> float:
    """Bytes of one n-row panel of ``block`` columns."""
    return 8.0 * n * block


def hpl_update_model(n: int, ntasks: int, phase: str = "") -> Compute:
    """One rank's share of the whole factorization's compute.

    The trailing updates dominate and are DGEMM-like (high reuse, high
    flop efficiency); panel work drags efficiency slightly below pure
    DGEMM.
    """
    if n < 1 or ntasks < 1:
        raise ValueError("n and ntasks must be positive")
    share = hpl_flops(n) / ntasks
    matrix_bytes = 8.0 * n * n / ntasks
    return Compute(
        phase=phase,
        flops=share,
        dram_bytes=4.0 * matrix_bytes,  # several sweeps over the local panel
        working_set=matrix_bytes,
        reuse=0.93,
        flop_efficiency=0.75,
    )
