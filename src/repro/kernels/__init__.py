"""Instrumented scientific kernels.

Each module pairs a *functional* implementation (real numpy math,
validated in the test suite) with an *operation-count model* (a
:class:`~repro.core.ops.Compute` descriptor at paper-scale sizes) used
by the workload drivers.
"""

from . import blas, cg, fft, hpl, ptrans, randomaccess, stream

__all__ = ["stream", "blas", "fft", "cg", "randomaccess", "ptrans", "hpl"]
