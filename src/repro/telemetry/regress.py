"""``repro-bench regress``: gate the latest run against a rolling baseline.

The gate reads the :mod:`run ledger <repro.telemetry.ledger>` and
compares the newest bench record against the median of up to
``--window`` earlier *comparable* runs — same config hash, and the same
cache class (a run is **cold** when disk-cache misses outnumber disk
hits — memory hits are intra-run coalescing, not warmth — else
**warm**; comparing a warm rerun against a cold baseline would declare
a meaningless 40x "speedup" and the reverse a spurious regression).

Three thresholded checks, any failure exits non-zero:

* **fidelity** — a paper table's rank correlation dropping more than
  ``RANK_CORRELATION_DROP`` below the baseline median (fidelity is
  deterministic, so this compares against every prior scored run, not
  just the same cache class);
* **slowdown** — total wall time exceeding the baseline by more than
  ``SLOWDOWN_FACTOR`` (and ``SLOWDOWN_FLOOR_S``, to ignore timer noise
  on fast warm runs), or any individual target with a baseline of at
  least ``TARGET_FLOOR_S`` slowing down by the same factor;
* **cache collapse** — a warm run's hit rate falling below half of the
  baseline hit rate.

``--inject-slowdown``/``--inject-fidelity-drop`` perturb the candidate
*in memory* before evaluation; CI uses them to prove the gate actually
trips.  ``--export`` writes the ``BENCH_history.json`` trajectory
summary (committed at the repo root).
"""

from __future__ import annotations

import argparse
import copy
import json
import statistics
import sys
from typing import Any, Dict, List, Optional, Tuple

from . import ledger

__all__ = [
    "RANK_CORRELATION_DROP",
    "SLOWDOWN_FACTOR",
    "HIT_RATE_COLLAPSE",
    "REPLAY_P99_FACTOR",
    "REPLAY_P99_FLOOR_MS",
    "evaluate",
    "excluded_from_baseline",
    "export_history",
    "main",
    "run_class",
]

#: fail when a table's rank correlation drops more than this
RANK_CORRELATION_DROP = 0.05
#: fail when wall time exceeds baseline * factor ...
SLOWDOWN_FACTOR = 1.25
#: ... and by at least this many absolute seconds (timer-noise floor)
SLOWDOWN_FLOOR_S = 0.2
#: per-target gating only for targets at least this slow in baseline
TARGET_FLOOR_S = 0.5
#: fail when a warm run's hit rate falls below baseline * this
HIT_RATE_COLLAPSE = 0.5
#: fail when a replay run's p99 latency exceeds baseline * factor ...
REPLAY_P99_FACTOR = 2.0
#: ... and by at least this many absolute milliseconds (noise floor)
REPLAY_P99_FLOOR_MS = 10.0
#: rolling-baseline width
DEFAULT_WINDOW = 5


def run_class(record: Dict[str, Any]) -> str:
    """``"cold"`` when the run had to simulate, ``"warm"`` when it replayed.

    Classified from the cache-tier deltas, not the raw hit rate: a cold
    sweep coalesces duplicate cells into *memory* hits (the 142 s
    seed-cold run scored a 0.54 hit rate that way) while still missing
    every unique cell on disk, so the tier that distinguishes the two is
    the persistent one — a run is warm only when disk hits cover at
    least as many lookups as misses.  Records without tier counters
    (older schema) fall back to the overall-rate heuristic.
    """
    cache = record.get("cache") or {}
    misses = cache.get("misses")
    if isinstance(misses, (int, float)) and (
            "disk_hits" in cache or "memory_hits" in cache):
        disk_hits = cache.get("disk_hits") or 0
        return "cold" if misses > disk_hits else "warm"
    rate = ledger.hit_rate(record)
    if rate is None or rate < 0.5:
        return "cold"
    return "warm"


def excluded_from_baseline(record: Dict[str, Any]) -> Optional[str]:
    """Why a record cannot anchor (or be judged against) a baseline.

    Aborted runs carry partial timings; fault-injected runs describe a
    deliberately degraded machine.  Comparing either against healthy
    runs would report injected damage as a regression (or mask a real
    one), so both are excluded.  Returns the reason, or ``None`` for a
    normal record.
    """
    if record.get("status") == "aborted":
        return "aborted"
    if record.get("faults"):
        return "fault-injected"
    return None


def _median(values: List[float]) -> float:
    return statistics.median(values)


def _target_seconds(record: Dict[str, Any]) -> Dict[str, float]:
    return {t["name"]: t["seconds"] for t in record.get("targets") or []
            if isinstance(t, dict) and "seconds" in t}


def _fidelity_rhos(record: Dict[str, Any]) -> Dict[str, float]:
    out = {}
    for table, scores in (record.get("fidelity") or {}).items():
        rho = scores.get("rank_correlation")
        if rho is not None:
            out[table] = rho
    return out


def evaluate(records: List[Dict[str, Any]],
             window: int = DEFAULT_WINDOW,
             inject_slowdown: Optional[float] = None,
             inject_fidelity_drop: Optional[float] = None,
             ) -> Tuple[Dict[str, Any], List[str], List[str]]:
    """Judge the newest bench record against its rolling baseline.

    Returns ``(summary, failures, notes)``; an empty ``failures`` list
    means the gate passes.  Raises :class:`ValueError` when the ledger
    holds no bench records at all.
    """
    bench = [r for r in records
             if r.get("tool") in ("bench", "serve", "cluster", "replay")]
    if not bench:
        raise ValueError(
            "ledger holds no bench, serve, cluster or replay records")
    candidate = copy.deepcopy(bench[-1])
    previous = [r for r in bench[:-1] if excluded_from_baseline(r) is None]
    failures: List[str] = []
    notes: List[str] = []

    reason = excluded_from_baseline(candidate)
    if reason is not None:
        notes.append(f"candidate is {reason}; all gates skipped "
                     "(such runs never anchor baselines either)")
        summary = {
            "run_id": candidate.get("run_id"),
            "class": run_class(candidate),
            "elapsed_s": candidate.get("elapsed_s"),
            "hit_rate": ledger.hit_rate(candidate),
            "baseline_runs": [],
            "fidelity_baseline_runs": [],
        }
        return summary, failures, notes

    if inject_slowdown:
        candidate["elapsed_s"] = candidate.get("elapsed_s", 0.0) \
            * inject_slowdown
        for target in candidate.get("targets") or []:
            target["seconds"] = target.get("seconds", 0.0) * inject_slowdown
        notes.append(f"injected synthetic slowdown x{inject_slowdown:g}")
    if inject_fidelity_drop:
        for scores in (candidate.get("fidelity") or {}).values():
            if scores.get("rank_correlation") is not None:
                scores["rank_correlation"] -= inject_fidelity_drop
        notes.append("injected synthetic fidelity drop "
                     f"-{inject_fidelity_drop:g}")

    klass = run_class(candidate)
    comparable = [r for r in previous
                  if r.get("config_hash") == candidate.get("config_hash")
                  and run_class(r) == klass]
    baseline = comparable[-window:]

    # -- slowdown ----------------------------------------------------------
    if baseline:
        base_total = _median([r.get("elapsed_s", 0.0) for r in baseline])
        total = candidate.get("elapsed_s", 0.0)
        if (total > base_total * SLOWDOWN_FACTOR
                and total - base_total > SLOWDOWN_FLOOR_S):
            failures.append(
                f"slowdown: {klass} run took {total:.2f}s vs "
                f"{base_total:.2f}s baseline "
                f"(> x{SLOWDOWN_FACTOR:g} + {SLOWDOWN_FLOOR_S}s)")
        base_targets: Dict[str, List[float]] = {}
        for record in baseline:
            for name, seconds in _target_seconds(record).items():
                base_targets.setdefault(name, []).append(seconds)
        for name, seconds in _target_seconds(candidate).items():
            if name not in base_targets:
                continue
            base = _median(base_targets[name])
            if base >= TARGET_FLOOR_S and seconds > base * SLOWDOWN_FACTOR:
                failures.append(
                    f"slowdown: target {name} took {seconds:.2f}s vs "
                    f"{base:.2f}s baseline (> x{SLOWDOWN_FACTOR:g})")
    else:
        notes.append(f"no comparable {klass}-class baseline; "
                     "timing and cache gates skipped")

    # -- cache hit-rate collapse ------------------------------------------
    if baseline and klass == "warm":
        base_rates = [r for r in (ledger.hit_rate(b) for b in baseline)
                      if r is not None]
        rate = ledger.hit_rate(candidate)
        if base_rates and rate is not None:
            base_rate = _median(base_rates)
            if base_rate >= 0.5 and rate < base_rate * HIT_RATE_COLLAPSE:
                failures.append(
                    f"cache collapse: hit rate {rate:.2f} vs "
                    f"{base_rate:.2f} baseline "
                    f"(< x{HIT_RATE_COLLAPSE:g})")

    # -- replay latency / zero-loss ---------------------------------------
    replay = candidate.get("replay") or {}
    if replay:
        if replay.get("errors"):
            failures.append(
                f"replay: {replay['errors']} request(s) failed — the "
                "cluster's zero-accepted-job-loss guarantee did not hold")
        # a replay with zero completed requests reports p99 = 0.0 (the
        # percentile of an empty latency list), which would make any
        # healthy run look like an unbounded regression if it anchored
        # the baseline — and would let a fully-failed candidate sail
        # through the latency gate; skip such records on both sides
        base_p99 = [b["replay"]["latency_p99_ms"] for b in baseline
                    if (b.get("replay") or {}).get("ok")
                    and (b.get("replay") or {}).get("latency_p99_ms")
                    is not None]
        if not replay.get("ok"):
            p99 = None
            notes.append("replay completed zero requests; p99 latency "
                         "gate skipped (the zero-loss gate still "
                         "applies)")
        else:
            p99 = replay.get("latency_p99_ms")
        if base_p99 and p99 is not None:
            base = _median(base_p99)
            if (p99 > base * REPLAY_P99_FACTOR
                    and p99 - base > REPLAY_P99_FLOOR_MS):
                failures.append(
                    f"replay: p99 latency {p99:.1f}ms vs {base:.1f}ms "
                    f"baseline (> x{REPLAY_P99_FACTOR:g} + "
                    f"{REPLAY_P99_FLOOR_MS:g}ms)")
        elif p99 is not None and not base_p99:
            notes.append("no comparable replay baseline; "
                         "p99 latency gate skipped")

    # -- fidelity ----------------------------------------------------------
    scored = [r for r in previous if _fidelity_rhos(r)][-window:]
    cand_rhos = _fidelity_rhos(candidate)
    if not cand_rhos:
        notes.append("candidate has no fidelity scores "
                     "(run the 'fidelity' target to gate agreement)")
    elif not scored:
        notes.append("no earlier fidelity scores; fidelity gate skipped")
    else:
        for table, rho in sorted(cand_rhos.items()):
            history = [r for r in (_fidelity_rhos(b).get(table)
                                   for b in scored) if r is not None]
            if not history:
                continue
            base_rho = _median(history)
            if rho < base_rho - RANK_CORRELATION_DROP:
                failures.append(
                    f"fidelity: {table} rank correlation {rho:.3f} vs "
                    f"{base_rho:.3f} baseline "
                    f"(drop > {RANK_CORRELATION_DROP:g})")

    summary = {
        "run_id": candidate.get("run_id"),
        "class": klass,
        "elapsed_s": candidate.get("elapsed_s"),
        "hit_rate": ledger.hit_rate(candidate),
        "baseline_runs": [r.get("run_id") for r in baseline],
        "fidelity_baseline_runs": [r.get("run_id") for r in scored],
    }
    return summary, failures, notes


def _run_summary(record: Dict[str, Any]) -> Dict[str, Any]:
    rhos = _fidelity_rhos(record)
    rate = ledger.hit_rate(record)
    return {
        "run_id": record.get("run_id"),
        "started_at": record.get("started_at"),
        "tool": record.get("tool"),
        "git_sha": record.get("git_sha"),
        "class": run_class(record),
        "elapsed_s": record.get("elapsed_s"),
        "targets": len(record.get("targets") or []),
        "cache_hit_rate": None if rate is None else round(rate, 4),
        "trace_dropped": record.get("trace_dropped"),
        "fidelity_mean_rank_correlation":
            round(sum(rhos.values()) / len(rhos), 4) if rhos else None,
    }


def export_history(records: List[Dict[str, Any]],
                   summary: Dict[str, Any],
                   failures: List[str],
                   notes: List[str],
                   path: str) -> None:
    """Write the ``BENCH_history.json`` trajectory summary."""
    verdict = "regression" if failures else (
        "ok" if summary.get("baseline_runs")
        or summary.get("fidelity_baseline_runs") else "no-baseline")
    payload = {
        "schema": 1,
        "gates": {
            "rank_correlation_drop": RANK_CORRELATION_DROP,
            "slowdown_factor": SLOWDOWN_FACTOR,
            "slowdown_floor_s": SLOWDOWN_FLOOR_S,
            "hit_rate_collapse": HIT_RATE_COLLAPSE,
            "replay_p99_factor": REPLAY_P99_FACTOR,
            "replay_p99_floor_ms": REPLAY_P99_FLOOR_MS,
            "window": DEFAULT_WINDOW,
        },
        "runs": [_run_summary(r) for r in records],
        "latest": summary,
        "verdict": verdict,
        "failures": failures,
        "notes": notes,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench regress",
        description="Compare the latest recorded bench run against its "
                    "rolling baseline and fail on regressions.",
    )
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="ledger location (default: .repro/ledger, "
                             "or $REPRO_LEDGER_DIR)")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        metavar="N", help="rolling-baseline width "
                                          f"(default: {DEFAULT_WINDOW})")
    parser.add_argument("--export", metavar="FILE", default=None,
                        help="also write a BENCH_history.json summary")
    parser.add_argument("--inject-slowdown", type=float, default=None,
                        metavar="FACTOR",
                        help="scale the candidate's wall times by FACTOR "
                             "before gating (gate self-test)")
    parser.add_argument("--inject-fidelity-drop", type=float, default=None,
                        metavar="DELTA",
                        help="subtract DELTA from the candidate's rank "
                             "correlations before gating (gate self-test)")
    parser.add_argument("--surrogate-gate", action="store_true",
                        help="also run the pinned calibration sweep in "
                             "both execution tiers and fail when any "
                             "table's fast-vs-exact rank correlation "
                             "drops below 1 - RANK_CORRELATION_DROP")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the calibration sweep "
                             "(only with --surrogate-gate)")
    args = parser.parse_args(argv)

    failures: List[str] = []
    notes: List[str] = []
    if args.surrogate_gate:
        from ..surrogate.calibration import compare, format_report

        report = compare(jobs=args.jobs)
        print(format_report(report))
        floor = 1.0 - RANK_CORRELATION_DROP
        for table, scores in sorted(report["tables"].items()):
            rho = scores["rank_correlation"]
            if rho is not None and rho < floor:
                failures.append(
                    f"surrogate: {table} fast-vs-exact rank correlation "
                    f"{rho:.3f} < {floor:g}")
        mean = report["mean_rank_correlation"]
        if mean is None:
            failures.append("surrogate: calibration sweep produced no "
                            "scorable tables")
        elif mean < floor:
            failures.append(f"surrogate: mean fast-vs-exact rank "
                            f"correlation {mean:.3f} < {floor:g}")

    records = ledger.read_records(args.ledger_dir)
    summary = None
    try:
        summary, ledger_failures, ledger_notes = evaluate(
            records, window=max(1, args.window),
            inject_slowdown=args.inject_slowdown,
            inject_fidelity_drop=args.inject_fidelity_drop)
        failures.extend(ledger_failures)
        notes.extend(ledger_notes)
    except ValueError as exc:
        if not args.surrogate_gate:
            print(f"regress: {exc} under "
                  f"{ledger.ledger_dir(args.ledger_dir)} "
                  "(run repro-bench with --ledger first)", file=sys.stderr)
            return 2
        notes.append(f"{exc}; ledger gates skipped")

    if summary is not None:
        print(f"candidate: {summary['run_id']} ({summary['class']}, "
              f"{summary['elapsed_s']:.2f}s)")
        if summary["baseline_runs"]:
            print(f"baseline:  median of {len(summary['baseline_runs'])} "
                  f"comparable run(s)")
    for note in notes:
        print(f"note: {note}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("ok: no regressions against the rolling baseline")
    if args.export and summary is not None:
        export_history(records, summary, failures, notes, args.export)
        print(f"[history summary written to {args.export}]")
    return 1 if failures else 0
