"""Distributed trace propagation across the service/cluster stack.

A trace is born when a client mints a ``trace_id`` (CLI ``submit
--trace``, ``repro-bench replay --trace``, or any caller filling the
optional ``trace`` field on a wire cell).  Each hop — router forward,
shard protocol handler, session job, executor batch — opens a
:func:`traced` span that mints its own ``span_id``, records wall-clock
start and duration into the active :class:`~.ledger.RunRecorder`
(``trace_spans``), and passes its span id down as the next hop's
``parent_span``.  ``repro-bench trace export`` later stitches the spans
from every process's ledger record back into one Chrome trace.

Like :mod:`.spans`, everything here is null-path cheap: no recorder or
no ``trace_id`` means no clock reads and no allocation beyond a shared
singleton.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from .spans import active_recorder

__all__ = [
    "MAX_ID_LEN", "TraceSpan", "new_span_id", "new_trace_id",
    "record_trace_span", "trace_from_cell", "traced", "valid_id",
    "wire_trace",
]

#: upper bound accepted for ids arriving over the wire
MAX_ID_LEN = 64


def new_trace_id() -> str:
    """A fresh 64-bit request identity, hex-encoded."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 32-bit span identity, hex-encoded."""
    return os.urandom(4).hex()


def valid_id(value: Any) -> bool:
    """Whether a wire value is usable as a trace/span id."""
    return isinstance(value, str) and 0 < len(value) <= MAX_ID_LEN


def trace_from_cell(cell: Any) -> Tuple[Optional[str], Optional[str]]:
    """Extract ``(trace_id, parent_span)`` from a raw wire cell.

    Lenient by design — malformed trace envelopes degrade to an
    untraced request rather than failing it (tracing is best-effort
    metadata, never load-bearing).
    """
    if not isinstance(cell, dict):
        return None, None
    trace = cell.get("trace")
    if not isinstance(trace, dict):
        return None, None
    trace_id = trace.get("trace_id")
    parent = trace.get("parent_span")
    if not valid_id(trace_id):
        return None, None
    return trace_id, (parent if valid_id(parent) else None)


def wire_trace(trace_id: str,
               parent_span: Optional[str] = None) -> Dict[str, str]:
    """The wire form of a trace context (the cell's ``trace`` field)."""
    trace: Dict[str, str] = {"trace_id": trace_id}
    if parent_span:
        trace["parent_span"] = parent_span
    return trace


class TraceSpan:
    """One live hop of a trace; ``span_id`` seeds the next hop's parent."""

    __slots__ = ("name", "trace_id", "span_id", "parent_span", "attrs")

    def __init__(self, name: str, trace_id: str,
                 parent_span: Optional[str], attrs: Dict[str, Any]):
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_span = parent_span
        self.attrs = attrs

    def note(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class _NullTraceSpan:
    """Free stand-in when tracing is off; ``span_id`` stays ``None``."""

    __slots__ = ()
    name = trace_id = span_id = parent_span = None

    def note(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullTraceSpan()


@contextmanager
def traced(name: str, trace_id: Optional[str],
           parent_span: Optional[str] = None,
           **attrs: Any) -> Iterator[Any]:
    """Record one hop of ``trace_id``; null path when untraced.

    Yields a :class:`TraceSpan` (or the null singleton) whose
    ``span_id`` callers propagate as the child hops' ``parent_span``.
    The span is recorded even when the body raises — a failed hop is
    still a hop.
    """
    recorder = active_recorder()
    if recorder is None or not trace_id:
        yield _NULL_SPAN
        return
    span = TraceSpan(name, trace_id, parent_span, attrs)
    t0_wall = time.time()
    t0 = time.perf_counter()
    try:
        yield span
    finally:
        record = getattr(recorder, "record_trace_span", None)
        if record is not None:
            record(name, trace_id, span.span_id, parent_span,
                   t0_wall, time.perf_counter() - t0, span.attrs)


def record_trace_span(name: str, trace_id: Optional[str], span_id: str,
                      parent_span: Optional[str], t0: float, dur_s: float,
                      attrs: Optional[Dict[str, Any]] = None) -> None:
    """Record an already-timed hop (for spans closed by callbacks).

    Used where a context manager cannot bracket the work — e.g. a
    session job whose lifetime runs from ``submit()`` to future
    delivery on the dispatcher thread.
    """
    if not trace_id:
        return
    recorder = active_recorder()
    if recorder is None:
        return
    record = getattr(recorder, "record_trace_span", None)
    if record is not None:
        record(name, trace_id, span_id, parent_span, t0, dur_s, attrs)
