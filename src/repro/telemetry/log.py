"""stdlib-``logging`` wiring for the ``repro.*`` logger hierarchy.

Every module logs through ``logging.getLogger("repro.<subsystem>")``
(:func:`get_logger` is a convenience spelling).  Nothing is printed
until :func:`configure_logging` installs the single stderr handler —
the CLIs call it from ``--verbose``/``--quiet``; library users never
pay for handlers they did not ask for (a ``NullHandler`` on the root
``repro`` logger suppresses the "no handlers" fallback while leaving
genuine warnings reachable through ``logging.lastResort``).
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, TextIO

__all__ = ["ROOT_LOGGER", "configure_logging", "get_logger"]

ROOT_LOGGER = "repro"

#: the handler installed by :func:`configure_logging` (one per process)
_HANDLER: Optional[logging.Handler] = None

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger("sim.trace")`` and ``get_logger("repro.sim.trace")``
    name the same logger.
    """
    if name != ROOT_LOGGER and not name.startswith(ROOT_LOGGER + "."):
        name = f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(name)


def _level_for(verbosity: int) -> int:
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def configure_logging(verbosity: int = 0,
                      stream: Optional[TextIO] = None) -> logging.Logger:
    """Install (or retune) the process-wide stderr handler.

    ``verbosity`` follows the CLI convention: ``-1`` for ``--quiet``,
    ``0`` default (warnings), ``1`` for ``-v`` (info), ``>=2`` for
    ``-vv`` (debug).  Calling again replaces the previous handler, so
    repeated CLI invocations in one process (the test suite) never
    stack duplicate output.
    """
    global _HANDLER
    root = logging.getLogger(ROOT_LOGGER)
    if _HANDLER is not None:
        root.removeHandler(_HANDLER)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter("[%(name)s] %(levelname)s: "
                                           "%(message)s"))
    root.addHandler(handler)
    root.setLevel(_level_for(verbosity))
    _HANDLER = handler
    return root
