"""``repro-bench history``: ASCII trend view over the run ledger.

Renders one sparkline per tracked metric — wall time, cache hit rate,
mean and per-table fidelity rank correlation, trace drops — across the
recorded runs, oldest to newest, so the ROADMAP's "fast as the hardware
allows" trajectory is visible from the shell.  ``--plot METRIC`` blows
one metric up into a full :mod:`~repro.core.asciiplot` chart;
``--json`` emits the same run/metric series machine-readable.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.asciiplot import plot, sparkline
from ..core.report import SeriesResult
from . import ledger

__all__ = ["history_document", "main", "metric_series", "render_history"]

Series = List[Optional[float]]


def _mean_rho(record: Dict[str, Any]) -> Optional[float]:
    rhos = [scores.get("rank_correlation")
            for scores in (record.get("fidelity") or {}).values()]
    rhos = [r for r in rhos if r is not None]
    return sum(rhos) / len(rhos) if rhos else None


def _gauge(name: str) -> Callable[[Dict[str, Any]], Optional[float]]:
    return lambda r: (r.get("gauges") or {}).get(name)


def _replay(name: str) -> Callable[[Dict[str, Any]], Optional[float]]:
    return lambda r: (r.get("replay") or {}).get(name)


def _cluster_coalesce(record: Dict[str, Any]) -> Optional[float]:
    """Cluster-wide coalesce ratio, wherever the record carries it."""
    replay = record.get("replay") or {}
    if replay.get("coalesce_rate") is not None:
        return replay["coalesce_rate"]
    cluster = record.get("cluster") or {}
    if cluster.get("coalesce_rate") is not None:
        return cluster["coalesce_rate"]
    gauges = record.get("gauges") or {}
    if gauges.get("cluster_shards") is not None:
        return gauges.get("service_coalesce_rate")
    return None


#: metric name -> extractor over one ledger record
METRICS: Dict[str, Callable[[Dict[str, Any]], Optional[float]]] = {
    "elapsed": lambda r: r.get("elapsed_s"),
    "hit-rate": ledger.hit_rate,
    "fidelity": _mean_rho,
    "trace-dropped": lambda r: r.get("trace_dropped"),
    # service gauges (None on plain bench runs, so sparklines skip them)
    "queue-depth-peak": _gauge("service_queue_depth_peak"),
    "coalesce-rate": _gauge("service_coalesce_rate"),
    "wait-max": _gauge("service_wait_seconds_max"),
    "rejected": _gauge("service_rejected"),
    # cluster / replay metrics (None outside cluster and replay runs)
    "cluster-coalesce": _cluster_coalesce,
    "shards-alive": _gauge("cluster_shards_alive"),
    "rerouted": _gauge("cluster_rerouted"),
    "replay-p50-ms": _replay("latency_p50_ms"),
    "replay-p99-ms": _replay("latency_p99_ms"),
    "replay-rps": _replay("throughput_rps"),
    "replay-errors": _replay("errors"),
}


def _shard_utilization(records: List[Dict[str, Any]]
                       ) -> Dict[str, Series]:
    """Per-shard utilization series across replay/cluster records.

    Replay records carry the share of requests each shard answered;
    cluster records carry per-shard forwarded counts (normalized here),
    so both surface in the same per-shard block.
    """
    names = sorted({name for r in records
                    for name in ((r.get("replay") or {})
                                 .get("per_shard_utilization") or {})}
                   | {shard.get("name") for r in records
                      for shard in ((r.get("cluster") or {})
                                    .get("shards") or [])
                      if shard.get("name")})
    series: Dict[str, Series] = {name: [] for name in names}
    for record in records:
        replay_util = (record.get("replay") or {}) \
            .get("per_shard_utilization") or {}
        cluster_shards = {shard.get("name"): shard for shard in
                          ((record.get("cluster") or {})
                           .get("shards") or [])}
        total_forwarded = sum(s.get("forwarded", 0)
                              for s in cluster_shards.values()) or None
        for name in names:
            if name in replay_util:
                series[name].append(replay_util[name])
            elif name in cluster_shards and total_forwarded:
                series[name].append(round(
                    cluster_shards[name].get("forwarded", 0)
                    / total_forwarded, 6))
            else:
                series[name].append(None)
    return series


def metric_series(records: List[Dict[str, Any]], metric: str) -> Series:
    """One value (or None) per record for a named metric."""
    try:
        extract = METRICS[metric]
    except KeyError:
        raise ValueError(f"unknown metric {metric!r}; "
                         f"choose from {', '.join(sorted(METRICS))}")
    return [extract(r) for r in records]


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{value:.3g}"


def _line(label: str, values: Series, width: int) -> str:
    finite = [v for v in values if v is not None]
    trend = sparkline(values, width=width)
    stats = "(no data)" if not finite else (
        f"last {_fmt(values[-1] if values[-1] is not None else finite[-1])}"
        f"  min {_fmt(min(finite))}  max {_fmt(max(finite))}")
    return f"  {label:<28s} {trend:<{min(width, 40)}s}  {stats}"


def render_history(records: List[Dict[str, Any]], width: int = 40) -> str:
    """The multi-metric sparkline view as one printable string."""
    lines = []
    for metric in ("elapsed", "hit-rate", "fidelity", "trace-dropped"):
        lines.append(_line(metric, metric_series(records, metric), width))
    service_metrics = ("queue-depth-peak", "coalesce-rate", "wait-max",
                      "rejected")
    if any(r.get("gauges") for r in records):
        lines.append("  served traffic:")
        for metric in service_metrics:
            lines.append(_line(f"  {metric}",
                               metric_series(records, metric), width))
        cluster_metrics = ("cluster-coalesce", "shards-alive", "rerouted",
                           "replay-p50-ms", "replay-p99-ms", "replay-rps",
                           "replay-errors")
        if any(metric_series(records, m).count(None) < len(records)
               for m in cluster_metrics):
            for metric in cluster_metrics:
                lines.append(_line(f"  {metric}",
                                   metric_series(records, metric), width))
        shard_series = _shard_utilization(records)
        if shard_series:
            lines.append("  per-shard utilization:")
            for name, values in shard_series.items():
                lines.append(_line(f"  {name}", values, width))
    tables = sorted({name for r in records
                     for name in (r.get("fidelity") or {})})
    if tables:
        lines.append("  per-table rank correlation:")
        for table in tables:
            values = [
                (r.get("fidelity") or {}).get(table, {})
                .get("rank_correlation")
                for r in records
            ]
            lines.append(_line(f"  {table}", values, width))
    return "\n".join(lines)


def history_document(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The ``--json`` payload: runs plus every metric series.

    Same data the sparkline view renders, machine-readable — one entry
    per run (id, time, tool, class-relevant fields) and one
    aligned-by-index series per metric, per shard, and per fidelity
    table.
    """
    tables = sorted({name for r in records
                     for name in (r.get("fidelity") or {})})
    return {
        "schema": 1,
        "runs": [{
            "run_id": r.get("run_id"),
            "started_at": r.get("started_at"),
            "tool": r.get("tool"),
            "git_sha": r.get("git_sha"),
            "status": r.get("status", "ok"),
        } for r in records],
        "metrics": {metric: metric_series(records, metric)
                    for metric in sorted(METRICS)},
        "per_shard_utilization": _shard_utilization(records),
        "per_table_rank_correlation": {
            table: [(r.get("fidelity") or {}).get(table, {})
                    .get("rank_correlation") for r in records]
            for table in tables
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench history",
        description="Sparkline trends over the recorded bench runs.",
    )
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="ledger location (default: .repro/ledger, "
                             "or $REPRO_LEDGER_DIR)")
    parser.add_argument("--last", type=int, default=50, metavar="N",
                        help="show at most the last N runs (default: 50)")
    parser.add_argument("--width", type=int, default=40, metavar="COLS",
                        help="sparkline width (default: 40)")
    parser.add_argument("--plot", metavar="METRIC", default=None,
                        choices=sorted(METRICS),
                        help="render one metric as a full ASCII chart")
    parser.add_argument("--json", action="store_true",
                        help="emit the run/metric series as JSON instead "
                             "of sparklines")
    args = parser.parse_args(argv)

    records = [r for r in ledger.read_records(args.ledger_dir)
               if r.get("tool") in ("bench", "serve", "cluster", "replay")]
    if not records:
        print(f"no bench, serve, cluster or replay runs recorded under "
              f"{ledger.ledger_dir(args.ledger_dir)} "
              "(run repro-bench with --ledger first)", file=sys.stderr)
        return 1
    records = records[-max(1, args.last):]

    if args.json:
        print(json.dumps(history_document(records), sort_keys=True))
        return 0
    print(f"run ledger: {ledger.ledger_path(args.ledger_dir)} "
          f"({len(records)} run(s), oldest -> newest)")
    if args.plot:
        values = metric_series(records, args.plot)
        series = SeriesResult(title=f"{args.plot} by run", x_label="run #",
                              y_label=args.plot)
        for i, value in enumerate(values, start=1):
            if value is not None:
                series.add_point(args.plot, float(i), value)
        print(plot(series))
        return 0
    print(render_history(records, width=max(4, args.width)))
    return 0
