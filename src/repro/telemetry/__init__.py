"""Structured telemetry: run ledger, spans, metrics, and tracing.

Five layers, all zero-overhead until a CLI opts in:

* :mod:`~repro.telemetry.log` — the ``repro.*`` stdlib-logging
  hierarchy (``--verbose``/``--quiet`` map onto it);
* :mod:`~repro.telemetry.spans` — ``span("sweep", ...)`` wall-time
  brackets that aggregate into the active run's record;
* :mod:`~repro.telemetry.metrics` — the live counters/gauges/histogram
  registry behind the ``{"op": "metrics"}`` protocol op and
  ``repro-bench top``;
* :mod:`~repro.telemetry.tracing` — distributed trace-id propagation
  across router/shard/session/executor hops, exported by
  ``repro-bench trace``;
* :mod:`~repro.telemetry.ledger` — one append-only JSONL record per
  instrumented ``repro-bench``/``repro-prof`` invocation, consumed by
  ``repro-bench history`` (:mod:`~repro.telemetry.history`) and the
  regression gate ``repro-bench regress``
  (:mod:`~repro.telemetry.regress`).
"""

from . import metrics, tracing
from .ledger import (
    RunRecorder,
    append,
    env_configured,
    hit_rate,
    ledger_dir,
    ledger_path,
    read_records,
)
from .log import configure_logging, get_logger
from .spans import active_recorder, set_recorder, span

__all__ = [
    "RunRecorder",
    "active_recorder",
    "append",
    "configure_logging",
    "env_configured",
    "get_logger",
    "hit_rate",
    "ledger_dir",
    "ledger_path",
    "metrics",
    "read_records",
    "set_recorder",
    "span",
    "tracing",
]
