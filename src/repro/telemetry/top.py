"""``repro-bench top``: live terminal dashboard over the metrics plane.

Scrapes the side-effect-free ``{"op": "metrics"}`` protocol op — from
one daemon (``--connect``) or a whole cluster (router + every shard,
discovered through the ``.repro/cluster.json`` state file) — and
renders a refreshing text dashboard: queue depth, throughput,
coalesce/reject counters, wait/forward latency quantiles estimated
from the mergeable histograms, the simulator's ``Tracer`` drop tally,
and a :mod:`~repro.core.asciiplot` sparkline of recent throughput.

Scraping is read-only and cheap; ``--once`` prints a single frame (the
CI smoke and tests use that), the default loop redraws every
``--interval`` seconds until interrupted.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..core.asciiplot import sparkline
from ..service import cliargs
from ..service.transport import request
from . import metrics

__all__ = ["main", "render_frame", "scrape_endpoints"]

#: throughput sparkline memory, in refresh intervals
HISTORY = 60


class _Endpoint:
    """One scrape target and its per-interval deltas."""

    def __init__(self, name: str, address: str):
        self.name = name
        self.address = address
        self.snapshot: Optional[Dict[str, Any]] = None
        self.reply: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.rate = 0.0
        self.history: Deque[float] = deque(maxlen=HISTORY)
        self._last_completed: Optional[float] = None
        self._last_t: Optional[float] = None

    def scrape(self) -> None:
        now = time.monotonic()
        try:
            reply = request(self.address, {"op": "metrics"}, timeout=5.0)
        except (OSError, ValueError) as exc:
            self.snapshot, self.reply = None, None
            self.error = f"{type(exc).__name__}: {exc}"
            self.history.append(0.0)
            return
        snap = reply.get("metrics") if isinstance(reply, dict) else None
        if reply.get("status") != "ok" or not isinstance(snap, dict):
            self.snapshot, self.reply = None, None
            self.error = "malformed metrics reply"
            self.history.append(0.0)
            return
        self.error = None
        self.snapshot, self.reply = snap, reply
        completed = metrics.counter_total(snap, "service_completed_total")
        if self._last_completed is not None and self._last_t is not None \
                and now > self._last_t:
            self.rate = max(0.0, (completed - self._last_completed)
                            / (now - self._last_t))
        self._last_completed, self._last_t = completed, now
        self.history.append(self.rate)


def _endpoints_from_args(args: argparse.Namespace) -> List[_Endpoint]:
    if args.connect:
        return [_Endpoint("endpoint", args.connect)]
    try:
        with open(args.state) as handle:
            state = json.load(handle)
    except (OSError, ValueError):
        # no cluster state: fall back to the single-daemon default socket
        return [_Endpoint("daemon", ".repro/service.sock")]
    endpoints = [_Endpoint("router", state["router"])]
    for name in sorted(state.get("shards") or {}):
        endpoints.append(_Endpoint(name, state["shards"][name]))
    return endpoints


def scrape_endpoints(endpoints: List[_Endpoint]) -> None:
    for endpoint in endpoints:
        endpoint.scrape()


def _quantiles_ms(snap: Dict[str, Any], name: str
                  ) -> Tuple[Optional[float], Optional[float]]:
    entry = metrics.histogram_entry(snap, name)
    if entry is None:
        return None, None
    p50 = metrics.histogram_quantile(entry, 0.50)
    p99 = metrics.histogram_quantile(entry, 0.99)
    return (None if p50 is None else p50 * 1e3,
            None if p99 is None else p99 * 1e3)


def _fmt_ms(value: Optional[float]) -> str:
    return "—" if value is None else f"{value:.2f}ms"


def _int(value: Optional[float]) -> int:
    return int(value or 0)


#: gauge value -> breaker state (mirrors router.BREAKER_STATE_GAUGE)
_BREAKER_NAMES = {1: "half-open", 2: "open"}


def _tripped_breakers(snap: Dict[str, Any]) -> List[str]:
    """``shard=state`` labels for every non-closed circuit breaker."""
    tripped = []
    for key, value in sorted((snap.get("gauges") or {}).items()):
        if not key.startswith("router_breaker_state{"):
            continue
        state = _BREAKER_NAMES.get(int(value))
        if state is None:
            continue
        shard = key[key.find('shard="') + 7:key.rfind('"')] \
            if 'shard="' in key else key
        tripped.append(f"{shard}={state}")
    return tripped


def render_frame(endpoints: List[_Endpoint], width: int = 40) -> str:
    """One dashboard frame as a printable string."""
    lines = [time.strftime("repro-bench top — %H:%M:%S")]
    for endpoint in endpoints:
        if endpoint.error is not None:
            lines.append(f"{endpoint.name:<10} {endpoint.address:<22} "
                         f"DOWN  ({endpoint.error})")
            continue
        snap = endpoint.snapshot or {}
        reply = endpoint.reply or {}
        queue = _int(metrics.gauge_value(snap, "service_queue_depth"))
        completed = _int(metrics.counter_total(snap,
                                               "service_completed_total"))
        coalesced = _int(metrics.counter_total(
            snap, "service_coalesce_hits_total"))
        rejected = _int(metrics.counter_total(snap,
                                              "service_rejected_total"))
        dropped = _int(metrics.gauge_value(snap, "sim_trace_dropped"))
        wait50, wait99 = _quantiles_ms(snap, "service_wait_seconds")
        lines.append(
            f"{endpoint.name:<10} {endpoint.address:<22} up    "
            f"queue {queue:>4}  done {completed:>6} "
            f"({endpoint.rate:6.1f}/s)  coalesced {coalesced:>5}  "
            f"rejected {rejected:>4}")
        detail = (f"{'':10} wait p50 {_fmt_ms(wait50)} "
                  f"p99 {_fmt_ms(wait99)}")
        if reply.get("router"):
            fwd50, fwd99 = _quantiles_ms(snap, "router_forward_seconds")
            forwards = _int(metrics.counter_total(snap,
                                                  "router_forwards_total"))
            reroutes = _int(metrics.counter_total(snap,
                                                  "router_reroutes_total"))
            detail += (f"  forwards {forwards} (rerouted {reroutes}) "
                       f"fwd p50 {_fmt_ms(fwd50)} p99 {_fmt_ms(fwd99)}")
            shards = reply.get("shards") or {}
            dead = sorted(name for name, entry in shards.items()
                          if isinstance(entry, dict) and "error" in entry)
            detail += (f"  shards {len(shards) - len(dead)}"
                       f"/{len(shards)} up")
            if dead:
                detail += f" (down: {', '.join(dead)})"
            tripped = _tripped_breakers(snap)
            if tripped:
                detail += f"  breakers: {', '.join(tripped)}"
        if dropped:
            detail += f"  sim-trace drops {dropped}"
        lines.append(detail)
        lines.append(f"{'':10} {sparkline(list(endpoint.history) or [0.0], width=width)} "
                     f"req/s")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench top``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench top",
        description="Refreshing dashboard over live service/cluster "
                    "metrics (scrapes the side-effect-free 'metrics' "
                    "protocol op).",
    )
    cliargs.add_connect_argument(
        parser, help="scrape one endpoint (host:port or socket path) "
                     "instead of the cluster state file")
    parser.add_argument("--state", metavar="PATH",
                        default=".repro/cluster.json",
                        help="cluster state file to discover router + "
                             "shards (default: .repro/cluster.json)")
    parser.add_argument("--interval", type=float, default=2.0, metavar="S",
                        help="refresh interval (default: 2s)")
    parser.add_argument("--iterations", type=int, default=0, metavar="N",
                        help="stop after N frames (default: until ^C)")
    parser.add_argument("--once", action="store_true",
                        help="print a single frame and exit (no clear)")
    parser.add_argument("--width", type=int, default=40, metavar="COLS",
                        help="sparkline width")
    args = parser.parse_args(argv)

    endpoints = _endpoints_from_args(args)
    frames = 0
    try:
        while True:
            scrape_endpoints(endpoints)
            frame = render_frame(endpoints, width=max(4, args.width))
            if args.once:
                print(frame)
                break
            # ANSI clear + home keeps the dashboard in place
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            frames += 1
            if args.iterations and frames >= args.iterations:
                break
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        pass
    if all(endpoint.error is not None for endpoint in endpoints):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
