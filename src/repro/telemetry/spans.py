"""Lightweight wall-time spans feeding the run ledger.

``span("sweep", table=...)`` brackets a region of work; when a
:class:`~repro.telemetry.ledger.RunRecorder` is active the elapsed time
and attributes aggregate into the run's ledger record, keyed by span
name.  When no recorder is active — every library use outside an
instrumented CLI run — the context manager is a single module-global
``None`` check and no clock is read, which is what lets the
instrumented modules (``core/experiment.py``, ``core/parallel.py``)
keep spans in place unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = ["Span", "active_recorder", "set_recorder", "span"]

#: the currently active RunRecorder (None = telemetry unconfigured)
_RECORDER: Optional[object] = None


def set_recorder(recorder: Optional[object]) -> None:
    """Install (or clear, with ``None``) the process-wide recorder."""
    global _RECORDER
    _RECORDER = recorder


def active_recorder() -> Optional[object]:
    """The recorder spans currently report to, if any."""
    return _RECORDER


class Span:
    """One live span; ``note(**attrs)`` attaches attributes mid-flight."""

    __slots__ = ("name", "attrs")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs

    def note(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class _NullSpan:
    """Attribute sink used when no recorder is active."""

    __slots__ = ()

    def note(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[object]:
    """Bracket a region of work and report it to the active recorder."""
    recorder = _RECORDER
    if recorder is None:
        yield _NULL_SPAN
        return
    live = Span(name, attrs)
    start = time.perf_counter()
    try:
        yield live
    finally:
        recorder.record_span(live.name, time.perf_counter() - start,
                             live.attrs)
