"""Process-wide metrics registry: counters, gauges, histograms.

The live half of the observability plane (the ledger is the post-hoc
half).  Instrumented call sites go through the module-level helpers
:func:`inc` / :func:`set_gauge` / :func:`observe`, which follow the
``spans.py`` null-path idiom: when no registry has been enabled the
helpers return after a single global read, so plain bench runs pay
nothing.  Daemons (``repro-bench serve``, ``repro-bench cluster up``)
call :func:`enable` at startup and expose the snapshot through the
side-effect-free ``{"op": "metrics"}`` protocol op.

Histograms use fixed bucket upper bounds so snapshots from different
processes merge bucket-wise (:func:`merge_snapshots`) and quantiles can
be estimated client-side (:func:`histogram_quantile`) without shipping
raw samples.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "enable", "disable", "active_registry",
    "inc", "set_gauge", "observe",
    "snapshot", "merge_snapshots", "to_prometheus",
    "counter_total", "gauge_value", "histogram_entry",
    "histogram_quantile", "DEFAULT_BUCKETS", "COUNT_BUCKETS",
]

#: Default histogram bucket upper bounds, in seconds.  Spans the range
#: from sub-millisecond coalesce hits to multi-second batch drains; the
#: implicit final bucket catches everything above the last bound.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: bucket bounds for size-like observations (batch sizes, cell counts)
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


def _key(name: str, labels: Dict[str, Any]) -> str:
    """Flat string identity for a (name, labels) pair.

    Prometheus-style — ``name{k="v",...}`` with sorted label keys — so
    the same string doubles as the snapshot key and the exposition name.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with mergeable counts.

    ``counts`` has ``len(bounds) + 1`` entries; the final slot is the
    overflow bucket (observations above the last bound).
    """

    __slots__ = ("bounds", "counts", "total", "sum", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> Optional[float]:
        return histogram_quantile(self.to_snapshot(), q)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        self.max = max(self.max, other.max)

    def to_snapshot(self) -> Dict[str, Any]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.total, "sum": round(self.sum, 9),
                "max": round(self.max, 9)}


class MetricsRegistry:
    """Thread-safe home for every metric in one process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = self._counters[key] = Counter()
            counter.inc(amount)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = self._gauges[key] = Gauge()
            gauge.set(value)

    def observe(self, name: str, value: float,
                bounds: Sequence[float] = DEFAULT_BUCKETS,
                **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(bounds)
            hist.observe(value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able point-in-time view of every metric."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in
                             sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in
                           sorted(self._gauges.items())},
                "histograms": {k: h.to_snapshot() for k, h in
                               sorted(self._histograms.items())},
            }


# -- process-wide null path --------------------------------------------------

_REGISTRY: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (or replace) the process-wide registry and return it."""
    global _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    """Drop the process-wide registry; helpers revert to the null path."""
    global _REGISTRY
    _REGISTRY = None


def active_registry() -> Optional[MetricsRegistry]:
    return _REGISTRY


def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is None:
        return
    registry.inc(name, amount, **labels)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    registry = _REGISTRY
    if registry is None:
        return
    registry.set_gauge(name, value, **labels)


def observe(name: str, value: float,
            bounds: Sequence[float] = DEFAULT_BUCKETS,
            **labels: Any) -> None:
    registry = _REGISTRY
    if registry is None:
        return
    registry.observe(name, value, bounds, **labels)


def snapshot() -> Dict[str, Any]:
    """Snapshot of the process-wide registry ({} when disabled)."""
    registry = _REGISTRY
    if registry is None:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return registry.snapshot()


# -- snapshot algebra (works on plain dicts, usable client-side) -------------

def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge snapshots from several processes into one cluster view.

    Counters and gauges sum; histograms merge bucket-wise when bounds
    agree (mismatched bounds keep the first form and fold in count/sum
    only, so a rolling-upgrade cluster still aggregates).
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        if not isinstance(snap, dict):
            continue
        for kind in ("counters", "gauges"):
            for key, value in (snap.get(kind) or {}).items():
                if isinstance(value, (int, float)):
                    merged[kind][key] = merged[kind].get(key, 0.0) + value
        for key, entry in (snap.get("histograms") or {}).items():
            if not isinstance(entry, dict):
                continue
            into = merged["histograms"].get(key)
            if into is None:
                merged["histograms"][key] = {
                    "bounds": list(entry.get("bounds") or []),
                    "counts": list(entry.get("counts") or []),
                    "count": entry.get("count", 0),
                    "sum": entry.get("sum", 0.0),
                    "max": entry.get("max", 0.0),
                }
                continue
            if into["bounds"] == list(entry.get("bounds") or []):
                counts = list(entry.get("counts") or [])
                for i, count in enumerate(counts[:len(into["counts"])]):
                    into["counts"][i] += count
            into["count"] += entry.get("count", 0)
            into["sum"] += entry.get("sum", 0.0)
            into["max"] = max(into["max"], entry.get("max", 0.0))
    return merged


def histogram_quantile(entry: Dict[str, Any], q: float) -> Optional[float]:
    """Estimate a quantile from a histogram snapshot entry.

    Linear interpolation inside the target bucket; the overflow bucket
    reports the recorded max (the best upper estimate available).
    """
    total = entry.get("count") or 0
    counts = entry.get("counts") or []
    bounds = entry.get("bounds") or []
    if not total or not counts:
        return None
    q = min(max(q, 0.0), 1.0)
    target = q * total
    cumulative = 0
    for i, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= target and count:
            if i >= len(bounds):  # overflow bucket
                fallback = bounds[-1] if bounds else 0.0
                return float(entry.get("max") or fallback)
            low = bounds[i - 1] if i else 0.0
            high = bounds[i]
            fraction = (target - previous) / count
            return low + (high - low) * min(max(fraction, 0.0), 1.0)
    return float(entry.get("max") or 0.0)


def counter_total(snap: Dict[str, Any], name: str) -> float:
    """Sum a counter across all its label sets in a snapshot."""
    total = 0.0
    for key, value in (snap.get("counters") or {}).items():
        if key == name or key.startswith(name + "{"):
            total += value
    return total


def gauge_value(snap: Dict[str, Any], name: str) -> Optional[float]:
    """A gauge's value (summed across label sets; None when absent)."""
    values = [v for k, v in (snap.get("gauges") or {}).items()
              if k == name or k.startswith(name + "{")]
    return sum(values) if values else None


def histogram_entry(snap: Dict[str, Any], name: str) -> Optional[Dict[str, Any]]:
    """One histogram entry, merging label sets sharing the base name."""
    entries = [v for k, v in (snap.get("histograms") or {}).items()
               if k == name or k.startswith(name + "{")]
    if not entries:
        return None
    if len(entries) == 1:
        return entries[0]
    merged = merge_snapshots([{"histograms": {name: e}} for e in entries])
    return merged["histograms"].get(name)


def to_prometheus(snap: Dict[str, Any]) -> str:
    """Prometheus text exposition of a snapshot."""
    lines: List[str] = []
    for key, value in (snap.get("counters") or {}).items():
        lines.append(f"{key} {_fmt(value)}")
    for key, value in (snap.get("gauges") or {}).items():
        lines.append(f"{key} {_fmt(value)}")
    for key, entry in (snap.get("histograms") or {}).items():
        name, labels = _split_key(key)
        cumulative = 0
        bounds = entry.get("bounds") or []
        counts = entry.get("counts") or []
        for i, count in enumerate(counts):
            cumulative += count
            le = "+Inf" if i >= len(bounds) else _fmt(bounds[i])
            lines.append(f"{name}_bucket{{{_join(labels, ('le', le))}}} "
                         f"{cumulative}")
        lines.append(f"{name}_sum{_brace(labels)} {_fmt(entry.get('sum', 0))}")
        lines.append(f"{name}_count{_brace(labels)} {entry.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: Any) -> str:
    value = float(value)
    return str(int(value)) if value == int(value) else repr(value)


def _split_key(key: str) -> Tuple[str, str]:
    if "{" in key and key.endswith("}"):
        name, _, rest = key.partition("{")
        return name, rest[:-1]
    return key, ""


def _brace(labels: str) -> str:
    return f"{{{labels}}}" if labels else ""


def _join(labels: str, extra: Tuple[str, str]) -> str:
    part = f'{extra[0]}="{extra[1]}"'
    return f"{labels},{part}" if labels else part
