"""``repro-bench doctor``: diagnose and repair on-disk state.

The bench pipeline persists two things between runs — the
content-addressed result cache and the append-only run ledger — and
both are written by processes that can die mid-write (the whole point
of the fault-injection subsystem is to exercise that).  The doctor
walks both stores and reports:

* **torn ledger lines** — a crashed writer's partial JSONL record
  (``--fix`` rewrites the ledger keeping only parseable records, with
  a ``.bak`` of the original);
* **corrupt cache entries** — files that fail to parse, carry a stale
  schema, or whose stored checksum does not match their payload
  (``--fix`` quarantines them to ``*.corrupt`` so the cell recomputes);
* **stale temp files** — ``*.tmp`` droppings from writers that died
  between ``mkstemp`` and ``os.replace`` (``--fix`` deletes them);
* **quarantined entries** — previously quarantined ``*.corrupt`` files
  awaiting inspection (``--fix`` deletes them);
* **stale cluster state** — a ``.repro/cluster.json`` left behind by a
  crashed ``cluster up``: every recorded pid and endpoint is
  liveness-probed, and ``--fix`` prunes dead entries (or removes the
  file outright when nothing recorded is still alive).

Exit status: 0 when the stores are healthy (or everything found was
fixed), 1 when problems remain.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, Optional

from . import ledger

__all__ = ["check_cache_dir", "check_cluster_state", "main"]


def check_cache_dir(directory: Path, fix: bool = False) -> Dict[str, Any]:
    """Validate every cache entry under ``directory``.

    Returns counts of entries checked, corrupt entries (quarantined
    when ``fix``), stale temp files (deleted when ``fix``), and
    pre-existing quarantined files (deleted when ``fix``).
    """
    from ..core.cache import parse_entry
    from ..wire import FRAME_MAGIC

    summary: Dict[str, Any] = {"path": str(directory), "entries": 0,
                               "binary": 0, "corrupt": [], "stale_tmp": 0,
                               "quarantined": 0}
    if not directory.is_dir():
        return summary
    for path in sorted(directory.rglob("*.tmp")):
        summary["stale_tmp"] += 1
        if fix:
            try:
                path.unlink()
            except OSError:
                pass
    for path in sorted(directory.rglob("*.corrupt")):
        summary["quarantined"] += 1
        if fix:
            try:
                path.unlink()
            except OSError:
                pass
    for path in sorted(directory.rglob("*.json")):
        summary["entries"] += 1
        try:
            raw = path.read_bytes()
            if raw[:2] == FRAME_MAGIC:
                summary["binary"] += 1
            parse_entry(raw)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            summary["corrupt"].append({"file": str(path), "reason": str(exc)})
            if fix:
                try:
                    path.replace(path.with_suffix(path.suffix + ".corrupt"))
                except OSError:
                    pass
    return summary


def _default_cache_dir() -> Path:
    from ..core.cache import default_cache

    return default_cache().directory


def check_cluster_state(path: str, fix: bool = False) -> Dict[str, Any]:
    """Liveness-check a cluster state file; prune it with ``fix``.

    Returns ``{"path", "present", "dead", "alive", "pruned",
    "deleted_file"}`` — ``dead`` lists entries whose endpoint *and*
    pid are both gone (the staleness the fix removes).
    """
    from ..cluster.manager import probe_state, prune_state, read_state

    summary: Dict[str, Any] = {"path": path, "present": False,
                               "dead": [], "alive": [],
                               "pruned": [], "deleted_file": False}
    try:
        state = read_state(path)
    except (OSError, ValueError):
        return summary
    summary["present"] = True
    report = probe_state(state)
    entries = dict(report["shards"])
    entries["router"] = report["router"]
    for name in sorted(entries):
        entry = entries[name]
        if entry["alive"] or entry["pid_alive"]:
            summary["alive"].append(name)
        else:
            summary["dead"].append(name)
    if fix and summary["dead"]:
        outcome = prune_state(path, state, report)
        summary["pruned"] = outcome["removed"]
        summary["deleted_file"] = outcome["deleted_file"]
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench doctor",
        description="Diagnose (and with --fix repair) the result cache "
                    "and the run ledger.",
    )
    parser.add_argument("--fix", action="store_true",
                        help="repair what the scan finds: rewrite torn "
                             "ledger lines away, quarantine corrupt cache "
                             "entries, sweep stale temp files")
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="ledger location (default: .repro/ledger, "
                             "or $REPRO_LEDGER_DIR)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache location (default: "
                             "$REPRO_BENCH_CACHE_DIR or "
                             "~/.cache/repro-bench)")
    parser.add_argument("--state", metavar="PATH",
                        default=".repro/cluster.json",
                        help="cluster state file to liveness-check "
                             "(default: .repro/cluster.json)")
    args = parser.parse_args(argv)

    problems = 0
    fixed = 0

    if args.fix:
        ledger_report = ledger.repair(args.ledger_dir)
    else:
        ledger_report = ledger.scan(args.ledger_dir)
    torn = len(ledger_report["torn_lines"])
    print(f"ledger {ledger_report['path']}: {ledger_report['records']} "
          f"record(s), {torn} torn line(s)")
    if torn:
        problems += torn
        if ledger_report.get("repaired"):
            fixed += torn
            print(f"  repaired; original kept at {ledger_report['backup']}")
        else:
            print(f"  torn lines: "
                  f"{', '.join(map(str, ledger_report['torn_lines']))} "
                  "(rerun with --fix to rewrite)")

    cache_dir = Path(args.cache_dir) if args.cache_dir \
        else _default_cache_dir()
    cache_report = check_cache_dir(cache_dir, fix=args.fix)
    corrupt = len(cache_report["corrupt"])
    print(f"cache {cache_report['path']}: {cache_report['entries']} "
          f"entr(ies) ({cache_report['binary']} binary), "
          f"{corrupt} corrupt, "
          f"{cache_report['stale_tmp']} stale temp file(s), "
          f"{cache_report['quarantined']} quarantined")
    for item in cache_report["corrupt"]:
        print(f"  corrupt: {Path(item['file']).name} ({item['reason']})")
    problems += corrupt + cache_report["stale_tmp"]
    if args.fix:
        fixed += corrupt + cache_report["stale_tmp"]

    cluster_report = check_cluster_state(args.state, fix=args.fix)
    if cluster_report["present"]:
        dead = len(cluster_report["dead"])
        print(f"cluster state {cluster_report['path']}: "
              f"{len(cluster_report['alive'])} live entr(ies), "
              f"{dead} dead")
        if dead:
            problems += dead
            print(f"  dead: {', '.join(cluster_report['dead'])}")
            if cluster_report["deleted_file"]:
                fixed += dead
                print("  nothing recorded is alive; state file removed")
            elif cluster_report["pruned"]:
                fixed += len(cluster_report["pruned"])
                print(f"  pruned: {', '.join(cluster_report['pruned'])}")
            elif not args.fix:
                print("  (rerun with --fix to prune)")

    if problems == 0:
        print("ok: stores are healthy")
        return 0
    if fixed >= problems:
        print(f"fixed {fixed} problem(s)")
        return 0
    print(f"{problems - fixed} problem(s) remain (use --fix)",
          file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
