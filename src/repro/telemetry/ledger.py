"""Append-only run ledger: one structured record per instrumented run.

Every recorded ``repro-bench`` / ``repro-prof`` invocation appends one
JSON object (a single line) to ``.repro/ledger/ledger.jsonl``: run id,
git SHA, model fingerprint, config and machine hashes, per-target wall
times with cache traffic, executor pool utilization, per-table fidelity
scores, aggregated spans, and the trace-drop tally.  The history and
regression-gate commands (:mod:`repro.telemetry.history`,
:mod:`repro.telemetry.regress`) are pure readers of this file.

Recording is **opt-in**: nothing is written unless the CLI was passed
``--ledger``/``--ledger-dir`` or the environment sets
``REPRO_LEDGER=1`` / ``REPRO_LEDGER_DIR``.  Corrupt (torn) lines are
skipped on read, so a crashed writer never poisons the history.
"""

from __future__ import annotations

import itertools
import json
import hashlib
import os
import platform
import subprocess
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .spans import active_recorder, set_recorder

__all__ = [
    "LEDGER_SCHEMA",
    "RunRecorder",
    "append",
    "env_configured",
    "git_sha",
    "hit_rate",
    "ledger_dir",
    "ledger_path",
    "machine_info",
    "read_records",
    "repair",
    "scan",
]

#: bump when the record layout changes incompatibly
LEDGER_SCHEMA = 1

#: default location, relative to the invocation directory
DEFAULT_DIR = Path(".repro") / "ledger"

LEDGER_NAME = "ledger.jsonl"

_RUN_COUNTER = itertools.count()


def env_configured() -> bool:
    """Whether the environment opts this process into recording."""
    if os.environ.get("REPRO_LEDGER_DIR"):
        return True
    return os.environ.get("REPRO_LEDGER", "") in ("1", "true")


def ledger_dir(override: Optional[os.PathLike] = None) -> Path:
    """Resolve the ledger directory: argument, environment, default."""
    if override:
        return Path(override).expanduser()
    env = os.environ.get("REPRO_LEDGER_DIR")
    if env:
        return Path(env).expanduser()
    return DEFAULT_DIR


def ledger_path(override: Optional[os.PathLike] = None) -> Path:
    return ledger_dir(override) / LEDGER_NAME


def append(record: Dict[str, Any],
           directory: Optional[os.PathLike] = None) -> Path:
    """Append one record as a single JSONL line; returns the file path."""
    path = ledger_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    with open(path, "a+") as handle:
        # A crashed writer can leave a torn line without a newline; start
        # this record on a fresh line so only the torn one is lost.
        handle.seek(0, os.SEEK_END)
        if handle.tell() > 0:
            handle.seek(handle.tell() - 1)
            if handle.read(1) != "\n":
                handle.write("\n")
        handle.write(line + "\n")
    return path


def read_records(directory: Optional[os.PathLike] = None
                 ) -> List[Dict[str, Any]]:
    """All parseable records, oldest first (torn lines are skipped)."""
    path = ledger_path(directory)
    try:
        text = path.read_text()
    except OSError:
        return []
    records: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def scan(directory: Optional[os.PathLike] = None) -> Dict[str, Any]:
    """Health-check the ledger file without modifying it.

    Returns a summary dict: total line count, parseable record count,
    and the 1-based line numbers of torn (unparseable) lines.  A
    missing ledger scans clean with zero lines.
    """
    path = ledger_path(directory)
    summary: Dict[str, Any] = {"path": str(path), "lines": 0,
                               "records": 0, "torn_lines": []}
    try:
        text = path.read_text()
    except OSError:
        return summary
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        summary["lines"] += 1
        try:
            record = json.loads(stripped)
        except ValueError:
            summary["torn_lines"].append(lineno)
            continue
        if isinstance(record, dict):
            summary["records"] += 1
        else:
            summary["torn_lines"].append(lineno)
    return summary


def repair(directory: Optional[os.PathLike] = None) -> Dict[str, Any]:
    """Rewrite the ledger keeping only parseable records.

    The original file is preserved as ``ledger.jsonl.bak`` and the
    clean copy lands atomically (temp file + ``os.replace``), so a
    crash mid-repair can never lose the healthy records.  Returns the
    :func:`scan` summary from before the rewrite plus a ``"repaired"``
    flag (False when there was nothing to fix).
    """
    summary = scan(directory)
    summary["repaired"] = False
    if not summary["torn_lines"]:
        return summary
    path = ledger_path(directory)
    text = path.read_text()
    kept = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except ValueError:
            continue
        if isinstance(record, dict):
            kept.append(json.dumps(record, sort_keys=True,
                                   separators=(",", ":")))
    backup = path.with_suffix(path.suffix + ".bak")
    backup.write_text(text)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text("".join(line + "\n" for line in kept))
    os.replace(tmp, path)
    summary["repaired"] = True
    summary["backup"] = str(backup)
    return summary


def hit_rate(record: Dict[str, Any]) -> Optional[float]:
    """Cache hit fraction of one record, or None without cache data."""
    cache = record.get("cache") or {}
    hits = cache.get("memory_hits", 0) + cache.get("disk_hits", 0)
    lookups = hits + cache.get("misses", 0)
    if lookups <= 0:
        return None
    return hits / lookups


def git_sha() -> Optional[str]:
    """The repository HEAD commit, or None outside a usable checkout."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"],
                              capture_output=True, text=True, timeout=5)
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def machine_info() -> Dict[str, Any]:
    """Where this run happened (folded into the machine hash)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def _hash(obj: Any) -> str:
    text = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _new_run_id() -> str:
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    return f"{stamp}-{os.getpid()}-{next(_RUN_COUNTER)}"


class RunRecorder:
    """Collects one run's telemetry and builds its ledger record.

    Lifecycle: ``start()`` installs the recorder as the process-wide
    span sink, ``stop()`` freezes the elapsed time and uninstalls it,
    ``finish(**fields)`` returns the final record dict.  ``extra`` is a
    scratch dict instrumented code may attach payloads to (e.g. the
    profiler's derived metrics).
    """

    #: cap on per-request trace spans kept in memory (see record_trace_span)
    TRACE_SPAN_LIMIT = 4096

    def __init__(self, tool: str, argv: Optional[List[str]] = None):
        self.tool = tool
        self.argv = list(argv) if argv is not None else None
        self.started_at: Optional[str] = None
        self.elapsed_s: Optional[float] = None
        self.spans: Dict[str, Dict[str, Any]] = {}
        self.trace_spans: List[Dict[str, Any]] = []
        self.trace_spans_dropped = 0
        self.extra: Dict[str, Any] = {}
        self._t0: Optional[float] = None
        self._trace_lock = threading.Lock()

    def start(self) -> "RunRecorder":
        self.started_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        self._t0 = time.perf_counter()
        set_recorder(self)
        return self

    def stop(self) -> None:
        if self._t0 is not None and self.elapsed_s is None:
            self.elapsed_s = time.perf_counter() - self._t0
        if active_recorder() is self:
            set_recorder(None)

    def record_span(self, name: str, elapsed: float,
                    attrs: Dict[str, Any]) -> None:
        """Aggregate one finished span (called by :func:`~.spans.span`)."""
        entry = self.spans.get(name)
        if entry is None:
            entry = self.spans[name] = {"count": 0, "total_s": 0.0,
                                        "max_s": 0.0}
        entry["count"] += 1
        entry["total_s"] += elapsed
        entry["max_s"] = max(entry["max_s"], elapsed)
        for key, value in attrs.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                entry[key] = value  # descriptive attribute: keep latest
            else:
                entry[key] = entry.get(key, 0) + value  # counter: sum

    def record_trace_span(self, name: str, trace_id: str, span_id: str,
                          parent_span: Optional[str], t0: float, dur_s: float,
                          attrs: Optional[Dict[str, Any]] = None) -> None:
        """Keep one per-request trace span (called by :mod:`.tracing`).

        Unlike :meth:`record_span`'s lossy aggregation, trace spans keep
        per-occurrence identity (``count`` is 1) so a request can be
        reconstructed hop by hop.  Past :attr:`TRACE_SPAN_LIMIT` the
        recorder aggregates into an existing same-shaped span (bumping
        its ``count`` and summing ``dur_s``) instead of growing without
        bound; spans with no aggregation target count as dropped.
        """
        entry: Dict[str, Any] = {"name": name, "trace": trace_id,
                                 "span": span_id, "parent": parent_span,
                                 "tool": self.tool, "t0": round(t0, 6),
                                 "dur_s": round(dur_s, 6), "count": 1}
        if attrs:
            entry["attrs"] = dict(attrs)
        with self._trace_lock:
            if len(self.trace_spans) < self.TRACE_SPAN_LIMIT:
                self.trace_spans.append(entry)
                return
            for kept in reversed(self.trace_spans):
                if (kept["name"] == name and kept["trace"] == trace_id
                        and kept.get("parent") == parent_span):
                    kept["count"] += 1
                    kept["dur_s"] = round(kept["dur_s"] + dur_s, 6)
                    return
            self.trace_spans_dropped += 1

    def finish(self, config: Optional[Dict[str, Any]] = None,
               **fields: Any) -> Dict[str, Any]:
        """Stop the recorder and build the ledger record."""
        self.stop()
        from ..core.cache import model_fingerprint

        machine = machine_info()
        config = dict(config or {})
        record: Dict[str, Any] = {
            "schema": LEDGER_SCHEMA,
            "run_id": _new_run_id(),
            "tool": self.tool,
            "started_at": self.started_at,
            "elapsed_s": round(self.elapsed_s or 0.0, 6),
            "argv": self.argv,
            "git_sha": git_sha(),
            "model_fingerprint": model_fingerprint()[:16],
            "machine": machine,
            "machine_hash": _hash(machine),
            "config": config,
            "config_hash": _hash(config),
            "spans": {name: {k: (round(v, 6) if isinstance(v, float) else v)
                             for k, v in entry.items()}
                      for name, entry in self.spans.items()},
        }
        if self.extra:
            record["extra"] = dict(self.extra)
        if self.trace_spans:
            record["trace_spans"] = list(self.trace_spans)
        if self.trace_spans_dropped:
            record["trace_spans_dropped"] = self.trace_spans_dropped
        record.update(fields)
        return record
