"""``repro-bench trace``: reconstruct distributed traces from the ledger.

``trace export <trace_id>`` gathers every ``trace_spans`` entry with
that id across all recorded runs — the router's ``tool="cluster"``
record, each shard's ``tool="serve"`` record, a client's ``replay``
record — and merges them into one Chrome trace-event JSON (the same
``chrome://tracing`` / Perfetto format :mod:`repro.core.timeline`
emits for simulated ranks), so a single request can be read hop by
hop: ``router_forward`` → ``service_submit`` → ``session_job`` →
``worker_batch``.  ``trace list`` inventories the trace ids the ledger
knows about.

Spans carry wall-clock start times (``t0``), so stitching across
processes needs no clock agreement beyond the machine's own clock —
fine for the single-host clusters the manager launches.  Records are
written at daemon shutdown: export after ``cluster down`` (or after
the daemons exited) — or pass ``--connect`` to also scrape a still-
running daemon's buffered spans via the side-effect-free ``trace`` op.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from ..service import cliargs
from . import ledger

__all__ = ["collect_live_record", "collect_spans", "list_traces", "main",
           "to_chrome_trace"]


def collect_live_record(address: str, trace_id: Optional[str] = None,
                        timeout: float = cliargs.DEFAULT_TIMEOUT_S
                        ) -> Dict[str, Any]:
    """Scrape a live daemon's buffered spans via the ``trace`` op.

    Daemons only flush trace spans to the ledger at shutdown; this asks
    a running one (``--connect``) for what it is still holding.  The
    result is shaped like a ledger record (``tool``/``trace_spans``) so
    it can feed :func:`collect_spans`/:func:`list_traces` as an
    *extra_records* entry.
    """
    from ..service.transport import request
    message: Dict[str, Any] = {"op": "trace"}
    if trace_id is not None:
        message["trace_id"] = trace_id
    response = request(cliargs.parse_address(address), message,
                       timeout=timeout)
    if response.get("status") != "ok":
        raise RuntimeError(
            f"trace scrape failed [{response.get('code')}]: "
            f"{response.get('message')}")
    return {"tool": "live", "run_id": None,
            "session": response.get("session"),
            "trace_spans": [s for s in response.get("spans") or []
                            if isinstance(s, dict)]}


def collect_spans(trace_id: str,
                  ledger_dir: Optional[str] = None,
                  extra_records: Optional[List[Dict[str, Any]]] = None
                  ) -> List[Dict[str, Any]]:
    """Every recorded span of one trace, across all ledger records.

    Each span is annotated with the run it came from (``run_id``,
    ``record_tool``) so the exporter can lay processes out as separate
    tracks.  *extra_records* (e.g. a live scrape from
    :func:`collect_live_record`) are merged in after the ledger.
    """
    spans: List[Dict[str, Any]] = []
    for record in list(ledger.read_records(ledger_dir)) \
            + list(extra_records or []):
        for span in record.get("trace_spans") or []:
            if not isinstance(span, dict) or span.get("trace") != trace_id:
                continue
            entry = dict(span)
            entry["run_id"] = record.get("run_id")
            entry["record_tool"] = record.get("tool")
            session = (span.get("attrs") or {}).get("session")
            entry["proc"] = (session or record.get("session")
                             or record.get("tool") or "unknown")
            spans.append(entry)
    spans.sort(key=lambda s: s.get("t0") or 0.0)
    return spans


def list_traces(ledger_dir: Optional[str] = None,
                extra_records: Optional[List[Dict[str, Any]]] = None
                ) -> List[Dict[str, Any]]:
    """Inventory of recorded trace ids, oldest first."""
    traces: Dict[str, Dict[str, Any]] = {}
    for record in list(ledger.read_records(ledger_dir)) \
            + list(extra_records or []):
        for span in record.get("trace_spans") or []:
            if not isinstance(span, dict) or not span.get("trace"):
                continue
            entry = traces.setdefault(span["trace"], {
                "trace_id": span["trace"], "spans": 0, "names": set(),
                "t0": span.get("t0"), "tools": set()})
            entry["spans"] += span.get("count", 1)
            entry["names"].add(span.get("name"))
            entry["tools"].add(record.get("tool"))
            if span.get("t0") is not None:
                entry["t0"] = min(entry["t0"] or span["t0"], span["t0"])
    ordered = sorted(traces.values(), key=lambda e: e.get("t0") or 0.0)
    for entry in ordered:
        entry["names"] = sorted(n for n in entry["names"] if n)
        entry["tools"] = sorted(t for t in entry["tools"] if t)
    return ordered


def to_chrome_trace(trace_id: str,
                    spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome trace-event JSON for one trace's spans.

    One ``pid`` lane per recording process (router, each shard, ...);
    timestamps are wall-clock microseconds relative to the earliest
    span, durations complete ``ph: "X"`` slices.
    """
    events: List[Dict[str, Any]] = []
    t_base = min((s["t0"] for s in spans if s.get("t0") is not None),
                 default=0.0)
    procs: Dict[str, int] = {}
    for span in spans:
        proc = str(span.get("proc") or "unknown")
        pid = procs.setdefault(proc, len(procs))
        args = dict(span.get("attrs") or {})
        args.update({"span": span.get("span"),
                     "parent": span.get("parent"),
                     "run_id": span.get("run_id")})
        if span.get("count", 1) > 1:
            args["aggregated_count"] = span["count"]
        events.append({
            "name": str(span.get("name") or "span"),
            "cat": str(span.get("record_tool") or "trace"),
            "ph": "X",
            "pid": pid,
            "tid": 0,
            "ts": round(((span.get("t0") or t_base) - t_base) * 1e6, 3),
            "dur": max(round((span.get("dur_s") or 0.0) * 1e6, 3), 1.0),
            "args": args,
        })
    for proc, pid in procs.items():
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": proc}})
    events.sort(key=lambda e: (e.get("ph") == "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"trace_id": trace_id}}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``repro-bench trace``."""
    parser = argparse.ArgumentParser(
        prog="repro-bench trace",
        description="Reconstruct distributed request traces from ledger "
                    "span records.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    export = sub.add_parser("export",
                            help="emit one trace as Chrome trace JSON")
    export.add_argument("trace_id", help="the trace id to export")
    export.add_argument("--out", metavar="FILE", default=None,
                        help="output path (default: trace-<id>.json; "
                             "'-' writes to stdout)")
    listing = sub.add_parser("list", help="inventory recorded trace ids")
    listing.add_argument("--last", type=int, default=20, metavar="N",
                         help="show at most the newest N traces")
    for verb in (export, listing):
        verb.add_argument("--ledger-dir", metavar="DIR", default=None,
                          help="ledger location (default: .repro/ledger, "
                               "or $REPRO_LEDGER_DIR)")
        cliargs.add_connect_argument(
            verb, help="also scrape a live daemon's still-buffered "
                       "spans (host:port or socket path)")
        cliargs.add_timeout_argument(verb, default=10.0)
    args = parser.parse_args(argv)

    extra: List[Dict[str, Any]] = []
    if args.connect:
        wanted = args.trace_id if args.verb == "export" else None
        try:
            extra.append(collect_live_record(args.connect, wanted,
                                             timeout=args.timeout))
        except (OSError, RuntimeError, ValueError) as exc:
            print(f"live scrape of {args.connect} failed: {exc}",
                  file=sys.stderr)
            return 1

    if args.verb == "list":
        traces = list_traces(args.ledger_dir, extra_records=extra)
        if not traces:
            print(f"no trace spans recorded under "
                  f"{ledger.ledger_dir(args.ledger_dir)} (submit or "
                  "replay with tracing on, against daemons running with "
                  "--ledger)", file=sys.stderr)
            return 1
        for entry in traces[-max(1, args.last):]:
            print(f"{entry['trace_id']}  {entry['spans']:>3} span(s)  "
                  f"[{', '.join(entry['tools'])}]  "
                  f"{', '.join(entry['names'])}")
        return 0

    spans = collect_spans(args.trace_id, args.ledger_dir,
                          extra_records=extra)
    if not spans:
        print(f"no spans recorded for trace {args.trace_id!r} under "
              f"{ledger.ledger_dir(args.ledger_dir)} — daemons flush "
              "trace spans to the ledger at shutdown ('cluster down' / "
              "'submit --shutdown'), so export after they exit",
              file=sys.stderr)
        return 1
    chrome = to_chrome_trace(args.trace_id, spans)
    payload = json.dumps(chrome, sort_keys=True)
    if args.out == "-":
        print(payload)
        return 0
    out = args.out or f"trace-{args.trace_id}.json"
    with open(out, "w") as handle:
        handle.write(payload + "\n")
    hops = sum(1 for e in chrome["traceEvents"] if e.get("ph") == "X")
    print(f"wrote {out}: {hops} span(s) across "
          f"{len({e['pid'] for e in chrome['traceEvents']})} process(es) "
          f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
