"""The characterization toolkit: the paper's methodology as a library.

Affinity schemes (Table 5), the workload execution runtime, experiment
and sweep drivers, metrics, and report rendering.
"""

from .affinity import (
    SCHEME_TABLE,
    AffinityScheme,
    InfeasibleSchemeError,
    ResolvedAffinity,
    membind_node_set,
    resolve_scheme,
)
from .cache import ResultCache, default_cache, job_key
from .parallel import JobRequest, run_request, run_requests
from .analysis import ResourceReport, analyze
from .execution import JobResult, JobRunner, run_workload
from .timeline import render_timeline, to_chrome_trace
from .experiment import (
    ALL_SCHEMES,
    Experiment,
    SchemeComparison,
    compare_schemes,
    scaling_study,
    scheme_sweep,
)
from .metrics import (
    bandwidth,
    best_scheme,
    flops_rate,
    improvement_percent,
    parallel_efficiency,
    per_core,
    speedup,
)
from .ops import (
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    MarkerStart,
    MarkerStop,
    Op,
    Recv,
    Reduce,
    Send,
    SendRecv,
)
from .report import SeriesResult, TableResult, format_value
from .workload import Workload

__all__ = [
    "AffinityScheme",
    "InfeasibleSchemeError",
    "ResultCache",
    "default_cache",
    "job_key",
    "JobRequest",
    "run_request",
    "run_requests",
    "ResourceReport",
    "analyze",
    "render_timeline",
    "to_chrome_trace",
    "ResolvedAffinity",
    "resolve_scheme",
    "membind_node_set",
    "SCHEME_TABLE",
    "ALL_SCHEMES",
    "Workload",
    "JobRunner",
    "JobResult",
    "run_workload",
    "Experiment",
    "scheme_sweep",
    "scaling_study",
    "compare_schemes",
    "SchemeComparison",
    "Op",
    "Compute",
    "MarkerStart",
    "MarkerStop",
    "Send",
    "Recv",
    "SendRecv",
    "Barrier",
    "Allreduce",
    "Alltoall",
    "Allgather",
    "Bcast",
    "Reduce",
    "TableResult",
    "SeriesResult",
    "format_value",
    "speedup",
    "parallel_efficiency",
    "per_core",
    "flops_rate",
    "bandwidth",
    "improvement_percent",
    "best_scheme",
]
