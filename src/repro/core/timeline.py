"""Text timelines from op-level traces.

Run a job with ``JobRunner(..., trace=True)`` and render where each
rank spent its time — a terminal-friendly Gantt view that makes
placement pathologies (one hot rank, synchronized stalls) visible at a
glance.
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..sim import Tracer

__all__ = ["render_timeline", "to_chrome_trace", "CATEGORY_GLYPHS"]

#: one glyph per accounting category
CATEGORY_GLYPHS: Dict[str, str] = {
    "compute": "#",
    "comm": "~",
}
_IDLE = "."
_MIXED = "+"


def render_timeline(tracer: Tracer, width: int = 72,
                    time_scale: float = 1.0) -> str:
    """Render per-rank activity lanes from an op-level trace.

    Each lane is ``width`` buckets of equal simulated time; a bucket
    shows the glyph of the category that dominated it, ``+`` where two
    categories mix, and ``.`` where the rank was idle (waiting).
    """
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    records = [r for r in tracer.records if r.category in CATEGORY_GLYPHS]
    if not records:
        return "(no op-level trace records; run with trace=True)"
    horizon = max(r.time + r.duration for r in records)
    if horizon <= 0:
        return "(empty timeline)"
    ranks = sorted({r.rank for r in records})
    # accumulate per-bucket occupancy per category
    lanes: Dict[int, List[Dict[str, float]]] = {
        rank: [dict() for _ in range(width)] for rank in ranks
    }
    bucket_span = horizon / width
    for record in records:
        lane = lanes[record.rank]
        start, end = record.time, record.time + record.duration
        first = min(width - 1, int(start / bucket_span))
        last = min(width - 1, int(end / bucket_span))
        for bucket in range(first, last + 1):
            lo = max(start, bucket * bucket_span)
            hi = min(end, (bucket + 1) * bucket_span)
            if hi > lo:
                cell = lane[bucket]
                cell[record.category] = cell.get(record.category, 0.0) + (hi - lo)

    lines = [
        f"timeline: {horizon * time_scale:.4g} s across {width} buckets "
        f"({'; '.join(f'{g}={c}' for c, g in CATEGORY_GLYPHS.items())}; "
        f"{_MIXED}=mixed, {_IDLE}=idle)"
    ]
    for rank in ranks:
        cells = []
        for cell in lanes[rank]:
            busy = {c: t for c, t in cell.items() if t > 0.02 * bucket_span}
            if not busy:
                cells.append(_IDLE)
            elif len(busy) > 1:
                cells.append(_MIXED)
            else:
                cells.append(CATEGORY_GLYPHS[next(iter(busy))])
        lines.append(f"rank {rank:3d} |{''.join(cells)}|")
    return "\n".join(lines)


def to_chrome_trace(tracer: Tracer, time_scale: float = 1.0) -> str:
    """Export the op-level trace as Chrome tracing JSON.

    Load the result in ``chrome://tracing`` or Perfetto: one thread
    lane per rank, complete ("X") events with the op type as name and
    the workload phase as an argument.  Timestamps are microseconds of
    (time_scale-adjusted) simulated time.
    """
    events = []
    for record in tracer.records:
        if record.rank < 0:
            continue
        events.append({
            "name": record.detail.get("op", record.category),
            "cat": record.category,
            "ph": "X",
            "pid": 0,
            "tid": record.rank,
            "ts": record.time * time_scale * 1e6,
            "dur": record.duration * time_scale * 1e6,
            "args": {"phase": record.detail.get("op_phase", "")},
        })
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"}, indent=None)
