"""The job runtime: executes workloads on a machine under an affinity scheme.

:class:`JobRunner` spawns one discrete-event process per MPI rank.  Each
rank walks its workload program and converts every operation descriptor
into engine activity:

* ``Compute`` — the flop time and the (cache-filtered, NUMA-distributed)
  DRAM traffic run concurrently (a core overlaps computation with its
  outstanding memory stream); dependent ``random_accesses`` are charged
  serially at the placement's expected NUMA latency with a
  contention-aware queueing term.
* communication ops — delegated to the simulated MPI world, whose copies
  contend with the compute traffic on the same memory controllers.

The runner accounts wall time, per-rank busy time by category
(compute / memory / communication) and by workload phase, scaled by the
workload's ``time_scale``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults.plan import FaultPlan
from ..machine import Machine
from ..machine.topology import MachineSpec
from ..mpi import MpiImplementation, MpiWorld, OPENMPI
from ..perfctr import CACHE_LINE, PerfSession
from ..sim import Tracer
from .affinity import AffinityScheme, ResolvedAffinity, resolve_scheme
from .ops import (
    Allgather,
    Allreduce,
    Alltoall,
    Barrier,
    Bcast,
    Compute,
    MarkerStart,
    MarkerStop,
    Op,
    Recv,
    Reduce,
    Send,
    SendRecv,
)
from .workload import Workload

__all__ = ["JobResult", "JobRunner", "run_workload"]


@dataclass
class JobResult:
    """Outcome of one simulated job."""

    workload: str
    system: str
    scheme: str
    ntasks: int
    #: end-to-end wall time (seconds, already time_scale-adjusted)
    wall_time: float
    #: per-rank completion times
    rank_times: List[float]
    #: per-rank seconds by category: "compute", "memory_latency", "comm"
    category_times: List[Dict[str, float]]
    #: per-rank seconds by workload phase label
    phase_times: List[Dict[str, float]]
    #: total MPI messages / bytes
    messages: int = 0
    bytes_sent: int = 0
    #: perfctr snapshot (profiled runs only; ``None`` keeps the cache
    #: JSON of unprofiled results byte-identical to pre-profiling runs)
    perf: Optional[Dict] = None
    #: fault-injection summary (faulted runs only; ``None`` keeps the
    #: cache JSON of healthy results byte-identical to pre-faults runs)
    faults: Optional[Dict] = None

    def phase_time(self, phase: str) -> float:
        """Critical-path time of one phase (max over ranks)."""
        return max((pt.get(phase, 0.0) for pt in self.phase_times), default=0.0)

    def category_time(self, category: str) -> float:
        """Max over ranks of time spent in one category."""
        return max((ct.get(category, 0.0) for ct in self.category_times),
                   default=0.0)

    def phases(self) -> List[str]:
        """All phase labels observed, sorted."""
        labels = set()
        for pt in self.phase_times:
            labels.update(pt)
        return sorted(labels)

    def to_dict(self) -> Dict:
        """JSON-serializable form for the on-disk result cache.

        Floats survive ``json`` round trips exactly (shortest-repr), so
        ``from_dict(json.loads(json.dumps(to_dict())))`` reproduces this
        result bit-for-bit — the property the cache's bit-identical
        guarantee rests on.
        """
        data = {
            "workload": self.workload,
            "system": self.system,
            "scheme": self.scheme,
            "ntasks": self.ntasks,
            "wall_time": self.wall_time,
            "rank_times": list(self.rank_times),
            "category_times": [dict(ct) for ct in self.category_times],
            "phase_times": [dict(pt) for pt in self.phase_times],
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
        }
        if self.perf is not None:
            data["perf"] = self.perf
        if self.faults is not None:
            data["faults"] = self.faults
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "JobResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            workload=data["workload"],
            system=data["system"],
            scheme=data["scheme"],
            ntasks=data["ntasks"],
            wall_time=data["wall_time"],
            rank_times=list(data["rank_times"]),
            category_times=[dict(ct) for ct in data["category_times"]],
            phase_times=[dict(pt) for pt in data["phase_times"]],
            messages=data["messages"],
            bytes_sent=data["bytes_sent"],
            perf=data.get("perf"),
            faults=data.get("faults"),
        )


class JobRunner:
    """Executes one workload under one resolved affinity configuration."""

    def __init__(self, spec: MachineSpec, affinity: ResolvedAffinity,
                 impl: MpiImplementation = OPENMPI,
                 lock: Optional[str] = None,
                 trace: bool = False,
                 profile: bool = False,
                 perf: Optional[PerfSession] = None,
                 faults: Optional[FaultPlan] = None):
        if affinity.spec.name != spec.name:
            raise ValueError("affinity was resolved for a different system")
        self.spec = spec
        self.affinity = affinity
        if perf is None and profile:
            perf = PerfSession()
        self.perf = perf
        self.machine = Machine(spec, tracer=Tracer(enabled=trace), perf=perf,
                               fault_plan=faults)
        self.world = MpiWorld(
            self.machine,
            affinity.placement,
            impl=impl,
            lock=lock,
            buffer_nodes=affinity.buffer_nodes(),
            overhead_multiplier=1.0 + affinity.scheduler_noise,
        )
        # Static contention estimate for latency-bound accesses: the
        # expected number of competing request streams per controller.
        self._sharers = affinity.controller_sharers()

    def run(self, workload: Workload) -> JobResult:
        """Simulate the workload to completion and gather accounting."""
        workload.validate()
        if workload.ntasks != self.affinity.ntasks:
            raise ValueError(
                f"workload wants {workload.ntasks} ranks but affinity "
                f"provides {self.affinity.ntasks}"
            )
        n = workload.ntasks
        rank_times = [0.0] * n
        category_times: List[Dict[str, float]] = [dict() for _ in range(n)]
        phase_times: List[Dict[str, float]] = [dict() for _ in range(n)]

        perf = self.perf
        core_of_rank = self.affinity.placement.core_of_rank
        frequency = self.spec.socket.core.frequency_hz

        def rank_process(rank: int):
            engine = self.machine.engine
            core = core_of_rank[rank]
            for op in workload.program(rank):
                if isinstance(op, (MarkerStart, MarkerStop)):
                    # zero-cost observability brackets; invisible (and
                    # free) when no profiling session is attached
                    if perf is not None:
                        if isinstance(op, MarkerStart):
                            perf.region_start(op.name, core)
                        else:
                            perf.region_stop(op.name, core)
                    continue
                start = engine.now
                if perf is not None and op.phase:
                    perf.region_start(op.phase, core)
                category = yield from self._execute(op, rank)
                elapsed = engine.now - start
                if perf is not None:
                    perf.count(core, "cycles", elapsed * frequency)
                    if op.phase:
                        perf.region_stop(op.phase, core)
                bucket = category_times[rank]
                bucket[category] = bucket.get(category, 0.0) + elapsed
                if op.phase:
                    pbucket = phase_times[rank]
                    pbucket[op.phase] = pbucket.get(op.phase, 0.0) + elapsed
                self.machine.tracer.emit(
                    start, category, rank=rank, duration=elapsed,
                    op=type(op).__name__, op_phase=op.phase,
                )
            rank_times[rank] = engine.now

        for rank in range(n):
            self.machine.engine.process(rank_process(rank))
        self.machine.engine.run()

        scale = workload.time_scale
        perf_snapshot = None
        if perf is not None:
            leaked = perf.regions.open_regions
            if leaked:
                raise ValueError(
                    f"unclosed marker regions at job end: {leaked}"
                )
            perf_snapshot = perf.snapshot(time_scale=scale)
        faults_summary = None
        end_time = self.machine.engine.now
        if self.machine.faults is not None:
            # arm/disarm events can outlive the last rank; wall time is
            # when the job finished, not when the schedule drained
            end_time = max(rank_times) if rank_times else end_time
            faults_summary = self.machine.faults.summary()
        return JobResult(
            workload=workload.name,
            system=self.spec.name,
            scheme=str(self.affinity.scheme),
            ntasks=n,
            wall_time=end_time * scale,
            rank_times=[t * scale for t in rank_times],
            category_times=[
                {k: v * scale for k, v in ct.items()} for ct in category_times
            ],
            phase_times=[
                {k: v * scale for k, v in pt.items()} for pt in phase_times
            ],
            messages=self.world.stats.messages,
            bytes_sent=self.world.stats.bytes_sent,
            perf=perf_snapshot,
            faults=faults_summary,
        )

    def _distribution(self, rank: int):
        """The rank's NUMA traffic shares, remapped under armed node loss."""
        distribution = self.affinity.distribution(rank)
        faults = self.machine.faults
        if faults is not None:
            distribution = faults.remap_distribution(distribution)
        return distribution

    # -- op execution -----------------------------------------------------

    def _execute(self, op: Op, rank: int):
        """Generator executing one op; returns its accounting category."""
        if isinstance(op, Compute):
            yield from self._compute(op, rank)
            return "compute"
        world = self.world
        if isinstance(op, Send):
            yield from world.send(rank, op.dst, op.nbytes, op.tag)
        elif isinstance(op, Recv):
            yield from world.recv(rank, src=op.src, tag=op.tag)
        elif isinstance(op, SendRecv):
            yield from world.sendrecv(rank, op.send_to, op.recv_from,
                                      op.nbytes, op.tag)
        elif isinstance(op, Barrier):
            yield from world.barrier(rank)
        elif isinstance(op, Allreduce):
            yield from world.allreduce(rank, op.nbytes)
        elif isinstance(op, Alltoall):
            yield from world.alltoall(rank, op.nbytes)
        elif isinstance(op, Allgather):
            yield from world.allgather(rank, op.nbytes)
        elif isinstance(op, Bcast):
            yield from world.bcast(rank, op.root, op.nbytes)
        elif isinstance(op, Reduce):
            yield from world.reduce(rank, op.root, op.nbytes)
        else:
            raise TypeError(f"unknown operation {op!r}")
        return "comm"

    def _check_thread_team(self, op: Compute, rank: int) -> None:
        """A rank's thread team must fit on its socket alongside co-residents."""
        if op.threads == 1:
            return
        occupied = self.affinity.placement.sharers_on_socket(rank) * op.threads
        if occupied > self.machine.spec.cores_per_socket:
            raise ValueError(
                f"rank {rank}: {op.threads} threads with "
                f"{self.affinity.placement.sharers_on_socket(rank)} ranks on "
                f"the socket oversubscribe its "
                f"{self.machine.spec.cores_per_socket} cores"
            )

    def _compute(self, op: Compute, rank: int):
        """Flop time overlapped with streaming traffic; serial latency part.

        A thread team (``op.threads > 1``) divides the flop and
        dependent-access work, streams as T concurrent flows, and pays a
        fork/join overhead per region — the OpenMP-within-a-socket model
        the paper's conclusion proposes.
        """
        self._check_thread_team(op, rank)
        engine = self.machine.engine
        socket = self.affinity.placement.socket_of_rank(rank)
        core = self.machine.spec.socket.core
        threads = op.threads
        parts = []

        # Each thread works on its own slice; per-thread working sets
        # shrink, so the cache residency factor uses the slice size.
        residency_factor = self.machine.cache.dram_traffic_factor(
            op.working_set / threads, op.reuse
        )

        perf = self.perf
        perf_core = self.affinity.placement.core_of_rank[rank]
        if perf is not None:
            if op.flops > 0:
                perf.count(perf_core, "flops", op.flops)
            line_requests = op.dram_bytes / CACHE_LINE + op.random_accesses
            if line_requests > 0:
                hierarchy = self.machine.cache.hierarchy_counts(
                    op.working_set / threads, op.reuse, line_requests
                )
                for event, value in hierarchy.items():
                    perf.count(perf_core, event, value)

        flop_time = 0.0
        if op.flops > 0:
            flop_time = op.flops / (core.peak_flops * op.flop_efficiency
                                    * threads)
            if self.machine.faults is not None:
                # thermal throttle, sampled at op start (analytic
                # granularity: an op spanning an arm instant is charged
                # the factor armed when it was issued)
                flop_time *= self.machine.faults.flop_factor(perf_core)

        latency_time = 0.0
        if op.random_accesses > 0:
            # Dependent accesses that hit in cache cost nothing: scale
            # the miss count by the same residency factor as streaming
            # traffic.  This is the source of superlinear speedups when
            # a per-task working set drops into L2 (LAMMPS chain).
            misses = op.random_accesses * residency_factor / threads
            distribution = self._distribution(rank)
            extra = max(0.0, sum(
                frac * (self._sharers.get(node, 1.0) - 1.0)
                for node, frac in distribution.items()
            ))
            per_access = self.machine.mem.expected_latency(
                socket, distribution, extra_sharers=extra
            )
            latency_time = misses * per_access
            self.machine.mem.count_dependent_accesses(
                socket, distribution, misses * threads, perf_core
            )

        memory_floor = 0.0
        if op.dram_bytes > 0:
            traffic = op.dram_bytes * residency_factor
            distribution = self._distribution(rank)
            per_node = {node: traffic * frac
                        for node, frac in distribution.items()}
            parts.append(self.machine.mem.stream(
                socket, per_node, weight=float(threads), core=perf_core,
                write_fraction=op.write_fraction,
            ))
            # Serial-stream floor: one core cannot pull faster than a
            # single latency-limited request stream (capped further by
            # the kernel's own access-pattern demand), however many
            # controllers its pages are spread across.  T threads issue
            # T such streams, jointly capped by the controller.
            stream_factor = self.machine.mem.stream_cost_factor(
                socket, distribution
            )
            stream_rate = min(op.stream_bandwidth * threads,
                              self.machine.mem.controller_capacity)
            memory_floor = traffic * stream_factor / stream_rate

        # Flops overlap with outstanding memory traffic; dependent
        # accesses and the serial-stream floor share the core's memory
        # pipeline, so they add to each other but overlap with flops.
        # Unbound runs with co-resident processes lose timeslices.
        noise = 1.0 + self.affinity.scheduler_noise
        if threads > 1:
            # fork/join brackets the region: strictly serial time
            from ..openmp import fork_join_cost

            yield engine.timeout(fork_join_cost(threads))
        if flop_time > 0:
            parts.append(engine.timeout(flop_time * noise))
        if latency_time + memory_floor > 0:
            parts.append(engine.timeout((latency_time + memory_floor) * noise))

        if parts:
            yield engine.all_of(parts)


def run_workload(spec: MachineSpec, workload: Workload,
                 scheme: AffinityScheme = AffinityScheme.DEFAULT,
                 impl: MpiImplementation = OPENMPI,
                 lock: Optional[str] = None,
                 parked: int = 0,
                 profile: bool = False,
                 faults: Optional[FaultPlan] = None) -> JobResult:
    """One-call convenience: resolve the scheme, build a runner, run."""
    affinity = resolve_scheme(scheme, spec, workload.ntasks, parked=parked)
    return JobRunner(spec, affinity, impl=impl, lock=lock,
                     profile=profile, faults=faults).run(workload)
