"""Experiments and sweeps: the paper's measurement methodology as a library.

* :class:`Experiment` — one (system, workload, scheme, MPI config) cell.
* :func:`scheme_sweep` — a full paper-style numactl table: task counts ×
  the six Table 5 schemes, dashes for infeasible combinations.
* :func:`scaling_study` — parallel-efficiency rows (Table 4 style)
  against the single-task baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..machine.topology import MachineSpec
from ..mpi import MpiImplementation, OPENMPI
from ..telemetry.spans import span
from .affinity import AffinityScheme, InfeasibleSchemeError, resolve_scheme
from .execution import JobResult, JobRunner
from .metrics import parallel_efficiency
from .parallel import JobRequest, run_request, run_requests
from .report import TableResult
from .workload import Workload

__all__ = ["Experiment", "scheme_sweep", "scaling_study", "compare_schemes",
           "SchemeComparison", "ALL_SCHEMES"]

#: paper column order for the numactl tables
ALL_SCHEMES: List[AffinityScheme] = [
    AffinityScheme.DEFAULT,
    AffinityScheme.ONE_MPI_LOCAL,
    AffinityScheme.ONE_MPI_MEMBIND,
    AffinityScheme.TWO_MPI_LOCAL,
    AffinityScheme.TWO_MPI_MEMBIND,
    AffinityScheme.INTERLEAVE,
]


@dataclass
class Experiment:
    """One measurement cell; ``run()`` is deterministic and repeatable."""

    system: MachineSpec
    workload: Workload
    scheme: AffinityScheme = AffinityScheme.DEFAULT
    impl: MpiImplementation = OPENMPI
    lock: Optional[str] = None
    parked: int = 0

    def request(self) -> JobRequest:
        """This cell as a value for the cache / parallel executor."""
        return JobRequest(spec=self.system, workload=self.workload,
                          scheme=self.scheme, impl=self.impl,
                          lock=self.lock, parked=self.parked)

    def run(self) -> JobResult:
        """Resolve the scheme and simulate the workload.

        Served from the content-addressed result cache when an identical
        cell has already run (determinism makes the two
        indistinguishable); raises :class:`InfeasibleSchemeError` when
        the scheme cannot be placed.
        """
        return run_request(self.request())

    def run_uncached(self) -> JobResult:
        """Simulate the workload, bypassing the result cache."""
        affinity = resolve_scheme(self.scheme, self.system,
                                  self.workload.ntasks, parked=self.parked)
        runner = JobRunner(self.system, affinity, impl=self.impl,
                           lock=self.lock)
        return runner.run(self.workload)


def scheme_sweep(
    system: MachineSpec,
    workload_factory: Callable[[int], Workload],
    task_counts: Sequence[int],
    schemes: Sequence[AffinityScheme] = tuple(ALL_SCHEMES),
    impl: MpiImplementation = OPENMPI,
    lock: Optional[str] = None,
    value: Callable[[JobResult], float] = lambda r: r.wall_time,
    title: str = "",
    jobs: Optional[int] = None,
) -> TableResult:
    """A paper-style numactl table for one workload on one system.

    Rows are task counts, columns the affinity schemes; infeasible
    combinations (e.g. One-MPI schemes beyond the socket count) render
    as dashes, exactly like the paper's tables.  The cells are
    independent, so they fan out over ``jobs`` worker processes (see
    :mod:`repro.core.parallel`); results are identical to a serial run.
    """
    table = TableResult(
        title=title or f"{system.name}: numactl scheme sweep",
        headers=["MPI tasks"] + [str(s) for s in schemes],
    )
    requests = []
    for ntasks in task_counts:
        workload = workload_factory(ntasks)
        for scheme in schemes:
            requests.append(Experiment(system, workload, scheme, impl=impl,
                                       lock=lock).request())
    with span("sweep", kind="scheme_sweep", table=table.title,
              cells=len(requests)):
        results = run_requests(requests, jobs=jobs)
    cells = iter(results)
    for ntasks in task_counts:
        row: List = [ntasks]
        for _scheme in schemes:
            result = next(cells)
            row.append(None if result is None else value(result))
        table.add_row(*row)
    return table


@dataclass
class SchemeComparison:
    """Outcome of :func:`compare_schemes` for one workload."""

    times: Dict[str, float]
    best: str
    worst: str

    @property
    def best_time(self) -> float:
        return self.times[self.best]

    @property
    def improvement_over_default_percent(self) -> float:
        """How much the best scheme improves on the Default placement."""
        default = self.times[str(AffinityScheme.DEFAULT)]
        return (default - self.best_time) / default * 100.0

    @property
    def spread(self) -> float:
        """Worst/best runtime ratio across feasible schemes."""
        return self.times[self.worst] / self.best_time


def compare_schemes(
    system: MachineSpec,
    workload_factory: Callable[[], Workload],
    schemes: Sequence[AffinityScheme] = tuple(ALL_SCHEMES),
    impl: MpiImplementation = OPENMPI,
    lock: Optional[str] = None,
    value: Callable[[JobResult], float] = lambda r: r.wall_time,
    jobs: Optional[int] = None,
) -> SchemeComparison:
    """Run one workload under every feasible scheme and rank them.

    The programmatic form of the paper's headline question: *which
    placement should this job use, and what is it worth?*  Infeasible
    schemes (the tables' dashes) are skipped; the Default scheme must be
    feasible (it always is).  Feasible cells fan out over ``jobs``
    worker processes.
    """
    workload = workload_factory()
    requests = [Experiment(system, workload, scheme, impl=impl,
                           lock=lock).request() for scheme in schemes]
    with span("sweep", kind="compare_schemes", workload=workload.name,
              cells=len(requests)):
        results = run_requests(requests, jobs=jobs)
    times: Dict[str, float] = {
        str(scheme): value(result)
        for scheme, result in zip(schemes, results)
        if result is not None
    }
    if not times:
        raise ValueError("no feasible scheme for this workload")
    ordered = sorted(times, key=lambda k: times[k])
    return SchemeComparison(times=times, best=ordered[0], worst=ordered[-1])


def scaling_study(
    systems: Sequence[MachineSpec],
    workload_factory: Callable[[int], Workload],
    task_counts: Sequence[int],
    scheme: AffinityScheme = AffinityScheme.DEFAULT,
    impl: MpiImplementation = OPENMPI,
    value: Callable[[JobResult], float] = lambda r: r.wall_time,
    title: str = "",
    metric: str = "efficiency",
    jobs: Optional[int] = None,
) -> TableResult:
    """Parallel-efficiency (or speedup) rows per system (Table 4 style).

    The baseline is the single-task run of the same workload under the
    Default scheme.  ``metric`` selects ``"efficiency"`` (t1/(n*tn)) or
    ``"speedup"`` (t1/tn).  Task counts beyond a system's core count
    render as dashes.  Baselines and scaling cells alike fan out over
    ``jobs`` worker processes; the per-system baselines are shared with
    any other sweep of the same configuration through the result cache.
    """
    if metric not in ("efficiency", "speedup"):
        raise ValueError(f"unknown metric {metric!r}")
    table = TableResult(
        title=title or f"multi-core {metric}",
        headers=["System"] + [f"{n} cores" for n in task_counts],
    )
    requests = []
    cells: List[Tuple] = []  # (system, n or None for the baseline)
    for system in systems:
        requests.append(Experiment(system, workload_factory(1),
                                   AffinityScheme.DEFAULT,
                                   impl=impl).request())
        cells.append((system, None))
        for n in task_counts:
            if n > system.total_cores:
                continue
            requests.append(Experiment(system, workload_factory(n), scheme,
                                       impl=impl).request())
            cells.append((system, n))
    with span("sweep", kind="scaling_study", table=table.title,
              cells=len(requests)):
        results = dict(zip(cells, run_requests(requests, jobs=jobs)))
    for system in systems:
        t1 = value(results[(system, None)])
        row: List = [system.name]
        for n in task_counts:
            if n > system.total_cores:
                row.append(None)
                continue
            tn = value(results[(system, n)])
            if metric == "efficiency":
                row.append(parallel_efficiency(t1, tn, n))
            else:
                row.append(t1 / tn)
        table.add_row(*row)
    return table
