"""Experiments and sweeps: the paper's measurement methodology as a library.

* :class:`Experiment` — one (system, workload, scheme, MPI config) cell,
  now a thin typed wrapper over :class:`repro.service.RunRequest` that
  executes through the process-wide :class:`repro.service.Session`.
* :func:`scheme_sweep` / :func:`compare_schemes` / :func:`scaling_study`
  — **deprecated** free-function shims.  The implementations moved to
  the session facade (:meth:`Session.scheme_sweep` and friends) so
  sweeps share the service's cache, coalescing, and telemetry; these
  wrappers delegate to :func:`repro.service.default_session` and emit
  :class:`~repro.errors.ReproDeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ReproDeprecationWarning
from ..machine.topology import MachineSpec
from ..mpi import MpiImplementation, OPENMPI
from .affinity import AffinityScheme
from .execution import JobResult
from .parallel import JobRequest
from .report import TableResult
from .workload import Workload

__all__ = ["Experiment", "scheme_sweep", "scaling_study", "compare_schemes",
           "SchemeComparison", "ALL_SCHEMES"]

#: paper column order for the numactl tables
ALL_SCHEMES: List[AffinityScheme] = [
    AffinityScheme.DEFAULT,
    AffinityScheme.ONE_MPI_LOCAL,
    AffinityScheme.ONE_MPI_MEMBIND,
    AffinityScheme.TWO_MPI_LOCAL,
    AffinityScheme.TWO_MPI_MEMBIND,
    AffinityScheme.INTERLEAVE,
]


def _session():
    # lazy: repro.core must import without dragging the service package
    # in at module time (the service imports core submodules back)
    from ..service.session import default_session

    return default_session()


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} (see docs/API.md)",
        ReproDeprecationWarning, stacklevel=3)


@dataclass
class Experiment:
    """One measurement cell; ``run()`` is deterministic and repeatable."""

    system: MachineSpec
    workload: Workload
    scheme: AffinityScheme = AffinityScheme.DEFAULT
    impl: MpiImplementation = OPENMPI
    lock: Optional[str] = None
    parked: int = 0
    #: ``"exact"``/``None`` steps the engine, ``"fast"`` the analytic
    #: surrogate, ``"auto"`` picks fast where supported
    tier: Optional[str] = None

    def to_request(self) -> "RunRequest":
        """This cell as a typed service :class:`RunRequest`."""
        from ..service.api import RunRequest

        return RunRequest(system=self.system, workload=self.workload,
                          scheme=self.scheme, impl=self.impl,
                          lock=self.lock, parked=self.parked,
                          tier=self.tier)

    def request(self) -> JobRequest:
        """This cell as a value for the cache / parallel executor."""
        return JobRequest(spec=self.system, workload=self.workload,
                          scheme=self.scheme, impl=self.impl,
                          lock=self.lock, parked=self.parked,
                          tier=self.tier)

    def run(self) -> JobResult:
        """Resolve the scheme and simulate the workload.

        Routed through the process-wide service session: served from
        the content-addressed result cache when an identical cell has
        already run, coalesced onto an in-flight twin when the async
        plane is simulating one.  Raises
        :class:`~repro.errors.InfeasibleSchemeError` when the scheme
        cannot be placed.
        """
        return _session().run(self.to_request()).require()

    def run_uncached(self) -> JobResult:
        """Simulate the workload, bypassing the result cache."""
        return self.request().execute()


def scheme_sweep(
    system: MachineSpec,
    workload_factory: Callable[[int], Workload],
    task_counts: Sequence[int],
    schemes: Sequence[AffinityScheme] = tuple(ALL_SCHEMES),
    impl: MpiImplementation = OPENMPI,
    lock: Optional[str] = None,
    value: Callable[[JobResult], float] = lambda r: r.wall_time,
    title: str = "",
    jobs: Optional[int] = None,
) -> TableResult:
    """Deprecated shim for :meth:`repro.service.Session.scheme_sweep`.

    A paper-style numactl table for one workload on one system: rows
    are task counts, columns the affinity schemes, dashes the
    infeasible combinations.
    """
    _deprecated("repro.core.scheme_sweep()",
                "repro.service.Session.scheme_sweep()")
    return _session().scheme_sweep(
        system, workload_factory, task_counts, schemes=schemes, impl=impl,
        lock=lock, value=value, title=title, jobs=jobs)


@dataclass
class SchemeComparison:
    """Outcome of :meth:`Session.compare_schemes` for one workload."""

    times: Dict[str, float]
    best: str
    worst: str

    @property
    def best_time(self) -> float:
        return self.times[self.best]

    @property
    def improvement_over_default_percent(self) -> float:
        """How much the best scheme improves on the Default placement."""
        default = self.times[str(AffinityScheme.DEFAULT)]
        return (default - self.best_time) / default * 100.0

    @property
    def spread(self) -> float:
        """Worst/best runtime ratio across feasible schemes."""
        return self.times[self.worst] / self.best_time


def compare_schemes(
    system: MachineSpec,
    workload_factory: Callable[[], Workload],
    schemes: Sequence[AffinityScheme] = tuple(ALL_SCHEMES),
    impl: MpiImplementation = OPENMPI,
    lock: Optional[str] = None,
    value: Callable[[JobResult], float] = lambda r: r.wall_time,
    jobs: Optional[int] = None,
) -> SchemeComparison:
    """Deprecated shim for :meth:`repro.service.Session.compare_schemes`.

    Run one workload under every feasible scheme and rank them; raises
    :class:`~repro.errors.NoFeasibleSchemeError` (a ``ValueError``)
    when every scheme is infeasible.
    """
    _deprecated("repro.core.compare_schemes()",
                "repro.service.Session.compare_schemes()")
    return _session().compare_schemes(
        system, workload_factory, schemes=schemes, impl=impl, lock=lock,
        value=value, jobs=jobs)


def scaling_study(
    systems: Sequence[MachineSpec],
    workload_factory: Callable[[int], Workload],
    task_counts: Sequence[int],
    scheme: AffinityScheme = AffinityScheme.DEFAULT,
    impl: MpiImplementation = OPENMPI,
    value: Callable[[JobResult], float] = lambda r: r.wall_time,
    title: str = "",
    metric: str = "efficiency",
    jobs: Optional[int] = None,
) -> TableResult:
    """Deprecated shim for :meth:`repro.service.Session.scaling_study`.

    Parallel-efficiency (or speedup) rows per system (Table 4 style);
    raises :class:`~repro.errors.UnknownMetricError` (a ``ValueError``)
    for metrics other than ``"efficiency"``/``"speedup"``.
    """
    _deprecated("repro.core.scaling_study()",
                "repro.service.Session.scaling_study()")
    return _session().scaling_study(
        systems, workload_factory, task_counts, scheme=scheme, impl=impl,
        value=value, title=title, metric=metric, jobs=jobs)
