"""Parallel sweep executor: fan independent experiment cells out.

The paper's methodology is a grid of independent (system × workload ×
scheme × MPI) cells, i.e. embarrassingly parallel.  This module turns a
list of :class:`JobRequest` cells into results using
``concurrent.futures`` worker processes, with three guarantees:

* **deterministic ordering** — results come back aligned with the
  request list regardless of completion order;
* **bit-identical results** — every cell is a pure function of its
  request, so a worker process computes exactly what the serial path
  would (enforced by tests);
* **cache integration** — cells already present in the
  :mod:`content-addressed cache <repro.core.cache>` are never
  dispatched, duplicate requests within one batch are computed once,
  and fresh results are stored for later calls.

Worker count resolution: an explicit ``jobs=`` argument, else
:func:`set_default_jobs` (the CLI's ``--jobs``), else the
``REPRO_BENCH_JOBS`` environment variable, else 1 (serial).  Requests
that cannot be pickled (e.g. monkeypatched workloads in tests) fall
back to the serial path transparently.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..machine.topology import MachineSpec
from ..mpi import MpiImplementation, OPENMPI
from ..telemetry.spans import span
from .affinity import (
    AffinityScheme,
    InfeasibleSchemeError,
    ResolvedAffinity,
    resolve_scheme,
)
from .cache import ResultCache, Uncacheable, default_cache, job_key
from .execution import JobResult, JobRunner
from .workload import Workload

__all__ = [
    "JobRequest",
    "PoolStats",
    "default_jobs",
    "pool_stats",
    "prefetch",
    "reset_pool_stats",
    "run_request",
    "run_requests",
    "set_default_jobs",
    "shutdown_pool",
]


@dataclass(frozen=True)
class JobRequest:
    """One experiment cell, fully described by value.

    ``affinity`` (an explicit :class:`ResolvedAffinity`) overrides
    ``scheme`` when given, mirroring :func:`repro.bench.common.run`.
    """

    spec: MachineSpec
    workload: Workload
    scheme: AffinityScheme = AffinityScheme.DEFAULT
    affinity: Optional[ResolvedAffinity] = None
    impl: Optional[MpiImplementation] = None
    lock: Optional[str] = None
    parked: int = 0
    #: attach a perfctr session and return counters with the result
    profile: bool = False

    def key(self) -> str:
        """Content address of this cell (raises :class:`Uncacheable`)."""
        return job_key(self.spec, self.workload, scheme=self.scheme,
                       affinity=self.affinity, impl=self.impl or OPENMPI,
                       lock=self.lock, parked=self.parked,
                       profile=self.profile)

    def execute(self) -> JobResult:
        """Run the cell; raises :class:`InfeasibleSchemeError` for dashes."""
        affinity = self.affinity
        if affinity is None:
            affinity = resolve_scheme(self.scheme, self.spec,
                                      self.workload.ntasks,
                                      parked=self.parked)
        runner = JobRunner(self.spec, affinity, impl=self.impl or OPENMPI,
                           lock=self.lock, profile=self.profile)
        return runner.run(self.workload)


# -- executor accounting ---------------------------------------------------

@dataclass
class PoolStats:
    """Process-wide executor utilization counters (plain ints, always on).

    ``executed_parallel`` counts cells actually dispatched to worker
    processes; ``executed_serial`` counts cells run in-process (serial
    batches, single stragglers, unpicklable fallbacks, and
    :func:`run_request` calls).  Together with ``cache_hits`` and
    ``duplicates`` they account for every ``cells`` entry, which is what
    the run ledger's ``pool`` section reports.
    """

    batches: int = 0
    cells: int = 0
    cache_hits: int = 0
    duplicates: int = 0
    executed_serial: int = 0
    executed_parallel: int = 0
    infeasible: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "duplicates": self.duplicates,
            "executed_serial": self.executed_serial,
            "executed_parallel": self.executed_parallel,
            "infeasible": self.infeasible,
        }


_POOL_STATS = PoolStats()


def pool_stats() -> PoolStats:
    """The process-wide executor counters (cumulative; snapshot to diff)."""
    return _POOL_STATS


def reset_pool_stats() -> None:
    """Zero the executor counters (tests, run boundaries)."""
    global _POOL_STATS
    _POOL_STATS = PoolStats()


# -- worker-count plumbing -------------------------------------------------

_DEFAULT_JOBS: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide worker count (the CLI's ``--jobs``)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs
    if jobs is not None and jobs != _pool_size():
        shutdown_pool()


def default_jobs() -> int:
    """Effective worker count when a call does not pass ``jobs=``."""
    if _DEFAULT_JOBS is not None:
        return max(1, _DEFAULT_JOBS)
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0


def _pool_size() -> int:
    return _POOL_JOBS


def _pool(jobs: int) -> ProcessPoolExecutor:
    """A persistent worker pool, rebuilt when the size changes."""
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS != jobs:
        shutdown_pool()
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (tests / CLI exit)."""
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_JOBS = 0


def _execute_cell(request: JobRequest) -> Tuple[str, object]:
    """Worker entry point: run one cell, folding infeasibility to data."""
    try:
        return ("ok", request.execute())
    except InfeasibleSchemeError as exc:
        return ("infeasible", str(exc))


# -- the executor ----------------------------------------------------------

def run_request(request: JobRequest,
                cache: Optional[ResultCache] = None) -> JobResult:
    """Run one cell through the cache; infeasibility raises."""
    cache = cache if cache is not None else default_cache()
    stats = _POOL_STATS
    stats.cells += 1
    try:
        key = request.key()
    except Uncacheable:
        key = None
    if key is not None:
        hit = cache.get(key)
        if hit is not None:
            stats.cache_hits += 1
            return hit
    stats.executed_serial += 1
    result = request.execute()
    if key is not None:
        cache.put(key, result)
    return result


def run_requests(requests: Sequence[JobRequest],
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 ) -> List[Optional[JobResult]]:
    """Run a batch of cells, returning results in request order.

    Infeasible cells come back as ``None`` (the paper tables' dashes).
    Cache hits are served directly; the remaining unique cells fan out
    over ``jobs`` worker processes (serially when ``jobs`` is 1, when
    only one cell is missing, or when a request cannot be pickled).
    """
    cache = cache if cache is not None else default_cache()
    jobs = default_jobs() if jobs is None else max(1, jobs)
    stats = _POOL_STATS
    stats.batches += 1
    stats.cells += len(requests)

    results: List[Optional[JobResult]] = [None] * len(requests)
    keys: List[Optional[str]] = [None] * len(requests)
    pending: List[int] = []
    first_index_for_key: dict = {}
    duplicates: List[Tuple[int, int]] = []  # (index, index of first twin)

    for i, request in enumerate(requests):
        try:
            keys[i] = request.key()
        except Uncacheable:
            pending.append(i)
            continue
        hit = cache.get(keys[i])
        if hit is not None:
            results[i] = hit
            stats.cache_hits += 1
            continue
        twin = first_index_for_key.get(keys[i])
        if twin is not None:
            duplicates.append((i, twin))
            stats.duplicates += 1
            continue
        first_index_for_key[keys[i]] = i
        pending.append(i)

    if pending:
        todo = [requests[i] for i in pending]
        with span("executor_batch", cells=len(requests),
                  dispatched=len(todo), jobs=jobs) as timer:
            outcomes = None
            if jobs > 1 and len(todo) > 1:
                try:
                    for request in todo:
                        pickle.dumps(request)
                except Exception:
                    outcomes = None  # unpicklable cell: serial fallback
                else:
                    outcomes = list(_pool(jobs).map(_execute_cell, todo))
                    stats.executed_parallel += len(todo)
                    timer.note(parallel=True)
            if outcomes is None:
                outcomes = [_execute_cell(request) for request in todo]
                stats.executed_serial += len(todo)
        for i, (status, payload) in zip(pending, outcomes):
            if status == "infeasible":
                stats.infeasible += 1
                continue  # results[i] stays None
            results[i] = payload
            if keys[i] is not None:
                cache.put(keys[i], payload)

    for i, twin in duplicates:
        results[i] = results[twin]
    return results


def prefetch(requests: Sequence[JobRequest],
             jobs: Optional[int] = None) -> int:
    """Warm the cache for a batch of cells; returns the feasible count.

    The bench generators keep their readable serial loops; calling this
    first makes every subsequent ``run()`` a memory-cache hit.
    """
    return sum(1 for r in run_requests(requests, jobs=jobs) if r is not None)
