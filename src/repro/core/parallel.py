"""Parallel sweep executor: fan independent experiment cells out.

The paper's methodology is a grid of independent (system × workload ×
scheme × MPI) cells, i.e. embarrassingly parallel.  This module turns a
list of :class:`JobRequest` cells into results using
``concurrent.futures`` worker processes, with four guarantees:

* **deterministic ordering** — results come back aligned with the
  request list regardless of completion order;
* **bit-identical results** — every cell is a pure function of its
  request, so a worker process computes exactly what the serial path
  would (enforced by tests);
* **cache integration** — cells already present in the
  :mod:`content-addressed cache <repro.core.cache>` are never
  dispatched, duplicate requests within one batch are computed once,
  and fresh results are stored for later calls;
* **crash isolation** — a worker that dies (segfault, OOM kill,
  ``os._exit``) or stalls past the batch timeout loses only its own
  cells: they are retried with exponential backoff on a fresh pool
  and, when the retry budget runs out, surface as structured
  :class:`TargetFailure` records (drain with :func:`take_failures`)
  instead of aborting the sweep.

Worker count resolution: an explicit ``jobs=`` argument, else
:func:`set_default_jobs` (the CLI's ``--jobs``), else the
``REPRO_BENCH_JOBS`` environment variable, else 1 (serial).  The
per-batch stall timeout and retry budget resolve the same way through
``REPRO_BENCH_TIMEOUT`` (seconds; unset disables the watchdog) and
``REPRO_BENCH_RETRIES``.  Requests that cannot be pickled (e.g.
monkeypatched workloads in tests) fall back to the serial path
transparently.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..faults.plan import FaultPlan, TransportExhaustedError
from ..machine.topology import MachineSpec
from ..mpi import MpiImplementation, OPENMPI
from ..telemetry import metrics as _metrics
from ..telemetry.spans import span
from .affinity import (
    AffinityScheme,
    InfeasibleSchemeError,
    ResolvedAffinity,
    resolve_scheme,
)
from .cache import ResultCache, Uncacheable, default_cache, job_key
from .execution import JobResult, JobRunner
from .workload import Workload

__all__ = [
    "JobRequest",
    "PoolStats",
    "TargetFailure",
    "default_faults",
    "default_jobs",
    "default_retries",
    "default_tier",
    "default_timeout",
    "pool_stats",
    "prefetch",
    "reset_pool_stats",
    "run_request",
    "run_requests",
    "set_default_faults",
    "set_default_jobs",
    "set_default_retries",
    "set_default_tier",
    "set_default_timeout",
    "shutdown_pool",
    "take_failures",
]

_LOG = logging.getLogger("repro.core.parallel")

#: base wall-clock sleep before a retry; doubles per attempt
_RETRY_BACKOFF_S = 0.05


@dataclass(frozen=True)
class JobRequest:
    """One experiment cell, fully described by value.

    ``affinity`` (an explicit :class:`ResolvedAffinity`) overrides
    ``scheme`` when given, mirroring :func:`repro.bench.common.run`.
    """

    spec: MachineSpec
    workload: Workload
    scheme: AffinityScheme = AffinityScheme.DEFAULT
    affinity: Optional[ResolvedAffinity] = None
    impl: Optional[MpiImplementation] = None
    lock: Optional[str] = None
    parked: int = 0
    #: attach a perfctr session and return counters with the result
    profile: bool = False
    #: degrade the modeled machine per this plan (distinct cache keys)
    faults: Optional[FaultPlan] = None
    #: execution tier: ``"exact"`` (or ``None``) steps the discrete-event
    #: engine, ``"fast"`` uses the analytic surrogate, ``"auto"`` picks
    #: fast where supported and falls back to exact otherwise
    tier: Optional[str] = None

    def effective_tier(self) -> str:
        """Resolve ``tier`` to the tier that will actually run.

        ``auto`` resolves *before* cache keying, so an auto cell that
        falls back to exact shares the exact tier's content address
        (byte-identical results, byte-identical key).
        """
        if self.tier in (None, "exact"):
            return "exact"
        if self.tier == "fast":
            return "fast"
        if self.tier == "auto":
            from ..surrogate import unsupported_reason
            reason = unsupported_reason(self.workload, self.profile,
                                        self.faults)
            return "exact" if reason else "fast"
        raise ValueError(
            f"tier must be 'fast', 'exact' or 'auto', got {self.tier!r}")

    def key(self) -> str:
        """Content address of this cell (raises :class:`Uncacheable`)."""
        return job_key(self.spec, self.workload, scheme=self.scheme,
                       affinity=self.affinity, impl=self.impl or OPENMPI,
                       lock=self.lock, parked=self.parked,
                       profile=self.profile, faults=self.faults,
                       tier=self.effective_tier())

    def execute(self) -> JobResult:
        """Run the cell; raises :class:`InfeasibleSchemeError` for dashes."""
        affinity = self.affinity
        if affinity is None:
            affinity = resolve_scheme(self.scheme, self.spec,
                                      self.workload.ntasks,
                                      parked=self.parked)
        if self.effective_tier() == "fast":
            from ..surrogate import (SurrogateUnsupportedError,
                                     evaluate_request, unsupported_reason)
            reason = unsupported_reason(self.workload, self.profile,
                                        self.faults)
            if reason:  # explicit tier="fast" on an unsupported cell
                raise SurrogateUnsupportedError(
                    f"{self.label()}: {reason}")
            return evaluate_request(self.spec, self.workload, affinity,
                                    impl=self.impl or OPENMPI,
                                    lock=self.lock)
        runner = JobRunner(self.spec, affinity, impl=self.impl or OPENMPI,
                           lock=self.lock, profile=self.profile,
                           faults=self.faults)
        return runner.run(self.workload)

    def label(self) -> str:
        """A short human-readable cell description for failure reports."""
        workload = getattr(self.workload, "name", None) \
            or type(self.workload).__name__
        scheme = self.affinity.scheme.value if self.affinity is not None \
            else self.scheme.value
        return f"{workload} on {self.spec.name} [{scheme}]"


@dataclass
class TargetFailure:
    """One cell the executor gave up on (after retries, if eligible).

    ``kind`` is ``"crash"`` (worker process died), ``"timeout"`` (batch
    watchdog fired), ``"fault_exhausted"`` (an injected transport fault
    exceeded its retry budget inside the simulation), or ``"error"``
    (any other exception, named in ``message``).
    """

    index: int
    kind: str
    message: str
    attempts: int
    label: str
    key: Optional[str] = None

    def as_dict(self) -> dict:
        return {"index": self.index, "kind": self.kind,
                "message": self.message, "attempts": self.attempts,
                "label": self.label, "key": self.key}


_FAILURES: List[TargetFailure] = []


def take_failures() -> List[TargetFailure]:
    """Drain the failures accumulated since the last call."""
    global _FAILURES
    failures, _FAILURES = _FAILURES, []
    return failures


# -- executor accounting ---------------------------------------------------

@dataclass
class PoolStats:
    """Process-wide executor utilization counters (plain ints, always on).

    ``executed_parallel`` counts cells actually dispatched to worker
    processes; ``executed_serial`` counts cells run in-process (serial
    batches, unpicklable fallbacks, and :func:`run_request` calls).  Together with ``cache_hits``,
    ``duplicates``, and ``failed`` they account for every ``cells``
    entry, which is what the run ledger's ``pool`` section reports;
    ``retried`` counts extra dispatch attempts after crashes/timeouts.
    """

    batches: int = 0
    cells: int = 0
    cache_hits: int = 0
    duplicates: int = 0
    executed_serial: int = 0
    executed_parallel: int = 0
    infeasible: int = 0
    failed: int = 0
    retried: int = 0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "duplicates": self.duplicates,
            "executed_serial": self.executed_serial,
            "executed_parallel": self.executed_parallel,
            "infeasible": self.infeasible,
            "failed": self.failed,
            "retried": self.retried,
        }


_POOL_STATS = PoolStats()


def pool_stats() -> PoolStats:
    """The process-wide executor counters (cumulative; snapshot to diff)."""
    return _POOL_STATS


def reset_pool_stats() -> None:
    """Zero the executor counters (tests, run boundaries)."""
    global _POOL_STATS
    _POOL_STATS = PoolStats()


# -- worker-count / robustness plumbing ------------------------------------

_DEFAULT_JOBS: Optional[int] = None
_DEFAULT_TIMEOUT: Optional[float] = None
_DEFAULT_TIMEOUT_SET = False
_DEFAULT_RETRIES: Optional[int] = None
_DEFAULT_FAULTS: Optional[FaultPlan] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide worker count (the CLI's ``--jobs``)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs
    if jobs is not None and jobs != _pool_size():
        shutdown_pool()


def default_jobs() -> int:
    """Effective worker count when a call does not pass ``jobs=``."""
    if _DEFAULT_JOBS is not None:
        return max(1, _DEFAULT_JOBS)
    env = os.environ.get("REPRO_BENCH_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


def set_default_timeout(seconds: Optional[float]) -> None:
    """Set the batch stall timeout (``None`` disables the watchdog)."""
    global _DEFAULT_TIMEOUT, _DEFAULT_TIMEOUT_SET
    _DEFAULT_TIMEOUT = seconds
    _DEFAULT_TIMEOUT_SET = True


def default_timeout() -> Optional[float]:
    """Effective stall timeout in seconds, or ``None`` when disabled.

    The watchdog is *stall*-based: it fires only when a full window
    elapses with zero cell completions, so a big batch on few workers
    never trips it while progress continues.
    """
    if _DEFAULT_TIMEOUT_SET:
        return _DEFAULT_TIMEOUT
    env = os.environ.get("REPRO_BENCH_TIMEOUT")
    if env:
        try:
            value = float(env)
        except ValueError:
            return None
        return value if value > 0 else None
    return None


def set_default_retries(retries: Optional[int]) -> None:
    """Set how many times a crashed/stalled cell is re-dispatched."""
    global _DEFAULT_RETRIES
    _DEFAULT_RETRIES = retries


def default_retries() -> int:
    """Effective retry budget for crashed/stalled cells (default 1)."""
    if _DEFAULT_RETRIES is not None:
        return max(0, _DEFAULT_RETRIES)
    env = os.environ.get("REPRO_BENCH_RETRIES")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return 1


def set_default_faults(plan: Optional[FaultPlan]) -> None:
    """Install a fault plan applied to every request without its own.

    Materialized *into* each request at batch entry (before keying), so
    fault-injected runs live under distinct cache addresses and worker
    processes — which do not share this module's globals — receive the
    plan by value.
    """
    global _DEFAULT_FAULTS
    _DEFAULT_FAULTS = plan if plan else None


def default_faults() -> Optional[FaultPlan]:
    """The process-wide fault plan, or ``None``."""
    return _DEFAULT_FAULTS


_DEFAULT_TIER: Optional[str] = None


def set_default_tier(tier: Optional[str]) -> None:
    """Install an execution tier for every request without its own.

    The CLIs' ``--tier``.  Like :func:`set_default_faults`, the tier is
    materialized *into* each request at batch entry — before keying, and
    by value, because worker processes do not share this module's
    globals.
    """
    global _DEFAULT_TIER
    if tier not in (None, "fast", "exact", "auto"):
        raise ValueError(
            f"tier must be 'fast', 'exact' or 'auto', got {tier!r}")
    _DEFAULT_TIER = tier


def default_tier() -> Optional[str]:
    """The process-wide execution tier, or ``None`` (exact)."""
    return _DEFAULT_TIER


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0


def _pool_size() -> int:
    return _POOL_JOBS


def _pool(jobs: int) -> ProcessPoolExecutor:
    """A persistent worker pool, rebuilt when the size changes."""
    global _POOL, _POOL_JOBS
    if _POOL is None or _POOL_JOBS != jobs:
        shutdown_pool()
        _POOL = ProcessPoolExecutor(max_workers=jobs)
        _POOL_JOBS = jobs
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent worker pool (tests / CLI exit)."""
    global _POOL, _POOL_JOBS
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None
        _POOL_JOBS = 0


def _abandon_pool(kill: bool = False) -> None:
    """Drop the persistent pool without waiting; optionally kill workers.

    Used when the pool is broken (a worker died) or stalled (watchdog
    fired): the next ``_pool()`` call builds a fresh one.  ``kill``
    terminates worker processes outright — the only way to reclaim a
    worker wedged in an infinite loop.
    """
    global _POOL, _POOL_JOBS
    pool = _POOL
    _POOL = None
    _POOL_JOBS = 0
    if pool is None:
        return
    if kill:
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except (OSError, AttributeError):
                pass
    try:
        pool.shutdown(wait=not kill, cancel_futures=True)
    except Exception:
        pass  # a broken pool may refuse a clean shutdown


def _execute_cell(request: JobRequest) -> Tuple[str, object]:
    """Worker entry point: run one cell, folding every outcome to data.

    Infeasible placements are expected data (the paper tables' dashes).
    Any other exception — including an injected transport fault
    exhausting its retries — becomes a ``("failed", ...)`` outcome so
    one bad cell never aborts a whole sweep.
    """
    try:
        return ("ok", request.execute())
    except InfeasibleSchemeError as exc:
        return ("infeasible", str(exc))
    except TransportExhaustedError as exc:
        return ("failed", {"kind": "fault_exhausted", "message": str(exc)})
    except Exception as exc:
        return ("failed", {"kind": "error",
                           "message": f"{type(exc).__name__}: {exc}"})


# -- parallel dispatch with crash/stall recovery ---------------------------

def _submit_round(indices: List[int], todo: Sequence[JobRequest],
                  jobs: int, timeout: Optional[float],
                  ) -> Tuple[Dict[int, Tuple[str, object]], Set[int], Set[int]]:
    """Dispatch ``indices`` to the shared pool; harvest what survives.

    Returns ``(outcomes, timed_out, crashed)``.  The timeout is a stall
    watchdog: it fires only when a full window passes with zero
    completions, at which point the remaining futures are cancelled and
    the (possibly wedged) pool is killed.  A worker death breaks the
    whole pool — every in-flight future fails — so lost cells come back
    in ``crashed`` for the caller to retry or isolate.
    """
    pool = _pool(jobs)
    outcomes: Dict[int, Tuple[str, object]] = {}
    timed_out: Set[int] = set()
    crashed: Set[int] = set()
    try:
        futures = {pool.submit(_execute_cell, todo[i]): i for i in indices}
    except BrokenProcessPool:
        _abandon_pool()
        return outcomes, timed_out, set(indices)
    pending = set(futures)
    try:
        while pending:
            done, pending = wait(pending, timeout=timeout,
                                 return_when=FIRST_COMPLETED)
            if not done:
                # a full window with zero completions: the pool stalled
                _metrics.inc("executor_watchdog_fires_total")
                for future in pending:
                    future.cancel()
                timed_out.update(futures[f] for f in pending)
                _abandon_pool(kill=True)
                break
            for future in done:
                index = futures[future]
                try:
                    outcomes[index] = future.result()
                except BrokenProcessPool:
                    crashed.add(index)
                except Exception as exc:  # CancelledError and friends
                    crashed.add(index)
                    _LOG.debug("future for cell %d failed: %s", index, exc)
    except KeyboardInterrupt:
        for future in futures:
            future.cancel()
        _abandon_pool(kill=True)
        raise
    if crashed:
        _metrics.inc("executor_worker_crashes_total", len(crashed))
        _abandon_pool()
    return outcomes, timed_out, crashed


def _run_isolated(request: JobRequest, timeout: Optional[float],
                  ) -> Tuple[str, object]:
    """Run one suspect cell on a throwaway single-worker pool.

    After an ambiguous multi-cell crash (a broken pool fails every
    in-flight future, innocent and guilty alike), isolation re-runs each
    suspect alone so only the actually-crashing cell is blamed.
    """
    pool = ProcessPoolExecutor(max_workers=1)
    try:
        future = pool.submit(_execute_cell, request)
        try:
            return future.result(timeout=timeout)
        except FuturesTimeoutError:
            future.cancel()
            for proc in list((getattr(pool, "_processes", None)
                              or {}).values()):
                try:
                    proc.terminate()
                except (OSError, AttributeError):
                    pass
            return ("timeout", None)
        except BrokenProcessPool:
            return ("crash", None)
    finally:
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


def _run_parallel(todo: Sequence[JobRequest], jobs: int,
                  timeout: Optional[float], retries: int,
                  ) -> List[Tuple[str, object]]:
    """Drive a batch through the pool with retry, backoff, and isolation."""
    stats = _POOL_STATS
    outcomes: List[Optional[Tuple[str, object]]] = [None] * len(todo)
    attempts = [0] * len(todo)
    remaining = list(range(len(todo)))
    isolate = False
    while remaining:
        for index in remaining:
            attempts[index] += 1
        if isolate:
            lost: Dict[int, str] = {}
            for index in remaining:
                outcome = _run_isolated(todo[index], timeout)
                if outcome[0] in ("timeout", "crash"):
                    lost[index] = outcome[0]
                else:
                    outcomes[index] = outcome
        else:
            harvested, timed_out, crashed = _submit_round(
                remaining, todo, jobs, timeout)
            outcomes_update = harvested
            for index, outcome in outcomes_update.items():
                outcomes[index] = outcome
            lost = {index: "timeout" for index in timed_out}
            lost.update({index: "crash" for index in crashed})
            if len(crashed) > 1:
                # ambiguous attribution: a broken pool killed innocents
                # along with the guilty cell — isolate from here on
                isolate = True
                _LOG.warning("worker pool broke with %d cells in flight; "
                             "retrying each in isolation", len(crashed))
        next_remaining = []
        for index, kind in sorted(lost.items()):
            if attempts[index] > retries:
                verb = ("stalled past the %.3gs watchdog" % timeout
                        if kind == "timeout" and timeout
                        else "worker process died")
                outcomes[index] = ("failed", {
                    "kind": kind,
                    "message": f"{verb} on every attempt",
                })
            else:
                stats.retried += 1
                _metrics.inc("executor_retries_total")
                next_remaining.append(index)
        if next_remaining and not isolate:
            time.sleep(_RETRY_BACKOFF_S
                       * 2 ** (max(attempts[i] for i in next_remaining) - 1))
        remaining = next_remaining
    return [outcome if outcome is not None
            else ("failed", {"kind": "error", "message": "cell never ran"})
            for outcome in outcomes]


# -- the executor ----------------------------------------------------------

def run_request(request: JobRequest,
                cache: Optional[ResultCache] = None) -> JobResult:
    """Run one cell through the cache; infeasibility raises."""
    cache = cache if cache is not None else default_cache()
    if _DEFAULT_FAULTS is not None and request.faults is None:
        request = replace(request, faults=_DEFAULT_FAULTS)
    if _DEFAULT_TIER is not None and request.tier is None:
        request = replace(request, tier=_DEFAULT_TIER)
    stats = _POOL_STATS
    stats.cells += 1
    try:
        key = request.key()
    except Uncacheable:
        key = None
    if key is not None:
        hit = cache.get(key)
        if hit is not None:
            stats.cache_hits += 1
            return hit
    stats.executed_serial += 1
    result = request.execute()
    if key is not None:
        cache.put(key, result)
    return result


def run_requests(requests: Sequence[JobRequest],
                 jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 retries: Optional[int] = None,
                 backend=None,
                 ) -> List[Optional[JobResult]]:
    """Run a batch of cells, returning results in request order.

    Infeasible cells come back as ``None`` (the paper tables' dashes),
    as do cells that failed outright — drain :func:`take_failures` to
    tell the two apart.  Cache hits are served directly; the remaining
    unique cells are scheduled on ``backend`` (an
    :class:`~repro.backends.ExecutionBackend`; the process-wide
    default — the crash-isolated worker-process pool — when ``None``).
    The backend only ever *runs* cells: content addressing, duplicate
    coalescing, and cache stores happen here, so the backend choice
    can never leak into a cache key.  On the process backend, crashed
    or stalled workers lose only their own cells, which are retried up
    to ``retries`` times with exponential backoff before being
    reported as failures.
    """
    cache = cache if cache is not None else default_cache()
    jobs = default_jobs() if jobs is None else max(1, jobs)
    timeout = default_timeout() if timeout is None else (
        timeout if timeout > 0 else None)
    retries = default_retries() if retries is None else max(0, retries)
    if _DEFAULT_FAULTS is not None:
        requests = [replace(r, faults=_DEFAULT_FAULTS)
                    if r.faults is None else r for r in requests]
    if _DEFAULT_TIER is not None:
        requests = [replace(r, tier=_DEFAULT_TIER)
                    if r.tier is None else r for r in requests]
    stats = _POOL_STATS
    stats.batches += 1
    stats.cells += len(requests)
    _metrics.inc("executor_batches_total")
    _metrics.inc("executor_cells_total", len(requests))

    results: List[Optional[JobResult]] = [None] * len(requests)
    keys: List[Optional[str]] = [None] * len(requests)
    pending: List[int] = []
    first_index_for_key: dict = {}
    duplicates: List[Tuple[int, int]] = []  # (index, index of first twin)

    for i, request in enumerate(requests):
        try:
            keys[i] = request.key()
        except Uncacheable:
            pending.append(i)
            continue
        hit = cache.get(keys[i])
        if hit is not None:
            results[i] = hit
            stats.cache_hits += 1
            _metrics.inc("executor_cache_hits_total")
            continue
        twin = first_index_for_key.get(keys[i])
        if twin is not None:
            duplicates.append((i, twin))
            stats.duplicates += 1
            _metrics.inc("executor_duplicates_total")
            continue
        first_index_for_key[keys[i]] = i
        pending.append(i)

    if pending:
        todo = [requests[i] for i in pending]
        _metrics.inc("executor_dispatched_total", len(todo))
        _metrics.set_gauge("executor_pool_jobs", jobs)
        _metrics.observe("executor_dispatch_cells", len(todo),
                         bounds=_metrics.COUNT_BUCKETS)
        if backend is None:
            from ..backends import default_backend
            backend = default_backend()
        t0_batch = time.perf_counter()
        with span("executor_batch", cells=len(requests),
                  dispatched=len(todo), jobs=jobs,
                  backend=backend.name) as timer:
            futures = backend.submit_cells(todo, jobs=jobs,
                                           timeout=timeout,
                                           retries=retries)
            outcomes = [future.result() for future in futures]
            timer.note(parallel=jobs > 1)
        _metrics.observe("executor_batch_seconds",
                         time.perf_counter() - t0_batch)
        for i, (status, payload) in zip(pending, outcomes):
            if status == "infeasible":
                stats.infeasible += 1
                continue  # results[i] stays None
            if status == "failed":
                stats.failed += 1
                _metrics.inc("executor_failed_total")
                detail = payload or {}
                _FAILURES.append(TargetFailure(
                    index=i,
                    kind=detail.get("kind", "error"),
                    message=detail.get("message", "unknown failure"),
                    attempts=1 + (retries if detail.get("kind")
                                  in ("crash", "timeout") else 0),
                    label=requests[i].label(),
                    key=keys[i],
                ))
                _LOG.error("cell %d (%s) failed: %s", i,
                           requests[i].label(),
                           detail.get("message", "unknown failure"))
                continue  # results[i] stays None
            results[i] = payload
            if keys[i] is not None:
                cache.put(keys[i], payload)

    for i, twin in duplicates:
        results[i] = results[twin]
    return results


def prefetch(requests: Sequence[JobRequest],
             jobs: Optional[int] = None) -> int:
    """Warm the cache for a batch of cells; returns the feasible count.

    The bench generators keep their readable serial loops; calling this
    first makes every subsequent ``run()`` a memory-cache hit.
    """
    return sum(1 for r in run_requests(requests, jobs=jobs) if r is not None)
