"""Characterization metrics.

Small, well-defined functions used everywhere in the benches: speedup,
parallel efficiency (the paper's Table 4 "multi-core speedup", which can
exceed 1.0 for superlinear cases), per-core normalization, and bandwidth
conversions.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "speedup",
    "parallel_efficiency",
    "per_core",
    "flops_rate",
    "bandwidth",
    "improvement_percent",
    "best_scheme",
]


def _check_positive(value: float, name: str) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def speedup(baseline_time: float, time: float) -> float:
    """Classical speedup: baseline / measured."""
    _check_positive(baseline_time, "baseline_time")
    _check_positive(time, "time")
    return baseline_time / time


def parallel_efficiency(t1: float, tn: float, n: int) -> float:
    """Speedup per core: ``t1 / (n * tn)``.

    This is the paper's Table 4 metric ("we can see speedups greater
    than 1.0"): values above 1.0 indicate superlinear scaling, typically
    from per-task working sets dropping into cache.
    """
    if n < 1:
        raise ValueError(f"core count must be >= 1, got {n}")
    return speedup(t1, tn) / n


def per_core(aggregate: float, n: int) -> float:
    """Aggregate metric divided by core count."""
    if n < 1:
        raise ValueError(f"core count must be >= 1, got {n}")
    return aggregate / n


def flops_rate(flops: float, seconds: float) -> float:
    """Achieved flop/s."""
    _check_positive(seconds, "seconds")
    return flops / seconds


def bandwidth(nbytes: float, seconds: float) -> float:
    """Achieved bytes/s."""
    _check_positive(seconds, "seconds")
    return nbytes / seconds


def improvement_percent(baseline_time: float, improved_time: float) -> float:
    """Percentage runtime improvement of ``improved`` over ``baseline``.

    Positive means faster: 25.0 = "25% performance improvement" in the
    paper's phrasing (time reduced by 25%).
    """
    _check_positive(baseline_time, "baseline_time")
    _check_positive(improved_time, "improved_time")
    return (baseline_time - improved_time) / baseline_time * 100.0


def best_scheme(times_by_scheme: Dict[str, float]) -> str:
    """Name of the fastest scheme (ties break lexicographically)."""
    if not times_by_scheme:
        raise ValueError("no schemes to compare")
    return min(sorted(times_by_scheme), key=lambda k: times_by_scheme[k])
