"""The six processor/memory affinity schemes of Table 5.

Each scheme resolves, for a given machine and task count, into a
:class:`~repro.osmodel.Placement` (which core runs each MPI rank) plus a
per-rank :class:`~repro.numa.MemoryPolicy`.  The semantics:

* **Default** — no ``numactl``: the kernel load-balancer spreads tasks
  and first-touch placement applies, with a migration-induced remote
  fraction (system-dependent).
* **One MPI + Local Alloc** — one task per socket, CPU-bound, with
  ``--localalloc``: every page local, exclusive memory link.  The
  paper's best performer.
* **One MPI + Membind** — one task per socket with ``--membind`` to an
  explicit node set.  Reproducing the paper's configuration, all tasks
  bind to the *same* two nodes, concentrating traffic on two memory
  controllers; this is what makes Membind the worst-case scheme in
  Tables 2/3 (the paper: "forcing membind ... result[s] in worst-case
  performance").
* **Two MPI + Local Alloc** — both cores of each socket, local pages:
  local but the two cores share their socket's memory link.
* **Two MPI + Membind** — both cores, membind hotspot.
* **Interleave** — ``--interleave=all``: pages round-robin over every
  node; (N-1)/N of traffic is remote but controller load is spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..errors import InfeasibleSchemeError
from ..machine.topology import MachineSpec
from ..numa import (
    FirstTouch,
    Interleave,
    LocalAlloc,
    Membind,
    MemoryPolicy,
    NumactlConfig,
)
from ..osmodel import Placement, SchedulerModel, one_per_socket, two_per_socket

__all__ = [
    "AffinityScheme",
    "InfeasibleSchemeError",
    "ResolvedAffinity",
    "resolve_scheme",
    "SCHEME_TABLE",
    "membind_node_set",
]


class AffinityScheme(str, Enum):
    """The Table 5 schemes, by their paper names."""

    DEFAULT = "Default"
    ONE_MPI_LOCAL = "One MPI + Local Alloc"
    ONE_MPI_MEMBIND = "One MPI + Membind"
    TWO_MPI_LOCAL = "Two MPI + Local Alloc"
    TWO_MPI_MEMBIND = "Two MPI + Membind"
    INTERLEAVE = "Interleave"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Table 5 of the paper, as data.
SCHEME_TABLE: List[Dict[str, str]] = [
    {"Name": "Default",
     "Description": "Default (no numactl)"},
    {"Name": "One MPI+Local Alloc",
     "Description": "One MPI task per socket and local allocation policy"},
    {"Name": "One MPI+Membind",
     "Description": "One MPI task per socket with explicit memory binding per core"},
    {"Name": "Two MPI+Local Alloc",
     "Description": "Two MPI tasks per socket and local allocation policy"},
    {"Name": "Two MPI+Membind",
     "Description": "Two MPI tasks per socket with explicit memory binding per core"},
    {"Name": "Interleave",
     "Description": "Interleaved memory allocation"},
]


def membind_node_set(spec: MachineSpec) -> Tuple[int, ...]:
    """The explicit node set the Membind schemes bind memory to.

    The paper's scripts bound all tasks' memory to a fixed node list; on
    a multi-socket box that concentrates every task's pages on the first
    two nodes (the hotspot that makes Membind the worst scheme).
    """
    return (0,) if spec.sockets == 1 else (0, 1)


@dataclass(frozen=True)
class ResolvedAffinity:
    """A scheme made concrete for one machine and task count.

    ``scheduler_noise`` models interference from co-resident processes
    on unbound runs (the "parked" configurations of Figures 16–17):
    per-op software overheads inflate by ``1 + scheduler_noise``.
    """

    scheme: AffinityScheme
    spec: MachineSpec
    placement: Placement
    policies: Tuple[MemoryPolicy, ...]
    numactl: NumactlConfig
    scheduler_noise: float = 0.0

    @property
    def ntasks(self) -> int:
        return self.placement.ntasks

    def policy_of(self, rank: int) -> MemoryPolicy:
        """Memory policy governing ``rank``'s allocations."""
        return self.policies[rank]

    def distribution(self, rank: int) -> Dict[int, float]:
        """Node fractions of ``rank``'s memory traffic."""
        return self.policy_of(rank).traffic_distribution(
            self.placement.socket_of_rank(rank), self.spec.sockets
        )

    def buffer_nodes(self) -> Dict[int, int]:
        """Home node of each rank's MPI shared buffer (policy-placed)."""
        return {
            r: self.policy_of(r).place_page(
                self.placement.socket_of_rank(r), r, self.spec.sockets
            )
            for r in range(self.ntasks)
        }

    def controller_sharers(self) -> Dict[int, float]:
        """Expected concurrent request streams per memory controller."""
        load: Dict[int, float] = {n: 0.0 for n in range(self.spec.sockets)}
        for rank in range(self.ntasks):
            for node, frac in self.distribution(rank).items():
                load[node] += frac
        return load


def resolve_scheme(scheme: AffinityScheme, spec: MachineSpec, ntasks: int,
                   parked: int = 0) -> ResolvedAffinity:
    """Turn a Table 5 scheme into placement + policies on ``spec``.

    Raises :class:`InfeasibleSchemeError` for infeasible combinations
    (e.g. the One-MPI schemes with more tasks than sockets — the dashes
    in the paper's tables).
    """
    if ntasks < 1:
        raise ValueError("need at least one task")
    scheduler = SchedulerModel(spec)

    try:
        placement, policy, numactl = _resolve_placement(
            scheme, spec, ntasks, parked, scheduler)
    except InfeasibleSchemeError:
        raise
    except ValueError as exc:
        # the placement builders reject by raising ValueError; translate
        # so sweeps can distinguish infeasibility from genuine bugs
        raise InfeasibleSchemeError(f"{scheme}: {exc}") from None

    noise = 0.0
    if not placement.bound and parked > 0:
        # parked-but-present processes perturb the balancer and steal
        # timeslices from the active tasks
        noise = 0.25 * parked / spec.total_cores

    return ResolvedAffinity(
        scheme=scheme,
        spec=spec,
        placement=placement,
        policies=tuple(policy for _ in range(ntasks)),
        numactl=numactl,
        scheduler_noise=noise,
    )


def _resolve_placement(scheme: AffinityScheme, spec: MachineSpec,
                       ntasks: int, parked: int,
                       scheduler: SchedulerModel):
    """Placement, policy and numactl config for one scheme."""
    if scheme is AffinityScheme.DEFAULT:
        placement = scheduler.default_placement(ntasks, parked=parked)
        policy: MemoryPolicy = FirstTouch(
            remote_fraction=scheduler.remote_fraction(parked=parked)
        )
        numactl = NumactlConfig()
    elif scheme is AffinityScheme.ONE_MPI_LOCAL:
        placement = one_per_socket(spec, ntasks)
        policy = LocalAlloc()
        numactl = NumactlConfig(
            cpunodebind=tuple(placement.sockets_in_use()), localalloc=True
        )
    elif scheme is AffinityScheme.ONE_MPI_MEMBIND:
        placement = one_per_socket(spec, ntasks)
        policy = Membind(nodes=membind_node_set(spec))
        numactl = NumactlConfig(
            cpunodebind=tuple(placement.sockets_in_use()),
            membind=membind_node_set(spec),
        )
    elif scheme is AffinityScheme.TWO_MPI_LOCAL:
        placement = two_per_socket(spec, ntasks)
        policy = LocalAlloc()
        numactl = NumactlConfig(
            cpunodebind=tuple(placement.sockets_in_use()), localalloc=True
        )
    elif scheme is AffinityScheme.TWO_MPI_MEMBIND:
        placement = two_per_socket(spec, ntasks)
        policy = Membind(nodes=membind_node_set(spec))
        numactl = NumactlConfig(
            cpunodebind=tuple(placement.sockets_in_use()),
            membind=membind_node_set(spec),
        )
    elif scheme is AffinityScheme.INTERLEAVE:
        placement = scheduler.default_placement(ntasks, parked=parked)
        policy = Interleave()
        numactl = NumactlConfig(interleave=())
    else:  # pragma: no cover - exhaustive enum
        raise TypeError(f"unhandled scheme {scheme!r}")
    return placement, policy, numactl
