"""Operation descriptors: the vocabulary workloads are written in.

A workload's per-rank program is a generator of these descriptors.  They
are engine-agnostic — the runtime (:mod:`repro.core.execution`)
translates each into discrete-event activity on a concrete machine.

``Compute`` characterizes a computation slice by its operation counts:

* ``flops`` — double-precision floating-point operations;
* ``dram_bytes`` — the *natural* DRAM traffic of the slice (bytes that
  would move with a cold cache and streaming access);
* ``working_set`` — bytes of the rank's resident data in the slice
  (drives the cache model's traffic factor);
* ``reuse`` — temporal-locality friendliness in [0, 1] (0 = STREAM,
  ~0.97 = blocked DGEMM);
* ``flop_efficiency`` — achieved fraction of peak flops when
  compute-bound (vendor BLAS ≈ 0.85+, compiled Fortran loops much less);
* ``random_accesses`` — count of dependent, non-overlappable memory
  accesses (RandomAccess/GUPS-style pointer chasing), charged at the
  NUMA latency of the rank's page placement.

Every descriptor carries an optional ``phase`` label; the runtime
accumulates time per phase so application tables (e.g. the FFT phase of
the AMBER JAC benchmark, Table 7) can be reported separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Op",
    "Compute",
    "MarkerStart",
    "MarkerStop",
    "Send",
    "Recv",
    "SendRecv",
    "Barrier",
    "Allreduce",
    "Alltoall",
    "Allgather",
    "Bcast",
    "Reduce",
]


@dataclass(frozen=True)
class Op:
    """Base class for all operation descriptors."""

    phase: str = ""


@dataclass(frozen=True)
class Compute(Op):
    """A computation slice characterized by operation counts.

    ``stream_bandwidth`` caps the kernel's own single-stream DRAM demand
    (bytes/s): an irregular kernel like SpMV cannot consume a whole
    memory link even alone, which is why a second core can still help it
    on a fast controller while two streaming cores on a slow controller
    just split the link.
    """

    flops: float = 0.0
    dram_bytes: float = 0.0
    working_set: float = 0.0
    reuse: float = 0.0
    flop_efficiency: float = 0.5
    random_accesses: float = 0.0
    stream_bandwidth: float = float("inf")
    #: OpenMP-style thread team executing this slice (one rank may fan
    #: out over its socket's cores; see :mod:`repro.openmp`)
    threads: int = 1
    #: fraction of the slice's DRAM line transfers that are writes
    #: (profiling only; 1/3 is the STREAM-triad 2-read/1-write pattern)
    write_fraction: float = 1.0 / 3.0

    def __post_init__(self):
        if min(self.flops, self.dram_bytes, self.working_set,
               self.random_accesses) < 0:
            raise ValueError("operation counts must be non-negative")
        if not 0.0 <= self.reuse <= 1.0:
            raise ValueError("reuse must be in [0, 1]")
        if not 0.0 < self.flop_efficiency <= 1.0:
            raise ValueError("flop_efficiency must be in (0, 1]")
        if self.stream_bandwidth <= 0:
            raise ValueError("stream_bandwidth must be positive")
        if self.threads < 1:
            raise ValueError("threads must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")


@dataclass(frozen=True)
class MarkerStart(Op):
    """Open a named profiling region (``LIKWID_MARKER_START`` analogue).

    Zero simulated cost; ignored entirely when profiling is off, so
    instrumented workloads stay bit-identical to uninstrumented runs.
    """

    name: str = ""


@dataclass(frozen=True)
class MarkerStop(Op):
    """Close a region opened by :class:`MarkerStart` (zero cost)."""

    name: str = ""


@dataclass(frozen=True)
class Send(Op):
    """Blocking send to ``dst``."""

    dst: int = 0
    nbytes: int = 0
    tag: int = 0


@dataclass(frozen=True)
class Recv(Op):
    """Blocking receive (``None`` = wildcard)."""

    src: Optional[int] = None
    tag: Optional[int] = None


@dataclass(frozen=True)
class SendRecv(Op):
    """Concurrent send+receive (halo-exchange building block)."""

    send_to: int = 0
    recv_from: int = 0
    nbytes: int = 0
    tag: int = 0


@dataclass(frozen=True)
class Barrier(Op):
    """Full synchronization of all ranks."""


@dataclass(frozen=True)
class Allreduce(Op):
    """Allreduce of ``nbytes`` per rank (recursive doubling)."""

    nbytes: int = 0


@dataclass(frozen=True)
class Alltoall(Op):
    """Personalized all-to-all, ``nbytes`` per rank pair."""

    nbytes: int = 0


@dataclass(frozen=True)
class Allgather(Op):
    """Ring allgather of ``nbytes`` blocks."""

    nbytes: int = 0


@dataclass(frozen=True)
class Bcast(Op):
    """Binomial broadcast of ``nbytes`` from ``root``."""

    root: int = 0
    nbytes: int = 0


@dataclass(frozen=True)
class Reduce(Op):
    """Binomial reduction of ``nbytes`` toward ``root``."""

    root: int = 0
    nbytes: int = 0
