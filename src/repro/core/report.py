"""Structured results and text rendering for tables and figures.

Every bench generator returns either a :class:`TableResult` (rows ×
columns, like the paper's Tables 2–14) or a :class:`SeriesResult`
(named curves over an x axis, like Figures 2–17).  Both render to
aligned monospace text and CSV, so ``repro-bench`` output can be
compared line-by-line against the paper.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["TableResult", "SeriesResult", "format_value"]

Cell = Union[str, float, int, None]


def format_value(value: Cell, digits: int = 2) -> str:
    """Render one cell: dashes for None, trimmed floats, plain strings."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.{digits}f}"
    return str(value)


@dataclass
class TableResult:
    """A paper-style table: headers plus rows of cells."""

    title: str
    headers: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append one row (must match the header width)."""
        row = list(cells)
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def column(self, header: str) -> List[Cell]:
        """All cells of one column."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def cell(self, row_key: Cell, header: str, key_column: int = 0) -> Cell:
        """Cell addressed by first-column key and header name."""
        idx = self.headers.index(header)
        for row in self.rows:
            if row[key_column] == row_key:
                return row[idx]
        raise KeyError(f"no row with key {row_key!r}")

    def to_text(self, digits: int = 2) -> str:
        """Aligned monospace rendering."""
        cells = [self.headers] + [
            [format_value(c, digits) for c in row] for row in self.rows
        ]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.headers))]
        out = io.StringIO()
        out.write(self.title + "\n")
        rule = "-+-".join("-" * w for w in widths)
        out.write(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)) + "\n")
        out.write(rule + "\n")
        for row in cells[1:]:
            out.write(" | ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()

    def to_csv(self) -> str:
        """Comma-separated rendering (no quoting needed for our content)."""
        lines = [",".join(self.headers)]
        for row in self.rows:
            lines.append(",".join(format_value(c, digits=6) for c in row))
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """Machine-readable rendering: {title, headers, rows, notes}."""
        return json.dumps({
            "title": self.title,
            "headers": self.headers,
            "rows": self.rows,
            "notes": self.notes,
        })


@dataclass
class SeriesResult:
    """A paper-style figure: named series over a shared x axis."""

    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)
    log_x: bool = False

    def add_point(self, name: str, x: float, y: float) -> None:
        """Append one (x, y) sample to a series, creating it on first use."""
        self.series.setdefault(name, []).append((x, y))

    def xs(self) -> List[float]:
        """Union of all x values, sorted."""
        values = {x for points in self.series.values() for x, _y in points}
        return sorted(values)

    def at(self, name: str, x: float) -> Optional[float]:
        """The y value of ``name`` at ``x``, or None if absent."""
        for px, py in self.series.get(name, []):
            if px == x:
                return py
        return None

    def to_table(self) -> TableResult:
        """Tabulate the figure: one row per x, one column per series."""
        table = TableResult(
            title=self.title,
            headers=[self.x_label] + sorted(self.series),
            notes=list(self.notes),
        )
        for x in self.xs():
            table.add_row(x, *[self.at(name, x) for name in sorted(self.series)])
        return table

    def to_text(self, digits: int = 3) -> str:
        """Rendered as the equivalent table plus the y-axis label."""
        return f"[y: {self.y_label}]\n" + self.to_table().to_text(digits)

    def to_json(self) -> str:
        """Machine-readable rendering with per-series point lists."""
        return json.dumps({
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "log_x": self.log_x,
            "series": {name: points for name, points in self.series.items()},
            "notes": self.notes,
        })
