"""Post-run bottleneck analysis.

After a simulation, the machine's resources know exactly how many
bytes they moved; combining that with the runner's per-category time
accounting answers the characterization question the paper asks of
every workload: *is it compute-, memory-, or communication-bound, and
on which resource?*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .execution import JobResult, JobRunner
from .report import TableResult

__all__ = ["ResourceReport", "analyze"]

#: utilization above which a resource counts as a bottleneck candidate
_HOT_THRESHOLD = 0.5


@dataclass
class ResourceReport:
    """Utilizations and time fractions of one finished run."""

    workload: str
    system: str
    scheme: str
    wall_time: float
    #: memory-controller utilization per NUMA node
    controller_utilization: Dict[int, float]
    #: directed HT-link utilization per (src, dst) socket pair
    link_utilization: Dict[Tuple[int, int], float]
    #: max-over-ranks fraction of wall time per category
    category_fractions: Dict[str, float]

    @property
    def hottest_controller(self) -> Tuple[int, float]:
        """(node, utilization) of the busiest memory controller."""
        node = max(self.controller_utilization,
                   key=lambda n: self.controller_utilization[n])
        return node, self.controller_utilization[node]

    @property
    def hottest_link(self) -> Tuple[Tuple[int, int], float]:
        """(edge, utilization) of the busiest HT link (0 if no links)."""
        if not self.link_utilization:
            return (0, 0), 0.0
        edge = max(self.link_utilization,
                   key=lambda e: self.link_utilization[e])
        return edge, self.link_utilization[edge]

    def classify(self) -> str:
        """A one-word bottleneck verdict.

        ``memory`` when a controller is hot, else ``network`` when a
        link is hot, else ``communication`` when comm time dominates,
        else ``compute``.
        """
        _node, mem_util = self.hottest_controller
        if mem_util >= _HOT_THRESHOLD:
            return "memory"
        _edge, link_util = self.hottest_link
        if link_util >= _HOT_THRESHOLD:
            return "network"
        comm = self.category_fractions.get("comm", 0.0)
        compute = self.category_fractions.get("compute", 0.0)
        if comm > compute:
            return "communication"
        return "compute"

    def to_table(self) -> TableResult:
        """Render the report as a table."""
        table = TableResult(
            title=(f"resource report: {self.workload} on {self.system} "
                   f"[{self.scheme}] — {self.classify()}-bound"),
            headers=["Resource", "Utilization / fraction"],
        )
        for node in sorted(self.controller_utilization):
            table.add_row(f"memory controller {node}",
                          self.controller_utilization[node])
        hot_edge, hot_util = self.hottest_link
        if self.link_utilization:
            table.add_row(f"hottest HT link {hot_edge[0]}->{hot_edge[1]}",
                          hot_util)
        for category in sorted(self.category_fractions):
            table.add_row(f"time in {category}",
                          self.category_fractions[category])
        return table


def analyze(runner: JobRunner, result: JobResult) -> ResourceReport:
    """Build a :class:`ResourceReport` from a runner after ``run()``.

    ``result`` must be the object the runner produced (the runner holds
    the machine whose resources carry the byte counters).
    """
    machine = runner.machine
    # the engine clock ran in unscaled time; utilization is scale-free
    elapsed = machine.engine.now
    if elapsed <= 0:
        raise ValueError("run the workload before analyzing it")
    controllers = {
        node: ctrl.utilization(elapsed)
        for node, ctrl in enumerate(machine.mem.controllers)
    }
    links = {
        edge: link.utilization(elapsed)
        for edge, link in machine.net.links.items()
    }
    fractions = {}
    for rank_categories in result.category_times:
        for category, seconds in rank_categories.items():
            fraction = seconds / result.wall_time
            fractions[category] = max(fractions.get(category, 0.0), fraction)
    return ResourceReport(
        workload=result.workload,
        system=result.system,
        scheme=result.scheme,
        wall_time=result.wall_time,
        controller_utilization=controllers,
        link_utilization=links,
        category_fractions=fractions,
    )
