"""Terminal line plots for :class:`~repro.core.report.SeriesResult`.

The paper's figures are log-x line charts; ``plot(series)`` renders a
comparable view directly in the terminal so `repro-bench fig14 --plot`
shows the crossovers without leaving the shell.
"""

from __future__ import annotations

import math
from typing import List, Optional

from .report import SeriesResult

__all__ = ["plot", "sparkline"]

#: marker per series, cycled in sorted-name order
_MARKERS = "ox+*#@%&"

#: block characters for one-line trends, lowest to highest
_SPARKS = "▁▂▃▄▅▆▇█"


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def sparkline(values, width: int = 60) -> str:
    """One-line block-character trend of a numeric series.

    ``None``/NaN cells render as ``·`` (a gap, not a zero); an empty
    series renders as the empty string; a single point or a constant
    series sits on the bottom rung.  Series longer than ``width`` are
    bucket-averaged down to fit, so arbitrarily long run ledgers still
    render in one terminal line.
    """
    if width < 1:
        raise ValueError(f"width must be positive, got {width}")
    vals = list(values)
    if not vals:
        return ""
    if len(vals) > width:
        buckets = []
        for i in range(width):
            lo = i * len(vals) // width
            hi = max(lo + 1, (i + 1) * len(vals) // width)
            chunk = [v for v in vals[lo:hi] if _finite(v)]
            buckets.append(sum(chunk) / len(chunk) if chunk else None)
        vals = buckets
    finite = [v for v in vals if _finite(v)]
    if not finite:
        return "·" * len(vals)
    lo, hi = min(finite), max(finite)
    cells = []
    for v in vals:
        if not _finite(v):
            cells.append("·")
            continue
        idx = 0 if hi <= lo else round(
            (v - lo) / (hi - lo) * (len(_SPARKS) - 1))
        cells.append(_SPARKS[idx])
    return "".join(cells)


def _scale(value: float, lo: float, hi: float, cells: int,
           log: bool) -> int:
    """Map a value onto [0, cells-1], optionally logarithmically."""
    if log:
        value, lo, hi = (math.log10(max(v, 1e-300))
                         for v in (value, lo, hi))
    if hi <= lo:
        return 0
    position = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def plot(series: SeriesResult, width: int = 64, height: int = 16,
         log_y: bool = False) -> str:
    """Render the series as an ASCII chart with a legend.

    ``log_x`` comes from the series itself (message-size sweeps);
    ``log_y`` is the caller's choice (bandwidth curves usually read
    better linearly, latency curves logarithmically).
    """
    if width < 16 or height < 4:
        raise ValueError("plot needs at least 16x4 cells")
    points = [(x, y) for pts in series.series.values() for x, y in pts
              if _finite(x) and _finite(y)]
    if not points:
        return "(empty figure)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if log_y and y_lo <= 0:
        raise ValueError("log_y requires positive y values")

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    names = sorted(series.series)
    for index, name in enumerate(names):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in series.series[name]:
            if not (_finite(x) and _finite(y)):
                continue
            col = _scale(x, x_lo, x_hi, width, series.log_x)
            row = _scale(y, y_lo, y_hi, height, log_y)
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = "*" if cell not in (" ", marker) \
                else marker

    def fmt(v: float) -> str:
        return f"{v:.3g}"

    lines = [series.title]
    top_label = fmt(y_hi).rjust(9)
    bottom_label = fmt(y_lo).rjust(9)
    for i, row_cells in enumerate(grid):
        label = top_label if i == 0 else (
            bottom_label if i == height - 1 else " " * 9)
        lines.append(f"{label} |{''.join(row_cells)}|")
    lines.append(" " * 10 + "+" + "-" * width + "+")
    lines.append(" " * 11 + fmt(x_lo)
                 + fmt(x_hi).rjust(width - len(fmt(x_lo))))
    axis = f"x: {series.x_label}" + (" (log)" if series.log_x else "")
    axis += f"   y: {series.y_label}" + (" (log)" if log_y else "")
    lines.append(" " * 11 + axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)
