"""Content-addressed result cache for deterministic experiment cells.

Every ``Experiment.run()`` is deterministic by construction (DESIGN.md):
the outcome is a pure function of the machine spec, the workload
parameters, the resolved affinity, the MPI implementation, the lock
sub-layer, and the parked-process count.  That makes each cell safe to
memoize under a *content-addressed* key — a SHA-256 over the canonical
form of exactly those inputs — rather than an ad-hoc name.

Two tiers:

* an in-process dictionary (shared across every table/figure generator
  of one ``repro-bench`` invocation, so sweeps that project different
  columns out of the same runs never recompute);
* a file per result under ``~/.cache/repro-bench/`` (override with
  ``REPRO_BENCH_CACHE_DIR``), so *reruns* of the bench pipeline are
  served from disk.

Disk entries come in two storage formats, told apart by their first
bytes: schema-2 entries are plain JSON objects (leading ``{``) and
schema-3 entries are :mod:`repro.wire` framed binary (leading ``RW``
magic).  New writes use the binary format (set
``REPRO_BENCH_CACHE_FORMAT=json`` to keep writing schema 2); reads
accept both, so upgrading never invalidates a warm cache.  The
storage format is *not* part of the content address — keys still hash
the schema-2 key layout — and the per-entry checksum is computed over
the canonical JSON form of the result either way, so a binary entry
and a JSON entry of the same result carry bit-identical checksums.

Keys additionally fold in a **model fingerprint** — a hash over the
source of every non-bench ``repro`` module — so editing the simulator
invalidates stale results automatically instead of silently replaying
them.  Floats survive the JSON round trip exactly (``repr`` shortest
round-trip), which is what lets cached results stay bit-identical to
freshly computed ones.

Set ``REPRO_BENCH_NO_CACHE=1`` (or call ``configure(enabled=False)``,
or pass ``--no-cache`` to ``repro-bench``) to disable both tiers.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Optional

from ..telemetry import metrics as _metrics
from ..wire import frames as _frames
from .execution import JobResult

__all__ = [
    "CACHE_SCHEMA",
    "CACHE_STORE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "Uncacheable",
    "canonical_token",
    "configure",
    "default_cache",
    "job_key",
    "model_fingerprint",
    "parse_entry",
    "result_checksum",
]

#: bump when the key layout or the *logical* entry schema changes;
#: folded into every content address, so bumping it invalidates the
#: whole cache — which is why the binary storage format below is a
#: separate number
CACHE_SCHEMA = 2
#: the framed-binary *storage* format (never part of the key payload:
#: how an entry is spelled on disk must not change its address)
CACHE_STORE_SCHEMA = 3

_LOG = logging.getLogger("repro.core.cache")


class Uncacheable(TypeError):
    """An experiment input that has no canonical content representation."""


def canonical_token(obj: Any) -> Any:
    """A canonical, JSON-serializable form of one experiment input.

    Handles primitives, enums, (nested) dataclasses, containers, and
    plain objects via their public ``__dict__`` (the workload classes).
    Raises :class:`Uncacheable` for anything else — notably closures —
    so callers can fall back to running uncached instead of hashing an
    unstable ``repr``.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]
    if isinstance(obj, Enum):
        return ["enum", type(obj).__name__, canonical_token(obj.value)]
    if is_dataclass(obj) and not isinstance(obj, type):
        return ["dc", type(obj).__name__,
                [[f.name, canonical_token(getattr(obj, f.name))]
                 for f in fields(obj)]]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonical_token(v) for v in obj]]
    if isinstance(obj, dict):
        return ["map", sorted(
            [str(k), canonical_token(v)] for k, v in obj.items()
        )]
    if isinstance(obj, (set, frozenset)):
        return ["set", sorted(json.dumps(canonical_token(v), sort_keys=True)
                              for v in obj)]
    if hasattr(obj, "item") and callable(obj.item) and hasattr(obj, "dtype"):
        return canonical_token(obj.item())  # numpy scalar
    if callable(obj):
        # Functions/closures carry behaviour, not content: a key built
        # from their (usually empty) __dict__ would collide.
        raise Uncacheable(f"cannot canonicalize callable {obj!r}")
    if hasattr(obj, "__dict__"):
        state = {k: v for k, v in vars(obj).items() if not k.startswith("_")}
        return ["obj", type(obj).__name__, canonical_token(state)]
    raise Uncacheable(f"cannot canonicalize {type(obj).__name__} instance")


_FINGERPRINT: Optional[str] = None


def model_fingerprint() -> str:
    """Hash of every non-bench ``repro`` source file (computed once).

    Folding this into every cache key means a change to the simulator —
    a new contention formula, a recalibrated constant — invalidates all
    previously stored results without anyone having to remember a
    version bump.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root)
            if rel.parts[0] == "bench":
                continue  # projections of results, not inputs to them
            digest.update(str(rel).encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def job_key(spec, workload, scheme=None, affinity=None, impl=None,
            lock: Optional[str] = None, parked: int = 0,
            profile: bool = False, faults=None,
            tier: Optional[str] = None) -> str:
    """The content address of one experiment cell.

    Exactly one of ``scheme`` / ``affinity`` describes the placement;
    ``affinity`` (a :class:`ResolvedAffinity`) wins when both are given,
    mirroring the runner.  Raises :class:`Uncacheable` when any input
    has no canonical form.

    ``profile`` and ``faults`` fold into the key *only when enabled*:
    profiled results carry counter payloads and fault-injected results
    describe a degraded machine, so both must live under distinct
    addresses, while the disabled path keeps the exact key layout (and
    therefore warm disk-cache hits) of plain runs.  ``tier`` follows the
    same pattern: only the resolved ``"fast"`` tier marks the key —
    analytic answers must never collide with exact ones — while
    ``"exact"`` (and ``auto`` cells that fell back to exact) keeps the
    plain-run address byte-identical.
    """
    payload = {
        "schema": CACHE_SCHEMA,
        "model": model_fingerprint(),
        "system": spec.cache_token(),
        "workload": canonical_token(workload),
        "scheme": None if affinity is not None else canonical_token(scheme),
        "affinity": canonical_token(affinity),
        "impl": canonical_token(impl),
        "lock": lock,
        "parked": parked,
    }
    if profile:
        payload["profile"] = True
    if faults:
        payload["faults"] = canonical_token(faults)
    if tier == "fast":
        payload["tier"] = "fast"
    elif tier not in (None, "exact"):
        raise Uncacheable(f"tier must be resolved to fast/exact, got {tier!r}")
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    #: disk entries that failed to parse or verify and were quarantined
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {"memory_hits": self.memory_hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "corrupt": self.corrupt}

    def __str__(self) -> str:
        text = (f"{self.lookups} lookups: {self.memory_hits} memory hits, "
                f"{self.disk_hits} disk hits, {self.misses} misses, "
                f"{self.stores} stores")
        if self.corrupt:
            text += f", {self.corrupt} corrupt entries quarantined"
        return text


def _default_directory() -> Path:
    env = os.environ.get("REPRO_BENCH_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base).expanduser() if base else Path.home() / ".cache"
    return root / "repro-bench"


def result_checksum(result_data: Dict) -> str:
    """SHA-256 over the canonical JSON form of one stored result.

    Stored next to the result so reads can tell *torn or bit-rotted*
    entries apart from entries that simply never existed.
    """
    text = json.dumps(result_data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def parse_entry(raw: bytes) -> Dict:
    """Decode and verify one disk entry in either storage format.

    Schema-3 entries start with the ``RW`` frame magic and hold one
    framed binary message; anything else is parsed as a schema-2 JSON
    object.  Returns the entry dict (``schema``/``check``/``result``)
    after verifying the schema number and the result checksum; raises
    :class:`ValueError` (or a subclass — frame errors are
    :class:`~repro.errors.ProtocolError`) on anything malformed, torn,
    or bit-rotted.
    """
    if raw[:2] == _frames.FRAME_MAGIC:
        data, end = _frames.unpack_frames(raw)
        if end != len(raw):
            raise ValueError(
                f"{len(raw) - end} trailing byte(s) after cache entry")
        expected = CACHE_STORE_SCHEMA
    else:
        data = json.loads(raw)
        expected = CACHE_SCHEMA
    if not isinstance(data, dict):
        raise ValueError("cache entry is not an object")
    if data.get("schema") != expected:
        raise ValueError(f"cache schema {data.get('schema')!r}, "
                         f"expected {expected}")
    if data.get("check") != result_checksum(data["result"]):
        raise ValueError("cache checksum mismatch")
    return data


class ResultCache:
    """Two-tier (memory + on-disk) store of :class:`JobResult`.

    Disk entries are written in the schema-3 framed binary format by
    default (schema-2 JSON with ``binary=False`` or
    ``REPRO_BENCH_CACHE_FORMAT=json``); reads accept both formats, so
    mixed-schema directories stay fully usable.

    Disk writes are atomic (temp file + fsync + ``os.replace``), so
    concurrent writers — the parallel sweep executor's workers — can
    race on the same key without corrupting it: every writer produces
    identical bytes for a given content address.  Every entry carries a
    checksum over its result payload; a read that finds a torn or
    bit-rotted entry **quarantines** it (renames it to ``*.corrupt``),
    counts it in :attr:`CacheStats.corrupt`, and reports a miss so the
    cell is recomputed and the entry rewritten cleanly.
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 enabled: bool = True, disk: bool = True,
                 binary: Optional[bool] = None):
        self.directory = Path(directory) if directory else _default_directory()
        self.enabled = enabled
        self.disk = disk
        if binary is None:
            binary = os.environ.get(
                "REPRO_BENCH_CACHE_FORMAT", "binary") != "json"
        #: write schema-3 binary entries (reads always accept both)
        self.binary = binary
        self.stats = CacheStats()
        self._memory: Dict[str, JobResult] = {}
        self._disk_warned = False

    # -- paths ----------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- tiers ----------------------------------------------------------

    def get(self, key: str) -> Optional[JobResult]:
        """The stored result for ``key``, promoting disk hits to memory.

        Disk entries are verified against their stored checksum; a
        mismatch (or an unparseable file) is quarantined and reported
        as a miss so the cell recomputes.
        """
        if not self.enabled:
            return None
        hit = self._memory.get(key)
        if hit is not None:
            self.stats.memory_hits += 1
            _metrics.inc("cache_memory_hits_total")
            return hit
        if self.disk:
            path = self._path(key)
            exists = path.exists()
            try:
                data = parse_entry(path.read_bytes())
                result = JobResult.from_dict(data["result"])
            except (OSError, ValueError, KeyError, TypeError) as exc:
                if exists:
                    self._quarantine(path, exc)
            else:
                self._memory[key] = result
                self.stats.disk_hits += 1
                _metrics.inc("cache_disk_hits_total")
                return result
        self.stats.misses += 1
        _metrics.inc("cache_misses_total")
        return None

    def _quarantine(self, path: Path, reason: Exception) -> None:
        """Move a bad entry aside so the key recomputes cleanly.

        The quarantined copy is kept (``<key>.json.corrupt``) for
        ``repro-bench doctor`` to inspect or sweep; renaming rather than
        deleting also means a concurrent healthy writer to the same key
        is never raced against a delete of its fresh entry.
        """
        self.stats.corrupt += 1
        _metrics.inc("cache_corrupt_total")
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass  # a vanished entry needs no quarantine
        _LOG.warning("quarantined corrupt cache entry %s (%s); "
                     "the cell will recompute", path.name, reason)

    def put(self, key: str, result: JobResult) -> None:
        """Store ``result`` in both tiers."""
        if not self.enabled:
            return
        self._memory[key] = result
        self.stats.stores += 1
        _metrics.inc("cache_stores_total")
        if not self.disk:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            result_data = result.to_dict()
            check = result_checksum(result_data)
            if self.binary:
                payload = _frames.pack_frames(
                    {"schema": CACHE_STORE_SCHEMA, "check": check,
                     "result": result_data})
                _metrics.inc("cache_store_binary_total")
            else:
                payload = json.dumps({"schema": CACHE_SCHEMA,
                                      "check": check,
                                      "result": result_data}).encode()
            _metrics.inc("cache_disk_write_bytes_total", len(payload))
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # a read-only cache directory degrades to memory-only
            if not self._disk_warned:
                self._disk_warned = True
                _LOG.warning("result cache disk writes under %s failing; "
                             "continuing memory-only", self.directory)

    def clear_memory(self) -> None:
        """Drop the in-process tier (disk entries stay)."""
        self._memory.clear()

    def disk_usage(self) -> Dict[str, int]:
        """Entry count and byte size of the disk tier (best effort).

        Walks the cache directory, so call it at run boundaries (the
        ledger does), not in hot paths.
        """
        entries = 0
        size = 0
        try:
            for path in self.directory.rglob("*.json"):
                entries += 1
                size += path.stat().st_size
        except OSError:
            pass
        return {"entries": entries, "bytes": size}


_DEFAULT: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """The process-wide cache (built lazily from the environment)."""
    global _DEFAULT
    if _DEFAULT is None:
        enabled = os.environ.get("REPRO_BENCH_NO_CACHE", "") not in ("1", "true")
        _DEFAULT = ResultCache(enabled=enabled)
        _LOG.debug("result cache at %s (enabled=%s)",
                   _DEFAULT.directory, enabled)
    return _DEFAULT


def configure(enabled: Optional[bool] = None,
              directory: Optional[os.PathLike] = None,
              disk: Optional[bool] = None,
              binary: Optional[bool] = None) -> ResultCache:
    """Reconfigure the process-wide cache in place and return it."""
    cache = default_cache()
    if enabled is not None:
        cache.enabled = enabled
    if directory is not None:
        cache.directory = Path(directory)
        cache.clear_memory()
    if disk is not None:
        cache.disk = disk
    if binary is not None:
        cache.binary = binary
    return cache
