"""Abstract workload interface.

A workload is a named, sized job whose per-rank behaviour is a generator
of operation descriptors (:mod:`repro.core.ops`).  Long homogeneous
iteration loops may be simulated at reduced length: ``time_scale`` is
the factor by which the runtime multiplies all reported times (e.g. a
50-step run simulated as 10 representative steps uses
``time_scale = 5``).  This keeps event counts tractable without
changing contention structure, because the omitted iterations are
statistically identical to the simulated ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from .ops import Op

__all__ = ["Workload"]


class Workload(ABC):
    """Base class for all benchmarks and applications."""

    #: human-readable name used in reports
    name: str = "workload"
    #: number of MPI ranks the program expects
    ntasks: int = 1
    #: multiply reported times by this factor (iteration subsampling)
    time_scale: float = 1.0

    @abstractmethod
    def program(self, rank: int) -> Iterator[Op]:
        """The operation stream executed by ``rank``."""

    def validate(self) -> None:
        """Sanity-check the workload configuration (override to extend)."""
        if self.ntasks < 1:
            raise ValueError(f"{self.name}: ntasks must be >= 1")
        if self.time_scale <= 0:
            raise ValueError(f"{self.name}: time_scale must be positive")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} ntasks={self.ntasks}>"
