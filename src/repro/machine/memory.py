"""Memory-system model: per-socket controllers, contention, coherence.

Every socket owns one on-die memory controller (the Opteron design).
A controller is a fair-share :class:`BandwidthResource` whose effective
capacity is::

    peak * achievable_fraction / (1 + probe_cost * (sockets - 1))

The divisor models coherence-probe broadcast: on 2006 Opterons every
cacheline fill probes all other sockets, and on the 8-socket ladder the
probe/response round trips consume enough controller and link occupancy
that the *best achievable single-core bandwidth is less than half* of a
small system's (Section 3.3's "most disturbing" observation).

Remote accesses additionally traverse HT links and carry a per-hop
occupancy surcharge; latency-bound traffic (RandomAccess) is charged per
access using the hop-count latency plus a queueing multiplier.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..perfctr.counters import CACHE_LINE
from ..sim import BandwidthResource, Engine, Event
from .interconnect import Interconnect
from .topology import MachineSpec

__all__ = ["MemorySystem"]


class MemorySystem:
    """All memory controllers of a machine plus the access cost model."""

    def __init__(self, engine: Engine, spec: MachineSpec,
                 interconnect: Interconnect, perf=None):
        self.engine = engine
        self.spec = spec
        self.net = interconnect
        self.perf = perf
        params = spec.params
        self._coherence = 1.0 / (
            1.0 + params.coherence_probe_cost * (spec.sockets - 1)
        )
        capacity = (
            spec.socket.dram_peak_bandwidth
            * params.dram_achievable_fraction
            * self._coherence
        )
        self._base_capacity = capacity
        self.controllers = [
            BandwidthResource(engine, capacity, name=f"mem:{s}")
            for s in range(spec.sockets)
        ]

    def set_controller_derates(self, factors: Mapping[int, float]) -> None:
        """Renegotiate controller bandwidth mid-run (fault injection).

        ``factors`` maps NUMA node -> fraction of the healthy capacity
        (losing DIMMs removes channels); nodes absent from the mapping
        return to full bandwidth.
        """
        for node, controller in enumerate(self.controllers):
            factor = factors.get(node, 1.0)
            if not 0.0 < factor <= 1.0:
                raise ValueError(
                    f"controller derate for node {node} must be in (0, 1], "
                    f"got {factor}"
                )
            controller.set_capacity(self._base_capacity * factor)

    @property
    def coherence_factor(self) -> float:
        """Bandwidth retained after coherence-probe overhead (0 < f <= 1)."""
        return self._coherence

    @property
    def controller_capacity(self) -> float:
        """Effective bytes/s of one controller after coherence derating."""
        return self.controllers[0].capacity

    # -- streaming (bandwidth-bound) traffic ------------------------------

    def stream(self, from_socket: int, traffic: Mapping[int, float],
               weight: float = 1.0, core: Optional[int] = None,
               write_fraction: float = 1.0 / 3.0) -> Event:
        """Issue streaming DRAM traffic from a core on ``from_socket``.

        ``traffic`` maps home NUMA node (socket id) -> bytes.  Each
        portion occupies its home controller; remote portions also cross
        every HT link en route and pay a per-hop occupancy surcharge.
        The event fires when all portions have drained.

        When profiling, ``core`` attributes the traffic to a counter
        bank (pre-surcharge payload bytes, classified local vs. remote
        by home node) and ``write_fraction`` splits the cacheline
        accesses into DRAM read and write counters.
        """
        flows = []
        params = self.spec.params
        perf = self.perf
        for node, nbytes in traffic.items():
            if nbytes <= 0:
                continue
            if perf is not None and core is not None:
                lines = nbytes / CACHE_LINE
                local = node == from_socket
                perf.count(core,
                           "dram_local_bytes" if local else "dram_remote_bytes",
                           nbytes)
                perf.count(core, "dram_local_accesses" if local
                           else "dram_remote_accesses", lines)
                perf.count(core, "dram_writes", lines * write_fraction)
                perf.count(core, "dram_reads", lines * (1.0 - write_fraction))
            hops = self.net.hops(from_socket, node)
            surcharge = 1.0 + params.hop_bandwidth_derate * hops
            flows.append(
                self.controllers[node].transfer(nbytes * surcharge, weight=weight)
            )
            if hops:
                flows.append(
                    self.net.transfer(from_socket, node, nbytes, weight=weight,
                                      core=core)
                )
        if not flows:
            ev = Event(self.engine)
            ev.succeed(self.engine.now)
            return ev
        return self.engine.all_of(flows)

    def stream_cost_factor(self, from_socket: int,
                           distribution: Mapping[int, float]) -> float:
        """Serial per-stream cost multiplier for a traffic distribution.

        A single core cannot exceed one controller's bandwidth, and each
        HT hop of a remote access lowers the achievable per-stream rate
        (latency-limited outstanding-request window).  The runtime uses
        ``traffic * factor / controller_capacity`` as a floor on a
        compute phase's memory time.
        """
        total = sum(distribution.values())
        if total <= 0:
            return 1.0
        penalty = self.spec.params.remote_stream_penalty
        return sum(
            frac / total * (1.0 + penalty * self.net.hops(from_socket, node))
            for node, frac in distribution.items()
        )

    # -- latency-bound traffic ---------------------------------------------

    def access_latency(self, from_socket: int, node: int,
                       extra_sharers: int = 0) -> float:
        """Seconds for one dependent (non-overlapped) access to ``node``.

        ``extra_sharers`` is the number of *other* request streams hitting
        the same controller; each adds a queueing increment.
        """
        params = self.spec.params
        hops = self.net.hops(from_socket, node)
        base = params.dram_latency + params.hop_latency * hops
        return base * (1.0 + params.latency_contention_factor * max(0, extra_sharers))

    def expected_latency(self, from_socket: int,
                         distribution: Mapping[int, float],
                         extra_sharers: int = 0) -> float:
        """Average access latency under a node-fraction distribution."""
        total = sum(distribution.values())
        if total <= 0:
            raise ValueError("distribution must have positive mass")
        return sum(
            frac / total * self.access_latency(from_socket, node, extra_sharers)
            for node, frac in distribution.items()
        )

    def count_dependent_accesses(self, from_socket: int,
                                 distribution: Mapping[int, float],
                                 accesses: float, core: int) -> None:
        """Attribute ``accesses`` latency-bound DRAM reads to ``core``.

        Dependent (RandomAccess-style) loads touch one cacheline each;
        they are pure reads and split local/remote by the same node
        distribution the latency charge uses.  No-op when unprofiled.
        """
        perf = self.perf
        if perf is None or accesses <= 0:
            return
        total = sum(distribution.values())
        if total <= 0:
            return
        for node, frac in distribution.items():
            part = accesses * frac / total
            if part <= 0:
                continue
            local = node == from_socket
            perf.count(core, "dram_local_accesses" if local
                       else "dram_remote_accesses", part)
            perf.count(core, "dram_local_bytes" if local
                       else "dram_remote_bytes", part * CACHE_LINE)
        perf.count(core, "dram_reads", accesses)

    # -- quick analytic estimate (used by reports and sanity tests) -------

    def ideal_stream_bandwidth(self, from_socket: int, node: int,
                               sharers_on_controller: int = 1) -> float:
        """Closed-form per-stream bandwidth with static fair sharing."""
        if sharers_on_controller < 1:
            raise ValueError("at least one sharer (the stream itself)")
        params = self.spec.params
        hops = self.net.hops(from_socket, node)
        surcharge = 1.0 + params.hop_bandwidth_derate * hops
        return self.controller_capacity / (sharers_on_controller * surcharge)
