"""The runtime machine object: spec + engine + live subsystems.

A :class:`Machine` is instantiated per simulation run (each run owns a
fresh :class:`~repro.sim.Engine`, so runs are independent and
deterministic).  It wires together the topology, interconnect, memory
system, and cache model, and exposes the NUMA distance matrix in
ACPI-SLIT style (10 = local, +10 per hop).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..sim import Engine, Tracer
from .cache import CacheModel
from .interconnect import Interconnect
from .memory import MemorySystem
from .topology import Core, MachineSpec, Socket

__all__ = ["Machine"]


class Machine:
    """A live shared-memory node built from a :class:`MachineSpec`."""

    def __init__(self, spec: MachineSpec, engine: Optional[Engine] = None,
                 tracer: Optional[Tracer] = None, perf=None,
                 fault_plan=None):
        self.spec = spec
        self.engine = engine if engine is not None else Engine()
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        #: optional perfctr.PerfSession; None keeps every hook a no-op
        self.perf = perf
        #: optional faults.FaultScheduler (set below); None keeps every
        #: fault hook a single ``is not None`` test on the healthy path
        self.faults = None

        self.sockets: List[Socket] = []
        self.cores: List[Core] = []
        core_id = 0
        for s in range(spec.sockets):
            socket = Socket(socket_id=s, spec=spec.socket)
            for local in range(spec.socket.cores_per_socket):
                core = Core(core_id=core_id, socket_id=s, local_index=local,
                            spec=spec.socket.core)
                socket.cores.append(core)
                self.cores.append(core)
                core_id += 1
            self.sockets.append(socket)

        if perf is not None:
            perf.bind(self.engine, len(self.cores))
        self.net = Interconnect(self.engine, spec, perf=perf)
        self.mem = MemorySystem(self.engine, spec, self.net, perf=perf)
        self.cache = CacheModel.for_socket(
            spec.socket, traffic_floor=spec.params.compulsory_traffic_floor)
        if fault_plan is not None and fault_plan:
            # Lazy import: the faults package is only loaded (and the
            # scheduler's arm/disarm events only scheduled) when a run
            # actually carries a plan.
            from ..faults.scheduler import FaultScheduler

            self.faults = FaultScheduler(self, fault_plan)

    # -- lookups -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def total_cores(self) -> int:
        return len(self.cores)

    @property
    def num_sockets(self) -> int:
        return self.spec.sockets

    def core(self, core_id: int) -> Core:
        """The core with the given global id."""
        return self.cores[core_id]

    def socket_of_core(self, core_id: int) -> int:
        """Socket id housing ``core_id``."""
        return self.cores[core_id].socket_id

    def cores_on_socket(self, socket_id: int) -> List[int]:
        """Global core ids on one socket."""
        return self.sockets[socket_id].core_ids

    def siblings(self, core_id: int) -> List[int]:
        """Other core ids sharing the socket with ``core_id``."""
        return [c for c in self.cores_on_socket(self.socket_of_core(core_id))
                if c != core_id]

    # -- NUMA geometry -------------------------------------------------------

    def distance_matrix(self) -> np.ndarray:
        """ACPI-SLIT-style distances: 10 local, +10 per HT hop."""
        n = self.num_sockets
        mat = np.zeros((n, n), dtype=int)
        for s in range(n):
            for d in range(n):
                mat[s, d] = 10 + 10 * self.net.hops(s, d)
        return mat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Machine {self.spec.name}: {self.num_sockets} sockets x "
            f"{self.spec.socket.cores_per_socket} cores, "
            f"topology={self.spec.topology}>"
        )
