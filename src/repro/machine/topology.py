"""Hardware topology: cores, sockets, NUMA nodes, and the socket graph.

Terminology follows Section 2 of the paper exactly:

* a **core** is the fundamental execution unit;
* a **socket** contains one or more cores plus a memory link (every
  socket is one NUMA node on Opteron — the memory controller is on-die);
* a **node** (here: :class:`MachineSpec`, a single shared-memory box)
  is a group of sockets communicating over coherent HyperTransport.

The socket-level interconnect is a :mod:`networkx` graph.  Three builders
cover the evaluation systems: a single link for two-socket boxes (Tiger,
DMZ) and the 2×4 *ladder* of the Iwill H8501 (Longs, Figure 1).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from .params import GB, KB, MB, PerfParams

__all__ = [
    "CoreSpec",
    "SocketSpec",
    "MachineSpec",
    "Core",
    "Socket",
    "build_socket_graph",
    "ladder_positions",
]


@dataclass(frozen=True)
class CoreSpec:
    """Static description of one core."""

    frequency_hz: float
    flops_per_cycle: float = 2.0  # SSE2 double precision on K8
    l1d_bytes: int = 64 * KB
    l2_bytes: int = 1 * MB  # private per core on dual-core K8

    @property
    def peak_flops(self) -> float:
        """Peak double-precision flop rate of the core."""
        return self.frequency_hz * self.flops_per_cycle


@dataclass(frozen=True)
class SocketSpec:
    """Static description of one socket: cores plus the memory link.

    ``l3_bytes`` is a socket-shared last-level cache, ``0`` on the
    paper's K8 Opterons (private L2 only).  Chiplet-era presets model
    each CCX/CCD as one "socket" whose split L3 slice is private to its
    cores — the defining feature of the hierarchy — so the analytic
    cache model folds a per-core share (``l3_bytes /
    cores_per_socket``) into effective capacity.
    """

    cores_per_socket: int
    core: CoreSpec
    dram_peak_bandwidth: float = 6.4 * GB  # DDR-400 dual channel
    dram_bytes: int = 4 * 1024 ** 3
    l3_bytes: int = 0

    @property
    def l3_share_bytes(self) -> float:
        """Per-core share of the socket's L3 (0 when there is no L3)."""
        if not self.l3_bytes:
            return 0.0
        return self.l3_bytes / self.cores_per_socket


@dataclass(frozen=True)
class MachineSpec:
    """Static description of a shared-memory node (one paper system).

    ``topology`` selects the socket-graph builder: ``"single"`` (one
    socket), ``"pair"`` (two sockets, one HT link), ``"ladder"``
    (2×(S/2) mesh as in the Iwill H8501), ``"ring"`` (each socket links
    to two neighbours), or ``"crossbar"`` (every socket pair directly
    linked — the what-if topology for ablation studies).
    """

    name: str
    sockets: int
    socket: SocketSpec
    topology: str = "pair"
    params: PerfParams = field(default_factory=PerfParams)
    description: str = ""

    _TOPOLOGIES = ("single", "pair", "ladder", "ring", "crossbar")

    def __post_init__(self):
        if self.sockets < 1:
            raise ValueError("a machine needs at least one socket")
        if self.topology not in self._TOPOLOGIES:
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.topology == "single" and self.sockets != 1:
            raise ValueError("'single' topology requires exactly 1 socket")
        if self.topology == "pair" and self.sockets != 2:
            raise ValueError("'pair' topology requires exactly 2 sockets")
        if self.topology == "ladder" and self.sockets % 2:
            raise ValueError("'ladder' topology requires an even socket count")
        if self.topology in ("ring", "crossbar") and self.sockets < 3:
            raise ValueError(
                f"'{self.topology}' topology requires at least 3 sockets"
            )

    def cache_token(self) -> str:
        """Stable content hash of every field that shapes simulation.

        The experiment result cache keys on this, so two specs with
        identical parameters share cached results even when constructed
        independently (presets, ``hypothetical()`` what-ifs, tests).
        """
        payload = json.dumps(asdict(self), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def total_cores(self) -> int:
        """Total cores in the machine."""
        return self.sockets * self.socket.cores_per_socket

    @property
    def cores_per_socket(self) -> int:
        return self.socket.cores_per_socket


@dataclass(frozen=True)
class Core:
    """One concrete core instance: global id plus its socket."""

    core_id: int
    socket_id: int
    local_index: int  # index within the socket
    spec: CoreSpec


@dataclass
class Socket:
    """One concrete socket instance with its core list."""

    socket_id: int
    spec: SocketSpec
    cores: List[Core] = field(default_factory=list)

    @property
    def core_ids(self) -> List[int]:
        return [c.core_id for c in self.cores]


def ladder_positions(sockets: int) -> Dict[int, Tuple[int, int]]:
    """Grid coordinates (row, column) of each socket in a 2×(S/2) ladder."""
    cols = sockets // 2
    return {s: (s // cols, s % cols) for s in range(sockets)}


def build_socket_graph(spec: MachineSpec) -> nx.Graph:
    """The socket-level HyperTransport graph for a machine spec.

    Edges carry no attributes here; bandwidth/latency are attached by the
    interconnect model, which owns the dynamic state.
    """
    g = nx.Graph()
    g.add_nodes_from(range(spec.sockets))
    if spec.topology == "single":
        return g
    if spec.topology == "pair":
        g.add_edge(0, 1)
        return g
    if spec.topology == "ring":
        for s in range(spec.sockets):
            g.add_edge(s, (s + 1) % spec.sockets)
        return g
    if spec.topology == "crossbar":
        for a in range(spec.sockets):
            for b in range(a + 1, spec.sockets):
                g.add_edge(a, b)
        return g
    # ladder: two rows, sockets//2 columns; rungs between rows, rails
    # along each row (Figure 1 of the paper).
    positions = ladder_positions(spec.sockets)
    by_pos = {pos: s for s, pos in positions.items()}
    cols = spec.sockets // 2
    for col in range(cols):
        g.add_edge(by_pos[(0, col)], by_pos[(1, col)])  # rung
        if col + 1 < cols:
            g.add_edge(by_pos[(0, col)], by_pos[(0, col + 1)])  # top rail
            g.add_edge(by_pos[(1, col)], by_pos[(1, col + 1)])  # bottom rail
    return g
