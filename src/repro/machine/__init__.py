"""Machine model: multi-core NUMA hardware as a simulation substrate.

Builds the paper's three evaluation systems (Tiger, DMZ, Longs) from
parameterized specs: cores, sockets with on-die memory controllers,
per-core caches, and a coherent HyperTransport socket graph with
fair-share link bandwidth and coherence-probe overheads.
"""

from .cache import CacheModel, traffic_factor
from .interconnect import Interconnect
from .machine import Machine
from .memory import MemorySystem
from .params import DEFAULT_PARAMS, GB, KB, MB, PerfParams
from .render import describe, distance_table
from .systems import SYSTEM_TABLE, all_systems, by_name, chiplet, dmz, \
    longs, tiger
from .whatif import hypothetical
from .topology import (
    Core,
    CoreSpec,
    MachineSpec,
    Socket,
    SocketSpec,
    build_socket_graph,
    ladder_positions,
)

__all__ = [
    "Machine",
    "MachineSpec",
    "CoreSpec",
    "SocketSpec",
    "Core",
    "Socket",
    "CacheModel",
    "traffic_factor",
    "Interconnect",
    "MemorySystem",
    "PerfParams",
    "DEFAULT_PARAMS",
    "KB",
    "MB",
    "GB",
    "build_socket_graph",
    "ladder_positions",
    "tiger",
    "dmz",
    "longs",
    "chiplet",
    "by_name",
    "all_systems",
    "SYSTEM_TABLE",
    "hypothetical",
    "describe",
    "distance_table",
]
