"""Text rendering of machine topologies (lstopo-style).

``describe(spec)`` prints the socket/core tree with cache and memory
attributes, the interconnect edges, and the ACPI-SLIT-style distance
matrix — the quickest way to sanity-check a custom machine before
running experiments on it.
"""

from __future__ import annotations

import io

from .machine import Machine
from .topology import MachineSpec, build_socket_graph

__all__ = ["describe", "distance_table"]


def _size(nbytes: float) -> str:
    """Human-readable byte size."""
    for unit, factor in (("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)):
        if nbytes >= factor:
            value = nbytes / factor
            return f"{value:.0f}{unit}" if value == int(value) else f"{value:.1f}{unit}"
    return f"{nbytes:.0f}B"


def describe(spec: MachineSpec) -> str:
    """An lstopo-like tree of the machine plus interconnect summary."""
    machine = Machine(spec)
    core = spec.socket.core
    out = io.StringIO()
    out.write(
        f"Machine {spec.name}: {spec.sockets} sockets, "
        f"{spec.total_cores} cores, topology={spec.topology}\n"
    )
    if spec.description:
        out.write(f"  ({spec.description})\n")
    for socket in machine.sockets:
        out.write(
            f"  Socket {socket.socket_id}: "
            f"{_size(spec.socket.dram_bytes)} DDR-400 "
            f"(effective {machine.mem.controller_capacity / 1e9:.2f} GB/s "
            f"after coherence derating)\n"
        )
        for c in socket.cores:
            out.write(
                f"    Core {c.core_id}: {core.frequency_hz / 1e9:.1f} GHz, "
                f"peak {core.peak_flops / 1e9:.1f} GFlop/s, "
                f"L1d {_size(core.l1d_bytes)}, L2 {_size(core.l2_bytes)}\n"
            )
    graph = build_socket_graph(spec)
    if graph.number_of_edges():
        edges = " ".join(f"{a}-{b}" for a, b in sorted(graph.edges))
        out.write(
            f"  HyperTransport links ({spec.params.ht_link_bandwidth / 1e9:.1f} "
            f"GB/s each): {edges}\n"
        )
        out.write(f"  diameter: {machine.net.max_hops()} hops\n")
    out.write(distance_table(spec))
    return out.getvalue()


def distance_table(spec: MachineSpec) -> str:
    """The SLIT-style node distance matrix as text (numactl --hardware)."""
    machine = Machine(spec)
    matrix = machine.distance_matrix()
    n = spec.sockets
    out = io.StringIO()
    out.write("  node distances:\n")
    out.write("      " + " ".join(f"{d:>3d}" for d in range(n)) + "\n")
    for row in range(n):
        cells = " ".join(f"{int(matrix[row, col]):>3d}" for col in range(n))
        out.write(f"   {row:>2d}: {cells}\n")
    return out.getvalue()
