"""Calibration parameters for the machine model.

Every constant that converts operation counts into simulated time lives
here, with the source of its value documented.  The three evaluation
systems (Table 1 of the paper) are expressed as
:class:`~repro.machine.topology.MachineSpec` presets in
:mod:`repro.machine.systems`, built from these parameter blocks.

Values are first-order 2006-era Opteron numbers:

* DDR-400 dual-channel peak = 6.4 GB/s per socket; a single K8 core
  sustains roughly 60–65 % of that on STREAM ("more than 4 GB/s one
  would typically expect from an Opteron" — Section 3.3).
* K8 issues 2 double-precision flops/cycle through SSE2, so a 2.2 GHz
  Opteron peaks at 4.4 GFlop/s ("each capable of 4.4 GFlop/s" —
  Section 2).
* Local DRAM load-to-use latency ~ 60 ns; each coherent HyperTransport
  hop adds ~ 55 ns (AMD Software Optimization Guide, ref. [3]).
* System V semaphore operations cost microseconds (two syscalls and a
  context switch under contention) while user-space spin locks cost
  tens of nanoseconds — the root of the paper's sysv/usysv findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["PerfParams", "DEFAULT_PARAMS"]

KB = 1024
MB = 1024 * 1024
GB = 1e9  # bandwidth numbers use decimal gigabytes like the paper


@dataclass(frozen=True)
class PerfParams:
    """Tunable first-order performance constants.

    The defaults reproduce the paper's qualitative behaviour; the system
    presets override a handful of fields (probe cost, scheduler noise).
    """

    # -- memory system ---------------------------------------------------
    #: fraction of DRAM peak a single streaming core achieves
    dram_achievable_fraction: float = 0.65
    #: local DRAM access latency (seconds)
    dram_latency: float = 60e-9
    #: extra latency per coherent HT hop for a remote access (seconds)
    hop_latency: float = 55e-9
    #: per-remote-hop *occupancy* surcharge: extra controller/link busy
    #: time consumed by a remote access (probe/response overhead)
    hop_bandwidth_derate: float = 0.20
    #: per-remote-hop *serial stream* penalty: a single core's streaming
    #: rate is limited by its outstanding-request window, so each hop of
    #: added latency lowers the achievable per-stream bandwidth even on
    #: idle controllers.  This is why interleave/membind lose to
    #: localalloc although they spread load over more controllers.
    remote_stream_penalty: float = 0.28
    #: coherence probe overhead per additional socket in the system; the
    #: effective controller bandwidth is achievable / (1 + cost*(S-1)).
    #: The ladder preset uses a larger value (broadcast probes traverse
    #: multiple hops), which produces the Longs bandwidth collapse.
    coherence_probe_cost: float = 0.16
    #: additional queueing multiplier per extra requester at a controller
    #: applied to latency-bound accesses
    latency_contention_factor: float = 0.35

    # -- interconnect ----------------------------------------------------
    #: coherent HyperTransport usable bandwidth per direction (bytes/s)
    ht_link_bandwidth: float = 3.2 * GB
    #: per-hop wire+router latency for message payloads (seconds)
    ht_link_latency: float = 40e-9

    # -- intra-node MPI transport ----------------------------------------
    #: single-stream shared-memory copy bandwidth when both endpoints sit
    #: on the same socket.  Dual-core K8 has private L2s, so even
    #: same-socket copies go through DRAM; the intra-socket advantage is
    #: only the avoided HT crossing (the paper's 10-13% benefit,
    #: Section 3.4), not a cache-to-cache multiple.
    intra_socket_copy_bandwidth: float = 1.60 * GB
    #: single-stream copy bandwidth when endpoints sit on distinct sockets
    inter_socket_copy_bandwidth: float = 1.42 * GB
    #: shared-memory transports move large payloads in fixed fragments,
    #: each paying one queue-lock round trip — this is why the SysV
    #: sub-layer degrades even bandwidth-bound benchmarks like PTRANS
    shm_fragment_bytes: float = 64 * KB
    #: cost of one System V semaphore acquire/release pair (seconds)
    sysv_lock_cost: float = 11e-6
    #: cost of one user-space spin-lock acquire/release pair (seconds)
    usysv_lock_cost: float = 0.35e-6
    #: cost of one pthread mutex acquire/release pair (seconds)
    pthread_lock_cost: float = 1.2e-6

    # -- OS scheduler model ----------------------------------------------
    #: for unbound runs: expected fraction of a task's accesses that turn
    #: remote because the scheduler migrated it off its first-touch node
    migration_remote_fraction: float = 0.08
    #: per-context-switch overhead when more tasks than cores share a core
    context_switch_cost: float = 5e-6

    # -- cache model -------------------------------------------------------
    #: floor on the DRAM-traffic factor (compulsory misses never vanish)
    compulsory_traffic_floor: float = 0.02

    def with_overrides(self, **kwargs) -> "PerfParams":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


#: baseline parameter block shared by the small (2-socket) systems
DEFAULT_PARAMS = PerfParams()
