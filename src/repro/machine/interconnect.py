"""Coherent HyperTransport interconnect model.

Each undirected edge of the socket graph becomes two directed
:class:`~repro.sim.resources.BandwidthResource` links (HT is full
duplex).  Payloads traverse every link on the shortest path concurrently
(independent-bottleneck approximation), so a congested rung of the
ladder throttles exactly the transfers crossing it — this is what
exposes the "topology and congestion effects on the HT8501's
HyperTransport ladder" (Section 3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..sim import BandwidthResource, Engine, Event
from .topology import MachineSpec, build_socket_graph

__all__ = ["Interconnect"]


class Interconnect:
    """Directed-link network over the socket graph with shortest-path routing."""

    def __init__(self, engine: Engine, spec: MachineSpec, perf=None):
        self.engine = engine
        self.spec = spec
        self.perf = perf
        self.graph = build_socket_graph(spec)
        params = spec.params
        self.links: Dict[Tuple[int, int], BandwidthResource] = {}
        for u, v in self.graph.edges:
            for a, b in ((u, v), (v, u)):
                self.links[(a, b)] = BandwidthResource(
                    engine, params.ht_link_bandwidth, name=f"ht:{a}->{b}"
                )
        # Pre-compute shortest paths once; the graph is tiny and static.
        self._paths: Dict[Tuple[int, int], List[int]] = {}
        for src, targets in nx.all_pairs_shortest_path(self.graph):
            for dst, path in targets.items():
                self._paths[(src, dst)] = path

    def path(self, src: int, dst: int) -> List[int]:
        """Socket sequence of the route from ``src`` to ``dst`` (inclusive)."""
        try:
            return self._paths[(src, dst)]
        except KeyError:
            raise ValueError(f"no route between sockets {src} and {dst}") from None

    def hops(self, src: int, dst: int) -> int:
        """Number of HT links crossed between two sockets."""
        return len(self.path(src, dst)) - 1

    def path_links(self, src: int, dst: int) -> List[BandwidthResource]:
        """The directed link resources along the route."""
        path = self.path(src, dst)
        return [self.links[(path[i], path[i + 1])] for i in range(len(path) - 1)]

    def path_latency(self, src: int, dst: int) -> float:
        """Pure wire/router latency of the route (seconds)."""
        return self.hops(src, dst) * self.spec.params.ht_link_latency

    def transfer(self, src: int, dst: int, nbytes: float,
                 weight: float = 1.0, core: Optional[int] = None) -> Event:
        """Move ``nbytes`` from socket ``src`` to ``dst``.

        The returned event fires when the payload has cleared every link
        on the path.  Same-socket transfers complete immediately (the
        caller models the local copy through the memory system).
        ``core`` attributes the link traffic (bytes x links crossed,
        matching per-link HT event counts) when profiling is active.
        """
        links = self.path_links(src, dst)
        if not links:
            ev = Event(self.engine)
            ev.succeed(self.engine.now)
            return ev
        if self.perf is not None and core is not None and nbytes > 0:
            self.perf.count(core, "ht_link_bytes", nbytes * len(links))
        flows = [link.transfer(nbytes, weight=weight) for link in links]
        return self.engine.all_of(flows)

    def max_hops(self) -> int:
        """Diameter of the socket graph in hops."""
        if self.spec.sockets == 1:
            return 0
        return max(
            self.hops(s, d)
            for s in range(self.spec.sockets)
            for d in range(self.spec.sockets)
        )
