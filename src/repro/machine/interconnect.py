"""Coherent HyperTransport interconnect model.

Each undirected edge of the socket graph becomes two directed
:class:`~repro.sim.resources.BandwidthResource` links (HT is full
duplex).  Payloads traverse every link on the shortest path concurrently
(independent-bottleneck approximation), so a congested rung of the
ladder throttles exactly the transfers crossing it — this is what
exposes the "topology and congestion effects on the HT8501's
HyperTransport ladder" (Section 3.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..sim import BandwidthResource, Engine, Event
from .topology import MachineSpec, build_socket_graph

__all__ = ["Interconnect"]


class Interconnect:
    """Directed-link network over the socket graph with shortest-path routing."""

    def __init__(self, engine: Engine, spec: MachineSpec, perf=None):
        self.engine = engine
        self.spec = spec
        self.perf = perf
        self.graph = build_socket_graph(spec)
        params = spec.params
        self.links: Dict[Tuple[int, int], BandwidthResource] = {}
        for u, v in self.graph.edges:
            for a, b in ((u, v), (v, u)):
                self.links[(a, b)] = BandwidthResource(
                    engine, params.ht_link_bandwidth, name=f"ht:{a}->{b}"
                )
        # Fault state: empty/healthy unless a FaultScheduler arms links.
        self._base_bandwidth = params.ht_link_bandwidth
        self._latency_factors: Dict[Tuple[int, int], float] = {}
        self._failed: Set[Tuple[int, int]] = set()
        # Pre-compute shortest paths once; the graph is tiny and, apart
        # from injected outages, static.
        self._paths: Dict[Tuple[int, int], List[int]] = {}
        self._recompute_paths()

    def _recompute_paths(self) -> None:
        """Rebuild the routing table over the surviving edges."""
        graph = self.graph
        if self._failed:
            graph = self.graph.copy()
            graph.remove_edges_from(self._failed)
            if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
                raise ValueError(
                    "link outages partition the socket graph: "
                    f"{sorted(self._failed)} leave no route for traffic"
                )
        paths: Dict[Tuple[int, int], List[int]] = {}
        for src, targets in nx.all_pairs_shortest_path(graph):
            for dst, path in targets.items():
                paths[(src, dst)] = path
        self._paths = paths

    def set_link_state(self, src: int, dst: int, bandwidth_factor: float = 1.0,
                       latency_factor: float = 1.0,
                       failed: bool = False) -> None:
        """Set the absolute fault state of one undirected link.

        Both directed resources renegotiate to ``bandwidth_factor`` of
        the healthy bandwidth and carry ``latency_factor`` x the wire
        latency; ``failed=True`` removes the edge from routing (traffic
        reroutes over the surviving graph — the ladder's redundant
        rungs).  Defaults restore the link to healthy.  Raises
        ``ValueError`` when the link does not exist or an outage would
        partition the machine.
        """
        if not self.graph.has_edge(src, dst):
            raise ValueError(f"no HT link between sockets {src} and {dst}")
        if bandwidth_factor <= 0:
            raise ValueError("bandwidth_factor must be positive")
        u, v = (min(src, dst), max(src, dst))
        for a, b in ((u, v), (v, u)):
            self.links[(a, b)].set_capacity(
                self._base_bandwidth * bandwidth_factor
            )
            if latency_factor != 1.0:
                self._latency_factors[(a, b)] = latency_factor
            else:
                self._latency_factors.pop((a, b), None)
        was_failed = (u, v) in self._failed
        if failed:
            self._failed.add((u, v))
        else:
            self._failed.discard((u, v))
        if failed != was_failed:
            try:
                self._recompute_paths()
            except ValueError:
                self._failed.discard((u, v))
                self._recompute_paths()
                raise

    def path(self, src: int, dst: int) -> List[int]:
        """Socket sequence of the route from ``src`` to ``dst`` (inclusive)."""
        try:
            return self._paths[(src, dst)]
        except KeyError:
            raise ValueError(f"no route between sockets {src} and {dst}") from None

    def hops(self, src: int, dst: int) -> int:
        """Number of HT links crossed between two sockets."""
        return len(self.path(src, dst)) - 1

    def path_links(self, src: int, dst: int) -> List[BandwidthResource]:
        """The directed link resources along the route."""
        path = self.path(src, dst)
        return [self.links[(path[i], path[i + 1])] for i in range(len(path) - 1)]

    def path_latency(self, src: int, dst: int) -> float:
        """Pure wire/router latency of the route (seconds)."""
        base = self.spec.params.ht_link_latency
        if not self._latency_factors:
            # exact healthy fast path: a single multiply, bit-identical
            # to the pre-fault-injection formula
            return self.hops(src, dst) * base
        path = self.path(src, dst)
        return sum(
            base * self._latency_factors.get((path[i], path[i + 1]), 1.0)
            for i in range(len(path) - 1)
        )

    def transfer(self, src: int, dst: int, nbytes: float,
                 weight: float = 1.0, core: Optional[int] = None) -> Event:
        """Move ``nbytes`` from socket ``src`` to ``dst``.

        The returned event fires when the payload has cleared every link
        on the path.  Same-socket transfers complete immediately (the
        caller models the local copy through the memory system).
        ``core`` attributes the link traffic (bytes x links crossed,
        matching per-link HT event counts) when profiling is active.
        """
        links = self.path_links(src, dst)
        if not links:
            ev = Event(self.engine)
            ev.succeed(self.engine.now)
            return ev
        if self.perf is not None and core is not None and nbytes > 0:
            self.perf.count(core, "ht_link_bytes", nbytes * len(links))
        flows = [link.transfer(nbytes, weight=weight) for link in links]
        return self.engine.all_of(flows)

    def max_hops(self) -> int:
        """Diameter of the socket graph in hops."""
        if self.spec.sockets == 1:
            return 0
        return max(
            self.hops(s, d)
            for s in range(self.spec.sockets)
            for d in range(self.spec.sockets)
        )
