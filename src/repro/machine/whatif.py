"""What-if machine builder for ablation and projection studies.

The paper closes by expecting "improvements in future Opteron products"
to fix the 8-socket scalability problems.  :func:`hypothetical` builds
machines that test such projections: different socket counts, clock
rates, interconnect topologies, and coherence-probe costs, all sharing
the calibrated baseline parameters.
"""

from __future__ import annotations

from typing import Optional

from .params import DEFAULT_PARAMS, PerfParams
from .topology import CoreSpec, MachineSpec, SocketSpec

__all__ = ["hypothetical"]


def hypothetical(
    name: str,
    sockets: int,
    cores_per_socket: int = 2,
    frequency_ghz: float = 1.8,
    topology: Optional[str] = None,
    coherence_probe_cost: Optional[float] = None,
    params: Optional[PerfParams] = None,
    dram_peak_bandwidth: Optional[float] = None,
) -> MachineSpec:
    """A machine spec with selected properties overridden.

    ``topology`` defaults to something sensible for the socket count
    (single / pair / ladder).  ``coherence_probe_cost`` overrides the
    probe-broadcast overhead — the knob behind the Longs bandwidth
    collapse — leaving every other parameter at the calibrated default.
    """
    if topology is None:
        if sockets == 1:
            topology = "single"
        elif sockets == 2:
            topology = "pair"
        else:
            topology = "ladder"
    base = params if params is not None else DEFAULT_PARAMS
    if coherence_probe_cost is not None:
        if coherence_probe_cost < 0:
            raise ValueError("coherence_probe_cost must be non-negative")
        base = base.with_overrides(coherence_probe_cost=coherence_probe_cost)
    socket_kwargs = {}
    if dram_peak_bandwidth is not None:
        socket_kwargs["dram_peak_bandwidth"] = dram_peak_bandwidth
    return MachineSpec(
        name=name,
        sockets=sockets,
        socket=SocketSpec(
            cores_per_socket=cores_per_socket,
            core=CoreSpec(frequency_hz=frequency_ghz * 1e9),
            **socket_kwargs,
        ),
        topology=topology,
        params=base,
        description=f"hypothetical: {sockets}x{cores_per_socket} "
                    f"@{frequency_ghz} GHz, {topology}",
    )
