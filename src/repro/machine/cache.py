"""Analytic cache model.

The model answers one question: *what fraction of a kernel's natural DRAM
traffic actually reaches DRAM*, given the kernel's per-task working set
and its temporal-reuse friendliness.  This single knob reproduces the
paper's spectrum:

* STREAM (``reuse = 0``) always pays full traffic — adding a second core
  per socket halves per-core bandwidth;
* blocked DGEMM (``reuse ≈ 0.97``) pays almost nothing — Star DGEMM
  matches Single DGEMM (Figure 9);
* kernels whose per-task working set shrinks below L2 as tasks are added
  (LAMMPS *chain*) see their traffic factor collapse, producing the
  superlinear speedups of Table 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from .topology import CoreSpec, SocketSpec

__all__ = ["CacheModel", "traffic_factor"]


def traffic_factor(working_set: float, cache_bytes: float, reuse: float,
                   floor: float = 0.02) -> float:
    """Fraction of natural DRAM traffic that misses all caches.

    ``reuse`` in [0, 1] is the fraction of accesses that would hit in an
    infinitely large cache (temporal locality of the algorithm).  Only
    the resident fraction of the working set can capture that reuse, so::

        factor = 1 - reuse * min(1, cache / working_set)

    clamped below at ``floor`` (compulsory misses never vanish).
    """
    if not 0.0 <= reuse <= 1.0:
        raise ValueError(f"reuse must be in [0,1], got {reuse}")
    if working_set < 0 or cache_bytes < 0:
        raise ValueError("working_set and cache_bytes must be non-negative")
    if working_set == 0:
        return floor
    resident = min(1.0, cache_bytes / working_set)
    return max(floor, 1.0 - reuse * resident)


@dataclass(frozen=True)
class CacheModel:
    """Per-core cache hierarchy bound to a :class:`CoreSpec`."""

    core: CoreSpec
    traffic_floor: float = 0.02
    #: fault injection: fraction of the cache left enabled (way disable);
    #: 1.0 is the healthy default and multiplies capacity exactly
    capacity_factor: float = 1.0
    #: per-core share of a socket-shared L3 (0 on the paper's K8 parts);
    #: chiplet presets set this to l3_bytes / cores_per_socket
    l3_share_bytes: float = 0.0

    @classmethod
    def for_socket(cls, socket: SocketSpec,
                   traffic_floor: float = 0.02) -> "CacheModel":
        """The per-core model of a socket, L3 share folded in.

        Both the discrete-event engine and the analytic surrogate build
        their cache model through here, so the two execution tiers stay
        in capacity agreement by construction.
        """
        return cls(socket.core, traffic_floor=traffic_floor,
                   l3_share_bytes=socket.l3_share_bytes)

    @property
    def capacity(self) -> float:
        """Effective per-core capacity (L2 dominates on K8; L1 folded
        in; chiplet parts add their split-L3 per-core share)."""
        return (self.core.l2_bytes + self.core.l1d_bytes
                + self.l3_share_bytes) * self.capacity_factor

    def dram_traffic_factor(self, working_set: float, reuse: float) -> float:
        """Multiplier applied to a phase's natural DRAM traffic."""
        return traffic_factor(working_set, self.capacity, reuse,
                              floor=self.traffic_floor)

    def hierarchy_counts(self, working_set: float, reuse: float,
                         line_requests: float) -> dict:
        """Split ``line_requests`` cacheline accesses across the hierarchy.

        The analytic model only distinguishes "captured by some cache"
        from "reaches DRAM"; this projects that onto per-level counters
        the way a hardware PMU would see them:

        * L1 captures the reuse fraction resident in L1D (never more
          than the overall cache-captured fraction);
        * everything missing L1 looks up L2 (exclusive victim hierarchy:
          L1 misses *are* the L2 accesses);
        * the DRAM traffic factor fixes the L2 miss count, L2 hits are
          the remainder.

        By construction ``l1_hits + l1_misses == line_requests`` and
        ``l2_hits + l2_misses == l1_misses`` — the conservation
        invariants the counter tests assert.
        """
        if line_requests < 0:
            raise ValueError("line_requests must be non-negative")
        if line_requests == 0:
            return {"l1_hits": 0.0, "l1_misses": 0.0,
                    "l2_hits": 0.0, "l2_misses": 0.0}
        factor = self.dram_traffic_factor(working_set, reuse)
        l1_factor = traffic_factor(working_set, self.core.l1d_bytes, reuse,
                                   floor=self.traffic_floor)
        l1_hits = line_requests * min(1.0 - l1_factor, 1.0 - factor)
        l1_misses = line_requests - l1_hits
        l2_misses = min(line_requests * factor, l1_misses)
        l2_hits = l1_misses - l2_misses
        return {"l1_hits": l1_hits, "l1_misses": l1_misses,
                "l2_hits": l2_hits, "l2_misses": l2_misses}

    def fits(self, working_set: float) -> bool:
        """True when the working set is cache-resident."""
        return working_set <= self.capacity
