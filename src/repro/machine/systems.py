"""The three evaluation systems of the paper (Table 1) as machine specs.

* **Tiger** — Cray XD-1: two single-core 2.2 GHz Opteron 248 per node,
  8 GB DDR-400.  Its special compute kernel co-schedules processes, so
  the scheduler-noise parameter is near zero.
* **DMZ** — one node of a four-node cluster: two dual-core 2.2 GHz
  Opteron 275, 4 GB DDR-400 (experiments were limited to one node).
* **Longs** — eight-socket Iwill H8501: dual-core 1.8 GHz Opteron 865
  per socket, 4 GB per socket, sockets arranged in a 2×4 coherent
  HyperTransport *ladder* (Figure 1).  The larger coherence-probe cost
  models probe broadcast across the ladder and yields the paper's
  observation that best single-core bandwidth is less than half of a
  small system's.
"""

from __future__ import annotations

from typing import Dict, List

from .params import DEFAULT_PARAMS, GB, KB, MB
from .topology import CoreSpec, MachineSpec, SocketSpec

__all__ = ["tiger", "dmz", "longs", "chiplet", "by_name", "all_systems",
           "SYSTEM_TABLE"]


def tiger() -> MachineSpec:
    """Cray XD-1 node: 2 × single-core Opteron 248 @ 2.2 GHz."""
    core = CoreSpec(frequency_hz=2.2e9)
    return MachineSpec(
        name="Tiger",
        sockets=2,
        socket=SocketSpec(cores_per_socket=1, core=core,
                          dram_bytes=4 * 1024 ** 3),
        topology="pair",
        params=DEFAULT_PARAMS.with_overrides(migration_remote_fraction=0.01),
        description="Cray XD-1, single-core Opteron 248, co-scheduled kernel",
    )


def dmz() -> MachineSpec:
    """DMZ cluster node: 2 × dual-core Opteron 275 @ 2.2 GHz."""
    core = CoreSpec(frequency_hz=2.2e9)
    return MachineSpec(
        name="DMZ",
        sockets=2,
        socket=SocketSpec(cores_per_socket=2, core=core,
                          dram_bytes=2 * 1024 ** 3),
        topology="pair",
        params=DEFAULT_PARAMS,
        description="2-socket dual-core Opteron 275 node (RHEL 4u3)",
    )


def longs() -> MachineSpec:
    """Iwill H8501: 8 × dual-core Opteron 865 @ 1.8 GHz in a 2x4 ladder."""
    core = CoreSpec(frequency_hz=1.8e9)
    return MachineSpec(
        name="Longs",
        sockets=8,
        socket=SocketSpec(cores_per_socket=2, core=core,
                          dram_bytes=4 * 1024 ** 3),
        topology="ladder",
        params=DEFAULT_PARAMS.with_overrides(
            coherence_probe_cost=0.175,
            migration_remote_fraction=0.10,
        ),
        description="8-socket Iwill H8501, HyperTransport 2x4 ladder (FC4)",
    )


def chiplet() -> MachineSpec:
    """CCX-style chiplet package: 4 CCDs × 4 cores with split L3 slices.

    The first modern-hardware preset (ROADMAP item 2), modeled with the
    paper's vocabulary: each "socket" is one **CCD/CCX** — four cores
    sharing a private 16 MB L3 slice (split L3: a core cannot allocate
    in another CCD's slice, which the per-core ``l3_share_bytes`` fold
    captures), with its own memory-controller path.  The ``crossbar``
    topology stands in for the IO-die hub: every CCD one uniform hop
    from every other, unlike Longs' multi-hop ladder.  Cross-CCD
    coherence probes are cheap but not free, and the remote-allocation
    fraction is small because the IO die interleaves well.
    """
    core = CoreSpec(frequency_hz=3.4e9, flops_per_cycle=16.0,
                    l1d_bytes=32 * KB, l2_bytes=512 * KB)
    return MachineSpec(
        name="Chiplet",
        sockets=4,  # CCDs on the package
        socket=SocketSpec(cores_per_socket=4, core=core,
                          dram_peak_bandwidth=25.6 * GB,
                          dram_bytes=8 * 1024 ** 3,
                          l3_bytes=16 * MB),
        topology="crossbar",
        params=DEFAULT_PARAMS.with_overrides(
            coherence_probe_cost=0.04,
            migration_remote_fraction=0.05,
        ),
        description="chiplet package: 4 CCDs x 4 cores, 16 MB split L3 "
                    "per CCD, IO-die crossbar",
    )


_FACTORIES = {"tiger": tiger, "dmz": dmz, "longs": longs,
              "chiplet": chiplet}


def by_name(name: str) -> MachineSpec:
    """Look up a system preset case-insensitively."""
    try:
        return _FACTORIES[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown system {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None


def all_systems() -> List[MachineSpec]:
    """The three *paper* evaluation systems in paper order.

    Deliberately excludes post-paper presets like :func:`chiplet` —
    the bench tables/figures iterate this and must keep reproducing
    the paper's exact system set.
    """
    return [tiger(), dmz(), longs()]


#: Table 1 of the paper, as data.
SYSTEM_TABLE: List[Dict[str, object]] = [
    {
        "Name": "Tiger", "Opteron Model": 248, "Frequency (GHz)": 2.2,
        "Cores per Socket": 1, "Sockets per Node": 2, "Total Cores per Node": 2,
        "Node Memory Size (GB)": 8, "Node Memory Type": "DDR-400",
        "OS": "Suse Linux",
    },
    {
        "Name": "DMZ", "Opteron Model": 275, "Frequency (GHz)": 2.2,
        "Cores per Socket": 2, "Sockets per Node": 2, "Total Cores per Node": 4,
        "Node Memory Size (GB)": 4, "Node Memory Type": "DDR-400",
        "OS": "RH Linux 2.6.9",
    },
    {
        "Name": "Longs", "Opteron Model": 865, "Frequency (GHz)": 1.8,
        "Cores per Socket": 2, "Sockets per Node": 8, "Total Cores per Node": 16,
        "Node Memory Size (GB)": 32, "Node Memory Type": "DDR-400",
        "OS": "RH Linux 2.6.13",
    },
]
