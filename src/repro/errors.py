"""The ``ReproError`` hierarchy: every failure mode under one root.

Historically the toolkit raised bare :class:`ValueError` from a dozen
call sites, which made it impossible for the characterization service
(:mod:`repro.service`) or the CLIs to map failures onto *stable* wire
codes — a client retrying on ``queue_full`` must never confuse it with
``unknown_metric``.  Every exception the library raises deliberately now
subclasses :class:`ReproError` and carries a :attr:`~ReproError.code`
class attribute that is part of the public protocol (documented in
``docs/API.md``) and will not change spelling.

Errors that previously subclassed :class:`ValueError` (or were raised
*as* ``ValueError``) keep it as a secondary base, so existing
``except ValueError`` call sites continue to work unchanged.

:func:`error_code` maps any exception to its wire code (``internal``
for exceptions outside the hierarchy), and :func:`from_wire` rebuilds
the right subclass from a decoded protocol message on the client side.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

__all__ = [
    "ReproError",
    "ReproDeprecationWarning",
    "InfeasibleSchemeError",
    "NoFeasibleSchemeError",
    "UnknownMetricError",
    "UnknownNameError",
    "ProtocolError",
    "QueueFullError",
    "SessionClosedError",
    "ShardUnavailableError",
    "SurrogateUnsupportedError",
    "JobFailedError",
    "RETRYABLE_CODES",
    "error_code",
    "from_wire",
]

#: wire codes a client may safely retry: all are *pre-acceptance*
#: failures (the job was never admitted, so a retry cannot duplicate
#: observable work — cells are content-addressed and idempotent
#: anyway).  "transport" is the replay client's synthetic code for a
#: connect/read failure.
RETRYABLE_CODES = frozenset({"queue_full", "shard_unavailable",
                             "transport"})


class ReproDeprecationWarning(DeprecationWarning):
    """Deprecation of a ``repro`` API (never raised by third parties).

    A dedicated category lets CI run the examples under
    ``-W error::DeprecationWarning`` style enforcement scoped to this
    library without tripping on unrelated warnings from the scientific
    stack.
    """


class ReproError(Exception):
    """Root of every deliberate failure raised by the toolkit.

    :attr:`code` is the stable wire/CLI identifier of the failure mode;
    subclasses override it.  :attr:`retry_after` is ``None`` except for
    backpressure-style rejections, where it is the server's hint (in
    seconds) for when a retry is likely to be admitted.
    """

    code = "repro_error"
    retry_after: Optional[float] = None

    def to_wire(self) -> Dict[str, Any]:
        """The protocol form of this error (status/code/message)."""
        wire: Dict[str, Any] = {"status": "error", "code": self.code,
                                "message": str(self)}
        if self.retry_after is not None:
            wire["retry_after"] = self.retry_after
        return wire


class InfeasibleSchemeError(ReproError, ValueError):
    """A scheme/machine/task-count combination that cannot be placed.

    These are the dashes in the paper's tables (e.g. a One-MPI scheme
    with more tasks than sockets), not programming errors.  Sweeps catch
    exactly this class, so genuine bugs — which raise plain
    :class:`ValueError` or anything else — surface instead of rendering
    as dashes.  Keeps :class:`ValueError` as a base for backward
    compatibility with pre-1.0 callers.
    """

    code = "infeasible_scheme"


class NoFeasibleSchemeError(ReproError, ValueError):
    """Every scheme in a comparison was infeasible for the workload."""

    code = "no_feasible_scheme"


class UnknownMetricError(ReproError, ValueError):
    """A study was asked for a metric it does not compute."""

    code = "unknown_metric"


class UnknownNameError(ReproError, ValueError):
    """A registry lookup (system, workload, scheme) found no entry."""

    code = "unknown_name"


class ProtocolError(ReproError, ValueError):
    """A service request that cannot be decoded or is malformed."""

    code = "protocol_error"


class QueueFullError(ReproError):
    """Admission control rejected a submit: the queue is at capacity.

    The 429 of the characterization service: the job was *not* accepted
    (nothing to lose), and :attr:`retry_after` hints when capacity is
    likely to free up.
    """

    code = "queue_full"

    def __init__(self, message: str, retry_after: float = 0.1):
        super().__init__(message)
        self.retry_after = retry_after


class SessionClosedError(ReproError):
    """A submit arrived after the session began draining or closed."""

    code = "session_closed"


class ShardUnavailableError(ReproError):
    """The cluster router could not reach any shard for a request.

    Raised (and sent over the wire) by :mod:`repro.cluster` only after
    the retry/backoff schedule exhausted every live shard in the
    rendezvous fallback order — a single dead shard never surfaces this,
    because the router reroutes to the next shard for the key.  Like
    :class:`QueueFullError` this is a *pre-acceptance* failure: no shard
    accepted the job, so nothing was lost and the client may retry.
    """

    code = "shard_unavailable"

    def __init__(self, message: str, retry_after: float = 0.5):
        super().__init__(message)
        self.retry_after = retry_after


class SurrogateUnsupportedError(ReproError):
    """The analytic fast tier cannot evaluate this cell.

    Raised by :mod:`repro.surrogate` for cells whose semantics only the
    discrete-event engine can honour — marker profiling, fault plans,
    wildcard receives.  ``tier="auto"`` callers never see it (the
    executor falls back to the exact tier); explicit ``tier="fast"``
    callers do, because silently answering with a different model than
    the one requested would be worse than failing.
    """

    code = "surrogate_unsupported"


class JobFailedError(ReproError):
    """An accepted job ran and failed (crash, stall, exhausted faults).

    Distinct from :class:`InfeasibleSchemeError`: infeasibility is
    expected data (a dash), failure is an abnormal outcome that the
    service still reports rather than dropping.  ``kind`` carries the
    executor's failure class (``crash``/``timeout``/``fault_exhausted``/
    ``error``).
    """

    code = "job_failed"

    def __init__(self, message: str, kind: str = "error"):
        super().__init__(message)
        self.kind = kind


#: wire code -> exception class, for client-side reconstruction
_BY_CODE: Dict[str, Type[ReproError]] = {
    cls.code: cls
    for cls in (ReproError, InfeasibleSchemeError, NoFeasibleSchemeError,
                UnknownMetricError, UnknownNameError, ProtocolError,
                QueueFullError, SessionClosedError, ShardUnavailableError,
                SurrogateUnsupportedError, JobFailedError)
}


def error_code(exc: BaseException) -> str:
    """The stable wire code of an exception (``internal`` if foreign)."""
    if isinstance(exc, ReproError):
        return exc.code
    return "internal"


def from_wire(wire: Dict[str, Any]) -> ReproError:
    """Rebuild a typed error from its protocol form.

    Unknown codes degrade to the :class:`ReproError` root rather than
    failing, so an old client can still surface a new server's errors.
    """
    code = wire.get("code", "repro_error")
    message = wire.get("message", code)
    cls = _BY_CODE.get(code, ReproError)
    if cls is QueueFullError:
        return QueueFullError(message,
                              retry_after=wire.get("retry_after", 0.1))
    if cls is JobFailedError:
        return JobFailedError(message, kind=wire.get("kind", "error"))
    error = cls(message)
    if "retry_after" in wire:
        error.retry_after = wire["retry_after"]
    return error
