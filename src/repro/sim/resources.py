"""Shared resources for the discrete-event engine.

Three resource kinds cover everything the machine model needs:

* :class:`Resource` — a counting semaphore with a FIFO grant queue (used
  for locks and limited-slot devices such as a memory controller's
  outstanding-request window).
* :class:`Store` — an unbounded FIFO of items with blocking ``get`` (used
  for MPI message queues).
* :class:`BandwidthResource` — a fluid-flow fair-share pipe: concurrent
  transfers progress simultaneously, each receiving a weighted share of
  the capacity, with shares recomputed whenever the set of active flows
  changes.  This is the standard fluid approximation for link and memory
  bandwidth sharing and is what produces contention effects in the model.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from .engine import Engine
from .events import Event

__all__ = ["Resource", "Store", "BandwidthResource"]

#: residual bytes below which a flow counts as complete (absorbs float error)
_FLOW_EPSILON = 1e-6


class Resource:
    """A counting semaphore with FIFO fairness.

    ``request()`` returns an event that succeeds once a slot is granted;
    ``release()`` frees one slot and grants the oldest waiter.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Ask for one slot; the returned event succeeds when granted."""
        ev = Event(self.engine)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Free one slot, granting the oldest waiter if any."""
        if self._in_use == 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that succeeds with the
    oldest item once one is available; waiting getters are served FIFO.
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that succeeds with the next item."""
        ev = Event(self.engine)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev


class _Flow:
    __slots__ = ("remaining", "weight", "event", "nbytes")

    def __init__(self, nbytes: float, weight: float, event: Event):
        self.remaining = float(nbytes)
        self.nbytes = float(nbytes)
        self.weight = float(weight)
        self.event = event


class BandwidthResource:
    """A pipe shared fairly among concurrent transfers (fluid-flow model).

    Each active flow receives ``capacity * weight / total_weight`` bytes
    per second.  Whenever a flow starts or finishes, all shares are
    recomputed.  Completion events carry the simulation time at which the
    transfer finished.

    The fluid model is the first-order approximation used throughout the
    machine model for DRAM links, HyperTransport links, and shared-memory
    copy bandwidth; it captures the paper's core effect — two cores on one
    socket halving each other's STREAM bandwidth — without simulating
    individual cache lines.
    """

    def __init__(self, engine: Engine, capacity: float, name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.engine = engine
        self.capacity = float(capacity)
        self.name = name
        self._flows: Dict[int, _Flow] = {}
        self._next_flow_id = 0
        self._last_update = engine.now
        self._generation = 0
        #: cumulative bytes fully delivered (for utilization accounting)
        self.total_transferred = 0.0

    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of capacity used over ``elapsed`` seconds (default: now)."""
        horizon = self.engine.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return self.total_transferred / (self.capacity * horizon)

    def transfer(self, nbytes: float, weight: float = 1.0) -> Event:
        """Start moving ``nbytes`` through the pipe; event fires on delivery."""
        ev = Event(self.engine)
        if nbytes <= 0:
            ev.succeed(self.engine.now)
            return ev
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        self._advance()
        self._next_flow_id += 1
        self._flows[self._next_flow_id] = _Flow(nbytes, weight, ev)
        self._reschedule()
        return ev

    def set_capacity(self, capacity: float) -> None:
        """Change the pipe's capacity mid-run (fault injection).

        In-flight flows keep the bytes they have already moved at the
        old rate; their remaining bytes drain at the new one — the fluid
        analogue of a link renegotiating its width.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._advance()
        self.capacity = float(capacity)
        self._reschedule()

    # -- internal fluid mechanics ---------------------------------------

    def _total_weight(self) -> float:
        return sum(f.weight for f in self._flows.values())

    def _advance(self) -> None:
        """Progress every active flow from the last update instant to now."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._flows:
            return
        total_w = self._total_weight()
        for flow in self._flows.values():
            rate = self.capacity * flow.weight / total_w
            moved = min(flow.remaining, rate * dt)
            flow.remaining -= moved

    @staticmethod
    def _tolerance(flow: _Flow) -> float:
        """Residual bytes below which a flow counts as delivered.

        Relative to the flow size: float error accumulated over many
        share recomputations scales with the transfer size, so a purely
        absolute epsilon can strand a residual whose drain time rounds
        to zero on the simulation clock (a livelock).
        """
        return _FLOW_EPSILON + 1e-9 * flow.nbytes

    def _reschedule(self) -> None:
        """Schedule a wake-up at the earliest flow completion."""
        self._generation += 1
        if not self._flows:
            return
        generation = self._generation
        total_w = self._total_weight()
        eta = min(
            max(0.0, f.remaining - self._tolerance(f))
            / (self.capacity * f.weight / total_w)
            for f in self._flows.values()
        )
        # Round the wake-up up past the clock's float resolution so the
        # advance always makes progress (never a zero-width step).
        now = self.engine.now
        eta = eta * (1.0 + 1e-12) + 1e-15 * (1.0 + abs(now))
        self.engine.schedule_callback(
            eta, lambda _ev: self._on_wakeup(generation), urgent=True
        )

    def _on_wakeup(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a later membership change
        self._advance()
        finished = [
            key for key, f in self._flows.items()
            if f.remaining <= self._tolerance(f)
        ]
        now = self.engine.now
        for key in finished:
            flow = self._flows.pop(key)
            self.total_transferred += flow.nbytes
            flow.event.succeed(now)
        self._reschedule()
