"""Core event primitives for the discrete-event engine.

The engine follows the simpy model: an :class:`Event` is a one-shot
occurrence that may carry a value, and processes (generator coroutines)
yield events to wait on them.  Events are deliberately small; all
scheduling lives in :class:`repro.sim.engine.Engine`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Event", "Timeout", "AllOf", "AnyOf", "Interrupt"]

_UNSET = object()


class Interrupt(Exception):
    """Raised inside a process when it is interrupted.

    The ``cause`` attribute carries whatever the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, becomes *triggered* when :meth:`succeed`
    or :meth:`fail` is called, and is *processed* once the engine has run
    its callbacks.  Each callback receives the event itself.
    """

    #: slotted to cut per-event allocation cost — event-heavy runs
    #: (PTRANS, RandomAccess) create millions of these
    __slots__ = ("engine", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _UNSET
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (it may still await callbacks)."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once the engine has invoked this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or the exception for failed events)."""
        if self._value is _UNSET:
            raise RuntimeError("event has no value yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value`` as its payload."""
        if self._ok is not None:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.engine._enqueue(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception`` raised."""
        if self._ok is not None:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.engine._enqueue(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (this keeps late waiters correct).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._ok is True:
            state = "ok"
        elif self._ok is False:
            state = "failed"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(engine)
        self.delay = delay
        self._ok = True
        self._value = value
        engine._enqueue(self, delay=delay)


class _Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("events", "_outstanding")

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine)
        self.events = list(events)
        for ev in self.events:
            if ev.engine is not engine:
                raise ValueError("all events must belong to the same engine")
        self._outstanding = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.triggered and ev.ok
        }


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails (with that child's exception);
    the child's failure is absorbed (defused) by the condition.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event.ok:
            event._defused = True  # the condition handles the failure
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._outstanding -= 1
        if self._outstanding == 0:
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the first child event succeeds."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if not event.ok:
            event._defused = True  # the condition handles the failure
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._collect())
        else:
            self._outstanding -= 1
            if self._outstanding == 0:
                self.fail(event.value)
