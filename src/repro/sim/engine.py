"""The discrete-event engine.

A minimal, deterministic event loop in the style of simpy: events are
ordered by (time, priority, sequence number), so two events scheduled for
the same instant are processed in scheduling order.  Determinism matters —
the test suite and the paper-reproduction benches rely on bit-identical
reruns.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from .events import AllOf, AnyOf, Event, Timeout

__all__ = ["Engine", "EmptySchedule"]


class EmptySchedule(Exception):
    """Raised by :meth:`Engine.step` when no events remain."""


class Engine:
    """A deterministic discrete-event simulation engine.

    Typical use::

        eng = Engine()
        def program(eng):
            yield eng.timeout(1.0)
            return "done"
        proc = eng.process(program(eng))
        eng.run()
        assert proc.value == "done"
    """

    #: priority for ordinary events (lower runs first at equal time)
    PRIORITY_NORMAL = 1
    #: priority for urgent bookkeeping events (bandwidth recomputation)
    PRIORITY_URGENT = 0

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list = []
        self._seq = 0
        #: optional attached profiling session (set by PerfSession.bind)
        self.perf = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- marker regions (LIKWID_MARKER_START/STOP analogue) --------------

    def marker_start(self, name: str, core: int = 0) -> None:
        """Open a named profiling region on ``core``.

        No-op unless a :class:`~repro.perfctr.counters.PerfSession` is
        attached, so workloads may bracket phases unconditionally
        without perturbing unprofiled (byte-identical) runs.
        """
        if self.perf is not None:
            self.perf.region_start(name, core)

    def marker_stop(self, name: str, core: int = 0) -> None:
        """Close a named profiling region on ``core`` (no-op unprofiled)."""
        if self.perf is not None:
            self.perf.region_stop(name, core)

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> "Process":
        """Spawn ``generator`` as a process; returns its completion event."""
        from .process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds when the first of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Put a triggered event on the schedule ``delay`` from now."""
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_callback(self, delay: float, callback, *,
                          urgent: bool = False) -> Event:
        """Run ``callback(event)`` at ``now + delay``.

        Returns the underlying event; cancel by ignoring (callbacks may
        check their own validity), or use a generation counter upstream.
        """
        # Re-prioritizing an existing heap entry is not possible, so the
        # urgent path enqueues a pre-triggered event at PRIORITY_URGENT
        # directly (a Timeout would self-enqueue a second, dead entry at
        # normal priority on construction).
        if urgent:
            ev = Event(self)
            ev._ok = True
            ev._value = None
            self._seq += 1
            heapq.heappush(
                self._queue,
                (self._now + delay, self.PRIORITY_URGENT, self._seq, ev),
            )
        else:
            ev = Timeout(self, delay)
        ev.add_callback(callback)
        return ev

    # -- main loop -------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise EmptySchedule()
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not getattr(event, "_defused", False):
            # A failed event that nobody waited on is a programming error;
            # surface it instead of silently dropping the exception.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} lies in the past (now={self._now})")
        while self._queue:
            if until is not None and self.peek() > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
