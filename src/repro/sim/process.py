"""Processes: generator coroutines driven by the engine.

A process wraps a generator that yields :class:`~repro.sim.events.Event`
instances.  When a yielded event triggers, the process resumes with the
event's value (or the event's exception is thrown into the generator).
The process itself is an event that succeeds with the generator's return
value, so processes compose (a process can wait on another process).
"""

from __future__ import annotations

from typing import Any, Generator

from .engine import Engine
from .events import Event, Interrupt

__all__ = ["Process"]


class Process(Event):
    """A running generator coroutine inside the simulation."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, engine: Engine, generator: Generator):
        super().__init__(engine)
        if not hasattr(generator, "send"):
            raise TypeError(f"process target must be a generator, got {generator!r}")
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off the process at the current instant via an initial event.
        boot = Event(engine)
        boot._ok = True
        boot._value = None
        engine._enqueue(boot)
        boot.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant.

        The process must currently be waiting on an event; that wait is
        abandoned (the event may still trigger later and is ignored).
        """
        if not self.is_alive:
            raise RuntimeError("cannot interrupt a finished process")
        interrupt_ev = Event(self.engine)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        self.engine._enqueue(interrupt_ev)
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_ev.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        try:
            if event._ok:
                nxt = self._generator.send(event._value)
            else:
                # Mark the failure as handled: the process sees it.
                event._defused = True
                nxt = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(nxt, Event):
            error = TypeError(
                f"process yielded {nxt!r}; processes must yield Event instances"
            )
            try:
                self._generator.throw(error)
            except StopIteration:
                pass
            except BaseException:
                pass
            self.fail(error)
            return
        self._waiting_on = nxt
        nxt.add_callback(self._resume)
