"""Discrete-event simulation engine.

A compact, deterministic simpy-style kernel: generator-coroutine
processes, one-shot events, counting semaphores, FIFO stores, and
fluid-flow bandwidth sharing.  All timing effects in the machine model —
memory-link contention, HyperTransport congestion, MPI message overlap —
are expressed through these primitives.
"""

from .engine import EmptySchedule, Engine
from .events import AllOf, AnyOf, Event, Interrupt, Timeout
from .process import Process
from .resources import BandwidthResource, Resource, Store
from .trace import TraceRecord, Tracer, reset_dropped, total_dropped

__all__ = [
    "reset_dropped",
    "total_dropped",
    "Engine",
    "EmptySchedule",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Process",
    "Resource",
    "Store",
    "BandwidthResource",
    "Tracer",
    "TraceRecord",
]
