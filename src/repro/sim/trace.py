"""Event tracing for simulations.

A :class:`Tracer` collects timestamped records emitted by model
components (compute phases, message sends, page allocations).  Traces are
cheap append-only lists of :class:`TraceRecord`; analysis helpers
aggregate them into the per-phase summaries the characterization toolkit
reports.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer", "reset_dropped", "total_dropped"]

_LOG = logging.getLogger("repro.sim.trace")

#: records dropped across every Tracer in this process (ledger fodder)
_TOTAL_DROPPED = 0


def total_dropped() -> int:
    """Process-wide count of trace records dropped at capacity."""
    return _TOTAL_DROPPED


def reset_dropped() -> None:
    """Reset the process-wide drop tally (tests, run boundaries)."""
    global _TOTAL_DROPPED
    _TOTAL_DROPPED = 0


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``time``/``duration`` are simulated seconds; ``category`` is a short
    tag (``"compute"``, ``"send"``, ``"page_alloc"`` ...); ``rank`` is the
    MPI rank or ``-1`` for system events; ``detail`` carries free-form
    fields.
    """

    time: float
    category: str
    rank: int = -1
    duration: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Append-only trace sink with simple aggregation queries.

    ``capacity`` bounds memory on long profiled runs: once the record
    list is full, further emissions are dropped and tallied in
    ``dropped`` instead of growing without bound (the convention of
    kernel ring-buffer tracers — keep the head, count the overflow).
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.dropped = 0
        self.records: List[TraceRecord] = []

    def emit(self, time: float, category: str, rank: int = -1,
             duration: float = 0.0, **detail: Any) -> None:
        """Record one event (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            if self.dropped == 0:
                _LOG.warning(
                    "trace capacity %d reached; further records are "
                    "dropped (tallied in Tracer.dropped)", self.capacity)
            self.dropped += 1
            global _TOTAL_DROPPED
            _TOTAL_DROPPED += 1
            return
        self.records.append(
            TraceRecord(time=time, category=category, rank=rank,
                        duration=duration, detail=detail)
        )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records with the given category tag."""
        return [r for r in self.records if r.category == category]

    def by_rank(self, rank: int) -> List[TraceRecord]:
        """All records emitted on behalf of ``rank``."""
        return [r for r in self.records if r.rank == rank]

    def total_time(self, category: str, rank: Optional[int] = None) -> float:
        """Sum of durations for a category (optionally one rank only)."""
        return sum(
            r.duration
            for r in self.records
            if r.category == category and (rank is None or r.rank == rank)
        )

    def clear(self) -> None:
        """Drop all records and reset the overflow tally."""
        self.records.clear()
        self.dropped = 0
