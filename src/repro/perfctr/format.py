"""Human-readable counter formatting shared by repro-prof and --timings."""

from __future__ import annotations

__all__ = ["format_count", "format_bytes", "format_rate", "format_ratio"]

_SUFFIXES = ["", "K", "M", "G", "T", "P"]


def format_count(value: float) -> str:
    """Engineering notation with a metric suffix: ``12.3M``, ``960``.

    Counter magnitudes span nine orders; fixed three-significant-digit
    scaling keeps table columns aligned and comparable at a glance.
    """
    if value < 0:
        return "-" + format_count(-value)
    if value < 1000:
        if value == int(value):
            return str(int(value))
        return f"{value:.3g}"
    scaled = float(value)
    for suffix in _SUFFIXES:
        if scaled < 1000:
            return f"{scaled:.3g}{suffix}"
        scaled /= 1000.0
    return f"{scaled:.3g}E"


def format_bytes(value: float) -> str:
    """Decimal byte units (the paper reports decimal gigabytes)."""
    if value < 0:
        return "-" + format_bytes(-value)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1000 or unit == "TB":
            return f"{value:.3g} {unit}"
        value /= 1000.0
    return f"{value:.3g} TB"


def format_rate(value: float, unit: str) -> str:
    """A per-second rate, e.g. ``format_rate(5.2e9, "B/s")`` -> ``5.2 GB/s``."""
    return f"{format_count(value)}{unit}"


def format_ratio(value: float) -> str:
    """A 0..1 ratio as a percentage with one decimal."""
    return f"{100.0 * value:.1f}%"
