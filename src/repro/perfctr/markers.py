"""Marker regions: ``LIKWID_MARKER_START``/``STOP`` for the simulator.

A region is a named, per-core bracket around interesting work (a POP
``baroclinic`` step, a STREAM triad inner loop).  Starting a region
snapshots the core's counter bank and the simulated clock; stopping it
accumulates the deltas.  Regions nest across *names* but not within
one — starting ``("triad", core 0)`` twice without a stop is an error,
exactly like LIKWID's marker API.

The runtime auto-brackets every op's ``phase`` label as a region, so
phase-labelled workloads profile without modification; workloads can
additionally yield explicit :class:`~repro.core.ops.MarkerStart` /
:class:`~repro.core.ops.MarkerStop` descriptors to bracket multi-op
spans.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["RegionAccumulator"]


class RegionAccumulator:
    """Per-(region, core) call counts, elapsed seconds, counter deltas."""

    def __init__(self, session):
        self.session = session
        # (name, core) -> (start time, counter snapshot)
        self._open: Dict[Tuple[str, int], Tuple[float, Dict[str, float]]] = {}
        # name -> core -> {"calls", "seconds", "counters"}
        self.data: Dict[str, Dict[int, Dict]] = {}

    def start(self, name: str, core: int) -> None:
        if not name:
            raise ValueError("region name must be non-empty")
        key = (name, core)
        if key in self._open:
            raise ValueError(
                f"region {name!r} already started on core {core}"
            )
        bank = self.session.banks[core] if core < len(self.session.banks) \
            else None
        snap = bank.snapshot() if bank is not None else {}
        self._open[key] = (self.session.now, snap)

    def stop(self, name: str, core: int) -> None:
        key = (name, core)
        try:
            started, snap = self._open.pop(key)
        except KeyError:
            raise ValueError(
                f"region {name!r} was not started on core {core}"
            ) from None
        bank = self.session.banks[core] if core < len(self.session.banks) \
            else None
        current = bank.snapshot() if bank is not None else {}
        entry = self.data.setdefault(name, {}).setdefault(
            core, {"calls": 0, "seconds": 0.0, "counters": {}}
        )
        entry["calls"] += 1
        entry["seconds"] += self.session.now - started
        counters = entry["counters"]
        for event, value in current.items():
            delta = value - snap.get(event, 0.0)
            if delta:
                counters[event] = counters.get(event, 0.0) + delta

    @property
    def open_regions(self) -> Tuple[Tuple[str, int], ...]:
        """Still-started (name, core) pairs, for leak diagnostics."""
        return tuple(sorted(self._open))

    def names(self):
        """Region names in first-seen order."""
        return list(self.data)

    def snapshot(self, time_scale: float = 1.0) -> Dict:
        """JSON form: region -> core (str) -> calls/seconds/counters.

        ``seconds`` and the ``cycles`` delta are multiplied by
        ``time_scale`` for the same reason as
        :meth:`~repro.perfctr.counters.PerfSession.snapshot`.
        """
        out: Dict[str, Dict] = {}
        for name, cores in self.data.items():
            per_core = {}
            for core in sorted(cores):
                entry = cores[core]
                counters = dict(sorted(entry["counters"].items()))
                if "cycles" in counters:
                    counters["cycles"] *= time_scale
                per_core[str(core)] = {
                    "calls": entry["calls"],
                    "seconds": entry["seconds"] * time_scale,
                    "counters": counters,
                }
            out[name] = per_core
        return out
