"""Derived metrics computed from raw counter dictionaries.

Every helper takes a plain ``{event: count}`` mapping (a bank snapshot,
a region's counter deltas, or machine-wide totals) so the same formulas
serve per-core tables, per-region tables, and job summaries.
"""

from __future__ import annotations

from typing import Dict, Mapping

__all__ = [
    "achieved_bandwidth",
    "dram_bytes",
    "derive",
    "flop_rate",
    "l1_miss_ratio",
    "link_utilization",
    "remote_access_ratio",
]


def dram_bytes(counters: Mapping[str, float]) -> float:
    """Total DRAM traffic (local + remote), in bytes."""
    return (counters.get("dram_local_bytes", 0.0)
            + counters.get("dram_remote_bytes", 0.0))


def achieved_bandwidth(counters: Mapping[str, float],
                       seconds: float) -> float:
    """Counter-derived DRAM bandwidth in bytes/s (0 when no time passed)."""
    if seconds <= 0:
        return 0.0
    return dram_bytes(counters) / seconds


def flop_rate(counters: Mapping[str, float], seconds: float) -> float:
    """Achieved FLOP/s (0 when no time passed)."""
    if seconds <= 0:
        return 0.0
    return counters.get("flops", 0.0) / seconds


def remote_access_ratio(counters: Mapping[str, float]) -> float:
    """Fraction of DRAM accesses served by a remote NUMA node."""
    local = counters.get("dram_local_accesses", 0.0)
    remote = counters.get("dram_remote_accesses", 0.0)
    total = local + remote
    return remote / total if total > 0 else 0.0


def l1_miss_ratio(counters: Mapping[str, float]) -> float:
    """L1 misses over L1 accesses (hits + misses)."""
    hits = counters.get("l1_hits", 0.0)
    misses = counters.get("l1_misses", 0.0)
    total = hits + misses
    return misses / total if total > 0 else 0.0


def link_utilization(machine, elapsed: float = None) -> Dict[str, float]:
    """Average utilization of every HT link of a live machine.

    Reads the interconnect's :class:`BandwidthResource` transfer totals,
    so it reflects *all* traffic (streaming, MPI copies), not just the
    portion attributed to counter banks.
    """
    return {
        link.name: link.utilization(elapsed)
        for link in machine.net.links.values()
    }


def derive(counters: Mapping[str, float], seconds: float) -> Dict[str, float]:
    """The standard derived-metric bundle for one counter dict."""
    return {
        "dram_bytes": dram_bytes(counters),
        "achieved_bandwidth": achieved_bandwidth(counters, seconds),
        "flop_rate": flop_rate(counters, seconds),
        "remote_access_ratio": remote_access_ratio(counters),
        "l1_miss_ratio": l1_miss_ratio(counters),
    }
