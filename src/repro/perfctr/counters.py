"""Simulated hardware performance counters.

A :class:`PerfSession` is the machine-wide counter fabric of one
profiled run: one :class:`CounterBank` per core plus one *uncore* bank
for events with no issuing core (page placement).  Model components hold
an optional session reference and emit with ``perf.count(core, event,
value)``; when no session is attached every hook site is a single
``if perf is not None`` test, so unprofiled runs — the byte-identity
path of the bench pipeline — pay nothing and schedule nothing.

The event vocabulary mirrors what LIKWID exposes on the paper's
Opterons (cycles, flops, cache hierarchy, DRAM read/write, local vs.
remote NUMA traffic, HT link bytes) plus the MPI software counters the
study derives from ``mpptest``-style instrumentation.  Counts are
floats: the analytic cache model produces fractional line counts and
keeping them exact preserves the conservation invariants the tests
assert (L1 misses == L2 accesses, local + remote == total DRAM
accesses).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .markers import RegionAccumulator

__all__ = ["CACHE_LINE", "EVENTS", "CounterBank", "PerfSession"]

#: coherence granularity of the modeled Opterons
CACHE_LINE = 64

#: the full event vocabulary, in report order
EVENTS = (
    "cycles",
    "flops",
    "l1_hits",
    "l1_misses",
    "l2_hits",
    "l2_misses",
    "dram_reads",
    "dram_writes",
    "dram_local_accesses",
    "dram_remote_accesses",
    "dram_local_bytes",
    "dram_remote_bytes",
    "ht_link_bytes",
    "mpi_messages",
    "mpi_bytes",
    "mpi_retries",
    "mpi_dropped",
    "mpi_duplicated",
    "numa_local_pages",
    "numa_remote_pages",
    "numa_fallback_pages",
)


class CounterBank:
    """One core's (or the uncore's) monotonically increasing counters."""

    __slots__ = ("counts",)

    def __init__(self):
        self.counts: Dict[str, float] = {}

    def add(self, event: str, value: float = 1.0) -> None:
        if event not in EVENTS:
            raise ValueError(f"unknown counter event {event!r}")
        self.counts[event] = self.counts.get(event, 0.0) + value

    def get(self, event: str) -> float:
        return self.counts.get(event, 0.0)

    def snapshot(self) -> Dict[str, float]:
        """A point-in-time copy (marker regions diff two of these)."""
        return dict(self.counts)

    def __bool__(self) -> bool:
        return bool(self.counts)


class PerfSession:
    """Counter banks + marker regions for one profiled simulation run.

    The session is created by the caller that wants profiling (the
    :class:`~repro.core.execution.JobRunner` with ``profile=True``) and
    handed to :class:`~repro.machine.machine.Machine`, which binds it to
    the engine and fans it out to the subsystems.
    """

    def __init__(self, ncores: int = 0):
        self.engine = None
        self.banks: List[CounterBank] = [CounterBank() for _ in range(ncores)]
        self.uncore = CounterBank()
        self.regions = RegionAccumulator(self)

    # -- wiring -----------------------------------------------------------

    def bind(self, engine, ncores: int) -> None:
        """Attach to a machine's engine and size the per-core banks."""
        self.engine = engine
        engine.perf = self
        while len(self.banks) < ncores:
            self.banks.append(CounterBank())

    @property
    def now(self) -> float:
        """Engine time, or 0 when used standalone (page-table tests)."""
        return self.engine.now if self.engine is not None else 0.0

    # -- emission ---------------------------------------------------------

    def count(self, core: Optional[int], event: str,
              value: float = 1.0) -> None:
        """Add ``value`` to ``event`` on ``core`` (``None`` = uncore)."""
        if core is None or core < 0:
            self.uncore.add(event, value)
            return
        while core >= len(self.banks):
            self.banks.append(CounterBank())
        self.banks[core].add(event, value)

    # -- marker regions ---------------------------------------------------

    def region_start(self, name: str, core: int) -> None:
        self.regions.start(name, core)

    def region_stop(self, name: str, core: int) -> None:
        self.regions.stop(name, core)

    # -- readout ----------------------------------------------------------

    def core_counters(self, core: int) -> Dict[str, float]:
        if not 0 <= core < len(self.banks):
            return {}
        return self.banks[core].snapshot()

    def totals(self) -> Dict[str, float]:
        """Machine-wide sums over every core bank plus the uncore."""
        out: Dict[str, float] = {}
        for bank in [*self.banks, self.uncore]:
            for event, value in bank.counts.items():
                out[event] = out.get(event, 0.0) + value
        return out

    def snapshot(self, time_scale: float = 1.0) -> Dict:
        """JSON-serializable counter state, time-scale adjusted.

        Iteration-subsampled workloads report times multiplied by
        ``time_scale`` (see :class:`~repro.core.workload.Workload`);
        region seconds and the ``cycles`` counter scale the same way so
        derived rates (GB/s, GFLOP/s) stay consistent with the reported
        :class:`~repro.core.execution.JobResult` times.  Event counts
        other than cycles are left as simulated — they describe the
        representative iterations, exactly like LIKWID counting a
        shortened run.
        """

        def scaled(counts: Dict[str, float]) -> Dict[str, float]:
            out = dict(sorted(counts.items()))
            if "cycles" in out:
                out["cycles"] *= time_scale
            return out

        return {
            "schema": 1,
            "events": list(EVENTS),
            "cores": {
                str(core): scaled(bank.counts)
                for core, bank in enumerate(self.banks) if bank
            },
            "uncore": scaled(self.uncore.counts),
            "totals": scaled(self.totals()),
            "regions": self.regions.snapshot(time_scale=time_scale),
        }
