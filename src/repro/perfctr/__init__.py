"""repro.perfctr: simulated hardware performance counters.

LIKWID-style observability for the simulator: per-core counter banks
(:mod:`~repro.perfctr.counters`), marker regions
(:mod:`~repro.perfctr.markers`), derived metrics
(:mod:`~repro.perfctr.derived`), and shared formatting helpers
(:mod:`~repro.perfctr.format`).  Attach a :class:`PerfSession` to a
:class:`~repro.machine.machine.Machine` (or run a
:class:`~repro.core.execution.JobRunner` with ``profile=True``) and the
instrumented subsystems populate it; without a session every hook is a
single ``None`` test.
"""

from .counters import CACHE_LINE, EVENTS, CounterBank, PerfSession
from .derived import (
    achieved_bandwidth,
    derive,
    dram_bytes,
    flop_rate,
    l1_miss_ratio,
    link_utilization,
    remote_access_ratio,
)
from .format import format_bytes, format_count, format_rate, format_ratio
from .markers import RegionAccumulator

__all__ = [
    "CACHE_LINE",
    "EVENTS",
    "CounterBank",
    "PerfSession",
    "RegionAccumulator",
    "achieved_bandwidth",
    "derive",
    "dram_bytes",
    "flop_rate",
    "l1_miss_ratio",
    "link_utilization",
    "remote_access_ratio",
    "format_bytes",
    "format_count",
    "format_rate",
    "format_ratio",
]
