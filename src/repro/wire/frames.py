"""Length-prefixed binary frames: protocol v3 and schema-3 cache files.

Frame layout (all integers big-endian)::

    0      1      2      3      4               8
    +------+------+------+------+---------------+=============+
    | 'R'  | 'W'  | ver  | flags|  payload_len  |   payload   |
    +------+------+------+------+---------------+=============+
      magic (2B)    u8     u8        u32          payload_len B

``ver`` is :data:`FRAME_VERSION` (3).  ``flags`` bit 0 (``MORE``)
marks a *chunk*: the logical message continues in the next frame, and
a reader concatenates payloads until it sees a frame with ``MORE``
clear.  Writers split any message larger than :data:`CHUNK_BYTES`
this way, so a sweep-sized batch response streams as bounded frames
instead of one giant buffer — receivers can start pulling bytes off
the socket while the sender is still encoding nothing (the payload is
encoded once; only the *framing* is incremental).

The assembled payload is one :mod:`repro.wire.codec` value.  Readers
reject wrong magic, unknown versions, oversized payloads, and
truncated frames with :class:`~repro.errors.ProtocolError` — the same
typed error the NDJSON layer uses, so transport error paths stay
uniform across protocol versions.

Schema-3 cache entries reuse the exact same layout: a cache file is
one logical framed message whose payload is the entry dict.  The
leading ``R`` byte (0x52) is the per-entry magic that tells a
schema-3 binary entry apart from a schema-2 JSON entry (which always
starts with ``{``).
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Tuple

from ..errors import ProtocolError
from . import codec

__all__ = ["CHUNK_BYTES", "FRAME_MAGIC", "FRAME_VERSION",
           "HEADER_BYTES", "MAX_PAYLOAD_BYTES", "pack_frames",
           "read_frame_message", "unpack_frames", "write_frame_message"]

FRAME_MAGIC = b"RW"
FRAME_VERSION = 3
#: flags bit 0: this frame is a chunk, the message continues
FLAG_MORE = 0x01
#: writers split payloads larger than this into continuation frames
CHUNK_BYTES = 1 << 16
#: readers refuse assembled messages larger than this (memory bomb)
MAX_PAYLOAD_BYTES = 1 << 26

HEADER_BYTES = 8
_HEADER = struct.Struct(">2sBBI")


def pack_frames(message: Any,
                chunk_bytes: int = CHUNK_BYTES) -> bytes:
    """Encode ``message`` as one or more frames (chunked when large)."""
    payload = codec.encode(message)
    if len(payload) <= chunk_bytes:
        return _HEADER.pack(FRAME_MAGIC, FRAME_VERSION, 0,
                            len(payload)) + payload
    parts: List[bytes] = []
    total = len(payload)
    for start in range(0, total, chunk_bytes):
        piece = payload[start:start + chunk_bytes]
        flags = FLAG_MORE if start + chunk_bytes < total else 0
        parts.append(_HEADER.pack(FRAME_MAGIC, FRAME_VERSION, flags,
                                  len(piece)))
        parts.append(piece)
    return b"".join(parts)


def _parse_header(header: bytes) -> Tuple[int, int]:
    """Validate one frame header; return ``(flags, payload_len)``."""
    magic, version, flags, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {FRAME_MAGIC!r})")
    if version != FRAME_VERSION:
        raise ProtocolError(
            f"unsupported wire frame version {version} "
            f"(this peer speaks {FRAME_VERSION})")
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte limit")
    return flags, length


def unpack_frames(buffer: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Parse one logical message from ``buffer`` at ``offset``.

    Returns ``(message, next_offset)``; raises
    :class:`~repro.errors.ProtocolError` on malformed or truncated
    input (a schema-3 cache file is read through this).
    """
    chunks: List[bytes] = []
    assembled = 0
    while True:
        header = buffer[offset:offset + HEADER_BYTES]
        if len(header) < HEADER_BYTES:
            raise ProtocolError(
                f"truncated frame header at offset {offset}: "
                f"{len(header)} of {HEADER_BYTES} bytes")
        flags, length = _parse_header(header)
        offset += HEADER_BYTES
        payload = buffer[offset:offset + length]
        if len(payload) < length:
            raise ProtocolError(
                f"truncated frame payload at offset {offset}: "
                f"{len(payload)} of {length} bytes")
        offset += length
        chunks.append(payload)
        assembled += length
        if assembled > MAX_PAYLOAD_BYTES:
            raise ProtocolError(
                f"chunked message exceeds the {MAX_PAYLOAD_BYTES}-byte "
                f"limit")
        if not flags & FLAG_MORE:
            break
    data = chunks[0] if len(chunks) == 1 else b"".join(chunks)
    return codec.decode(data), offset


def write_frame_message(stream, message: Any,
                        chunk_bytes: int = CHUNK_BYTES) -> int:
    """Write one framed message to a socket or binary file object.

    Returns the number of bytes written.
    """
    data = pack_frames(message, chunk_bytes=chunk_bytes)
    sendall = getattr(stream, "sendall", None)
    if sendall is not None:
        sendall(data)
    else:
        stream.write(data)
        flush = getattr(stream, "flush", None)
        if flush is not None:
            flush()
    return len(data)


def _read_exact(reader, count: int) -> bytes:
    """Read exactly ``count`` bytes from a binary file object."""
    data = reader.read(count)
    if data is None:
        data = b""
    while len(data) < count:
        more = reader.read(count - len(data))
        if not more:
            break
        data += more
    return data


def read_frame_message(reader) -> Optional[Any]:
    """Read one logical message from a binary file object.

    Returns ``None`` on a clean EOF at a message boundary; raises
    :class:`~repro.errors.ProtocolError` on mid-frame EOF, bad magic,
    unknown version, or oversized payloads.
    """
    chunks: List[bytes] = []
    assembled = 0
    while True:
        header = _read_exact(reader, HEADER_BYTES)
        if not header and not chunks:
            return None
        if len(header) < HEADER_BYTES:
            raise ProtocolError(
                f"truncated frame header: {len(header)} of "
                f"{HEADER_BYTES} bytes")
        flags, length = _parse_header(header)
        payload = _read_exact(reader, length)
        if len(payload) < length:
            raise ProtocolError(
                f"truncated frame payload: {len(payload)} of "
                f"{length} bytes")
        chunks.append(payload)
        assembled += length
        if assembled > MAX_PAYLOAD_BYTES:
            raise ProtocolError(
                f"chunked message exceeds the {MAX_PAYLOAD_BYTES}-byte "
                f"limit")
        if not flags & FLAG_MORE:
            break
    data = chunks[0] if len(chunks) == 1 else b"".join(chunks)
    return codec.decode(data)
