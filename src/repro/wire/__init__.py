"""``repro.wire``: the compact binary wire/cache format (v3).

Two layers, both pure stdlib:

:mod:`~repro.wire.codec`
    A msgpack-style binary codec for the JSON-compatible values the
    service protocol and result cache already exchange (``None``,
    bools, ints, floats, strings, bytes, lists, string-keyed dicts).
    Homogeneous float sequences — ``rank_times``, the per-rank
    ``category_times``/``phase_times`` maps that dominate every
    :class:`~repro.core.execution.JobResult` payload — are packed as
    contiguous IEEE-754 double arrays in a single :func:`struct.pack`
    call, which is where the >2x encode+decode win over JSON comes
    from.  Decoding reproduces exactly what a JSON round-trip of the
    same value would (doubles are bit-exact; JSON has no int/float
    distinction a wire payload relies on).

:mod:`~repro.wire.frames`
    Length-prefixed framing for protocol v3 connections and schema-3
    cache entries: a struct-packed header (magic, version, flags,
    payload length) followed by a codec payload.  Large messages
    stream as *chunked* continuation frames (the ``MORE`` flag bit)
    so a sweep-sized batch response never has to be buffered as one
    giant line, and readers reject truncated frames, wrong magic, and
    unknown versions with :class:`~repro.errors.ProtocolError`.

Nothing here changes *what* is said on the wire or stored in the
cache — only how it is spelled.  sha256 checksums and cache content
addresses are still computed over the canonical JSON form, so a
binary entry and a JSON entry of the same result verify with
bit-for-bit identical checksums.
"""

from .codec import decode, decode_value, encode, encode_value
from .frames import (FRAME_MAGIC, FRAME_VERSION, MAX_PAYLOAD_BYTES,
                     CHUNK_BYTES, read_frame_message, write_frame_message,
                     pack_frames, unpack_frames)

__all__ = [
    "CHUNK_BYTES",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "MAX_PAYLOAD_BYTES",
    "decode",
    "decode_value",
    "encode",
    "encode_value",
    "pack_frames",
    "read_frame_message",
    "unpack_frames",
    "write_frame_message",
]
